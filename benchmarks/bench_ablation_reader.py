"""Ablation: cold per-query opens (the paper's reader) vs a warm cache.

Fig. 11's costs include re-opening the partition on every query (footer +
index loads each time).  A long-running analysis session would cache open
tables and resident aux tables; this ablation measures how much of
FilterKV's read-path premium that recovers.
"""

import numpy as np
import pytest

from repro.analysis.reporting import table_artifact
from repro.cluster import SimCluster
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.reader import CachedQueryEngine

NRANKS = 12
RECORDS = 4000
NQUERIES = 60


def _dataset(fmt):
    cluster = SimCluster(
        nranks=NRANKS, fmt=fmt, value_bytes=56, records_hint=NRANKS * RECORDS, seed=17
    )
    batches = [
        random_kv_batch(RECORDS, 56, np.random.default_rng(80 + r)) for r in range(NRANKS)
    ]
    for rank, b in enumerate(batches):
        cluster.put(rank, b)
    cluster.finish_epoch()
    rng = np.random.default_rng(3)
    keys = [
        int(batches[int(rng.integers(NRANKS))].keys[int(rng.integers(RECORDS))])
        for _ in range(NQUERIES)
    ]
    return cluster, keys


def test_ablation_reader_caching(report, benchmark):
    rows = []
    gains = {}
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        cluster, keys = _dataset(fmt)
        cold = cluster.query_engine()
        warm = CachedQueryEngine(
            device=cold.device,
            fmt=cold.fmt,
            nranks=cold.nranks,
            partitioner=cold.partitioner,
            aux_tables=cold.aux_tables,
            epoch=cold.epoch,
        )
        cold_reads = sum(cold.get(k)[1].reads for k in keys) / len(keys)
        warm_reads = sum(warm.get(k)[1].reads for k in keys) / len(keys)
        gains[fmt.name] = cold_reads / warm_reads
        rows.append([fmt.name, round(cold_reads, 2), round(warm_reads, 2), round(gains[fmt.name], 2)])
    text, data = table_artifact(
        ["format", "cold reads/query", "warm reads/query", "speedup"],
        rows,
        title=f"Ablation — reader caching over {NQUERIES} queries, {NRANKS} partitions",
    )
    report(text, name="ablation_reader", data=data)
    # Everyone gains; FilterKV gains the most (aux + extra partition opens
    # are exactly what caching amortizes).
    assert all(g > 1.5 for g in gains.values())
    assert gains["filterkv"] >= gains["base"] * 0.9
    cluster, keys = _dataset(FMT_BASE)
    engine = cluster.query_engine()
    benchmark(lambda: engine.get(keys[0]))
