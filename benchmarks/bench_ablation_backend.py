"""Ablation: auxiliary-table backend (§VI's "may also be used" claim).

Compares all four aux-table backends — exact pointers, Bloom, partial-key
cuckoo, quotient — on the same key→rank workload: space per key, query
amplification, and lookup cost structure.  The quotient filter (scalar
implementation) runs at reduced scale.
"""

import numpy as np

from repro.analysis.reporting import table_artifact
from repro.core.auxtable import make_aux_table

NPARTS = 256


def _workload(n, seed=5):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**63, size=n, dtype=np.uint64)
    ranks = rng.integers(0, NPARTS, size=n, dtype=np.uint64)
    return keys, ranks


def test_ablation_aux_backends(report, benchmark):
    rows = []
    metrics = {}
    for backend, n in (
        ("exact", 50_000),
        ("bloom", 50_000),
        ("cuckoo", 50_000),
        ("quotient", 4_000),
    ):
        keys, ranks = _workload(n)
        t = make_aux_table(backend, NPARTS, capacity_hint=n, seed=2)
        t.insert_many(keys, ranks)
        sample = keys[: 200 if backend == "quotient" else 600]
        amp = float(t.candidate_counts(sample).mean())
        metrics[backend] = (t.bytes_per_key, amp)
        rows.append([backend, n, round(t.bytes_per_key, 2), round(amp, 2)])
    text, data = table_artifact(
        ["backend", "keys", "bytes/key", "partitions/query"],
        rows,
        title=f"Ablation — aux-table backends at N={NPARTS} partitions",
    )
    report(text, name="ablation_backend", data=data)
    # Exact: 12 B, amplification 1.  Compact backends: ≤ ~2.5 B with small
    # amplification; cuckoo needs no exhaustive probing (its amp ≈ flat 2).
    assert metrics["exact"] == (12.0, 1.0)
    for backend in ("bloom", "cuckoo", "quotient"):
        b, a = metrics[backend]
        assert b < 3.5, backend
        assert a < 4.0, backend
    keys, ranks = _workload(20_000, seed=6)
    t = make_aux_table("cuckoo", NPARTS, capacity_hint=20_000)
    t.insert_many(keys, ranks)
    benchmark(lambda: t.candidate_counts(keys[:500]))
