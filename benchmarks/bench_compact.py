"""Read amplification under epoch growth: the compaction gate.

An uncompacted `MultiEpochStore` fans every cross-epoch lookup out over
all live epochs, so per-query device reads grow linearly with the number
of dumps — the scalability bug online compaction exists to fix.  This
harness grows two identical datasets to **10× the single-epoch baseline**:

* the *uncompacted* arm keeps every dump as its own live epoch;
* the *compacted* arm runs the size-tiered `CompactionPolicy` after every
  commit, merging under live serving traffic.

Throughout the growth, two warm `QueryService` tiers (one per arm) answer
the same `ANY_EPOCH` probes and every response is asserted byte-identical
between arms and against ground truth — compaction under live traffic
changes where bytes live, never what a query answers (retired epoch ids
keep resolving; epoch-versioned caches invalidate on each swap).

The measurement is the *cold* read path — fresh readers per probe, no
warm caches to hide the fan-out — over keys drawn from the whole write
history (keys last written long ago are the ones that walk every epoch).

Gate, per format: at 10× growth, the compacted arm's mean device reads
per query and mean partitions searched per query are within **1.5×** of
the single-epoch baseline, while the uncompacted arm is reported (and
sanity-checked to be strictly worse).

``REPRO_COMPACT_SMOKE=1`` shrinks records/probes for CI.
"""

import asyncio
import os
import time

import numpy as np

from repro.analysis.reporting import table_artifact
from repro.core.compact import CompactionPolicy
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import KVBatch
from repro.core.multiepoch import MultiEpochStore
from repro.serve import ANY_EPOCH, NOT_FOUND, OK, QueryService
from repro.storage.compact import first_occurrence

SMOKE = os.environ.get("REPRO_COMPACT_SMOKE", "0") == "1"

NRANKS = 4 if SMOKE else 8
RECORDS_PER_RANK = 60 if SMOKE else 250  # per epoch
EPOCHS = 10  # the 10x growth is the point; scale records, not depth
OVERLAP = 0.3  # fraction of each dump rewriting older keys
PROBES = 96 if SMOKE else 384  # cold lookups per measurement
SERVE_PROBES = 24 if SMOKE else 64  # per-epoch served equivalence sample
VALUE_BYTES = 24
SEED = 47
GATE = 1.5


def _epoch_batches(rng, prev):
    """One dump's per-rank batches; unique keys within the epoch, a slice
    rewriting earlier keys so compaction has duplicates to fold."""
    keys = np.unique(
        rng.integers(0, 2**63, size=RECORDS_PER_RANK * NRANKS, dtype=np.uint64)
    )
    if prev is not None:
        k = int(keys.size * OVERLAP)
        keys[:k] = rng.choice(prev, size=k, replace=False)
        keys = np.unique(keys)
    rng.shuffle(keys)
    values = rng.integers(0, 256, size=(keys.size, VALUE_BYTES), dtype=np.uint8)
    splits = np.array_split(np.arange(keys.size), NRANKS)
    return [KVBatch(keys[s], values[s]) for s in splits], keys


def _cold_probe(store, keys):
    """Mean (device reads, partitions searched) per cold lookup."""
    reads = searched = 0
    for k in keys:
        _, _, stats = store.lookup(int(k), cached=False)
        reads += stats.reads
        searched += stats.partitions_searched
    return reads / keys.size, searched / keys.size


async def _grow_and_serve(fmt):
    """Grow both arms to EPOCHS dumps under live serving.

    Returns per-arm measurements plus the single-epoch baseline.
    """
    # Aggressive tier: every commit beyond the first triggers a full
    # re-merge, so the live epoch count stays at one between dumps — the
    # steady state whose read cost the gate compares against baseline.
    compacted = MultiEpochStore(
        nranks=NRANKS,
        fmt=fmt,
        value_bytes=VALUE_BYTES,
        seed=SEED,
        compaction=CompactionPolicy(max_live_epochs=2, merge_factor=EPOCHS + 1),
    )
    uncompacted = MultiEpochStore(
        nranks=NRANKS, fmt=fmt, value_bytes=VALUE_BYTES, seed=SEED
    )
    rng = np.random.default_rng(SEED)
    truth: dict[int, bytes] = {}
    prev = None
    baseline = None
    served = 0

    async with QueryService(
        compacted, max_inflight=4096, queue_high_watermark=4096
    ) as svc_c, QueryService(
        uncompacted, max_inflight=4096, queue_high_watermark=4096
    ) as svc_u:
        for epoch in range(EPOCHS):
            batches, keys = _epoch_batches(rng, prev)
            for b in batches:
                for i, k in enumerate(b.keys):
                    truth[int(k)] = b.value_of(i)
            compacted.write_epoch(batches)
            uncompacted.write_epoch(batches)
            prev = np.fromiter(truth, dtype=np.uint64)
            if epoch == 0:
                baseline = _cold_probe(uncompacted, keys[:PROBES])

            # Live-traffic equivalence: same ANY_EPOCH probes through both
            # warm services (plus one guaranteed miss), byte-compared.
            sample = rng.choice(prev, size=SERVE_PROBES, replace=False)
            for k in list(sample) + [1]:
                rc, ru = await asyncio.gather(
                    svc_c.get(int(k), epoch=ANY_EPOCH),
                    svc_u.get(int(k), epoch=ANY_EPOCH),
                )
                assert rc.status == ru.status, (fmt.name, k, rc, ru)
                assert rc.value == ru.value == truth.get(int(k)), (
                    f"{fmt.name}: served answers diverged for key {k}"
                )
                assert rc.status in (OK, NOT_FOUND)
                served += 1

    probe_keys = rng.choice(
        np.fromiter(truth, dtype=np.uint64), size=PROBES, replace=False
    )
    t0 = time.perf_counter()
    cold_c = _cold_probe(compacted, probe_keys)
    t_c = time.perf_counter() - t0
    t0 = time.perf_counter()
    cold_u = _cold_probe(uncompacted, probe_keys)
    t_u = time.perf_counter() - t0

    stats = {
        "baseline": baseline,
        "compacted": cold_c,
        "uncompacted": cold_u,
        "lookups_per_s": (PROBES / t_c, PROBES / t_u),
        "live_epochs": (len(compacted.epochs), len(uncompacted.epochs)),
        "compactions": compacted.compactions,
        "served_checked": served,
        "records": len(truth),
    }
    compacted.close()
    uncompacted.close()
    return stats


def test_bench_compact(report, benchmark):
    rows, data_rows = [], []
    amps = {}

    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        s = asyncio.run(_grow_and_serve(fmt))
        base_reads, base_parts = s["baseline"]
        for arm, (reads, parts), qps, live in (
            ("compacted", s["compacted"], s["lookups_per_s"][0], s["live_epochs"][0]),
            ("uncompacted", s["uncompacted"], s["lookups_per_s"][1], s["live_epochs"][1]),
        ):
            read_amp = reads / base_reads
            part_amp = parts / max(base_parts, 1e-9)
            if arm == "compacted":
                amps[fmt.name] = (read_amp, part_amp)
            rows.append(
                [
                    fmt.name,
                    arm,
                    live,
                    f"{reads:.2f}",
                    f"{parts:.2f}",
                    f"{read_amp:.2f}x",
                ]
            )
            data_rows.append(
                {
                    "format": fmt.name,
                    "arm": arm,
                    "live_epochs": live,
                    "mean_device_reads": round(reads, 3),
                    "mean_partitions_searched": round(parts, 3),
                    "read_amplification": round(read_amp, 3),
                    "partitions_amplification": round(part_amp, 3),
                    "cold_lookups_per_s": round(qps, 1),
                }
            )
        # Sanity: the bug being fixed is real — the uncompacted walk costs
        # strictly more than the compacted one at 10x growth.
        assert s["uncompacted"][0] > s["compacted"][0], (
            f"{fmt.name}: compaction bought nothing "
            f"({s['uncompacted'][0]:.2f} vs {s['compacted'][0]:.2f} reads)"
        )
        assert s["compactions"] >= EPOCHS - 2
        assert s["served_checked"] > 0

    # The gate: bounded read amplification at 10x epoch growth.
    for name, (read_amp, part_amp) in amps.items():
        assert read_amp <= GATE, (
            f"{name}: compacted mean reads {read_amp:.2f}x baseline (gate {GATE}x)"
        )
        assert part_amp <= GATE, (
            f"{name}: compacted partitions searched {part_amp:.2f}x baseline "
            f"(gate {GATE}x)"
        )

    text, data = table_artifact(
        ["format", "arm", "live epochs", "reads/query", "parts/query", "amp vs 1 epoch"],
        rows,
        title=(
            f"Cold read cost after {EPOCHS} dumps — {NRANKS} ranks x "
            f"{RECORDS_PER_RANK} records/epoch, {int(OVERLAP * 100)}% overlap"
            f"{' [smoke]' if SMOKE else ''}"
        ),
    )
    data["rows_detailed"] = data_rows
    data["epochs"] = EPOCHS
    data["gate_amplification"] = GATE
    report(text, name="compact", data=data)

    # Representative kernel: the merge's winner selection (stable
    # first-occurrence over newest-first concatenated epoch chunks).
    rng = np.random.default_rng(SEED + 1)
    chunks = [
        rng.integers(0, 1 << 20, size=RECORDS_PER_RANK * NRANKS, dtype=np.uint64)
        for _ in range(4)
    ]
    merged_keys = np.concatenate(chunks)
    benchmark(lambda: first_occurrence(merged_keys))


# -- background compaction: the merge off the event loop --------------------

BG_EPOCHS = 6
BG_RECORDS = 500 if SMOKE else 4_000  # per rank per epoch: merge must outlast probes
BG_WINDOW = 240 if SMOKE else 600  # baseline latency samples
BG_MIN_DURING = 40 if SMOKE else 100  # samples required while the merge is out
BG_CONCURRENCY = 16
BG_P99_GATE = 1.5  # asserted only with a core to spare for the worker


async def _timed_window(svc, rng, universe, n, stop=None):
    """Serve ``n`` probes (or until ``stop`` is set) in small concurrent
    waves, timing each request individually.  Returns per-request ms."""
    lat = []

    async def one(k):
        t0 = time.perf_counter()
        r = await svc.get(int(k), epoch=ANY_EPOCH)
        lat.append((time.perf_counter() - t0) * 1e3)
        assert r.status in (OK, NOT_FOUND)

    while len(lat) < n and (stop is None or not stop.done()):
        wave = rng.choice(universe, size=BG_CONCURRENCY, replace=True)
        await asyncio.gather(*(one(k) for k in wave))
    return lat


async def _serve_during_merge(pool):
    """One filterkv store: measure served latency with no merge running,
    then again while `compact_in_background` crunches in a worker."""
    from repro.parallel import compact_in_background

    store = MultiEpochStore(
        nranks=NRANKS, fmt=FMT_FILTERKV, value_bytes=VALUE_BYTES, seed=SEED + 2
    )
    rng = np.random.default_rng(SEED + 2)
    truth: dict[int, bytes] = {}
    prev = None
    for _ in range(BG_EPOCHS):
        keys = np.unique(
            rng.integers(0, 2**63, size=BG_RECORDS * NRANKS, dtype=np.uint64)
        )
        if prev is not None:
            k = int(keys.size * OVERLAP)
            keys[:k] = rng.choice(prev, size=k, replace=False)
            keys = np.unique(keys)
        rng.shuffle(keys)
        values = rng.integers(0, 256, size=(keys.size, VALUE_BYTES), dtype=np.uint8)
        batches = [
            KVBatch(keys[s], values[s]) for s in np.array_split(np.arange(keys.size), NRANKS)
        ]
        for b in batches:
            for i, k in enumerate(b.keys):
                truth[int(k)] = b.value_of(i)
        store.write_epoch(batches)
        prev = np.fromiter(truth, dtype=np.uint64)
    universe = np.fromiter(truth, dtype=np.uint64)

    async with QueryService(
        store, max_inflight=4096, queue_high_watermark=4096, result_cache_entries=8
    ) as svc:
        await _timed_window(svc, rng, universe, BG_WINDOW // 2)  # warm readers
        base = await _timed_window(svc, rng, universe, BG_WINDOW)

        merge = asyncio.create_task(compact_in_background(store, pool))
        during = await _timed_window(svc, rng, universe, 10**9, stop=merge)
        report = await merge

        assert report is not None and report.source_epochs == list(range(BG_EPOCHS))
        assert store.epochs == [report.merged_epoch]
        # Post-swap correctness through the *same* warm service.
        sample = rng.choice(universe, size=SERVE_PROBES, replace=False)
        for k in sample:
            r = await svc.get(int(k), epoch=ANY_EPOCH)
            assert r.status == OK and r.value == truth[int(k)]

    store.close()
    return base, during, report


def test_bench_compact_background(report):
    """Serving latency must survive a live background merge.

    The merge runs in a pool worker over shared-memory source tables; the
    event loop only pays for prepare (pack) and publish (swap).  Gate:
    served p99 during the merge within 1.5x the no-merge baseline —
    asserted where a second core can host the worker, reported everywhere.
    """
    from repro.obs import MetricsRegistry as _Reg
    from repro.parallel import WorkerPool

    ncores = os.cpu_count() or 1
    with WorkerPool(workers=1, metrics=_Reg()) as pool:
        pool.warm()
        base, during, rep = asyncio.run(_serve_during_merge(pool))
        assert pool.stats()["worker_failures"] == 0

    assert len(during) >= BG_MIN_DURING, (
        f"merge finished after only {len(during)} served samples — "
        "grow BG_RECORDS so the gate measures a live merge"
    )
    p99_base = float(np.percentile(base, 99))
    p99_during = float(np.percentile(during, 99))
    ratio = p99_during / p99_base
    rows = [
        ["no merge", len(base), round(float(np.percentile(base, 50)), 3), round(p99_base, 3), ""],
        [
            "during merge",
            len(during),
            round(float(np.percentile(during, 50)), 3),
            round(p99_during, 3),
            round(ratio, 2),
        ],
    ]
    text, data = table_artifact(
        ["window", "samples", "p50 ms", "p99 ms", "p99 vs baseline"],
        rows,
        title=(
            f"Served latency under background compaction — filterkv, "
            f"{NRANKS} ranks x {BG_EPOCHS} epochs x {BG_RECORDS} records/rank, "
            f"{ncores} core(s){' [smoke]' if SMOKE else ''}"
        ),
    )
    data["rows_detailed"] = [
        {
            "window": "no_merge",
            "samples": len(base),
            "p50_ms": round(float(np.percentile(base, 50)), 4),
            "p99_ms": round(p99_base, 4),
        },
        {
            "window": "during_merge",
            "samples": len(during),
            "p50_ms": round(float(np.percentile(during, 50)), 4),
            "p99_ms": round(p99_during, 4),
            "p99_vs_baseline": round(ratio, 3),
        },
    ]
    data["cores"] = ncores
    data["merged_records"] = rep.records_out
    report(text, name="compact_background", data=data)

    if ncores >= 2:
        assert ratio <= BG_P99_GATE, (
            f"served p99 {ratio:.2f}x baseline during background merge "
            f"(gate {BG_P99_GATE}x on {ncores} cores)"
        )
