"""Ablation: direct all-to-all vs DeltaFS-style 3-hop shuffle routing.

The paper's substrate routes shuffle traffic through per-node
representatives.  This ablation executes both routing modes on real
pipelines and quantifies the trade: 3-hop collapses partially-filled
per-rank-pair batches into full node-pair aggregates (fewer wire RPCs —
exactly what slow manycore progress paths need) at the price of extra
node-local copies.
"""

import pytest

from repro.analysis.reporting import table_artifact
from repro.cluster import SimCluster
from repro.core.formats import FMT_FILTERKV


def _run(routing, nranks=32, ppn=4, records=2000):
    cluster = SimCluster(
        nranks=nranks,
        fmt=FMT_FILTERKV,
        value_bytes=56,
        routing=routing,
        ppn=ppn,
        records_hint=nranks * records,
        seed=12,
    )
    return cluster.run_epoch(records)


def test_ablation_routing(report, benchmark):
    rows = []
    stats = {}
    for routing in ("direct", "3hop"):
        st = _run(routing)
        stats[routing] = st
        rows.append(
            [
                routing,
                st.rpc_messages,
                st.local_messages,
                round(st.shuffle_bytes / max(1, st.rpc_messages)),
            ]
        )
    text, data = table_artifact(
        ["routing", "wire RPCs", "local msgs", "avg wire payload B"],
        rows,
        title="Ablation — shuffle routing (32 ranks × 4 per node, FilterKV)",
    )
    report(text, name="ablation_routing", data=data)
    d, t = stats["direct"], stats["3hop"]
    assert t.rpc_messages < d.rpc_messages  # fewer wire messages
    assert t.shuffle_bytes == d.shuffle_bytes  # identical payload bytes
    assert t.local_messages > d.local_messages  # paid in local hops
    # Aggregation fills the wire messages it does send.
    assert t.shuffle_bytes / t.rpc_messages > d.shuffle_bytes / d.rpc_messages
    benchmark(lambda: _run("3hop", nranks=8, records=500))


def test_ablation_routing_scaling(report, benchmark):
    """The message reduction grows with how *partial* per-pair batches are:
    fewer records per rank → bigger win for aggregation."""
    rows = []
    ratios = []
    for records in (500, 2000, 8000):
        d = _run("direct", records=records)
        t = _run("3hop", records=records)
        ratio = d.rpc_messages / t.rpc_messages
        ratios.append(ratio)
        rows.append([records, d.rpc_messages, t.rpc_messages, round(ratio, 2)])
    text, data = table_artifact(
        ["records/rank", "direct RPCs", "3hop RPCs", "reduction"],
        rows,
        title="Ablation — 3-hop advantage vs burst size",
    )
    report(text, name="ablation_routing_scaling", data=data)
    assert ratios[0] >= ratios[-1]  # small bursts benefit most
    assert ratios[0] > 2.0
    benchmark(lambda: _run("direct", nranks=8, records=500))
