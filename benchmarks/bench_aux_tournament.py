"""Aux-backend tournament: every registered backend, scored head-to-head.

The sealed key→rank set an epoch commits is exactly a static maplet, so
the aux table's backend is a per-epoch *choice*, not a format constant.
This bench runs the tournament the flush-time `AuxBackendPolicy` decides
analytically: every backend in `AUX_BACKENDS` builds the same key→rank
workload and is scored on

* **bits/key** — sealed index size (what the router tier must hold),
* **partitions/query** — amplification over present keys,
* **build time** — insert + finalize, per key,
* **bulk lookups/s** — `candidates_many` throughput,

under two query mixes: *uniform* (every present key once) and *zipfian*
(skewed repetition of present keys — the serving tier's distribution).
Space and amplification are distribution-free; the zipfian arm exists to
show lookup throughput holds up under the skew the serving bench uses.

Acceptance gates (the tentpole claims):

* the CSF backend's bits/key ≤ every *dynamic* filter backend (bloom,
  cuckoo, quotient) at equal-or-fewer partitions/query on the uniform
  workload, and
* `AuxBackendPolicy` ranks the CSF first for this workload, i.e. the
  flush-time tournament would pick it automatically.

``REPRO_AUX_SMOKE=1`` shrinks the key set for CI.  JSON rows carry
``name``/``config`` identity plus ``bits_per_key``/``partitions_per_query``
metric keys, which `scripts/check_bench_regress.py` gates lower-is-better.
"""

import os
import time

import numpy as np

from repro.analysis.reporting import table_artifact
from repro.core.auxtable import AUX_BACKENDS, AuxBackendPolicy, make_aux_table

SMOKE = os.environ.get("REPRO_AUX_SMOKE", "0") == "1"

NPARTS = 256
NKEYS = 4_000 if SMOKE else 50_000
# The scalar quotient filter can't take 50k inserts in reasonable time.
SCALE_OVERRIDE = {"quotient": 2_000 if SMOKE else 4_000}
DYNAMIC_BACKENDS = ("bloom", "cuckoo", "quotient")


def _workload(n, seed=5):
    rng = np.random.default_rng(seed)
    keys = rng.choice(np.arange(1, 8 * n, dtype=np.uint64), size=n, replace=False)
    ranks = rng.integers(0, NPARTS, size=n, dtype=np.uint64)
    return keys, ranks


def _zipf_queries(keys, n, seed=9, alpha=1.1):
    """Zipfian draws over the present-key population (rank-skewed)."""
    rng = np.random.default_rng(seed)
    idx = rng.zipf(alpha, size=4 * n) - 1
    idx = idx[idx < keys.size][:n]
    return keys[idx]


def _score(backend, keys, ranks, queries):
    t = make_aux_table(backend, NPARTS, capacity_hint=keys.size, seed=2)
    t0 = time.perf_counter()
    t.insert_many(keys, ranks)
    t.finalize()
    build_s = time.perf_counter() - t0
    t1 = time.perf_counter()
    counts, _ = t.candidates_many(queries)
    lookup_s = time.perf_counter() - t1
    return {
        "name": backend,
        "keys": int(keys.size),
        "bits_per_key": round(t.size_bytes * 8 / keys.size, 3),
        "partitions_per_query": round(float(counts.mean()), 3),
        "build_s_per_key_us": round(build_s / keys.size * 1e6, 3),
        "lookups_per_s": round(queries.size / max(lookup_s, 1e-9)),
    }


def test_aux_backend_tournament(report, benchmark):
    results = {}
    rows = []
    for dist in ("uniform", "zipfian"):
        for backend in sorted(AUX_BACKENDS):
            n = SCALE_OVERRIDE.get(backend, NKEYS)
            keys, ranks = _workload(n)
            queries = keys if dist == "uniform" else _zipf_queries(keys, n)
            r = _score(backend, keys, ranks, queries)
            r["config"] = dist
            results[(dist, backend)] = r
            rows.append(
                [
                    dist,
                    backend,
                    r["keys"],
                    r["bits_per_key"],
                    r["partitions_per_query"],
                    r["build_s_per_key_us"],
                    f"{r['lookups_per_s']:,}",
                ]
            )
    text, data = table_artifact(
        [
            "config",
            "name",
            "keys",
            "bits_per_key",
            "partitions_per_query",
            "build us/key",
            "lookups/s",
        ],
        rows,
        title=f"Aux-backend tournament at N={NPARTS} partitions"
        + (" (smoke scale)" if SMOKE else ""),
    )
    # Row dicts (not just table cells) go in the artifact so the regress
    # gate can match rows by name/config identity across runs.
    data["rows_detailed"] = [results[k] for k in sorted(results)]
    report(text, name="aux_tournament", data=data)

    # Gate 1: the CSF beats every dynamic filter on space without paying
    # for it in fan-out (present keys decode to exactly one partition).
    csf = results[("uniform", "csf")]
    for rival in DYNAMIC_BACKENDS:
        dyn = results[("uniform", rival)]
        assert csf["bits_per_key"] <= dyn["bits_per_key"], (rival, csf, dyn)
        assert csf["partitions_per_query"] <= dyn["partitions_per_query"], (rival, csf, dyn)
    # No false negatives anywhere: every present key finds ≥ 1 candidate.
    for r in results.values():
        assert r["partitions_per_query"] >= 1.0, r

    # Gate 2: the flush-time policy reaches the same verdict analytically —
    # the tournament winner is what write_epoch would seal.
    ranking = AuxBackendPolicy().rank_backends(NKEYS, NPARTS)
    assert ranking[0] == "csf", ranking

    # Timed kernel: bulk candidate resolution through the winner.
    keys, ranks = _workload(NKEYS)
    t = make_aux_table("csf", NPARTS, capacity_hint=NKEYS, seed=2)
    t.insert_many(keys, ranks)
    t.finalize()
    benchmark(lambda: t.candidates_many(keys[:2000]))
