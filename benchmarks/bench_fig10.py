"""Fig. 10: VPIC macrobenchmark on Trinity — slowdown vs storage bandwidth.

4096 processes dump ~2 TB of 64-byte particles per timestep to a
burst-buffer allocation whose size sets the job's storage bandwidth
(compute:storage ratios 32:1 → 12:1 ≈ 11 → 28 GB/s).  Panel (a) compares
the three formats on KNL; panel (b) swaps GNI for TCP under FilterKV.

The VPIC substrate generates the records (verifying sizes/migration); the
write phase is evaluated on the Trinity-KNL machine model.
"""

import pytest

from repro.analysis.reporting import percent, table_artifact
from repro.apps.vpic import PARTICLE_BYTES, VPICSimulation
from repro.cluster import TRINITY_KNL
from repro.cluster.burstbuffer import FIG10_RATIOS, BurstBufferAllocation
from repro.core.costmodel import WriteRunConfig, model_write_phase
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV

NPROCS = 4096
COMPUTE_NODES = NPROCS // TRINITY_KNL.ppn
DATA_PER_PROC = 2e12 / NPROCS  # ~2 TB per timestep across the job


def _cfg(fmt, per_node_bw, transport="gni"):
    machine = TRINITY_KNL.with_storage_bandwidth(per_node_bw)
    if transport != "gni":
        machine = machine.with_transport(transport)
    return WriteRunConfig(
        fmt=fmt,
        machine=machine,
        nprocs=NPROCS,
        kv_bytes=PARTICLE_BYTES,
        data_per_proc=DATA_PER_PROC,
    )


def _allocs():
    return [BurstBufferAllocation(COMPUTE_NODES, r) for r in FIG10_RATIOS]


def test_fig10_workload_matches_paper(report, benchmark):
    """The VPIC substrate emits 64-byte records and real migration."""
    sim = VPICSimulation(nranks=32, particles_per_rank=2000, drift=0.12, seed=3)
    before = sim.owner_of()
    sim.step(5)
    frac = sim.migration_fraction(before)
    dumps = benchmark(sim.dump)
    assert all(b.record_bytes == 64 for b in dumps)
    text, data = table_artifact(
        ["ranks", "particles", "record bytes", "migrated since last dump"],
        [[32, sim.nparticles, 64, f"{frac * 100:.1f}%"]],
        title="Fig. 10 workload check — reduced VPIC dump properties",
    )
    report(text, name="fig10_workload", data=data)
    assert 0.02 < frac < 0.9


def test_fig10a_slowdown_vs_storage_bandwidth(report, benchmark):
    rows = []
    series = {f.name: [] for f in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV)}
    for alloc in _allocs():
        row = [
            f"{alloc.ratio:.0f}:1",
            f"{alloc.aggregate_bandwidth / 1e9:.0f}",
        ]
        for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
            s = model_write_phase(_cfg(fmt, alloc.bandwidth_per_compute_node)).slowdown
            series[fmt.name].append(s)
            row.append(percent(s))
        rows.append(row)
    text, data = table_artifact(
        ["comp:stor", "GB/s", "KNL-Base", "KNL-DataPtr", "KNL-FilterKV"],
        rows,
        title="Fig. 10a — VPIC write slowdown vs available storage bandwidth",
    )
    report(text, name="fig10a", data=data)
    base, dptr, fkv = series["base"], series["dataptr"], series["filterkv"]
    # Paper: higher storage bandwidth → partitioning overhead dominates.
    assert base[-1] > base[0] and fkv[-1] >= fkv[0]
    # At high storage bw FilterKV wins big (paper: up to 3.3× vs base,
    # 2.8× vs DataPtr).
    assert base[-1] / fkv[-1] > 2.5
    assert dptr[-1] / fkv[-1] > 1.5
    # At low storage bw the formats that write more data suffer (paper:
    # DataPtr/FilterKV "tend to perform worse than [base]").
    assert dptr[0] > base[0]
    # FilterKV beats DataPtr by up to ~2× at low bandwidth.
    assert dptr[0] / max(fkv[0], 1e-6) > 1.5
    benchmark(lambda: model_write_phase(_cfg(FMT_FILTERKV, 28e9 / COMPUTE_NODES)).slowdown)


def test_fig10b_tcp_vs_gni(report, benchmark):
    rows = []
    gap = {}
    for alloc in _allocs():
        bw = alloc.bandwidth_per_compute_node
        fkv_gni = model_write_phase(_cfg(FMT_FILTERKV, bw, "gni")).slowdown
        fkv_tcp = model_write_phase(_cfg(FMT_FILTERKV, bw, "tcp")).slowdown
        base_gni = model_write_phase(_cfg(FMT_BASE, bw, "gni")).slowdown
        base_tcp = model_write_phase(_cfg(FMT_BASE, bw, "tcp")).slowdown
        gap[alloc.ratio] = (fkv_tcp - fkv_gni, base_tcp - base_gni)
        rows.append(
            [
                f"{alloc.ratio:.0f}:1",
                f"{alloc.aggregate_bandwidth / 1e9:.0f}",
                percent(fkv_gni),
                percent(fkv_tcp),
                percent(base_gni),
                percent(base_tcp),
            ]
        )
    text, data = table_artifact(
        ["comp:stor", "GB/s", "FilterKV", "FilterKV-TCP", "Base", "Base-TCP"],
        rows,
        title="Fig. 10b — FilterKV on TCP vs GNI (base shown for contrast)",
    )
    report(text, name="fig10b", data=data)
    # Paper: FilterKV makes TCP "almost identical" to GNI; the base format
    # pays for the slower transport.
    for fkv_gap, base_gap in gap.values():
        assert fkv_gap <= base_gap + 1e-9
    assert max(g[0] for g in gap.values()) < 0.3
    assert max(g[1] for g in gap.values()) > 0.5
    benchmark(
        lambda: model_write_phase(_cfg(FMT_FILTERKV, 28e9 / COMPUTE_NODES, "tcp")).slowdown
    )
