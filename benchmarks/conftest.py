"""Shared plumbing for the reproduction benchmarks.

Every ``bench_*.py`` regenerates one table or figure from the paper: it
prints the same rows/series the paper reports and saves them under
``benchmarks/results/`` (EXPERIMENTS.md embeds those files).  The pytest-
benchmark fixture times each harness's representative kernel so
``pytest benchmarks/ --benchmark-only`` exercises everything.

Machine-readable mode: ``pytest benchmarks/ --json`` additionally writes
``results/<name>.json`` for every experiment that hands the ``report``
fixture structured data (the `table_artifact` helper returns both the
rendered text and that payload).  The JSON carries the versioned
``repro.bench/v1`` envelope so trajectory tooling can diff runs.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run Fig. 7 at the paper's full 16 M keys
  (default scales to 1 M; per-key metrics are scale-independent).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from repro.analysis.reporting import bench_document

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


def pytest_addoption(parser):
    parser.addoption(
        "--json",
        action="store_true",
        dest="repro_json",
        help="also write results/<name>.json for experiments reporting structured data",
    )


@pytest.fixture
def report(request):
    """Save (and echo) one experiment's rendered output.

    ``data`` is the machine-readable twin of ``text`` (usually from
    `repro.analysis.reporting.table_artifact`); it is serialized to
    ``results/<name>.json`` when the run was started with ``--json``.
    """
    want_json = request.config.getoption("repro_json", False)

    def _save(text: str, name: str | None = None, data: dict | None = None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        fname = name or request.node.name.replace("[", "_").replace("]", "")
        (RESULTS_DIR / f"{fname}.txt").write_text(text + "\n")
        if want_json and data is not None:
            doc = bench_document(fname, data)
            (RESULTS_DIR / f"{fname}.json").write_text(
                json.dumps(doc, indent=2, sort_keys=True) + "\n"
            )
        print("\n" + text)

    return _save
