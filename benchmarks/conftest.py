"""Shared plumbing for the reproduction benchmarks.

Every ``bench_*.py`` regenerates one table or figure from the paper: it
prints the same rows/series the paper reports and saves them under
``benchmarks/results/`` (EXPERIMENTS.md embeds those files).  The pytest-
benchmark fixture times each harness's representative kernel so
``pytest benchmarks/ --benchmark-only`` exercises everything.

Environment knobs:

* ``REPRO_BENCH_FULL=1`` — run Fig. 7 at the paper's full 16 M keys
  (default scales to 1 M; per-key metrics are scale-independent).
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_BENCH_FULL", "0") == "1"


@pytest.fixture
def report(request):
    """Save (and echo) one experiment's rendered output."""

    def _save(text: str, name: str | None = None) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        fname = name or request.node.name.replace("[", "_").replace("]", "")
        (RESULTS_DIR / f"{fname}.txt").write_text(text + "\n")
        print("\n" + text)

    return _save
