"""Ingestion throughput: bulk (vectorized) pipeline vs the scalar reference.

The write path (Fig. 3) ships batches, decodes them, and persists sorted
tables.  PR 2 vectorized that hot path end to end — ``add_many`` /
``append_many`` bulk APIs on the memtable, value log, and SSTable writer,
NumPy-native encode/decode in the writer/receiver states — with the old
per-record loops kept behind ``bulk=False`` as the scalar reference.

This bench measures end-to-end epoch ingest (generate → partition →
shuffle → persist) for **filterkv at 64 ranks** in two aux-table regimes:

* ``provisioned`` — aux capacity hint gives the first cuckoo table ~2×
  headroom, so eviction walks are rare and the measurement isolates the
  pipeline itself; writer memory is bounded (§V-A), so the timed path
  includes memtable spills and the flattening merge.  This is where the
  bulk path's speedup shows.
* ``saturated`` — the default hint puts the first table at the chained
  scheme's ~95 % design load; random-walk evictions (a scalar cost both
  modes share) then bound the achievable ratio.  Reported for honesty;
  the cuckoo ablations study that regime on its own.

The bulk arm also enables ``defer_aux``: the aux table is built in one
arrival-order insert at epoch end (the mappings are immutable once the
burst finishes) instead of per envelope.  The chained cuckoo sizes
overflow tables from the pending batch, so the deferred build chains
fewer, larger tables — a different *layout* with identical contents,
which is why aux blobs are compared by key count rather than bytes.
``defer_aux`` is off by default in the library: the streaming build is
the paper-faithful one and keeps bulk and scalar fully byte-identical
(CI's equivalence smoke asserts exactly that).

Correctness gates, asserted on the *same* runs that produce the timings:
every persisted SSTable, value log, and run extent byte-identical between
bulk and scalar, equal aux key counts, and the wire-format invariants
(filterkv ships 8 B/record, dataptr 16 B/record).

``REPRO_INGEST_SMOKE=1`` shrinks the dataset (and relaxes the absolute
speedup gates) for CI.
"""

import gc
import os
import time

import numpy as np

from repro.analysis.reporting import table_artifact
from repro.cluster.simcluster import SimCluster
from repro.core.formats import FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.obs import MetricsRegistry
from repro.storage.memtable import MemTable

NRANKS = 64
VALUE_BYTES = 56
SEED = 11

# ``REPRO_INGEST_SMOKE=1`` shrinks the dataset for CI (and relaxes the
# absolute speedup gates — at smoke scale fixed overheads eat into the
# bulk path's margin; the full-scale gates still apply locally).
SMOKE = os.environ.get("REPRO_INGEST_SMOKE", "0") == "1"
PROVISIONED_RECORDS = 6_000 if SMOKE else 32_000
SATURATED_RECORDS = 1_500 if SMOKE else 4_000
PROVISIONED_GATE = 3.0 if SMOKE else 5.0
SATURATED_GATE = 1.2 if SMOKE else 1.5


def _run(fmt, records_per_rank, bulk, hint_mult=1.0, spill=None):
    cluster = SimCluster(
        nranks=NRANKS,
        fmt=fmt,
        value_bytes=VALUE_BYTES,
        records_hint=int(NRANKS * records_per_rank * hint_mult),
        seed=SEED,
        bulk=bulk,
        defer_aux=bulk,  # bulk arm: one-shot aux build at epoch end
        spill_budget_bytes=spill,
        metrics=MetricsRegistry(),
    )
    # Pre-generate the workload so the timed window is ingestion only
    # (partition → local writes → shuffle → persist), not data synthesis.
    rng = np.random.default_rng(cluster.seed)
    batches = []
    for rank in range(NRANKS):
        remaining = records_per_rank
        while remaining:
            n = min(4096, remaining)
            batches.append((rank, random_kv_batch(n, VALUE_BYTES, rng)))
            remaining -= n
    # Timing hygiene: collect garbage from previous runs, then keep the
    # collector out of the timed window (allocation-heavy runs otherwise
    # pay unbounded, heap-age-dependent collection pauses).
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for rank, batch in batches:
            cluster.put(rank, batch)
        cluster.finish_epoch()
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return elapsed, cluster.stats, cluster


def _extents(cluster, skip_aux=False):
    dev = cluster.device
    out = {}
    for name in sorted(dev._files):
        if skip_aux and "aux" in name:
            continue
        f = dev.open(name)
        out[name] = f.read(0, f.size)
    return out


def _assert_equivalent(bulk_run, scalar_run, fmt):
    """Bulk and scalar paths must persist byte-identical state."""
    _, sb, cb = bulk_run
    _, ss, cs = scalar_run
    assert sb.records == ss.records
    assert sb.rpc_messages == ss.rpc_messages
    assert sb.shuffle_bytes == ss.shuffle_bytes
    assert sb.local_storage_bytes == ss.local_storage_bytes
    skip_aux = fmt.name == "filterkv"
    eb, es = _extents(cb, skip_aux), _extents(cs, skip_aux)
    assert eb.keys() == es.keys()
    mismatched = [n for n in eb if eb[n] != es[n]]
    assert not mismatched, f"extents differ between bulk and scalar: {mismatched}"
    if skip_aux:
        # defer_aux gives a different (equal-content) aux layout; compare
        # the contents — every mapping present on both sides.
        for rb, rs in zip(cb.receivers, cs.receivers):
            assert len(rb.aux) == len(rs.aux)


def test_bench_ingest(report, benchmark):
    rows = []
    data_rows = []
    speedups = {}

    # filterkv at 64 ranks: the acceptance configuration.  The provisioned
    # regime also bounds writer memory (the paper's §V-A buffering), so
    # the timed path covers memtable spills and the flattening merge.
    for regime, recs, hint_mult, spill in (
        ("provisioned", PROVISIONED_RECORDS, 2.0, 262_144),
        ("saturated", SATURATED_RECORDS, 1.0, None),
    ):
        _run(FMT_FILTERKV, 1_000, bulk=True, hint_mult=hint_mult)  # warmup
        bulk_run = min(
            (
                _run(FMT_FILTERKV, recs, bulk=True, hint_mult=hint_mult, spill=spill)
                for _ in range(2)
            ),
            key=lambda r: r[0],
        )
        scalar_run = _run(FMT_FILTERKV, recs, bulk=False, hint_mult=hint_mult, spill=spill)
        tb, sb, _ = bulk_run
        ts, _, _ = scalar_run
        _assert_equivalent(bulk_run, scalar_run, FMT_FILTERKV)
        # filterkv ships keys only: 8 B per record crosses the transport
        # (self-destined envelopes included; `shuffle_bytes` counts only
        # the wire subset).
        wire = bulk_run[2].metrics.total("pipeline.wire_bytes")
        assert wire == sb.records * 8
        speedups[regime] = ts / tb
        for mode, t in (("bulk", tb), ("scalar", ts)):
            rows.append(
                [
                    f"filterkv/{regime}",
                    mode,
                    sb.records,
                    round(t, 3),
                    f"{sb.records / t:,.0f}",
                    round(ts / tb, 2) if mode == "bulk" else "",
                ]
            )
            data_rows.append(
                {
                    "config": f"filterkv/{regime}",
                    "mode": mode,
                    "records": sb.records,
                    "seconds": round(t, 4),
                    "records_per_sec": round(sb.records / t, 1),
                    "speedup": round(ts / tb, 3),
                    "wire_bytes_per_record": wire / sb.records,
                }
            )

    # dataptr wire invariant + full byte-identity (no aux table involved).
    bulk_run = _run(FMT_DATAPTR, 2_000, bulk=True)
    scalar_run = _run(FMT_DATAPTR, 2_000, bulk=False)
    _assert_equivalent(bulk_run, scalar_run, FMT_DATAPTR)
    sb = bulk_run[1]
    wire = bulk_run[2].metrics.total("pipeline.wire_bytes")
    assert wire == sb.records * 16  # key u64 + vlog offset u64
    data_rows.append(
        {
            "config": "dataptr/equivalence",
            "mode": "both",
            "records": sb.records,
            "seconds": None,
            "records_per_sec": None,
            "speedup": None,
            "wire_bytes_per_record": wire / sb.records,
        }
    )

    text, data = table_artifact(
        ["config", "mode", "records", "seconds", "records/s", "speedup"],
        rows,
        title=f"Ingest throughput — bulk vs scalar pipeline, {NRANKS} ranks"
        f"{' [smoke]' if SMOKE else ''}",
    )
    data["rows_detailed"] = data_rows
    report(text, name="ingest", data=data)

    # The vectorized pipeline must beat the pre-PR per-record reference by
    # a wide margin where the aux structure isn't the bottleneck, and must
    # never lose even at the cuckoo chain's design load.
    assert speedups["provisioned"] >= PROVISIONED_GATE, speedups
    assert speedups["saturated"] >= SATURATED_GATE, speedups

    # Representative kernel: one bulk memtable fill at envelope scale.
    keys = np.arange(16_000, dtype=np.uint64)
    values = np.zeros((16_000, VALUE_BYTES), dtype=np.uint8)
    benchmark(lambda: MemTable(1 << 30).add_many(keys, values))


# -- multi-core ingest: process-pool rank pipelines ------------------------

PARALLEL_NRANKS = 8
PARALLEL_RECORDS = 1_500 if SMOKE else 8_000
PARALLEL_WORKERS = (1, 2) if SMOKE else (1, 2, 4, 8)
PARALLEL_GATE = 3.0  # asserted only where the hardware can express it


def _run_epoch(parallel, pool, records_per_rank):
    """One full epoch (put × ranks → finish) through either execution path."""
    reg = MetricsRegistry()
    cluster = SimCluster(
        nranks=PARALLEL_NRANKS,
        fmt=FMT_FILTERKV,
        value_bytes=VALUE_BYTES,
        records_hint=int(PARALLEL_NRANKS * records_per_rank * 2.0),  # provisioned
        seed=SEED,
        metrics=reg,
        parallel=parallel,
        pool=pool,
    )
    rng = np.random.default_rng(cluster.seed)
    batches = []
    for rank in range(PARALLEL_NRANKS):
        remaining = records_per_rank
        while remaining:
            n = min(4096, remaining)
            batches.append((rank, random_kv_batch(n, VALUE_BYTES, rng)))
            remaining -= n
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for rank, batch in batches:
            cluster.put(rank, batch)
        cluster.finish_epoch()
        elapsed = time.perf_counter() - t0
    finally:
        gc.enable()
    return elapsed, cluster, reg


def _registry_counters(reg):
    return {
        (name, labels): inst.value
        for name, labels, inst in reg.series()
        if inst.kind == "counter" and inst.value != 0
    }


def test_bench_ingest_parallel(report):
    """Process-pool ingest: byte-identical to in-process, scaling reported.

    Every parallel run is checked against the serial oracle — extent
    bytes, ClusterStats, device counters, and the merged metric registry
    must all be *equal*, not just close — before any timing is reported.
    The ≥3x wall-clock gate applies at 8 workers on hardware with 8+
    cores; on smaller machines the scaling rows are reported unguarded
    (process parallelism cannot beat the core count).
    """
    from repro.parallel import WorkerPool

    ncores = os.cpu_count() or 1
    serial_t, serial_cluster, serial_reg = _run_epoch("off", None, PARALLEL_RECORDS)
    ser_extents = _extents(serial_cluster)
    ser_counters = _registry_counters(serial_reg)

    rows, data_rows = [], []
    rows.append(["serial", "-", round(serial_t, 3), f"{serial_cluster.stats.records / serial_t:,.0f}", ""])
    data_rows.append(
        {
            "mode": "serial",
            "workers": 0,
            "seconds": round(serial_t, 4),
            "records_per_sec": round(serial_cluster.stats.records / serial_t, 1),
            "parallel_x": None,
        }
    )
    speedup_by_workers = {}
    for nworkers in PARALLEL_WORKERS:
        with WorkerPool(workers=nworkers, metrics=MetricsRegistry()) as pool:
            pool.warm()  # spawn cost amortizes across epochs; keep it untimed
            par_t, par_cluster, par_reg = _run_epoch("process", pool, PARALLEL_RECORDS)
            assert pool.stats()["worker_failures"] == 0
        par_extents = _extents(par_cluster)
        assert par_extents.keys() == ser_extents.keys()
        mismatched = [n for n in par_extents if par_extents[n] != ser_extents[n]]
        assert not mismatched, f"parallel ingest diverged: {mismatched}"
        assert par_cluster.stats == serial_cluster.stats
        assert _registry_counters(par_reg) == ser_counters
        assert par_cluster.device.counters.writes == serial_cluster.device.counters.writes
        assert (
            par_cluster.device.counters.bytes_written
            == serial_cluster.device.counters.bytes_written
        )
        speedup_by_workers[nworkers] = serial_t / par_t
        rows.append(
            [
                "process",
                nworkers,
                round(par_t, 3),
                f"{par_cluster.stats.records / par_t:,.0f}",
                round(serial_t / par_t, 2),
            ]
        )
        data_rows.append(
            {
                "mode": "process",
                "workers": nworkers,
                "seconds": round(par_t, 4),
                "records_per_sec": round(par_cluster.stats.records / par_t, 1),
                "parallel_x": round(serial_t / par_t, 3),
            }
        )

    text, data = table_artifact(
        ["mode", "workers", "seconds", "records/s", "vs serial"],
        rows,
        title=(
            f"Parallel ingest scaling — filterkv, {PARALLEL_NRANKS} ranks x "
            f"{PARALLEL_RECORDS} records, {ncores} core(s)"
            f"{' [smoke]' if SMOKE else ''}"
        ),
    )
    data["rows_detailed"] = data_rows
    data["cores"] = ncores
    data["equivalent"] = True  # asserted above, byte-for-byte
    report(text, name="ingest_parallel", data=data)

    # The acceptance gate needs 8 cores to be physically expressible.
    if ncores >= 8 and 8 in speedup_by_workers:
        assert speedup_by_workers[8] >= PARALLEL_GATE, (
            f"8-worker ingest only {speedup_by_workers[8]:.2f}x serial "
            f"(need {PARALLEL_GATE}x on {ncores} cores)"
        )
