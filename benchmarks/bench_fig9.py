"""Fig. 9: write slowdown and RPC counts vs KV size (16–192 bytes).

256 processes on 64 Narwhal nodes; keys fixed at 8 bytes; total raw data
per process fixed at 960 MB, so smaller KV pairs mean more records and
proportionally more index overhead — the regime where FilterKV's compact
pointers matter most (§V-A: "the advantage is most critical when KV size
is between 32 and 64 bytes").
"""

import pytest

from repro.analysis.reporting import percent, table_artifact
from repro.cluster import NARWHAL
from repro.core.costmodel import WriteRunConfig, model_write_phase
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV

FORMATS = (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV)
KV_SIZES = (16, 32, 48, 64, 80, 96, 192)
NPROCS = 256


def _cfg(fmt, kv, resid):
    return WriteRunConfig(
        fmt=fmt,
        machine=NARWHAL,
        nprocs=NPROCS,
        kv_bytes=kv,
        data_per_proc=960e6,
        residual_fraction=resid,
    )


def test_fig9a_rpc_messages(report, benchmark):
    rows = []
    for kv in KV_SIZES:
        row = [kv]
        for fmt in FORMATS:
            row.append(model_write_phase(_cfg(fmt, kv, 0.5)).rpc_messages_total)
        rows.append(row)
    text, data = table_artifact(
        ["KV bytes", "Fmt-Base", "Fmt-DataPtr", "Fmt-FilterKV"],
        rows,
        title="Fig. 9a — total RPC messages vs KV size (256 processes)",
    )
    report(text, name="fig9a", data=data)
    # Base message count is flat (ships everything); indirection counts
    # fall as records get bigger (fewer records per byte).
    base_first, base_last = rows[0][1], rows[-1][1]
    assert base_first == pytest.approx(base_last, rel=0.05)
    assert rows[0][3] > rows[-1][3]
    benchmark(lambda: model_write_phase(_cfg(FMT_BASE, 64, 0.5)))


@pytest.mark.parametrize("resid,panel", [(0.5, "fig9b"), (0.75, "fig9c")])
def test_fig9bc_write_slowdown(report, benchmark, resid, panel):
    rows = []
    series = {f.name: [] for f in FORMATS}
    for kv in KV_SIZES:
        row = [kv]
        for fmt in FORMATS:
            s = model_write_phase(_cfg(fmt, kv, resid)).slowdown
            series[fmt.name].append(s)
            row.append(percent(s))
        rows.append(row)
    text, data = table_artifact(
        ["KV bytes", "Fmt-Base", "Fmt-DataPtr", "Fmt-FilterKV"],
        rows,
        title=f"Fig. {panel[-2:]} — write slowdown vs KV size, {int(resid*100)}% residual bw",
    )
    report(text, name=panel, data=data)
    base, dptr, fkv = series["base"], series["dataptr"], series["filterkv"]
    # Paper shape: base ~flat in KV size; indirection formats improve with
    # KV size; FilterKV beats DataPtr everywhere, most at small KV.
    assert max(base) - min(base) < 0.25 * max(base)
    assert dptr[0] > dptr[-1] and fkv[0] > fkv[-1]
    for f, d in zip(fkv, dptr):
        assert f < d
    gap_small = dptr[0] - fkv[0]
    gap_large = dptr[-1] - fkv[-1]
    assert gap_small > gap_large  # advantage shrinks as KV grows (§V-A)
    benchmark(lambda: model_write_phase(_cfg(FMT_FILTERKV, 16, resid)).slowdown)
