"""Ablation: RPC batch size (§I's "trivial optimization", quantified).

The paper batches KV pairs into 16 KB RPCs — the largest eager payload GNI
supports.  This ablation sweeps the batch size to show (a) message counts
fall linearly, (b) the modeled write slowdown degrades sharply once
per-message CPU costs stop being amortized, and (c) past the eager limit
the gain flattens (bigger batches don't buy much).
"""

import pytest

from repro.analysis.reporting import percent, table_artifact
from repro.cluster import NARWHAL, SimCluster
from repro.core.costmodel import WriteRunConfig, model_write_phase
from repro.core.formats import FMT_BASE, FMT_FILTERKV

BATCHES = (1024, 4096, 16384, 65536)


def _cfg(fmt, batch):
    # 64 processes: small enough that the fat tree is not the bottleneck,
    # so per-message CPU costs are what batching has to amortize.
    return WriteRunConfig(
        fmt=fmt,
        machine=NARWHAL,
        nprocs=64,
        kv_bytes=64,
        data_per_proc=960e6,
        batch_bytes=batch,
        residual_fraction=0.5,
    )


def test_ablation_batch_size_model(report, benchmark):
    rows = []
    slowdowns = {}
    for batch in BATCHES:
        row = [batch]
        for fmt in (FMT_BASE, FMT_FILTERKV):
            r = model_write_phase(_cfg(fmt, batch))
            slowdowns[(batch, fmt.name)] = r.slowdown
            row.extend([r.rpc_messages_total, percent(r.slowdown)])
        rows.append(row)
    text, data = table_artifact(
        ["batch B", "base msgs", "base slow", "fkv msgs", "fkv slow"],
        rows,
        title="Ablation — RPC batch size (64 procs, 64 B KV, 50% residual)",
    )
    report(text, name="ablation_batch_model", data=data)
    # Message counts inversely proportional to batch size.
    assert rows[0][1] == pytest.approx(16 * rows[2][1], rel=0.01)
    # Slowdown never improves when batches shrink, and tiny batches hurt
    # the network-heavy base format outright (per-message CPU dominates).
    for fmt in ("base", "filterkv"):
        series = [slowdowns[(b, fmt)] for b in BATCHES]
        assert all(a >= b - 1e-9 for a, b in zip(series, series[1:]))
    assert slowdowns[(1024, "base")] > 1.2 * slowdowns[(16384, "base")]
    benchmark(lambda: model_write_phase(_cfg(FMT_FILTERKV, 16384)))


def test_ablation_batch_size_execution(report, benchmark):
    """Real pipelines: executed message counts track the batch size."""
    rows = []
    counts = []
    for batch in (2048, 8192, 32768):
        cluster = SimCluster(
            nranks=8, fmt=FMT_FILTERKV, value_bytes=56, batch_bytes=batch, seed=4
        )
        st = cluster.run_epoch(20_000)
        counts.append(st.rpc_messages)
        rows.append([batch, st.rpc_messages, round(st.shuffle_bytes / st.rpc_messages)])
    text, data = table_artifact(
        ["batch B", "messages", "avg payload B"],
        rows,
        title="Ablation — batch size, executed pipelines (8 ranks)",
    )
    report(text, name="ablation_batch_exec", data=data)
    assert counts[0] > counts[1] > counts[2]
    benchmark(
        lambda: SimCluster(
            nranks=4, fmt=FMT_FILTERKV, value_bytes=56, batch_bytes=4096, seed=4
        ).run_epoch(4000)
    )
