"""Ablation: Bloom budget — 4+log2(N) vs 4+1.44·log2(N) bits/key (§IV-C).

The paper tests 4+log2(N) bits/key (space parity with the cuckoo table)
and notes amplification keeps growing; budgeting 4+1.44·log2(N) instead
*bounds* amplification at the cost of extra space.  Both claims verified
analytically across the full partition sweep and empirically at 64 K.
"""

import math

import numpy as np

from repro.analysis.models import bloom_amplification
from repro.analysis.reporting import table_artifact
from repro.core.auxtable import BloomAuxTable


def test_ablation_bloom_budgets_analytic(report, benchmark):
    rows = []
    amp_1x, amp_144 = [], []
    for q in (10, 12, 16, 20, 24):
        n = 1 << q
        a1 = bloom_amplification(n, 4 + math.log2(n))
        a2 = bloom_amplification(n, 4 + 1.44 * math.log2(n))
        amp_1x.append(a1)
        amp_144.append(a2)
        rows.append(
            [
                f"{n:,}",
                round(a1, 2),
                round((4 + math.log2(n)) / 8, 2),
                round(a2, 2),
                round((4 + 1.44 * math.log2(n)) / 8, 2),
            ]
        )
    text, data = table_artifact(
        ["partitions", "amp @4+log2N", "B/key", "amp @4+1.44log2N", "B/key"],
        rows,
        title="Ablation — Bloom budget vs amplification (analytic)",
    )
    report(text, name="ablation_bloom_analytic", data=data)
    # 4+log2 N grows without bound; 4+1.44·log2 N stays flat (§IV-C).
    assert all(a < b for a, b in zip(amp_1x, amp_1x[1:]))
    assert max(amp_144) - min(amp_144) < 0.5
    benchmark(lambda: [bloom_amplification(1 << q, 4 + q) for q in range(10, 25)])


def test_ablation_bloom_budgets_empirical(report, benchmark):
    nparts, nkeys = 65_536, 200_000
    rng = np.random.default_rng(9)
    keys = rng.integers(0, 2**63, size=nkeys, dtype=np.uint64)
    ranks = rng.integers(0, nparts, size=nkeys, dtype=np.uint64)
    rows = []
    measured = {}
    for label, bpk in (
        ("4+log2N", 4 + math.log2(nparts)),
        ("4+1.44log2N", 4 + 1.44 * math.log2(nparts)),
    ):
        t = BloomAuxTable(nparts, capacity_hint=nkeys, bits_per_key=bpk, seed=1)
        t.insert_many(keys, ranks)
        amp = float(t.candidate_counts(keys[:300]).mean())
        measured[label] = amp
        analytic = bloom_amplification(nparts, bpk)
        rows.append([label, round(bpk / 8, 2), round(amp, 2), round(analytic, 2)])
    text, data = table_artifact(
        ["budget", "B/key", "measured amp", "analytic amp"],
        rows,
        title=f"Ablation — Bloom budgets, measured at N={nparts:,}",
    )
    report(text, name="ablation_bloom_empirical", data=data)
    assert measured["4+1.44log2N"] < measured["4+log2N"]
    assert measured["4+1.44log2N"] < 2.0
    sample = keys[:100]
    t = BloomAuxTable(nparts, capacity_hint=nkeys, seed=2)
    t.insert_many(keys, ranks)
    benchmark(lambda: t.candidate_counts(sample, exhaustive_limit=1))
