"""Fig. 7: query amplification and per-key space of the three index formats.

The paper generates 16 M random 8-byte keys, stores their indexing
information as exact pointers (Fmt-DataPtr), a Bloom filter at
4+log2(N) bits/key (Fmt-BF), and a partial-key cuckoo table with 4-bit
fingerprints (Fmt-Cuckoo), sweeping the partition count N from 1 K to
16 M.  Per-key metrics are scale-independent, so the default run uses 1 M
keys (``REPRO_BENCH_FULL=1`` restores 16 M).

Panel (a): average partitions returned per key.
Panel (b): index bytes per key, before and after Snappy compression.
"""

import numpy as np
import pytest

from conftest import FULL_SCALE
from repro.analysis.reporting import table_artifact
from repro.core.auxtable import BloomAuxTable, CuckooAuxTable, ExactAuxTable
from repro.storage.compression import compress

NKEYS = 16_000_000 if FULL_SCALE else 1_000_000
PARTITIONS = (1024, 4096, 65536, 1 << 20, 16_000_000)
QUERY_SAMPLE = 1000
COMPRESS_SAMPLE = 2 << 20  # compress a 2 MiB prefix; ratios are stable


def _workload():
    rng = np.random.default_rng(0xF17)
    keys = rng.integers(0, 2**63, size=NKEYS, dtype=np.uint64)
    return keys, rng


@pytest.fixture(scope="module")
def fig7_data():
    """Build all three index structures at every partition count."""
    keys, rng = _workload()
    out = {}
    for nparts in PARTITIONS:
        ranks = rng.integers(0, nparts, size=NKEYS, dtype=np.uint64)
        exact = ExactAuxTable(nparts)
        exact.insert_many(keys, ranks)
        bloom = BloomAuxTable(nparts, capacity_hint=NKEYS, seed=nparts)
        bloom.insert_many(keys, ranks)
        cuckoo = CuckooAuxTable(nparts, capacity_hint=NKEYS, fp_bits=4, seed=nparts)
        cuckoo.insert_many(keys, ranks)
        out[nparts] = (keys, exact, bloom, cuckoo)
    return out


def _ratio(table) -> float:
    blob = table.to_bytes()[:COMPRESS_SAMPLE]
    if not blob:
        return 1.0
    return len(compress(blob)) / len(blob)


def test_fig7a_query_amplification(report, benchmark, fig7_data):
    rows = []
    amps = {}
    for nparts in PARTITIONS:
        keys, exact, bloom, cuckoo = fig7_data[nparts]
        sample = keys[:QUERY_SAMPLE]
        # Exhaustive Bloom probing costs nparts tests per key; shrink the
        # key sample as N grows (the mean converges fast).
        bloom_sample = sample[: 400 if nparts > 16384 else QUERY_SAMPLE]
        a_exact = float(exact.candidate_counts(sample).mean())
        a_bloom = float(bloom.candidate_counts(bloom_sample).mean())
        a_cuckoo = float(cuckoo.candidate_counts(sample).mean())
        amps[nparts] = (a_exact, a_bloom, a_cuckoo)
        rows.append(
            [f"{nparts:,}", round(a_exact, 2), round(a_bloom, 2), round(a_cuckoo, 2)]
        )
    text, data = table_artifact(
        ["partitions", "Fmt-DataPtr", "Fmt-BF", "Fmt-Cuckoo"],
        rows,
        title=f"Fig. 7a — query amplification (partitions/query), {NKEYS:,} keys",
    )
    report(text, name="fig7a", data=data)
    # Paper shape: DataPtr pinned at 1; BF grows with N; Cuckoo flat ~2.
    assert all(amps[n][0] == pytest.approx(1.0, abs=0.01) for n in PARTITIONS)
    bf_series = [amps[n][1] for n in PARTITIONS]
    assert all(a < b for a, b in zip(bf_series, bf_series[1:]))
    ck_series = [amps[n][2] for n in PARTITIONS]
    assert max(ck_series) < 2.8
    assert max(ck_series) - min(ck_series) < 1.0
    keys, _, _, cuckoo = fig7_data[PARTITIONS[0]]
    benchmark(lambda: cuckoo.candidate_counts(keys[:512]))


def test_fig7b_space_overhead(report, benchmark, fig7_data):
    rows = []
    per_key = {}
    for nparts in PARTITIONS:
        _, exact, bloom, cuckoo = fig7_data[nparts]
        r_exact, r_bloom, r_cuckoo = _ratio(exact), _ratio(bloom), _ratio(cuckoo)
        e, b, c = exact.bytes_per_key, bloom.bytes_per_key, cuckoo.bytes_per_key
        per_key[nparts] = (e, b, c)
        rows.append(
            [
                f"{nparts:,}",
                round(e, 2),
                round(e * r_exact, 2),
                round(b, 2),
                round(b * r_bloom, 2),
                round(c, 2),
                round(c * r_cuckoo, 2),
            ]
        )
    text, data = table_artifact(
        [
            "partitions",
            "DataPtr",
            "DataPtr(compr)",
            "BF",
            "BF(compr)",
            "Cuckoo",
            "Cuckoo(compr)",
        ],
        rows,
        title=f"Fig. 7b — index bytes per key, {NKEYS:,} keys",
    )
    report(text, name="fig7b", data=data)
    for nparts in PARTITIONS:
        e, b, c = per_key[nparts]
        assert e == pytest.approx(12.0, abs=0.01)  # the 12-byte pointer
        assert b < 4.0 and c < 4.5  # both compact formats ~1.5-3.5 B
        assert b <= c + 0.5  # cuckoo leaks a little space vs BF (§IV-C)
    _, _, _, cuckoo = fig7_data[PARTITIONS[0]]
    benchmark(lambda: len(cuckoo.to_bytes()))


def test_fig7b_compression_cannot_save_dataptr(report, benchmark, fig7_data):
    """§IV-C: pointer entropy grows with N, so compression helps less and
    less — compact-by-construction beats compress-after-the-fact."""
    rows = []
    ratios = []
    for nparts in PARTITIONS:
        _, exact, _, _ = fig7_data[nparts]
        r = _ratio(exact)
        ratios.append(r)
        rows.append([f"{nparts:,}", round(12 * r, 2), round(r * 100, 1)])
    text, data = table_artifact(
        ["partitions", "DataPtr B/key after compr.", "ratio %"],
        rows,
        title="Fig. 7b detail — Snappy on 12-byte pointers vs partition count",
    )
    report(text, name="fig7b_compression", data=data)
    assert ratios[-1] > ratios[0]  # more partitions → more entropy → worse
    _, exact, _, _ = fig7_data[PARTITIONS[0]]
    blob = exact.to_bytes()[: 1 << 20]
    benchmark(lambda: compress(blob))
