"""Ablation: the membership-filter family at equal false-positive targets.

The paper's §VI surveys the filter design space; this ablation builds all
five implementations in this repo on one key set and compares bits/key,
measured false-positive rate, and probe structure — the raw material for
choosing an aux-table backend on a given platform.
"""

import numpy as np
import pytest

from repro.analysis.reporting import table_artifact
from repro.filters.blockedbloom import BlockedBloomFilter
from repro.filters.bloom import BloomFilter
from repro.filters.cuckoofilter import CuckooFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.xorfilter import XorFilter

NKEYS = 60_000
NPROBES = 200_000


def _keys(seed=21):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**62, size=NKEYS, dtype=np.uint64)
    probes = rng.integers(2**62, 2**63, size=NPROBES, dtype=np.uint64)
    return keys, probes


def test_ablation_filter_family(report, benchmark):
    keys, probes = _keys()
    rows = []
    measured = {}

    bloom = BloomFilter.from_bits_per_key(NKEYS, 12, seed=1)
    bloom.add_many(keys)
    blocked = BlockedBloomFilter.from_bits_per_key(NKEYS, 12, seed=1)
    blocked.add_many(keys)
    cuckoo = CuckooFilter(int(NKEYS * 1.05), fp_bits=12, seed=1)
    cuckoo.add_many(keys)
    xor = XorFilter(keys, fp_bits=12, seed=1)
    quotient = QuotientFilter(qbits=13, rbits=12, seed=1)
    nq = 6000
    for k in keys[:nq]:  # scalar inserts: reduced population, ~73 % load
        quotient.add(int(k))

    entries = [
        ("bloom", bloom, NKEYS, "k random lines"),
        ("blocked-bloom", blocked, NKEYS, "1 cache line"),
        ("cuckoo-filter", cuckoo, NKEYS, "2 buckets"),
        ("xor", xor, NKEYS, "3 slots, static"),
        ("quotient", quotient, nq, "1 cluster scan"),
    ]
    for name, f, population, probes_desc in entries:
        fpr = float(f.contains_many(probes).mean())
        measured[name] = fpr
        bits = f.size_bytes * 8 / population
        rows.append([name, round(bits, 2), f"{fpr * 100:.3f}%", probes_desc])
    text, data = table_artifact(
        ["filter", "bits/key", "measured fpr", "probe structure"],
        rows,
        title=f"Ablation — membership filters on {NKEYS:,} keys (12-bit budget class)",
    )
    report(text, name="ablation_filters", data=data)
    # All five in the same fpr regime, none with false negatives.
    for name, f, population, _ in entries:
        sample = keys[: min(2000, population)]
        assert f.contains_many(sample).all(), name
    assert all(fpr < 0.01 for fpr in measured.values())
    # Xor is the space champion for static sets *at equal fpr*: a Bloom
    # filter hitting xor's measured fpr would need 1.44·log2(1/fpr) bits.
    import math

    bloom_equiv_bits = 1.44 * math.log2(1.0 / max(measured["xor"], 1e-9))
    assert xor.bits_per_key < bloom_equiv_bits
    benchmark(lambda: bloom.contains_many(probes[:20_000]))
