"""Table I: Bloom bytes/key to bound partitions-per-query at 2 and 10.

Regenerates the paper's Table I from the closed-form Bloom math and
cross-checks the bound *empirically* by building a real Bloom aux table at
reduced scale and measuring partitions per query.
"""

import numpy as np

from repro.analysis.models import TABLE1_MACHINES, bloom_bytes_per_key_for_bound
from repro.analysis.reporting import table_artifact
from repro.core.auxtable import BloomAuxTable


def test_table1_budgets(report, benchmark):
    rows = []
    for m in TABLE1_MACHINES:
        rows.append(
            [
                m.rank,
                f"{m.name} ({m.organization})",
                f"{m.cores / 1000:.0f}K",
                round(m.b2(), 2),
                round(m.paper_b2, 2),
                round(m.b10(), 2),
                round(m.paper_b10, 2),
            ]
        )
    text, data = table_artifact(
        ["rank", "machine", "cores", "b2", "b2(paper)", "b10", "b10(paper)"],
        rows,
        title="Table I — Bloom filter bytes/key bounding partitions/query",
    )
    report(text, name="table1", data=data)
    benchmark(lambda: [bloom_bytes_per_key_for_bound(m.cores, 2) for m in TABLE1_MACHINES])


def test_table1_bound_holds_empirically(report, benchmark):
    """Build a real Bloom aux table at the b2 budget for a 4096-partition
    job and verify queries touch ≈2 partitions."""
    nparts, nkeys = 4096, 50_000
    budget_bytes = bloom_bytes_per_key_for_bound(nparts, 2)
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2**63, size=nkeys, dtype=np.uint64)
    ranks = rng.integers(0, nparts, size=nkeys, dtype=np.uint64)
    table = BloomAuxTable(nparts, capacity_hint=nkeys, bits_per_key=budget_bytes * 8)
    table.insert_many(keys, ranks)
    sample = keys[:256]
    amp = benchmark(lambda: table.candidate_counts(sample).mean())
    text, data = table_artifact(
        ["partitions", "budget B/key", "target bound", "measured partitions/query"],
        [[nparts, round(budget_bytes, 2), 2, round(float(amp), 2)]],
        title="Table I cross-check — empirical bound at the b2 budget",
    )
    report(text, name="table1_empirical", data=data)
    assert amp < 3.0  # the b2 budget must deliver ~2 partitions/query
