"""Fleet serving: shard scaling, router memory, and crash correctness.

Three gates over `repro.fleet` — the sharded serving tier that holds the
paper's aux tables one tier up (the router routes on rebuilt sealed aux
blobs; shards hold the data):

* **Shard scaling** — fleet QPS must scale **>= 2.5x** from 1 to 4
  shards on identical data.  This box is single-core, so the scaling
  mechanism is the honest single-core one: *aggregate cache capacity*.
  Every node runs the same bounded per-node caches (a result cache sized
  to ~30 % of the key universe, a one-entry reader cache), so a single
  node thrashes on a uniform workload while each of four shards serves a
  keyspace slice that fits its cache — the classic reason caching tiers
  shard at all.  A miss pays the real multi-epoch read amplification
  (cross-epoch probes newest-first over six epochs, reader reopens,
  aux-table candidates, value-log reads); a hit comes from the result
  cache.  Both arms get a deterministic full-coverage warmup (every key
  touched once) so the measured phase is steady state, byte-checked
  against ground truth, best-of-two runs per arm to damp scheduler
  noise.
* **Router memory** — the router's data-plane footprint is the rebuilt
  aux tables, nowhere near the data: resident aux bytes must stay within
  **2x** the summed sealed-blob bytes it pulled from the shards.
* **Failover correctness** — a seeded crash of one shard under live
  load, replica promotion, recovery, more live load: **zero wrong
  bytes** end to end, with failovers actually observed (shard caches are
  pinned tiny so cold reads must touch the downed device — epochs are
  immutable, so generous caches would hide the crash entirely).

``REPRO_FLEET_SMOKE=1`` shrinks the dataset and request counts for CI.
"""

import asyncio
import os

import numpy as np

from repro.analysis.reporting import table_artifact
from repro.core.kv import random_kv_batch
from repro.fleet import Fleet, FleetSpec
from repro.serve import ANY_EPOCH, KeySampler, run_load

SMOKE = os.environ.get("REPRO_FLEET_SMOKE", "0") == "1"

EPOCHS = 6
RECORDS = 1_000 if SMOKE else 2_500  # per epoch, fleet-wide
VALUE_BYTES = 64
NRANKS = 2
SEED = 3
# Per-node result cache as a fraction of the key universe: small enough
# that one node thrashes, large enough that a 1/4 keyspace slice fits.
CACHE_FRAC = 0.45
SCALE_REQUESTS = 2_000 if SMOKE else 4_000
FAILOVER_REQUESTS = 600 if SMOKE else 1_500
CONCURRENCY = 8

SCALING_GATE = 2.5
MEMORY_GATE = 2.0


def _build(nshards, rf, service_kwargs, router_kwargs=None, seed=SEED):
    spec = FleetSpec(
        nshards=nshards,
        rf=rf,
        nranks=NRANKS,
        value_bytes=VALUE_BYTES,
        seed=seed,
        service_kwargs=dict(service_kwargs),
        router_kwargs=dict(router_kwargs or {}),
    )
    fleet = Fleet(spec)
    rng = np.random.default_rng(seed)
    truth = {}
    for _ in range(EPOCHS):
        batch = random_kv_batch(RECORDS, VALUE_BYTES, rng)
        fleet.ingest(batch)
        truth.update((int(k), batch.value_of(i)) for i, k in enumerate(batch.keys))
    return fleet, truth


async def _warm_all(router, keys, concurrency=16):
    """Touch every key exactly once — deterministic full cache coverage,
    so a shard whose slice fits its cache is *fully* warm and a node
    whose universe doesn't fit reaches its honest LRU steady state."""
    cursor = iter(keys)

    async def worker():
        for k in cursor:
            await router.get(int(k), epoch=ANY_EPOCH)

    await asyncio.gather(*(worker() for _ in range(concurrency)))


def _scaling_arm(nshards):
    """Steady-state uniform closed-loop QPS through the router.

    rf=1 so per-shard data is exactly 1/N of the fleet's; every node gets
    the identical bounded caches, so what scales from 1 to 4 shards is
    aggregate cache capacity — per-node resources are held fixed.
    """
    nkeys = EPOCHS * RECORDS
    fleet, truth = _build(
        nshards,
        rf=1,
        service_kwargs=dict(
            result_cache_entries=max(1, int(CACHE_FRAC * nkeys)),
            table_cache_entries=1,
        ),
    )
    keys = np.fromiter(truth, dtype=np.int64)

    async def main():
        async with fleet:
            router = fleet.router
            await _warm_all(router, keys)
            best = None
            for rep in range(2):  # best-of-two: damp scheduler noise
                load = await run_load(
                    router,
                    KeySampler(keys, "uniform", seed=SEED + 2 + rep),
                    SCALE_REQUESTS,
                    mode="closed",
                    concurrency=CONCURRENCY,
                    epoch=ANY_EPOCH,
                    expected=truth,
                )
                assert load.incorrect == 0 and load.checked == SCALE_REQUESTS
                if best is None or load.qps > best.qps:
                    best = load
            stats = router.stats()
            mem = dict(
                blob_bytes=router.aux_blob_bytes,
                resident_bytes=router.aux_resident_bytes,
            )
            return best, stats, mem

    load, stats, mem = asyncio.run(main())
    data_bytes = nkeys * (8 + VALUE_BYTES)
    return load, stats, mem, data_bytes


def _failover_trial():
    """Crash -> promote -> recover under live load, byte-checked throughout.

    Per-phase sampler seeds: replaying one phase's hot keys into the next
    would let result caches absorb the crash.  Caches are pinned tiny for
    the same reason (see module docstring).
    """
    fleet, truth = _build(
        nshards=3,
        rf=2,
        service_kwargs=dict(result_cache_entries=16, table_cache_entries=1),
        router_kwargs=dict(backoff_s=0.0005, breaker_cooldown_s=30.0),
        seed=SEED + 9,
    )
    keys = np.fromiter(truth, dtype=np.int64)
    victim = 0

    def sampler(phase):
        return KeySampler(keys, "uniform", seed=SEED + 7919 * phase)

    async def phase_load(router, phase):
        return await run_load(
            router,
            sampler(phase),
            FAILOVER_REQUESTS,
            mode="closed",
            concurrency=CONCURRENCY,
            epoch=ANY_EPOCH,
            expected=truth,
        )

    async def main():
        async with fleet:
            router = fleet.router
            healthy = await phase_load(router, 0)
            fleet.crash_shard(victim)
            degraded = await phase_load(router, 1)
            mid = router.stats()
            await fleet.recover_shard(victim)
            recovered = await phase_load(router, 2)
            return healthy, degraded, recovered, mid, router.stats()

    return asyncio.run(main())


def test_bench_fleet(report, benchmark):
    rows, data = [], {}

    # Gate 1: QPS scales >= 2.5x from 1 to 4 shards.
    arm_data = []
    arms = {}
    for nshards in (1, 4):
        load, stats, mem, data_bytes = _scaling_arm(nshards)
        assert load.incorrect == 0 and load.checked == SCALE_REQUESTS
        assert stats["scatter"] == 0, "fresh views never scatter"
        arms[nshards] = (load, stats, mem, data_bytes)
        lat = load.latency_ms
        rows.append(
            [
                f"scale/{nshards}-shard",
                f"{load.qps:,.0f}",
                lat["p50"],
                lat["p95"],
                lat["p99"],
                "",
            ]
        )
        arm_data.append(
            {
                "arm": f"{nshards}-shard",
                "qps": round(load.qps, 1),
                "p50_ms": lat["p50"],
                "p95_ms": lat["p95"],
                "p99_ms": lat["p99"],
                "aux_routed": stats["aux_routed"],
            }
        )
    speedup = arms[4][0].qps / arms[1][0].qps
    assert speedup >= SCALING_GATE, (
        f"1->4 shard qps speedup only {speedup:.2f}x (need {SCALING_GATE}x): "
        f"{arms[1][0].qps:,.0f} -> {arms[4][0].qps:,.0f}"
    )
    rows.append(["scale/speedup", "", "", "", "", f"{speedup:.2f}x (gate {SCALING_GATE}x)"])

    # Gate 2: router memory is aux-sized — resident <= 2x sealed blobs.
    _, _, mem, data_bytes = arms[4]
    ratio = mem["resident_bytes"] / mem["blob_bytes"]
    assert ratio <= MEMORY_GATE, (
        f"router resident aux {mem['resident_bytes']} vs blobs "
        f"{mem['blob_bytes']}: {ratio:.2f}x (gate {MEMORY_GATE}x)"
    )
    assert mem["resident_bytes"] < data_bytes / 4, "router is hoarding data, not aux"
    rows.append(
        [
            "router/memory",
            "",
            "",
            "",
            "",
            f"{mem['resident_bytes']:,}B resident / {mem['blob_bytes']:,}B blobs "
            f"= {ratio:.2f}x (data {data_bytes:,}B)",
        ]
    )

    # Gate 3: zero wrong bytes through crash + promotion + recovery.
    healthy, degraded, recovered, mid_stats, end_stats = _failover_trial()
    for name, load in (("healthy", healthy), ("degraded", degraded), ("recovered", recovered)):
        assert load.incorrect == 0, f"{name}: {load.incorrect} wrong answers"
        assert load.checked == FAILOVER_REQUESTS
        rows.append(
            [
                f"failover/{name}",
                f"{load.qps:,.0f}",
                load.latency_ms["p50"],
                load.latency_ms["p95"],
                load.latency_ms["p99"],
                "0 incorrect",
            ]
        )
    assert mid_stats["failovers"] > 0, "crash drew no failovers — trial is degenerate"
    assert mid_stats["breakers"]["0"] == "open"
    assert end_stats["breakers"]["0"] == "closed"
    rows.append(
        [
            "failover/summary",
            "",
            "",
            "",
            "",
            f"{mid_stats['failovers']} failovers, breaker open->closed",
        ]
    )

    text, table_data = table_artifact(
        ["trial", "qps", "p50 ms", "p95 ms", "p99 ms", "note"],
        rows,
        title=(
            f"Fleet serving — {EPOCHS}x{RECORDS} records, uniform load"
            f"{' [smoke]' if SMOKE else ''}"
        ),
    )
    data.update(table_data)
    data["qps_speedup_1_to_4"] = round(speedup, 2)
    data["router_aux_bytes_ratio"] = round(ratio, 3)
    data["scaling_arms"] = arm_data
    data["router_memory"] = {**mem, "data_bytes": data_bytes}
    data["failover"] = {
        "failovers": mid_stats["failovers"],
        "retries": mid_stats["retries"],
        "breaker_skips": mid_stats["breaker_skips"],
        "incorrect": healthy.incorrect + degraded.incorrect + recovered.incorrect,
        "phase_qps": {
            "healthy": round(healthy.qps, 1),
            "degraded": round(degraded.qps, 1),
            "recovered": round(recovered.qps, 1),
        },
    }
    report(text, name="fleet", data=data)

    # Representative kernel: one routed hot-key lookup (result-cache hit
    # behind an aux-directed single-shard plan).
    fleet, truth = _build(
        nshards=2, rf=1, service_kwargs=dict(result_cache_entries=64)
    )
    hot = next(iter(truth))
    loop = asyncio.new_event_loop()
    try:
        loop.run_until_complete(fleet.start())
        loop.run_until_complete(fleet.router.get(hot, epoch=ANY_EPOCH))  # warm
        benchmark(
            lambda: loop.run_until_complete(fleet.router.get(hot, epoch=ANY_EPOCH))
        )
        loop.run_until_complete(fleet.close())
    finally:
        loop.close()
