"""Fig. 8: write slowdown and RPC counts vs job size (64–640 processes).

The paper's microbenchmark on CMU's Narwhal cluster: every process
generates 960 MB of 64-byte KV pairs (15 M records), partitions them
online, and the run's *write slowdown* (extra time vs writing raw) is
reported at 50 % and 75 % residual network bandwidth.

Reproduction strategy (DESIGN.md §5): byte/message accounting is measured
by executing the real pipelines on a scaled cluster, validated against the
format specs, and the validated specs drive the calibrated machine model
across the paper's full sweep.
"""

import pytest

from repro.analysis.figures import ascii_series
from repro.analysis.reporting import percent, table_artifact
from repro.cluster import NARWHAL, SimCluster
from repro.core.costmodel import WriteRunConfig, model_write_phase
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV

FORMATS = (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV)
PROCS = (64, 128, 256, 384, 512, 640)
KV_BYTES = 64
DATA_PER_PROC = 960e6


def _cfg(fmt, nprocs, resid):
    return WriteRunConfig(
        fmt=fmt,
        machine=NARWHAL,
        nprocs=nprocs,
        kv_bytes=KV_BYTES,
        data_per_proc=DATA_PER_PROC,
        residual_fraction=resid,
    )


def test_fig8_accounting_validated_by_execution(report, benchmark):
    """Exact per-record bytes from real pipelines match the model's specs."""
    rows = []
    for fmt in FORMATS:
        cluster = SimCluster(
            nranks=16, fmt=fmt, value_bytes=KV_BYTES - 8, records_hint=16 * 8000, seed=5
        )
        st = cluster.run_epoch(8000)
        spec_net = fmt.shuffle_bytes_per_record(KV_BYTES - 8, 16) * 15 / 16
        measured = st.shuffle_bytes_per_record
        rows.append([fmt.name, round(spec_net, 2), round(measured, 2)])
        assert measured == pytest.approx(spec_net, rel=0.03)
    text, data = table_artifact(
        ["format", "spec net B/rec", "executed net B/rec"],
        rows,
        title="Fig. 8 input validation — model specs vs real pipeline execution",
    )
    report(text, name="fig8_validation", data=data)
    benchmark(
        lambda: SimCluster(nranks=4, fmt=FMT_FILTERKV, value_bytes=56, seed=1).run_epoch(2000)
    )


def test_fig8a_rpc_messages(report, benchmark):
    rows = []
    for nprocs in PROCS:
        row = [nprocs]
        for fmt in FORMATS:
            row.append(model_write_phase(_cfg(fmt, nprocs, 0.5)).rpc_messages_total)
        rows.append(row)
    text, data = table_artifact(
        ["processes", "Fmt-Base", "Fmt-DataPtr", "Fmt-FilterKV"],
        rows,
        title="Fig. 8a — total RPC messages exchanged",
    )
    report(text, name="fig8a", data=data)
    # Message counts scale with payload: base ≈ 4× dataptr ≈ 8× filterkv.
    last = rows[-1]
    assert last[1] > 3.5 * last[2] > 6 * last[3] / 2
    benchmark(lambda: model_write_phase(_cfg(FMT_BASE, 640, 0.5)).rpc_messages_total)


@pytest.mark.parametrize("resid,panel", [(0.5, "fig8b"), (0.75, "fig8c")])
def test_fig8bc_write_slowdown(report, benchmark, resid, panel):
    rows = []
    series = {f.name: [] for f in FORMATS}
    for nprocs in PROCS:
        row = [nprocs]
        for fmt in FORMATS:
            s = model_write_phase(_cfg(fmt, nprocs, resid)).slowdown
            series[fmt.name].append(s)
            row.append(percent(s))
        rows.append(row)
    table, data = table_artifact(
        ["processes", "Fmt-Base", "Fmt-DataPtr", "Fmt-FilterKV"],
        rows,
        title=f"Fig. {panel[-2:]} — write slowdown, {int(resid * 100)}% residual bandwidth",
    )
    chart = ascii_series(
        {name: [s * 100 for s in vals] for name, vals in series.items()},
        xlabels=list(PROCS),
        logy=True,
        title="write slowdown (%), log scale",
    )
    report(table + "\n\n" + chart, name=panel, data=data)
    # Paper shape: FilterKV < DataPtr < Base everywhere; base grows steeply.
    for i in range(len(PROCS)):
        assert series["filterkv"][i] < series["dataptr"][i] < series["base"][i]
    assert series["base"][-1] > 4 * series["base"][0]
    assert series["base"][-1] > 5.0  # several hundred percent at 640 procs
    benchmark(lambda: model_write_phase(_cfg(FMT_FILTERKV, 640, resid)).slowdown)
