"""Bulk read path vs the scalar query loop: the `get_many` gate.

The scalar read path answers one key at a time: partition hash, aux
probe, candidate walk, per-block parse — all per-key Python work.  The
bulk path (`QueryEngine.get_many`) answers a whole batch through the
same probe schedule with vectorized candidate resolution and
block-coalesced table reads, so the per-key interpreter cost amortizes
across the batch and each data block is read, checksummed, and decoded
once.

Both arms run a fresh `CachedQueryEngine` over the same persisted
epoch — same table/aux caching, no result cache anywhere — so the
measured gap is the batch path itself, not cache warmth.  Equivalence
is asserted *in-run* before any throughput gate:

* byte-identical values and identical per-key ``found`` /
  ``partitions_searched``;
* identical probe counters (``reader.queries`` / ``hits`` /
  ``partitions_probed`` / ``candidates``, ``aux.probes`` /
  ``candidates``);
* the bulk arm's device reads/bytes at most the scalar arm's (block
  coalescing makes them lower — that reduction is reported, not merely
  tolerated).

Gate: at the acceptance configuration (FilterKV, 64 ranks) the bulk
arm must clear **4×** the scalar arm's lookups/s.  Base and DataPtr run
the same equivalence checks and are reported alongside.

``REPRO_QUERY_SMOKE=1`` shrinks the dataset and query counts for CI.
"""

import os
import time

import numpy as np

from repro.analysis.reporting import table_artifact
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.obs import MetricsRegistry

SMOKE = os.environ.get("REPRO_QUERY_SMOKE", "0") == "1"

NRANKS = 64
VALUE_BYTES = 24
RECORDS_PER_RANK = 40 if SMOKE else 150
QUERIES = 2_048 if SMOKE else 4_096
BATCH = 512
ABSENT_FRAC = 0.10
SEED = 23

PROBE_COUNTERS = (
    "reader.queries",
    "reader.hits",
    "reader.partitions_probed",
    "reader.candidates",
    "aux.probes",
    "aux.candidates",
)


def _build(fmt):
    store = MultiEpochStore(nranks=NRANKS, fmt=fmt, value_bytes=VALUE_BYTES, seed=SEED)
    rng = np.random.default_rng(SEED)
    batches = [random_kv_batch(RECORDS_PER_RANK, VALUE_BYTES, rng) for _ in range(NRANKS)]
    store.write_epoch(batches)
    stored = np.concatenate([b.keys for b in batches]).astype(np.uint64)
    return store, stored


def _workload(stored, rng):
    """Uniform draws over the stored keys plus ~10% absent keys, shuffled."""
    present = rng.choice(stored, size=QUERIES, replace=True)
    absent = rng.integers(1 << 48, 1 << 49, size=int(QUERIES * ABSENT_FRAC), dtype=np.uint64)
    keys = np.concatenate([present, absent])
    rng.shuffle(keys)
    return keys


def _scalar_arm(store, keys):
    metrics = MetricsRegistry()
    engine = store.cached_engine(store.epochs[-1], metrics=metrics)
    before = store.device.counters.snapshot()
    t0 = time.perf_counter()
    values = [engine.get(int(k))[0] for k in keys]
    elapsed = time.perf_counter() - t0
    io = store.device.counters.delta(before)
    engine.close()
    return values, elapsed, metrics, io


def _bulk_arm(store, keys):
    metrics = MetricsRegistry()
    engine = store.cached_engine(store.epochs[-1], metrics=metrics)
    values: list = []
    before = store.device.counters.snapshot()
    t0 = time.perf_counter()
    for start in range(0, len(keys), BATCH):
        vals, _ = engine.get_many(keys[start : start + BATCH])
        values.extend(vals)
    elapsed = time.perf_counter() - t0
    io = store.device.counters.delta(before)
    engine.close()
    return values, elapsed, metrics, io


def test_bench_query(report, benchmark):
    rows, data_rows = [], []
    ratios = {}
    rng = np.random.default_rng(SEED)

    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        store, stored = _build(fmt)
        keys = _workload(stored, rng)

        s_vals, s_t, s_m, s_io = _scalar_arm(store, keys)
        b_vals, b_t, b_m, b_io = _bulk_arm(store, keys)

        # Equivalence before throughput: the fast path must be the same path.
        assert b_vals == s_vals, f"{fmt.name}: bulk values differ from scalar"
        for name in PROBE_COUNTERS:
            assert b_m.total(name) == s_m.total(name), (
                f"{fmt.name}: {name} {b_m.total(name)} != scalar {s_m.total(name)}"
            )
        assert b_io.reads <= s_io.reads, f"{fmt.name}: bulk issued more reads"
        assert b_io.bytes_read <= s_io.bytes_read

        scalar_qps = len(keys) / s_t
        bulk_qps = len(keys) / b_t
        ratios[fmt.name] = bulk_qps / scalar_qps
        coalesce = s_io.reads / max(1, b_io.reads)
        for arm, qps, reads in (("scalar", scalar_qps, s_io.reads), ("bulk", bulk_qps, b_io.reads)):
            rows.append(
                [
                    fmt.name,
                    arm,
                    f"{qps:,.0f}",
                    f"{reads:,}",
                    round(ratios[fmt.name], 1) if arm == "bulk" else "",
                ]
            )
            data_rows.append(
                {
                    "format": fmt.name,
                    "arm": arm,
                    "lookups_per_s": round(qps, 1),
                    "device_reads": int(reads),
                    "device_bytes": int(s_io.bytes_read if arm == "scalar" else b_io.bytes_read),
                    "speedup": round(ratios[fmt.name], 2) if arm == "bulk" else None,
                    "read_reduction": round(coalesce, 2) if arm == "bulk" else None,
                }
            )

    # Gate: the acceptance configuration (FilterKV at 64 ranks) must show
    # the batch path clearing 4x the scalar loop.
    assert ratios["filterkv"] >= 4.0, (
        f"bulk filterkv only {ratios['filterkv']:.1f}x scalar (need 4x)"
    )

    text, data = table_artifact(
        ["format", "arm", "lookups/s", "device reads", "speedup"],
        rows,
        title=(
            f"Bulk vs scalar point lookups — {NRANKS} ranks x "
            f"{RECORDS_PER_RANK} records, batch {BATCH}, "
            f"{int(ABSENT_FRAC * 100)}% absent{' [smoke]' if SMOKE else ''}"
        ),
    )
    data["rows_detailed"] = data_rows
    data["batch_size"] = BATCH
    data["queries"] = QUERIES + int(QUERIES * ABSENT_FRAC)
    report(text, name="query", data=data)

    # Representative kernel: one bulk batch through the FilterKV engine.
    store, stored = _build(FMT_FILTERKV)
    keys = _workload(stored, np.random.default_rng(SEED + 1))[:BATCH]
    engine = store.cached_engine(store.epochs[-1])
    engine.get_many(keys)  # warm the table cache: steady-state batches
    benchmark(lambda: engine.get_many(keys))
    engine.close()


# -- multi-core bulk reads: pooled get_many over shared-memory snapshots ----

PARALLEL_QUERIES = 4_096 if SMOKE else 16_384
PARALLEL_WORKERS = (1, 2) if SMOKE else (1, 2, 4, 8)
PARALLEL_GATE = 3.0  # asserted only where the hardware can express it


def test_bench_query_parallel(report):
    """Pooled `get_many` vs the in-process bulk engine.

    Each worker count is checked for exact equivalence — identical
    values and per-key ``found`` / ``partitions_searched`` against the
    in-process bulk path — before its timing is reported.  The ≥3x gate
    applies at 8 workers on 8+ cores.
    """
    from repro.obs import MetricsRegistry as _Reg
    from repro.parallel import WorkerPool

    ncores = os.cpu_count() or 1
    store, stored = _build(FMT_FILTERKV)
    rng = np.random.default_rng(SEED + 2)
    present = rng.choice(stored, size=PARALLEL_QUERIES, replace=True)
    absent = rng.integers(
        1 << 48, 1 << 49, size=int(PARALLEL_QUERIES * ABSENT_FRAC), dtype=np.uint64
    )
    keys = np.concatenate([present, absent])
    rng.shuffle(keys)
    epoch = store.epochs[-1]

    engine = store.cached_engine(epoch)
    engine.get_many(keys[:BATCH])  # warm
    t0 = time.perf_counter()
    serial_vals, serial_stats = engine.get_many(keys)
    serial_t = time.perf_counter() - t0
    engine.close()

    rows = [["in-process", "-", round(serial_t, 3), f"{len(keys) / serial_t:,.0f}", ""]]
    data_rows = [
        {
            "mode": "in-process",
            "workers": 0,
            "seconds": round(serial_t, 4),
            "lookups_per_s": round(len(keys) / serial_t, 1),
            "parallel_x": None,
        }
    ]
    speedup_by_workers = {}
    for nworkers in PARALLEL_WORKERS:
        with WorkerPool(workers=nworkers, metrics=_Reg()) as pool:
            pool.warm()
            pooled = store.attach_pool(pool, min_keys=1, metrics=_Reg())
            pooled.get_many(keys[:BATCH], epoch)  # warm: pack the snapshot
            t0 = time.perf_counter()
            vals, stats = pooled.get_many(keys, epoch)
            par_t = time.perf_counter() - t0
            assert pool.stats()["worker_failures"] == 0
            pooled.release()
        assert vals == serial_vals
        assert [s.found for s in stats] == [s.found for s in serial_stats]
        assert [s.partitions_searched for s in stats] == [
            s.partitions_searched for s in serial_stats
        ]
        speedup_by_workers[nworkers] = serial_t / par_t
        rows.append(
            [
                "pooled",
                nworkers,
                round(par_t, 3),
                f"{len(keys) / par_t:,.0f}",
                round(serial_t / par_t, 2),
            ]
        )
        data_rows.append(
            {
                "mode": "pooled",
                "workers": nworkers,
                "seconds": round(par_t, 4),
                "lookups_per_s": round(len(keys) / par_t, 1),
                "parallel_x": round(serial_t / par_t, 3),
            }
        )

    text, data = table_artifact(
        ["mode", "workers", "seconds", "lookups/s", "vs in-process"],
        rows,
        title=(
            f"Parallel bulk reads — filterkv, {NRANKS} ranks, "
            f"{len(keys):,} keys, {ncores} core(s){' [smoke]' if SMOKE else ''}"
        ),
    )
    data["rows_detailed"] = data_rows
    data["cores"] = ncores
    data["equivalent"] = True  # asserted above per worker count
    report(text, name="query_parallel", data=data)

    if ncores >= 8 and 8 in speedup_by_workers:
        assert speedup_by_workers[8] >= PARALLEL_GATE, (
            f"8-worker bulk reads only {speedup_by_workers[8]:.2f}x in-process "
            f"(need {PARALLEL_GATE}x on {ncores} cores)"
        )
