"""Ablation: partial-key cuckoo design choices (§IV-B).

1. Fingerprint width — the fp bits ↔ amplification ↔ space trade the paper
   resolves at 4 bits.
2. Growth policy — the paper's chained tables (no rehash, no key
   retention) vs classic start-small chaining without a capacity hint,
   quantifying the utilization the hint buys.
3. Bucket associativity — 2-way vs 4-way vs 8-way buckets: achievable load
   before the table declares itself full.
"""

import numpy as np
import pytest

from repro.analysis.reporting import table_artifact
from repro.core.auxtable import CuckooAuxTable
from repro.filters.cuckoo import ChainedCuckooTable, PartialKeyCuckooTable

NKEYS = 240_000  # ~1.8×2^17: a 2-table chain, like the paper's example
NPARTS = 4096


def _workload(seed=1):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**63, size=NKEYS, dtype=np.uint64)
    ranks = rng.integers(0, NPARTS, size=NKEYS, dtype=np.uint64)
    return keys, ranks


def test_ablation_fingerprint_bits(report, benchmark):
    keys, ranks = _workload()
    rows = []
    amps, sizes = [], []
    for fp_bits in (2, 4, 8, 12):
        t = CuckooAuxTable(NPARTS, capacity_hint=NKEYS, fp_bits=fp_bits, seed=fp_bits)
        t.insert_many(keys, ranks)
        amp = float(t.candidate_counts(keys[:1500]).mean())
        amps.append(amp)
        sizes.append(t.bytes_per_key)
        rows.append([fp_bits, round(amp, 2), round(t.bytes_per_key, 2)])
    text, data = table_artifact(
        ["fp bits", "partitions/query", "bytes/key"],
        rows,
        title="Ablation — cuckoo fingerprint width (amplification vs space)",
    )
    report(text, name="ablation_cuckoo_fp", data=data)
    # More fingerprint bits: monotonically less amplification, more space.
    assert all(a > b for a, b in zip(amps, amps[1:]))
    assert all(a < b for a, b in zip(sizes, sizes[1:]))
    # The paper's 4-bit choice keeps amplification ≈2 at ~2 B/key.
    assert amps[1] < 2.6 and sizes[1] < 2.5
    benchmark(lambda: CuckooAuxTable(NPARTS, capacity_hint=1000, fp_bits=4))


def test_ablation_growth_policy(report, benchmark):
    """The capacity hint is what delivers the paper's ~95 % utilization.

    The unhinted comparison streams keys one at a time (the receiver-side
    reality when nothing announces the burst size), so every overflow
    table is sized blind.
    """
    keys, _ = _workload(seed=2)
    rows = []
    utils = {}
    t = ChainedCuckooTable(fp_bits=4, value_bits=12, capacity_hint=NKEYS, seed=3)
    t.insert_many(keys, 1)
    utils["hinted (paper)"] = t.stats.utilization
    rows.append(
        ["hinted (paper)", t.stats.ntables, t.stats.nslots, f"{t.stats.utilization * 100:.1f}%"]
    )
    u = ChainedCuckooTable(fp_bits=4, value_bits=12, capacity_hint=None, seed=3)
    for k in keys[:50_000]:  # scalar path; 50 K keeps the runtime sane
        u.insert(int(k), 1)
    utils["unhinted streaming"] = u.stats.utilization
    rows.append(
        [
            "unhinted streaming",
            u.stats.ntables,
            u.stats.nslots,
            f"{u.stats.utilization * 100:.1f}%",
        ]
    )
    text, data = table_artifact(
        ["policy", "tables", "slots", "utilization"],
        rows,
        title="Ablation — chained growth with vs without a capacity hint",
    )
    report(text, name="ablation_cuckoo_growth", data=data)
    assert utils["hinted (paper)"] > 0.90
    assert utils["hinted (paper)"] > utils["unhinted streaming"]
    benchmark(lambda: ChainedCuckooTable(capacity_hint=4096))


def test_ablation_bucket_associativity(report, benchmark):
    """4-way buckets (the paper's choice) unlock ~95 % load; 2-way stall
    near 85 %; 8-way buy little more."""
    rows = []
    loads = {}
    for spb in (1, 2, 4, 8):
        t = PartialKeyCuckooTable(
            max(1, 4096 // spb), fp_bits=12, value_bits=12, slots_per_bucket=spb, seed=spb
        )
        keys = np.random.default_rng(spb).integers(
            0, 2**63, size=t.capacity_slots, dtype=np.uint64
        )
        ok = t.insert_many(keys, 0)
        loads[spb] = float(ok.mean())
        rows.append([spb, t.capacity_slots, f"{loads[spb] * 100:.1f}%"])
    text, data = table_artifact(
        ["slots/bucket", "capacity", "achieved load"],
        rows,
        title="Ablation — bucket associativity vs achievable load",
    )
    report(text, name="ablation_cuckoo_assoc", data=data)
    assert loads[1] < loads[2] < loads[4] <= min(1.0, loads[8] + 0.02)
    assert loads[4] > 0.93
    benchmark(lambda: PartialKeyCuckooTable(256, fp_bits=12, value_bits=8))
