"""Fig. 11: read performance — latency, storage reads, and bytes per query.

The paper persists a 2 TB VPIC dataset and runs 100 independent point
queries per format, reporting (a) min/median/max latency, (b) average
storage reads per query with a breakdown by what was read, and (c) average
data fetched per query with the same breakdown.

This harness executes the *real* read path over a real (scaled) dataset on
a storage-device model whose seek time is calibrated so the base format's
median latency lands near the paper's 190 ms; every other number is then
produced by the same mechanics the paper describes: DataPtr pays one extra
value-log read, FilterKV reads an aux table and probes ~1–2 candidate
partitions.
"""

import numpy as np
import pytest

from repro.analysis.reporting import table_artifact
from repro.cluster import SimCluster
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.storage.blockio import DeviceProfile

NRANKS = 32
RECORDS_PER_RANK = 6_000
NQUERIES = 100
# Calibrated: burst-buffer/PFS request round trip ≈ 60 ms per read op at
# the paper's scale puts KNL-Base's median at ~190 ms (3 reads + transfer).
DEVICE = DeviceProfile(name="trinity-pfs", read_bandwidth=2e8, write_bandwidth=2e8, seek_time=0.06)

FORMATS = (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV)
CATEGORIES = ("footer", "index", "aux", "data", "vlog")


@pytest.fixture(scope="module")
def datasets():
    """One persisted dataset + query set per format."""
    out = {}
    for fmt in FORMATS:
        cluster = SimCluster(
            nranks=NRANKS,
            fmt=fmt,
            value_bytes=56,
            records_hint=NRANKS * RECORDS_PER_RANK,
            device_profile=DEVICE,
            block_size=1 << 18,
            seed=23,
        )
        batches = [
            random_kv_batch(RECORDS_PER_RANK, 56, np.random.default_rng(900 + r))
            for r in range(NRANKS)
        ]
        for rank, batch in enumerate(batches):
            cluster.put(rank, batch)
        cluster.finish_epoch()
        rng = np.random.default_rng(77)
        targets = []
        for _ in range(NQUERIES):
            rank = int(rng.integers(NRANKS))
            i = int(rng.integers(RECORDS_PER_RANK))
            targets.append((int(batches[rank].keys[i]), batches[rank].value_of(i)))
        out[fmt.name] = (cluster, targets)
    return out


@pytest.fixture(scope="module")
def query_results(datasets):
    results = {}
    for fmt in FORMATS:
        cluster, targets = datasets[fmt.name]
        engine = cluster.query_engine()
        stats = []
        for key, expect in targets:
            value, qs = engine.get(key)
            assert qs.found and value == expect
            stats.append(qs)
        results[fmt.name] = stats
    return results


def test_fig11a_query_latency(report, benchmark, datasets, query_results):
    rows = []
    med = {}
    for fmt in FORMATS:
        lats = np.asarray([q.latency for q in query_results[fmt.name]]) * 1e3
        med[fmt.name] = float(np.median(lats))
        rows.append(
            [f"KNL-{fmt.name}", round(lats.min()), round(np.median(lats)), round(lats.max())]
        )
    text, data = table_artifact(
        ["scheme", "min ms", "median ms", "max ms"],
        rows,
        title=f"Fig. 11a — query latency over {NQUERIES} point queries",
    )
    report(text, name="fig11a", data=data)
    # Paper: 190 / 250 / 440 ms medians; shape = base ≤ dataptr ≤ filterkv,
    # FilterKV also having by far the largest tail (false-positive probes).
    # Our scaled dataset is seek-dominated rather than transfer-dominated,
    # which compresses the filterkv/base ratio (2.3× in the paper); the
    # scale-free cross-check is Fig. 11b's reads/query, which matches.
    assert med["base"] < med["dataptr"] <= med["filterkv"]
    assert 1.15 < med["dataptr"] / med["base"] < 1.6
    assert 1.2 < med["filterkv"] / med["base"] < 3.5
    maxes = {f.name: max(q.latency for q in query_results[f.name]) * 1e3 for f in FORMATS}
    assert maxes["filterkv"] > 2 * maxes["base"]
    cluster, targets = datasets["base"]
    engine = cluster.query_engine()
    benchmark(lambda: engine.get(targets[0][0]))


def test_fig11b_storage_reads_breakdown(report, benchmark, query_results):
    rows = []
    avg_reads = {}
    for fmt in FORMATS:
        qs = query_results[fmt.name]
        avg = sum(q.reads for q in qs) / len(qs)
        avg_reads[fmt.name] = avg
        breakdown = [
            round(sum(q.breakdown_reads.get(cat, 0) for q in qs) / len(qs), 2)
            for cat in CATEGORIES
        ]
        rows.append([f"KNL-{fmt.name}", round(avg, 2), *breakdown])
    text, data = table_artifact(
        ["scheme", "avg reads", *CATEGORIES],
        rows,
        title="Fig. 11b — storage reads per query and cost breakdown",
    )
    report(text, name="fig11b", data=data)
    # Paper: base ≈ 3.1 reads; DataPtr = base + 1 (value log); FilterKV
    # highest (aux read + ~1.9 partitions × (footer+index+data)).
    assert 2.8 < avg_reads["base"] < 3.6
    assert avg_reads["dataptr"] == pytest.approx(avg_reads["base"] + 1, abs=0.3)
    assert avg_reads["filterkv"] > avg_reads["dataptr"]
    qs = query_results["filterkv"]
    parts = sum(q.partitions_searched for q in qs) / len(qs)
    assert 1.0 <= parts < 2.6  # paper: 1.88 partitions/query
    benchmark(lambda: sum(q.reads for q in qs))


def test_fig11c_data_fetched_breakdown(report, benchmark, query_results):
    rows = []
    avg_mb = {}
    for fmt in FORMATS:
        qs = query_results[fmt.name]
        avg = sum(q.bytes_read for q in qs) / len(qs) / 1e6
        avg_mb[fmt.name] = avg
        breakdown = [
            round(sum(q.breakdown_bytes.get(cat, 0) for q in qs) / len(qs) / 1e6, 3)
            for cat in CATEGORIES
        ]
        rows.append([f"KNL-{fmt.name}", round(avg, 3), *breakdown])
    text, data = table_artifact(
        ["scheme", "avg MB", *CATEGORIES],
        rows,
        title="Fig. 11c — data fetched per query (MB) and cost breakdown",
    )
    report(text, name="fig11c", data=data)
    # Paper shape: FilterKV fetches the most (whole aux table + extra
    # partitions); DataPtr ≈ base + a small value-log read.
    assert avg_mb["filterkv"] > avg_mb["base"]
    assert avg_mb["dataptr"] == pytest.approx(avg_mb["base"], rel=0.35)
    qs = query_results["filterkv"]
    aux_mb = sum(q.breakdown_bytes.get("aux", 0) for q in qs) / len(qs) / 1e6
    assert aux_mb > 0  # every FilterKV query reads the aux table
    benchmark(lambda: sum(q.bytes_read for q in qs))
