"""Online serving throughput: `repro.serve` vs the naive query loop.

The paper's readers are one-shot: open the partition, probe, exit
(§III-C).  A serving tier in front of the same persisted data can do far
better on a skewed online workload, and this bench quantifies how much:

* **naive** — the baseline a script would write: one uncached
  `QueryEngine`, one query at a time, every query re-paying the
  footer/index open of each table it touches.
* **served** — `QueryService` with request batching/coalescing, the
  bounded result cache, the negative cache over FilterKV's false
  candidates, and the per-epoch warm reader cache.

Workload: Zipfian(θ=1.0) popularity over every stored key at 64 ranks —
the acceptance configuration.  The served arm is measured in *steady
state*: a warmup pass populates the caches first (a serving tier runs
warm by definition; the naive loop has no state to warm, so warmup
changes nothing for it).  The result cache is bounded well below the key
universe at full scale, so the steady state still mixes cache hits with
real probes.  The served arm must clear **3×** the naive QPS for every
format.  Two supporting gates ride along:

* under deliberate overload (open-loop arrivals into tight admission
  limits) the service sheds with explicit ``overloaded`` responses and
  every *answered* response is still byte-correct — zero incorrect;
* the negative cache measurably cuts FilterKV false-candidate probes: a
  dedicated cold-vs-warm run (result cache pinned to one entry so every
  query re-probes) shows warm probe amplification dropping to exactly
  1.0 — every repeat false-candidate probe eliminated, asserted via the
  ``serve.negative_cache.*`` and ``reader.partitions_probed`` counters.

``REPRO_SERVE_SMOKE=1`` shrinks the dataset and request counts for CI.
"""

import asyncio
import os
import time

import numpy as np

from repro.analysis.reporting import table_artifact
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.serve import InprocClient, KeySampler, QueryService, run_load

SMOKE = os.environ.get("REPRO_SERVE_SMOKE", "0") == "1"

NRANKS = 64
VALUE_BYTES = 24
RECORDS_PER_RANK = 40 if SMOKE else 150
SERVED_REQUESTS = 2_000 if SMOKE else 8_000
NAIVE_REQUESTS = 200 if SMOKE else 600
OVERLOAD_REQUESTS = 400 if SMOKE else 1_500
# Gate on CPU throughput, not wall qps: wall-clock jitters ±10-20 % run
# to run under asyncio, but added tracer work shows up directly in CPU
# time.  CPU time itself still wobbles ±2-3 % (GC timing), so the gate
# sits where it cleanly separates noise from real unconditional tracing
# work on the hot path (the unguarded span plumbing this gate exists to
# keep out cost 7-15 %).
TRACE_OVERHEAD_GATE = 0.90 if SMOKE else 0.95
SEED = 17
THETA = 1.0


def _build(fmt):
    store = MultiEpochStore(nranks=NRANKS, fmt=fmt, value_bytes=VALUE_BYTES, seed=SEED)
    rng = np.random.default_rng(SEED)
    batches = [random_kv_batch(RECORDS_PER_RANK, VALUE_BYTES, rng) for _ in range(NRANKS)]
    store.write_epoch(batches)
    expected = {int(k): b.value_of(i) for b in batches for i, k in enumerate(b.keys)}
    return store, expected


def _naive_qps(store, expected, sample_keys):
    """One-query-at-a-time over a cold `QueryEngine` — the baseline loop."""
    engine = store.engine(store.epochs[-1])
    t0 = time.perf_counter()
    for key in sample_keys:
        value, _ = engine.get(int(key))
        assert value == expected[int(key)]
    return len(sample_keys) / (time.perf_counter() - t0)


def _served(store, expected, keys):
    """Steady-state closed-loop Zipfian load through the full serving stack.

    Warmup pass first: the measured numbers describe a *warm* serving tier,
    which is what a long-running service is.  The result cache is bounded
    to half the key universe (capped at 2048 entries), so steady state
    still mixes hot-key cache hits with real probes for the Zipfian tail,
    which keeps the batch path exercised.  The naive arm has no state to
    warm, so warmup changes nothing for it.
    """
    warm_sampler = KeySampler(keys, "zipfian", theta=THETA, seed=SEED)
    sampler = KeySampler(keys, "zipfian", theta=THETA, seed=SEED)  # same hot set

    async def main():
        svc = QueryService(
            store,
            max_inflight=4096,
            queue_high_watermark=4096,
            result_cache_entries=min(2048, len(keys) // 2),
        )
        async with svc:
            client = InprocClient(svc)
            await run_load(
                client, warm_sampler, SERVED_REQUESTS // 2, mode="closed", concurrency=64
            )
            load = await run_load(
                client,
                sampler,
                SERVED_REQUESTS,
                mode="closed",
                concurrency=64,
                expected=expected,
            )
            return load, svc.stats()

    return asyncio.run(main())


def _negcache_effect(store, keys):
    """Cold-vs-warm FilterKV probe amplification with the result cache
    pinned to one entry, so every query actually probes.  Cold pass
    discovers false candidates (aux-table collisions); warm pass must
    skip every one of them via the negative cache."""
    sample = [int(k) for k in keys[: min(400, len(keys))]]

    async def main():
        svc = QueryService(
            store, max_inflight=4096, queue_high_watermark=4096, result_cache_entries=1
        )
        async with svc:
            for k in sample:
                await svc.get(k)
            probed_cold = svc.metrics.total("reader.partitions_probed")
            for k in sample:
                await svc.get(k)
            probed_warm = svc.metrics.total("reader.partitions_probed") - probed_cold
            return probed_cold, probed_warm, len(sample), svc.stats()

    return asyncio.run(main())


def _traced(store, expected, keys, sample_rate):
    """The served arm with request tracing at ``sample_rate``.

    Same store, sampler seed, warmup, and cache sizing as `_served`, so
    the only variable is the tracer (``sample_rate=None`` means the
    service default, i.e. tracing fully off) — this is the overhead
    measurement behind the "tracing off is free" gate and the 1 %/100 %
    rows reported for EXPERIMENTS.md.  Returns ``(load, cpu_s)`` where
    ``cpu_s`` is process CPU time over the measured (post-warmup) run:
    the gate compares requests per CPU second, which isolates the
    tracer's added *work* from wall-clock scheduler noise.
    """
    from repro.obs import TraceCollector

    warm_sampler = KeySampler(keys, "zipfian", theta=THETA, seed=SEED)
    sampler = KeySampler(keys, "zipfian", theta=THETA, seed=SEED)
    tracer = (
        None if sample_rate is None else TraceCollector(sample_rate=sample_rate, seed=SEED)
    )

    async def main():
        svc = QueryService(
            store,
            max_inflight=4096,
            queue_high_watermark=4096,
            result_cache_entries=min(2048, len(keys) // 2),
            tracer=tracer,
        )
        async with svc:
            client = InprocClient(svc)
            await run_load(
                client, warm_sampler, SERVED_REQUESTS // 2, mode="closed", concurrency=64
            )
            cpu0 = time.process_time()
            load = await run_load(
                client,
                sampler,
                SERVED_REQUESTS,
                mode="closed",
                concurrency=64,
                expected=expected,
            )
            return load, time.process_time() - cpu0

    return asyncio.run(main())


def _overloaded(store, expected, keys):
    """Open-loop arrivals into deliberately tight admission limits."""
    sampler = KeySampler(keys, "zipfian", theta=THETA, seed=SEED + 1)

    async def main():
        svc = QueryService(
            store,
            max_inflight=32,
            queue_high_watermark=16,
            queue_low_watermark=4,
            result_cache_entries=64,
        )
        async with svc:
            load = await run_load(
                InprocClient(svc),
                sampler,
                OVERLOAD_REQUESTS,
                mode="open",
                rate_qps=200_000.0,
                expected=expected,
            )
            return load, svc.stats()

    return asyncio.run(main())


def test_bench_serve(report, benchmark):
    rows, data_rows = [], []
    ratios = {}

    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        store, expected = _build(fmt)
        keys = np.fromiter(expected, dtype=np.int64)
        naive_sample = KeySampler(keys, "zipfian", theta=THETA, seed=SEED).sample(
            NAIVE_REQUESTS
        )
        naive = _naive_qps(store, expected, naive_sample)
        load, stats = _served(store, expected, keys)
        assert load.incorrect == 0 and load.checked == SERVED_REQUESTS
        ratios[fmt.name] = load.qps / naive
        for arm, qps, lat in (
            ("naive", naive, None),
            ("served", load.qps, load.latency_ms),
        ):
            p50, p95, p99 = (
                (lat["p50"], lat["p95"], lat["p99"]) if lat else ("-", "-", "-")
            )
            rows.append(
                [
                    fmt.name,
                    arm,
                    f"{qps:,.0f}",
                    p50,
                    p95,
                    p99,
                    round(ratios[fmt.name], 1) if arm == "served" else "",
                ]
            )
            data_rows.append(
                {
                    "format": fmt.name,
                    "arm": arm,
                    "qps": round(qps, 1),
                    "p50_ms": None if lat is None else p50,
                    "p95_ms": None if lat is None else p95,
                    "p99_ms": None if lat is None else p99,
                    "speedup": round(ratios[fmt.name], 2) if arm == "served" else None,
                    "result_cache_hits": stats["result_cache"]["hits"]
                    if arm == "served"
                    else None,
                }
            )

    # Gate 1: batched+cached serving clears 3x the naive loop's QPS.
    for name, ratio in ratios.items():
        assert ratio >= 3.0, f"served/{name} only {ratio:.1f}x naive (need 3x)"

    # Gate 2: the negative cache measurably cuts false-candidate probes.
    store, expected = _build(FMT_FILTERKV)
    keys = np.fromiter(expected, dtype=np.int64)
    probed_cold, probed_warm, nkeys, neg_stats = _negcache_effect(store, keys)
    skipped = neg_stats["negative_cache"]["skipped_probes"]
    inserted = neg_stats["negative_cache"]["inserts"]
    assert inserted > 0, "no false candidates refuted — workload is degenerate"
    assert skipped == inserted, "warm pass must skip every refuted candidate"
    assert probed_cold > nkeys, "cold pass saw no false-candidate amplification"
    assert probed_warm == nkeys, (
        f"warm amplification {probed_warm / nkeys:.2f} != 1.0 — "
        "negative cache failed to cut repeat probes"
    )
    rows.append(
        [
            "filterkv",
            "negcache",
            "-",
            "-",
            "-",
            "-",
            f"amp {probed_cold / nkeys:.2f} -> {probed_warm / nkeys:.2f}",
        ]
    )

    # Gate 3: overload sheds explicitly and never corrupts an answer.
    store, expected = _build(FMT_FILTERKV)
    keys = np.fromiter(expected, dtype=np.int64)
    over, over_stats = _overloaded(store, expected, keys)
    assert over.shed > 0, "overload run never shed — admission limits not exercised"
    assert over.incorrect == 0, f"{over.incorrect} incorrect responses under shedding"
    assert over.answered + over.shed == OVERLOAD_REQUESTS
    data_rows.append(
        {
            "format": "filterkv",
            "arm": "overloaded",
            "qps": round(over.qps, 1),
            "p50_ms": over.latency_ms["p50"],
            "p95_ms": over.latency_ms["p95"],
            "p99_ms": over.latency_ms["p99"],
            "shed": over.shed,
            "answered": over.answered,
            "incorrect": over.incorrect,
        }
    )
    rows.append(
        [
            "filterkv",
            "overloaded",
            f"{over.qps:,.0f}",
            over.latency_ms["p50"],
            over.latency_ms["p95"],
            over.latency_ms["p99"],
            f"shed {over.shed}/{OVERLOAD_REQUESTS}",
        ]
    )

    # Gate 4: tracing disabled costs nothing measurable.  The gate
    # compares requests per *CPU second* — tracer overhead is added work,
    # and CPU throughput sees it without the ±20 % wall-clock scheduler
    # noise that makes a tight qps gate unenforceable.  Untraced
    # reference runs interleave with traced@0 runs (best-of-2 each) so
    # thermal/frequency drift cancels too.  1 %/100 % sampling are one
    # run each; their wall qps and CPU ratio are reported for
    # EXPERIMENTS.md.
    store, expected = _build(FMT_FILTERKV)
    keys = np.fromiter(expected, dtype=np.int64)
    ref_cps, traced0, traced0_cps = 0.0, None, 0.0
    for _ in range(2):
        rload, rcpu = _traced(store, expected, keys, None)
        ref_cps = max(ref_cps, rload.requests / rcpu)
        tload, tcpu = _traced(store, expected, keys, 0.0)
        if tload.requests / tcpu > traced0_cps:
            traced0, traced0_cps = tload, tload.requests / tcpu
    trace_arms = [(0.0, "traced@0%", traced0, traced0_cps)]
    for rate, label in ((0.01, "traced@1%"), (1.0, "traced@100%")):
        tload, tcpu = _traced(store, expected, keys, rate)
        trace_arms.append((rate, label, tload, tload.requests / tcpu))
    for rate, label, tload, cps in trace_arms:
        assert tload.incorrect == 0
        rel = cps / ref_cps
        rows.append(
            [
                "filterkv",
                label,
                f"{tload.qps:,.0f}",
                tload.latency_ms["p50"],
                tload.latency_ms["p95"],
                tload.latency_ms["p99"],
                f"{rel:.2f}x cpu",
            ]
        )
        data_rows.append(
            {
                "format": "filterkv",
                "arm": label,
                "qps": round(tload.qps, 1),
                "p50_ms": tload.latency_ms["p50"],
                "p95_ms": tload.latency_ms["p95"],
                "p99_ms": tload.latency_ms["p99"],
                "cpu_throughput_vs_untraced": round(rel, 4),
                "sample_rate": rate,
            }
        )
    overhead_ok = traced0_cps / ref_cps
    assert overhead_ok >= TRACE_OVERHEAD_GATE, (
        f"tracing-disabled serving at {overhead_ok:.3f}x the untraced arm's CPU "
        f"throughput (must be >= {TRACE_OVERHEAD_GATE} — the disabled path is "
        "supposed to be free)"
    )

    text, data = table_artifact(
        ["format", "arm", "qps", "p50 ms", "p95 ms", "p99 ms", "speedup"],
        rows,
        title=(
            f"Online serving — Zipfian({THETA}) over {NRANKS} ranks x "
            f"{RECORDS_PER_RANK} records{' [smoke]' if SMOKE else ''}"
        ),
    )
    data["rows_detailed"] = data_rows
    data["negative_cache"] = {
        **neg_stats["negative_cache"],
        "keys": nkeys,
        "amplification_cold": round(probed_cold / nkeys, 3),
        "amplification_warm": round(probed_warm / nkeys, 3),
    }
    data["overload"] = over.to_dict()
    report(text, name="serve", data=data)

    # Representative kernel: one served hot-key lookup (result-cache hit).
    store, expected = _build(FMT_BASE)
    hot = next(iter(expected))
    loop = asyncio.new_event_loop()
    try:
        svc = QueryService(store)
        loop.run_until_complete(svc.get(hot))  # warm the cache
        benchmark(lambda: loop.run_until_complete(svc.get(hot)))
        loop.run_until_complete(svc.close())
    finally:
        loop.close()


# -- multi-core serving: dispatch windows on the worker pool ----------------

PARALLEL_REQUESTS = 2_000 if SMOKE else 8_000
PARALLEL_GATE = 3.0  # asserted only where the hardware can express it


def _served_uniform(store, expected, keys, pool=None):
    """Closed-loop *uniform* load with a tiny result cache: nearly every
    request reaches a real probe, so dispatch windows stay full and the
    pooled path (when a pool is attached) carries the traffic."""
    sampler = KeySampler(keys, "uniform", seed=SEED)

    async def main():
        kwargs = dict(
            max_batch=256,
            max_inflight=4096,
            queue_high_watermark=4096,
            result_cache_entries=8,  # force probes; this arm measures them
        )
        if pool is not None:
            kwargs.update(pool=pool, pool_min_keys=32)
        async with QueryService(store, **kwargs) as svc:
            client = InprocClient(svc)
            await run_load(client, sampler, PARALLEL_REQUESTS // 4, mode="closed", concurrency=256)
            load = await run_load(
                client,
                sampler,
                PARALLEL_REQUESTS,
                mode="closed",
                concurrency=256,
                expected=expected,
            )
            pooled_windows = int(svc.metrics.total("serve.pooled_windows"))
            return load, pooled_windows

    return asyncio.run(main())


def test_bench_serve_parallel(report):
    """Pooled serving vs the in-process dispatcher, same answers required.

    Both arms run the identical uniform closed-loop workload with
    correctness checked per response; the pooled arm must actually route
    windows through the workers.  The ≥3x QPS gate applies on 8+ cores.
    """
    from repro.obs import MetricsRegistry as _Reg
    from repro.parallel import WorkerPool

    ncores = os.cpu_count() or 1
    nworkers = min(8, ncores) if ncores > 1 else 2
    store_a, expected = _build(FMT_FILTERKV)
    store_b, expected_b = _build(FMT_FILTERKV)
    assert expected == expected_b
    keys = np.fromiter(expected, dtype=np.int64)

    inproc, _ = _served_uniform(store_a, expected, keys)
    with WorkerPool(workers=nworkers, metrics=_Reg()) as pool:
        pool.warm()
        pooled, pooled_windows = _served_uniform(store_b, expected, keys, pool=pool)
        assert pool.stats()["worker_failures"] == 0
    assert inproc.incorrect == 0 and pooled.incorrect == 0
    assert inproc.checked == pooled.checked == PARALLEL_REQUESTS
    assert pooled_windows > 0, "pooled serving never left the event-loop thread"

    ratio = pooled.qps / inproc.qps
    rows = [
        ["in-process", "-", f"{inproc.qps:,.0f}", inproc.latency_ms["p99"], ""],
        ["pooled", nworkers, f"{pooled.qps:,.0f}", pooled.latency_ms["p99"], round(ratio, 2)],
    ]
    text, data = table_artifact(
        ["arm", "workers", "qps", "p99 ms", "vs in-process"],
        rows,
        title=(
            f"Pooled serving — filterkv, {NRANKS} ranks, uniform load, "
            f"{ncores} core(s){' [smoke]' if SMOKE else ''}"
        ),
    )
    data["rows_detailed"] = [
        {
            "arm": "in-process",
            "workers": 0,
            "serve_qps_measured": round(inproc.qps, 1),
            "latency_ms": inproc.latency_ms,
            "parallel_x": None,
        },
        {
            "arm": "pooled",
            "workers": nworkers,
            "serve_qps_measured": round(pooled.qps, 1),
            "latency_ms": pooled.latency_ms,
            "parallel_x": round(ratio, 3),
            "pooled_windows": pooled_windows,
        },
    ]
    data["cores"] = ncores
    data["equivalent"] = True  # zero incorrect on both arms, same workload
    report(text, name="serve_parallel", data=data)

    if ncores >= 8:
        assert ratio >= PARALLEL_GATE, (
            f"pooled serving only {ratio:.2f}x in-process "
            f"(need {PARALLEL_GATE}x on {ncores} cores)"
        )
