"""Fig. 1: RPC performance on multicore (Haswell) vs manycore (KNL) CPUs.

Four panels, all regenerated on the discrete-event RPC model:

* 1a — RPC latency vs message size, polling mode;
* 1b — MPI-style ping-pong latency (a leaner software path, same CPUs);
* 1c — RPC latency, blocking mode (context switches bite);
* 1d — per-node all-to-all RPC bandwidth vs processes-per-node, 32 nodes,
  16 KB messages.
"""

from dataclasses import replace

from repro.analysis.reporting import table_artifact
from repro.net.cpu import CPUS
from repro.net.flowmodel import pernode_alltoall_bandwidth
from repro.net.rpc import measure_rpc_latency
from repro.net.topology import ARIES_DRAGONFLY

SIZES = (8, 256, 1024, 4096, 16384, 65536)
CPU_SET = ("haswell", "trinity-knl", "theta-knl")


def _latency_table(mode: str, cpus=CPU_SET, profile_map=None) -> list[list]:
    rows = []
    for size in SIZES:
        row = [size]
        for cpu in cpus:
            prof = profile_map[cpu] if profile_map else cpu
            row.append(round(measure_rpc_latency(prof, "gni", size, mode).mean_us, 1))
        rows.append(row)
    return rows


def test_fig1a_rpc_latency_polling(report, benchmark):
    rows = _latency_table("polling")
    text, data = table_artifact(
        ["msg bytes", *CPU_SET],
        rows,
        title="Fig. 1a — RPC latency, polling mode (µs round trip)",
    )
    report(text, name="fig1a", data=data)
    # Paper anchor: KNL ≈ 4× Haswell.
    ratio = rows[0][2] / rows[0][1]
    assert 3.0 < ratio < 5.0
    benchmark(lambda: measure_rpc_latency("haswell", "gni", 8, "polling", nmessages=16))


def test_fig1b_mpi_pingpong(report, benchmark):
    # MPI's matched-pair path does far less per message than a generic RPC
    # stack (no handler dispatch, no response serialization).
    mpi_profiles = {
        name: replace(CPUS[name], rpc_base_us=1.2, rpc_per_kb_us=0.25)
        for name in CPU_SET
    }
    rows = _latency_table("polling", profile_map=mpi_profiles)
    text, data = table_artifact(
        ["msg bytes", *CPU_SET],
        rows,
        title="Fig. 1b — MPI ping-pong latency (µs)",
    )
    report(text, name="fig1b", data=data)
    # Still ~4× between KNL and Haswell, at much lower absolute values.
    assert rows[0][1] < 10.0
    assert 2.5 < rows[0][2] / rows[0][1] < 5.5
    benchmark(
        lambda: measure_rpc_latency(mpi_profiles["haswell"], "gni", 8, nmessages=16)
    )


def test_fig1c_rpc_latency_blocking(report, benchmark):
    rows_block = _latency_table("blocking")
    rows_poll = _latency_table("polling")
    text, data = table_artifact(
        ["msg bytes", *CPU_SET],
        rows_block,
        title="Fig. 1c — RPC latency, blocking mode (µs round trip)",
    )
    report(text, name="fig1c", data=data)
    # Blocking hurts everywhere, and hurts KNL more in absolute terms.
    for rb, rp in zip(rows_block, rows_poll):
        assert rb[1] > rp[1] and rb[2] > rp[2]
        assert (rb[2] - rp[2]) > (rb[1] - rp[1])
    benchmark(lambda: measure_rpc_latency("trinity-knl", "gni", 8, "blocking", nmessages=16))


def test_fig1d_bandwidth_vs_ppn(report, benchmark):
    ppns = (1, 4, 8, 16, 32, 64)
    rows = []
    for ppn in ppns:
        row = [ppn]
        for cpu in ("haswell", "trinity-knl"):
            bw = pernode_alltoall_bandwidth(cpu, "gni", ARIES_DRAGONFLY, 32, ppn, 16384)
            row.append(round(bw.bandwidth / 1e6))
        rows.append(row)
    text, data = table_artifact(
        ["PPN", "trinity-haswell MB/s", "trinity-knl MB/s"],
        rows,
        title="Fig. 1d — per-node all-to-all RPC bandwidth, 16 KB msgs, 32 nodes",
    )
    report(text, name="fig1d", data=data)
    # Paper anchors: Haswell plateau ~3× the KNL plateau despite fewer cores.
    hs_plateau, knl_plateau = rows[-1][1], rows[-1][2]
    assert 2.3 < hs_plateau / knl_plateau < 5.0
    benchmark(
        lambda: pernode_alltoall_bandwidth(
            "haswell", "gni", ARIES_DRAGONFLY, 32, 32, 16384
        ).bandwidth
    )
