"""Live windowed telemetry: ring-buffer digests for rate and quantiles.

Cumulative counters answer "how much since boot"; a serving dashboard
needs "how fast *right now*".  This module keeps the last N observations
with their timestamps and computes windowed snapshots on demand — QPS,
per-status rates, and latency quantiles over the trailing window —
without unbounded growth and without any work on the hot path beyond one
list append (the buffer is trimmed amortized; NumPy enters only at
snapshot time, which runs per dashboard refresh, not per request).

`WindowedDigest` is the scalar building block; `TimeseriesHub` is the
serving-shaped composite: one ring of (timestamp, status, latency)
events, snapshotting into the payload the ``STATS`` verb and the
``repro top`` dashboard render.
"""

from __future__ import annotations

import time

import numpy as np

__all__ = ["WindowedDigest", "TimeseriesHub"]

_QS = (0.50, 0.95, 0.99)


def _quantiles_ms(values_s: np.ndarray) -> dict:
    """Latency summary (milliseconds) of a window's observations."""
    if values_s.size == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    ms = values_s * 1e3
    p50, p95, p99 = (float(np.percentile(ms, q * 100)) for q in _QS)
    return {
        "count": int(ms.size),
        "mean": round(float(ms.mean()), 4),
        "p50": round(p50, 4),
        "p95": round(p95, 4),
        "p99": round(p99, 4),
        "max": round(float(ms.max()), 4),
    }


class WindowedDigest:
    """Bounded buffer of timestamped observations with windowed summaries.

    The hot path is one tuple append; the buffer is trimmed back to
    ``capacity`` only when it doubles, so the amortized cost stays O(1)
    and no per-observation NumPy scalar stores are paid.
    """

    def __init__(self, capacity: int = 8192, window_s: float = 10.0, clock=time.monotonic):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if window_s <= 0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.capacity = capacity
        self.window_s = window_s
        self.clock = clock
        self._ev: list[tuple[float, float]] = []  # (timestamp, value)

    def observe(self, value: float, t: float | None = None) -> None:
        ev = self._ev
        ev.append((self.clock() if t is None else t, value))
        if len(ev) >= 2 * self.capacity:
            del ev[: len(ev) - self.capacity]

    def __len__(self) -> int:
        return min(len(self._ev), self.capacity)

    def _window(self, now: float | None, window_s: float | None):
        """(timestamps, values, now, span_s) of the in-window samples."""
        now = self.clock() if now is None else now
        window_s = self.window_s if window_s is None else window_s
        ev = self._ev[-self.capacity :]
        t = np.array([e[0] for e in ev], dtype=np.float64)
        v = np.array([e[1] for e in ev], dtype=np.float64)
        mask = t >= (now - window_s)
        t, v = t[mask], v[mask]
        span = min(window_s, (now - float(t.min()))) if t.size else window_s
        return t, v, now, max(span, 1e-9)

    def snapshot(self, now: float | None = None, window_s: float | None = None) -> dict:
        """Rate + quantile summary of the trailing window."""
        t, v, _, span = self._window(now, window_s)
        out = _quantiles_ms(v)
        out["rate_per_s"] = round(float(t.size) / span, 2)
        return out


class TimeseriesHub:
    """Windowed request telemetry: one event ring, many views.

    Each `record(status, latency_s)` lands one event; `snapshot()`
    computes, over the trailing window: total QPS, per-status counts and
    rates, shed rate (the ``shed`` statuses over all events), and latency
    quantiles over the ``answered`` statuses — the live twin of the
    cumulative ``serve.*`` counters.
    """

    def __init__(
        self,
        statuses: tuple[str, ...],
        answered: tuple[str, ...] = (),
        shed: tuple[str, ...] = (),
        capacity: int = 16384,
        window_s: float = 10.0,
        clock=time.monotonic,
    ):
        if not statuses:
            raise ValueError("statuses must not be empty")
        unknown = [s for s in (*answered, *shed) if s not in statuses]
        if unknown:
            raise ValueError(f"unknown statuses {unknown} (have {list(statuses)})")
        self.statuses = tuple(statuses)
        self.window_s = window_s
        self.clock = clock
        self._idx = {s: i for i, s in enumerate(self.statuses)}
        self._answered = np.array([s in answered for s in self.statuses], dtype=bool)
        self._shed = np.array([s in shed for s in self.statuses], dtype=bool)
        self.capacity = capacity
        self._ev: list[tuple[float, float, int]] = []  # (timestamp, latency, status idx)

    def record(self, status: str, latency_s: float, t: float | None = None) -> None:
        ev = self._ev
        ev.append((self.clock() if t is None else t, latency_s, self._idx[status]))
        if len(ev) >= 2 * self.capacity:
            del ev[: len(ev) - self.capacity]

    def __len__(self) -> int:
        return min(len(self._ev), self.capacity)

    def snapshot(self, now: float | None = None, window_s: float | None = None) -> dict:
        now = self.clock() if now is None else now
        window_s = self.window_s if window_s is None else window_s
        ev = self._ev[-self.capacity :]
        t = np.array([e[0] for e in ev], dtype=np.float64)
        mask = t >= (now - window_s)
        t = t[mask]
        lat = np.array([e[1] for e in ev], dtype=np.float64)[mask]
        st = np.array([e[2] for e in ev], dtype=np.int64)[mask]
        span = max(min(window_s, (now - float(t.min())) if t.size else window_s), 1e-9)
        counts = np.bincount(st, minlength=len(self.statuses))
        total = int(counts.sum())
        shed = int(counts[self._shed].sum())
        answered_mask = self._answered[st]
        return {
            "window_s": round(float(window_s), 3),
            "qps": round(total / span, 2),
            "requests": total,
            "counts": {s: int(counts[i]) for i, s in enumerate(self.statuses)},
            "rates_per_s": {
                s: round(float(counts[i]) / span, 2) for i, s in enumerate(self.statuses)
            },
            "shed_rate": round(shed / total, 4) if total else 0.0,
            "latency_ms": _quantiles_ms(lat[answered_mask]),
        }
