"""Unified telemetry: metrics registry, instruments, and exporters.

The observability layer the evaluation is built on (paper §V): every
layer of the system — pipelines, auxiliary tables, filters, storage,
the read path, the DES tracer — reports into one `MetricsRegistry`, and
one export path (`registry_to_json` / `dump_jsonl`) turns a run into a
machine-readable document.

Telemetry is opt-in.  Components take ``metrics=None`` and normalize it
with `active`, which substitutes the shared `NULL_REGISTRY` — a no-op
registry whose instruments discard everything — so the uninstrumented
path stays effectively free.

There is also a process-wide default registry for code with no
constructor to thread a registry through (e.g. the compression codec):
`get_default_registry` returns the null registry unless a run installed
a real one with `set_default_registry`.
"""

from __future__ import annotations

from .export import (
    SCHEMA,
    dump_jsonl,
    load_jsonl,
    registry_to_dict,
    registry_to_json,
    registry_to_prometheus,
    series_to_dict,
)
from .metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    active,
)
from .timeseries import TimeseriesHub, WindowedDigest
from .trace import (
    NULL_TRACER,
    ActiveSpan,
    NullTraceCollector,
    SpanRecord,
    TraceCollector,
    TraceContext,
    active_tracer,
    child_span,
    counter_key,
    current_span,
    snapshot_counters,
)
from .traceio import (
    TRACE_SCHEMA,
    build_trees,
    chrome_trace,
    dump_trace_jsonl,
    load_trace_jsonl,
    render_tree,
    span_from_dict,
    span_to_dict,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "active",
    "SCHEMA",
    "registry_to_dict",
    "registry_to_json",
    "registry_to_prometheus",
    "dump_jsonl",
    "load_jsonl",
    "series_to_dict",
    "get_default_registry",
    "set_default_registry",
    # tracing
    "SpanRecord",
    "TraceContext",
    "ActiveSpan",
    "TraceCollector",
    "NullTraceCollector",
    "NULL_TRACER",
    "active_tracer",
    "current_span",
    "child_span",
    "counter_key",
    "snapshot_counters",
    "TRACE_SCHEMA",
    "span_to_dict",
    "span_from_dict",
    "dump_trace_jsonl",
    "load_trace_jsonl",
    "chrome_trace",
    "build_trees",
    "render_tree",
    # live windows
    "WindowedDigest",
    "TimeseriesHub",
]

_default: MetricsRegistry = NULL_REGISTRY


def get_default_registry() -> MetricsRegistry:
    """The process-wide registry (null unless one was installed)."""
    return _default


def set_default_registry(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Install (or, with ``None``, clear) the process-wide registry.

    Returns the previous registry so callers can restore it::

        prev = set_default_registry(reg)
        try: ...
        finally: set_default_registry(prev)
    """
    global _default
    prev = _default
    _default = active(registry)
    return prev
