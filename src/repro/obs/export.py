"""Machine-readable views of a `MetricsRegistry`: JSON and JSONL.

One schema everywhere — the ``repro metrics`` CLI, ``compare
--metrics-out``, and the benchmark ``--json`` mode all serialize through
these helpers, so downstream tooling parses a single shape:

* **JSON document** — ``{"schema": "repro.metrics/v1", "name": ...,
  "metrics": [<series>, ...]}`` with one entry per labeled series.
* **JSONL** — the same series dicts, one per line, for appending runs to a
  trajectory file.

Histograms serialize their summary statistics *and* (optionally) raw
observations, so ``load_jsonl(dump_jsonl(r))`` round-trips exactly.
"""

from __future__ import annotations

import json

from .metrics import MetricsRegistry

__all__ = [
    "SCHEMA",
    "registry_to_dict",
    "registry_to_json",
    "dump_jsonl",
    "load_jsonl",
    "series_to_dict",
]

SCHEMA = "repro.metrics/v1"


def series_to_dict(name: str, labels, inst, include_samples: bool = True) -> dict:
    """One labeled series as a plain dict."""
    out = {"name": name, "kind": inst.kind, "labels": dict(labels)}
    state = inst._state()
    if not include_samples:
        state.pop("values", None)
    out.update(state)
    return out


def registry_to_dict(registry: MetricsRegistry, include_samples: bool = True) -> dict:
    return {
        "schema": SCHEMA,
        "name": registry.name,
        "metrics": [
            series_to_dict(name, labels, inst, include_samples)
            for name, labels, inst in registry.series()
        ],
    }


def registry_to_json(
    registry: MetricsRegistry, include_samples: bool = True, indent: int | None = 2
) -> str:
    return json.dumps(registry_to_dict(registry, include_samples), indent=indent, sort_keys=True)


def dump_jsonl(registry: MetricsRegistry) -> str:
    """One series per line (ends with a newline when non-empty)."""
    lines = [
        json.dumps(series_to_dict(name, labels, inst), sort_keys=True)
        for name, labels, inst in registry.series()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def load_jsonl(text: str, name: str = "") -> MetricsRegistry:
    """Rebuild a registry from `dump_jsonl` output (inverse operation)."""
    registry = MetricsRegistry(name)
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        inst = registry._get(entry["kind"], entry["name"], entry.get("labels", {}))
        inst._load(entry)
    return registry
