"""Machine-readable views of a `MetricsRegistry`: JSON and JSONL.

One schema everywhere — the ``repro metrics`` CLI, ``compare
--metrics-out``, and the benchmark ``--json`` mode all serialize through
these helpers, so downstream tooling parses a single shape:

* **JSON document** — ``{"schema": "repro.metrics/v1", "name": ...,
  "metrics": [<series>, ...]}`` with one entry per labeled series.
* **JSONL** — the same series dicts, one per line, for appending runs to a
  trajectory file.

Histograms serialize their summary statistics *and* (optionally) raw
observations, so ``load_jsonl(dump_jsonl(r))`` round-trips exactly.
"""

from __future__ import annotations

import json
import re

from .metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "SCHEMA",
    "registry_to_dict",
    "registry_to_json",
    "registry_to_prometheus",
    "dump_jsonl",
    "load_jsonl",
    "series_to_dict",
]

SCHEMA = "repro.metrics/v1"


def series_to_dict(name: str, labels, inst, include_samples: bool = True) -> dict:
    """One labeled series as a plain dict."""
    out = {"name": name, "kind": inst.kind, "labels": dict(labels)}
    state = inst._state()
    if not include_samples:
        state.pop("values", None)
    out.update(state)
    return out


def registry_to_dict(registry: MetricsRegistry, include_samples: bool = True) -> dict:
    return {
        "schema": SCHEMA,
        "name": registry.name,
        "metrics": [
            series_to_dict(name, labels, inst, include_samples)
            for name, labels, inst in registry.series()
        ],
    }


def registry_to_json(
    registry: MetricsRegistry, include_samples: bool = True, indent: int | None = 2
) -> str:
    return json.dumps(registry_to_dict(registry, include_samples), indent=indent, sort_keys=True)


def dump_jsonl(registry: MetricsRegistry) -> str:
    """One series per line (ends with a newline when non-empty)."""
    lines = [
        json.dumps(series_to_dict(name, labels, inst), sort_keys=True)
        for name, labels, inst in registry.series()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


_PROM_NAME_BAD = re.compile(r"[^a-zA-Z0-9_:]")
_PROM_LABEL_BAD = re.compile(r"[^a-zA-Z0-9_]")
_PROM_QUANTILES = (0.5, 0.9, 0.95, 0.99)


def _prom_name(name: str) -> str:
    """Sanitize a dotted series name to Prometheus metric-name charset."""
    out = _PROM_NAME_BAD.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _prom_label_name(name: str) -> str:
    out = _PROM_LABEL_BAD.sub("_", name)
    if not out or out[0].isdigit():
        out = "_" + out
    return out


def _prom_label_value(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_labels(labels, extra: dict | None = None) -> str:
    pairs = [(_prom_label_name(k), _prom_label_value(str(v))) for k, v in labels]
    if extra:
        pairs += [(_prom_label_name(k), _prom_label_value(str(v))) for k, v in extra.items()]
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in sorted(pairs)) + "}"


def _prom_value(v: float) -> str:
    f = float(v)
    return str(int(f)) if f.is_integer() else repr(f)


def registry_to_prometheus(registry: MetricsRegistry) -> str:
    """The registry in Prometheus text exposition format (version 0.0.4).

    Counters gain the conventional ``_total`` suffix; histograms export
    as summaries (``{quantile="..."}`` series plus ``_sum``/``_count``);
    names and label names are sanitized to the Prometheus charset and
    label values are escaped.  One ``# TYPE`` line precedes each metric
    family, families sorted by name for diff-stable output.
    """
    families: dict[tuple[str, str], list[str]] = {}
    for name, labels, inst in registry.series():
        if isinstance(inst, Histogram):
            base = _prom_name(name)
            lines = families.setdefault((base, "summary"), [])
            for q in _PROM_QUANTILES:
                lines.append(
                    f"{base}{_prom_labels(labels, {'quantile': q})} "
                    f"{_prom_value(inst.quantile(q))}"
                )
            lines.append(f"{base}_sum{_prom_labels(labels)} {_prom_value(inst.total)}")
            lines.append(f"{base}_count{_prom_labels(labels)} {inst.count}")
        elif isinstance(inst, Counter):
            base = _prom_name(name) + "_total"
            families.setdefault((base, "counter"), []).append(
                f"{base}{_prom_labels(labels)} {_prom_value(inst.value)}"
            )
        elif isinstance(inst, Gauge):
            base = _prom_name(name)
            families.setdefault((base, "gauge"), []).append(
                f"{base}{_prom_labels(labels)} {_prom_value(inst.value)}"
            )
    out: list[str] = []
    for (base, kind), lines in sorted(families.items()):
        out.append(f"# TYPE {base} {kind}")
        out.extend(lines)
    return "\n".join(out) + ("\n" if out else "")


def load_jsonl(text: str, name: str = "") -> MetricsRegistry:
    """Rebuild a registry from `dump_jsonl` output (inverse operation)."""
    registry = MetricsRegistry(name)
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        entry = json.loads(line)
        inst = registry._get(entry["kind"], entry["name"], entry.get("labels", {}))
        inst._load(entry)
    return registry
