"""Request-scoped tracing: sampled span trees with counter attribution.

Where `repro.obs.metrics` answers "how much, in total?", this module
answers "where did *this* request spend its time?".  A `TraceCollector`
records **spans** — named intervals with a trace id, a span id, and a
parent link — into a bounded ring, so a sampled request comes back with a
tree: ``serve.get`` → ``serve.batch`` → ``engine.get_many`` →
``sstable.get_many``.

Three ideas carry the design:

* **Trace-context propagation.**  A `TraceContext` is the portable
  (trace_id, span_id, sampled) triple.  It crosses process boundaries as
  a plain dict (`to_wire` / `from_wire` — the serve protocol puts it in
  frame headers) and crosses *layer* boundaries in-process through a
  `contextvars.ContextVar`: code deep in the storage stack calls
  `child_span("sstable.get_many")` without ever being handed a tracer,
  and the span attaches under whatever span is current in this task.

* **Counter deltas per span.**  A span opened with ``counters=registry``
  snapshots the registry's counter values on entry and records the
  *delta* on exit — and the delta is **exclusive**: whatever a child span
  already attributed is subtracted from its parent, so summing any
  counter over a whole span tree reproduces the aggregate exactly (the
  same "charge once" discipline the bulk read path uses for I/O).

* **Zero-cost default.**  The disabled path is `NULL_TRACER`, whose
  `should_sample()` is constant-False and whose spans are never created;
  `child_span` costs one ContextVar read when no trace is active.
  Tracing off ⇒ no measurable overhead (`bench_serve` gates this).

Sampling is seeded and deterministic, like every other source of
randomness in the reproduction.
"""

from __future__ import annotations

import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from .metrics import Counter, MetricsRegistry

__all__ = [
    "SpanRecord",
    "TraceContext",
    "ActiveSpan",
    "TraceCollector",
    "NullTraceCollector",
    "NULL_TRACER",
    "active_tracer",
    "current_span",
    "child_span",
    "snapshot_counters",
    "counter_key",
]


def counter_key(name: str, labels) -> str:
    """Stable string key for one labeled counter series: ``name{k=v,...}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def snapshot_counters(registry: MetricsRegistry, prefixes: tuple[str, ...] | None = None) -> dict:
    """Current value of every counter series (optionally prefix-filtered)."""
    out: dict[str, float] = {}
    for (name, labels), inst in registry._series.items():
        if not isinstance(inst, Counter):
            continue
        if prefixes is not None and not name.startswith(prefixes):
            continue
        out[counter_key(name, labels)] = inst.value
    return out


@dataclass(frozen=True)
class TraceContext:
    """The portable trace coordinates one hop hands the next."""

    trace_id: str
    span_id: str
    sampled: bool = True

    def to_wire(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id, "sampled": self.sampled}

    @classmethod
    def from_wire(cls, fields) -> "TraceContext | None":
        """Parse a wire dict; returns None for anything malformed (a bad
        trace header must never fail the request that carries it)."""
        if not isinstance(fields, dict):
            return None
        trace_id = fields.get("trace_id")
        span_id = fields.get("span_id")
        if not isinstance(trace_id, str) or not isinstance(span_id, str):
            return None
        return cls(trace_id, span_id, bool(fields.get("sampled", True)))


@dataclass
class SpanRecord:
    """One finished span, as stored in the collector's ring."""

    trace_id: str
    span_id: str
    parent_id: str | None
    name: str
    start: float
    end: float
    status: str = "ok"
    attrs: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


_CURRENT: ContextVar["ActiveSpan | None"] = ContextVar("repro_trace_current", default=None)


class ActiveSpan:
    """An open span.  Created by `TraceCollector.start`; finish it (or use
    the `TraceCollector.span` context manager) to land a `SpanRecord`."""

    __slots__ = (
        "collector",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start_time",
        "attrs",
        "_registry",
        "_prefixes",
        "_base",
        "_child_counters",
        "_extra_counters",
        "_parent_span",
        "_finished",
    )

    def __init__(
        self,
        collector: "TraceCollector",
        trace_id: str,
        span_id: str,
        parent_id: str | None,
        name: str,
        attrs: dict,
        registry: MetricsRegistry | None,
        prefixes: tuple[str, ...] | None,
        parent_span: "ActiveSpan | None",
    ):
        self.collector = collector
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_time = collector.clock()
        self.attrs = attrs
        self._registry = registry
        self._prefixes = prefixes
        self._base = snapshot_counters(registry, prefixes) if registry is not None else None
        self._child_counters: dict[str, float] = {}
        self._extra_counters: dict[str, float] = {}
        self._parent_span = parent_span
        self._finished = False

    @property
    def ctx(self) -> TraceContext:
        """Context for propagating this span as a parent."""
        return TraceContext(self.trace_id, self.span_id, sampled=True)

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def charge(self, key: str, n: float = 1) -> None:
        """Explicitly attribute ``n`` increments of one counter series.

        The registry-snapshot path is only exact for spans whose open
        interval is synchronous; a span that stays open across an await
        (a request's root while it waits on the dispatcher) overlaps its
        siblings and would claim their work.  Such spans skip the
        snapshot and charge their own, enumerable increments here — the
        finished record merges both.  ``key`` is a `counter_key` string.
        """
        self._extra_counters[key] = self._extra_counters.get(key, 0) + n

    def finish(self, status: str = "ok") -> SpanRecord | None:
        """Close the span and land it in the collector (idempotent)."""
        if self._finished:
            return None
        self._finished = True
        counters: dict[str, float] = {}
        if self._base is not None:
            now = snapshot_counters(self._registry, self._prefixes)
            for key, value in now.items():
                delta = value - self._base.get(key, 0)
                if delta == 0:
                    continue
                # Inclusive delta flows up so the parent can exclude it...
                if self._parent_span is not None and not self._parent_span._finished:
                    acc = self._parent_span._child_counters
                    acc[key] = acc.get(key, 0) + delta
                # ...and this span keeps only what its children did not claim.
                own = delta - self._child_counters.get(key, 0)
                if own > 0:
                    counters[key] = own
        for key, n in self._extra_counters.items():
            counters[key] = counters.get(key, 0) + n
        record = SpanRecord(
            trace_id=self.trace_id,
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            start=self.start_time,
            end=self.collector.clock(),
            status=status,
            attrs=self.attrs,
            counters=counters,
        )
        self.collector._append(record)
        return record


class TraceCollector:
    """Samples, assembles, and retains span trees.

    Parameters
    ----------
    sample_rate:
        Probability (0..1) that `should_sample` elects a new request.
        0 keeps the collector usable for *propagated* traces (a client
        that sampled upstream) while originating none locally.
    max_spans:
        Ring bound on retained finished spans (oldest evicted first).
    seed:
        Seeds both the sampling decisions and the id generator.
    clock:
        Timestamp source; spans from one collector share it.
    """

    def __init__(
        self,
        sample_rate: float = 0.0,
        max_spans: int = 4096,
        seed: int = 0,
        clock=time.perf_counter,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        if max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {max_spans}")
        self.sample_rate = sample_rate
        self.max_spans = max_spans
        self.clock = clock
        self._rng = random.Random(seed)
        self._spans: list[SpanRecord] = []

    # -- ids and sampling ---------------------------------------------------

    def new_id(self) -> str:
        return f"{self._rng.getrandbits(64):016x}"

    def should_sample(self) -> bool:
        if not self.sample_rate:
            return False
        return self._rng.random() < self.sample_rate

    # -- span lifecycle -----------------------------------------------------

    def start(
        self,
        name: str,
        parent: "ActiveSpan | TraceContext | None" = None,
        counters: MetricsRegistry | None = None,
        prefixes: tuple[str, ...] | None = None,
        **attrs,
    ) -> ActiveSpan:
        """Open a span.  ``parent`` may be a local `ActiveSpan` (counter
        exclusion applies), a propagated `TraceContext`, or None (a new
        root in a fresh trace)."""
        parent_span = parent if isinstance(parent, ActiveSpan) else None
        if parent is None:
            trace_id, parent_id = self.new_id(), None
        else:
            trace_id, parent_id = parent.trace_id, parent.span_id
        return ActiveSpan(
            self, trace_id, self.new_id(), parent_id, name, attrs, counters, prefixes, parent_span
        )

    @contextmanager
    def span(
        self,
        name: str,
        parent: "ActiveSpan | TraceContext | None" = None,
        counters: MetricsRegistry | None = None,
        prefixes: tuple[str, ...] | None = None,
        **attrs,
    ):
        """Context manager: open a span, make it *current* for the
        enclosed block (so `child_span` calls nest under it), and finish
        it on exit — tagged ``error`` when the body raises."""
        active = self.start(name, parent=parent, counters=counters, prefixes=prefixes, **attrs)
        token = _CURRENT.set(active)
        try:
            yield active
        except BaseException:
            active.finish(status="error")
            raise
        finally:
            _CURRENT.reset(token)
            active.finish()

    def record(
        self,
        name: str,
        start: float,
        end: float,
        *,
        trace_id: str,
        parent_id: str | None = None,
        status: str = "ok",
        attrs: dict | None = None,
        counters: dict | None = None,
    ) -> SpanRecord:
        """Directly land an already-timed span (queue waits, mirrors)."""
        record = SpanRecord(
            trace_id=trace_id,
            span_id=self.new_id(),
            parent_id=parent_id,
            name=name,
            start=start,
            end=end,
            status=status,
            attrs=dict(attrs or {}),
            counters=dict(counters or {}),
        )
        self._append(record)
        return record

    def _append(self, record: SpanRecord) -> None:
        self._spans.append(record)
        if len(self._spans) > self.max_spans:
            del self._spans[: len(self._spans) - self.max_spans]

    # -- retrieval ----------------------------------------------------------

    @property
    def spans(self) -> list[SpanRecord]:
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def trace(self, trace_id: str) -> list[SpanRecord]:
        """Every retained span of one trace, in finish order."""
        return [s for s in self._spans if s.trace_id == trace_id]

    def subtree(self, span_id: str) -> list[SpanRecord]:
        """A span and every retained descendant of it."""
        want = {span_id}
        out: list[SpanRecord] = []
        # Spans finish children-first, so sweep until closure.
        changed = True
        members: list[SpanRecord] = []
        while changed:
            changed = False
            for s in self._spans:
                if s in members:
                    continue
                if s.span_id in want or (s.parent_id in want):
                    members.append(s)
                    if s.span_id not in want:
                        want.add(s.span_id)
                    changed = True
        out = [s for s in self._spans if s in members]
        return out

    def recent_traces(self, n: int = 8) -> list[list[SpanRecord]]:
        """The last ``n`` distinct traces (newest first), spans grouped."""
        seen: list[str] = []
        for s in reversed(self._spans):
            if s.trace_id not in seen:
                seen.append(s.trace_id)
            if len(seen) >= n:
                break
        return [self.trace(t) for t in seen]

    def drain(self) -> list[SpanRecord]:
        out, self._spans = self._spans, []
        return out


class NullTraceCollector(TraceCollector):
    """The disabled path: never samples, never retains."""

    def __init__(self):
        super().__init__(sample_rate=0.0, max_spans=1)

    def should_sample(self) -> bool:
        return False

    def _append(self, record: SpanRecord) -> None:
        pass


NULL_TRACER = NullTraceCollector()


def active_tracer(tracer: TraceCollector | None) -> TraceCollector:
    """Normalize an optional tracer argument: ``None`` means disabled."""
    return tracer if tracer is not None else NULL_TRACER


def current_span() -> ActiveSpan | None:
    """The span the running task is inside, if any."""
    return _CURRENT.get()


class _NullSpanCM:
    """Shared no-op context manager for the untraced fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpanCM()


def child_span(
    name: str,
    counters: MetricsRegistry | None = None,
    prefixes: tuple[str, ...] | None = None,
    **attrs,
):
    """Span under the *current* span, or a no-op when nothing is traced.

    This is how instrumented layers (query engine, SSTable reader, value
    log) participate in tracing without taking a tracer argument: one
    ContextVar read decides, and only sampled requests pay for spans.
    """
    parent = _CURRENT.get()
    if parent is None:
        return _NULL_SPAN
    return parent.collector.span(
        name,
        parent=parent,
        counters=counters,
        prefixes=prefixes,
        **attrs,
    )
