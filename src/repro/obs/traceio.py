"""Machine-readable views of traces: JSONL, Chrome ``trace_event``, trees.

Mirrors `repro.obs.export` for spans instead of metric series:

* **JSONL** (schema ``repro.trace/v1``) — a header line followed by one
  span per line; `load_trace_jsonl(dump_trace_jsonl(spans))` round-trips.
* **Chrome trace_event** — the ``{"traceEvents": [...]}`` document
  ``about://tracing`` and Perfetto load directly: each span becomes a
  complete ("ph": "X") event, traces map to thread lanes, and the span's
  attrs/counters land in ``args``.
* **Trees** — `build_trees` reassembles parent links into nested nodes
  and `render_tree` draws the ASCII view the CLI prints for a sampled
  slow request.
"""

from __future__ import annotations

import json

from .trace import SpanRecord

__all__ = [
    "TRACE_SCHEMA",
    "span_to_dict",
    "span_from_dict",
    "dump_trace_jsonl",
    "load_trace_jsonl",
    "chrome_trace",
    "build_trees",
    "render_tree",
]

TRACE_SCHEMA = "repro.trace/v1"


def span_to_dict(span: SpanRecord) -> dict:
    out = {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start,
        "end": span.end,
        "status": span.status,
    }
    if span.attrs:
        out["attrs"] = dict(span.attrs)
    if span.counters:
        out["counters"] = dict(span.counters)
    return out


def span_from_dict(fields: dict) -> SpanRecord:
    return SpanRecord(
        trace_id=fields["trace_id"],
        span_id=fields["span_id"],
        parent_id=fields.get("parent_id"),
        name=fields["name"],
        start=float(fields["start"]),
        end=float(fields["end"]),
        status=fields.get("status", "ok"),
        attrs=dict(fields.get("attrs", {})),
        counters=dict(fields.get("counters", {})),
    )


def dump_trace_jsonl(spans) -> str:
    """Header line + one span per line (ends with a newline when any)."""
    lines = [json.dumps({"schema": TRACE_SCHEMA}, sort_keys=True)]
    lines += [json.dumps(span_to_dict(s), sort_keys=True) for s in spans]
    return "\n".join(lines) + "\n"


def load_trace_jsonl(text: str) -> list[SpanRecord]:
    """Inverse of `dump_trace_jsonl` (schema/blank lines skipped)."""
    out: list[SpanRecord] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        fields = json.loads(line)
        if "schema" in fields and "span_id" not in fields:
            if fields["schema"] != TRACE_SCHEMA:
                raise ValueError(f"unsupported trace schema {fields['schema']!r}")
            continue
        out.append(span_from_dict(fields))
    return out


def chrome_trace(spans) -> dict:
    """Spans as a Chrome/Perfetto ``trace_event`` document.

    Timestamps are microseconds relative to the earliest span, one
    ``tid`` lane per trace id, duration ("X") events throughout — load
    the JSON straight into ``about://tracing``.
    """
    spans = list(spans)
    origin = min((s.start for s in spans), default=0.0)
    lanes: dict[str, int] = {}
    events = []
    for s in spans:
        tid = lanes.setdefault(s.trace_id, len(lanes) + 1)
        args: dict = {"trace_id": s.trace_id, "span_id": s.span_id, "status": s.status}
        if s.attrs:
            args.update({f"attr.{k}": v for k, v in s.attrs.items()})
        if s.counters:
            args.update({f"counter.{k}": v for k, v in s.counters.items()})
        events.append(
            {
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ph": "X",
                "ts": round((s.start - origin) * 1e6, 3),
                "dur": round(s.duration * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
    return {
        "displayTimeUnit": "ms",
        "metadata": {"schema": TRACE_SCHEMA},
        "traceEvents": events,
    }


def build_trees(spans) -> list[dict]:
    """Nest spans by parent link: ``{"span": SpanRecord, "children": [...]}``.

    Roots are spans whose parent is absent from the set (either a true
    root or a span whose remote parent lives in another process — the
    client side of a propagated trace).  Children sort by start time.
    """
    spans = list(spans)
    by_id = {s.span_id: s for s in spans}
    nodes = {s.span_id: {"span": s, "children": []} for s in spans}
    roots = []
    for s in sorted(spans, key=lambda s: s.start):
        if s.parent_id is not None and s.parent_id in by_id:
            nodes[s.parent_id]["children"].append(nodes[s.span_id])
        else:
            roots.append(nodes[s.span_id])
    return roots


def _render_node(node: dict, lines: list[str], depth: int, show_counters: bool) -> None:
    s: SpanRecord = node["span"]
    pad = "  " * depth
    dur_ms = s.duration * 1e3
    extras = ""
    if s.status != "ok":
        extras += f" !{s.status}"
    interesting = {k: v for k, v in s.attrs.items() if k not in ("key", "epoch")}
    if interesting:
        extras += " " + " ".join(f"{k}={v}" for k, v in sorted(interesting.items()))
    lines.append(f"{pad}{s.name:<{max(1, 28 - len(pad))}} {dur_ms:9.3f} ms{extras}")
    if show_counters and s.counters:
        for key in sorted(s.counters):
            lines.append(f"{pad}  · {key} +{s.counters[key]:g}")
    for child in node["children"]:
        _render_node(child, lines, depth + 1, show_counters)


def render_tree(spans, show_counters: bool = True) -> str:
    """ASCII span tree (per trace) with durations and counter deltas."""
    roots = build_trees(spans)
    if not roots:
        return "(no spans)"
    lines: list[str] = []
    for root in roots:
        _render_node(root, lines, 0, show_counters)
    return "\n".join(lines)
