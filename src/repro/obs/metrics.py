"""Metric primitives and the hierarchical registry.

One `MetricsRegistry` holds every measurement a run produces: counters
(monotonic totals — records shuffled, bytes on the wire), gauges (last
observed level — table utilization, chain length), and histograms (full
distributions — span durations, read amplification per query).  Series
are identified by a dotted name plus a label set, so the same counter can
exist once per format, per rank, or per storage category and still be
rolled up afterwards with `MetricsRegistry.rollup`.

Instrumented code never checks "is telemetry on?": the disabled path is a
`NullRegistry` whose instruments are shared no-op singletons, so hot loops
pay one attribute call on a do-nothing object.  Components take an
optional ``metrics`` argument and normalize it with `active`::

    self.metrics = active(metrics)                  # None -> NULL_REGISTRY
    self._wire_bytes = self.metrics.counter("pipeline.wire_bytes",
                                            format=fmt.name, rank=rank)
    ...
    self._wire_bytes.inc(len(payload))              # no-op when disabled
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "active",
    "LabelSet",
]

LabelSet = tuple[tuple[str, str], ...]


def _labelset(labels: dict) -> LabelSet:
    """Normalize a label dict to a hashable, sorted (key, value) tuple."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self):
        self.value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up, got {n}")
        self.value += n

    def _merge(self, other: "Counter") -> None:
        self.value += other.value

    def _state(self):
        return {"value": self.value}

    def _load(self, state: dict) -> None:
        self.value = state["value"]


class Gauge:
    """Last observed level (can move both ways)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self):
        self.value = 0.0

    def set(self, v: float) -> None:
        self.value = v

    def inc(self, n: float = 1) -> None:
        self.value += n

    def dec(self, n: float = 1) -> None:
        self.value -= n

    def _merge(self, other: "Gauge") -> None:
        self.value = other.value  # last writer wins across a merge

    def _state(self):
        return {"value": self.value}

    def _load(self, state: dict) -> None:
        self.value = state["value"]


class Histogram:
    """Distribution of observed values (kept exact; runs are sim-scale)."""

    __slots__ = ("_values",)
    kind = "histogram"

    def __init__(self):
        self._values: list[float] = []

    def observe(self, v: float) -> None:
        self._values.append(float(v))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def quantile(self, q: float) -> float:
        """Linear-interpolated quantile, q in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return 0.0
        xs = sorted(self._values)
        pos = q * (len(xs) - 1)
        lo = math.floor(pos)
        hi = math.ceil(pos)
        if lo == hi:
            return xs[lo]
        frac = pos - lo
        return xs[lo] * (1 - frac) + xs[hi] * frac

    def quantiles(self, qs=(0.5, 0.9, 0.95, 0.99)) -> dict[float, float]:
        return {q: self.quantile(q) for q in qs}

    def summary(self) -> dict:
        """The quantile summary snapshots and bench artifacts embed."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max,
        }

    def _merge(self, other: "Histogram") -> None:
        self._values.extend(other._values)

    def _state(self):
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p90": self.quantile(0.9),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "values": list(self._values),
        }

    def _load(self, state: dict) -> None:
        self._values = [float(v) for v in state.get("values", [])]


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Hierarchical store of labeled metric series.

    Series names are dotted paths (``layer.metric``); each (name, labels)
    pair maps to exactly one instrument, created on first use.  Asking for
    an existing series with a different kind is an error — a name means one
    thing everywhere.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._series: dict[tuple[str, LabelSet], Counter | Gauge | Histogram] = {}

    # -- instrument access -------------------------------------------------

    def _get(self, kind: str, name: str, labels: dict):
        key = (name, _labelset(labels))
        inst = self._series.get(key)
        if inst is None:
            inst = _KINDS[kind]()
            self._series[key] = inst
        elif inst.kind != kind:
            raise ValueError(f"metric {name!r} already registered as {inst.kind}, not {kind}")
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get("counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get("gauge", name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._get("histogram", name, labels)

    @contextmanager
    def timed(self, name: str, clock=time.perf_counter, **labels):
        """Time the enclosed block into histogram ``name``.

        The interval is recorded even when the body raises; the failing
        series is distinguished by an ``outcome="error"`` label instead of
        being dropped.
        """
        start = clock()
        try:
            yield
        except BaseException:
            self.histogram(name, outcome="error", **labels).observe(clock() - start)
            raise
        self.histogram(name, outcome="ok", **labels).observe(clock() - start)

    # -- inspection --------------------------------------------------------

    def series(self) -> Iterator[tuple[str, LabelSet, Counter | Gauge | Histogram]]:
        """Every (name, labels, instrument), sorted for stable output."""
        for (name, labels), inst in sorted(self._series.items()):
            yield name, labels, inst

    def __len__(self) -> int:
        return len(self._series)

    def total(self, name: str, **label_filter) -> float:
        """Sum of counter values (or histogram totals) across every series
        with this name whose labels include ``label_filter``."""
        want = set(_labelset(label_filter))
        out = 0.0
        for (n, labels), inst in self._series.items():
            if n != name or not want.issubset(labels):
                continue
            out += inst.total if isinstance(inst, Histogram) else inst.value
        return out

    # -- combination -------------------------------------------------------

    def checkpoint(self) -> dict:
        """Opaque position marker for `delta`.

        Captures where every live series currently stands (counter values,
        histogram observation counts, gauge levels) without copying any
        observations.  A long-lived registry — a pool worker's, charged by
        cached engines across many tasks — takes a checkpoint before each
        task and ships only ``delta(mark)`` back, so the parent merge sums
        exactly what *this* task did.
        """
        marks: dict[tuple[str, LabelSet], float | int] = {}
        for key, inst in self._series.items():
            marks[key] = inst.count if inst.kind == "histogram" else inst.value
        return marks

    def delta(self, marks: dict) -> "MetricsRegistry":
        """New registry holding only what happened since ``marks``.

        Counters carry the increment (zero-increment series are dropped),
        histograms the observations appended since the checkpoint, gauges
        their current level (a merge of the delta applies them last-wins,
        same as merging the full registry would).
        """
        out = MetricsRegistry(self.name)
        for key, inst in self._series.items():
            mark = marks.get(key, 0)
            if inst.kind == "counter":
                d = inst.value - mark
                if d:
                    out._series[key] = c = Counter()
                    c.value = d
            elif inst.kind == "gauge":
                out._series[key] = g = Gauge()
                g.value = inst.value
            else:
                tail = inst._values[int(mark):]
                if tail:
                    out._series[key] = h = Histogram()
                    h._values = list(tail)
        return out

    def merge(self, other: "MetricsRegistry", **extra_labels) -> "MetricsRegistry":
        """Fold another registry into this one, in place.

        ``extra_labels`` are added to every incoming series — the rank-
        aggregation pattern: ``global.merge(rank_registry, rank=r)``.
        Counters add, histograms pool observations, gauges keep the
        incoming value.  Returns self for chaining.
        """
        for (name, labels), inst in other._series.items():
            merged = dict(labels)
            merged.update({k: str(v) for k, v in extra_labels.items()})
            self._get(inst.kind, name, merged)._merge(inst)
        return self

    def rollup(self, *drop_labels: str) -> "MetricsRegistry":
        """New registry with the given label keys removed, series combined.

        ``registry.rollup("rank")`` turns per-rank series into cluster-wide
        totals while leaving every other label (format, category) intact.
        """
        out = MetricsRegistry(self.name)
        for (name, labels), inst in self._series.items():
            kept = {k: v for k, v in labels if k not in drop_labels}
            out._get(inst.kind, name, kept)._merge(inst)
        return out


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, n=1):
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, v):
        pass

    def inc(self, n=1):
        pass

    def dec(self, n=1):
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, v):
        pass


class NullRegistry(MetricsRegistry):
    """The disabled path: hands out shared do-nothing instruments.

    Never accumulates state, so instrumentation left in a hot loop costs
    one method call on a no-op object and tier-1 perf tests see nothing.
    """

    _COUNTER = _NullCounter()
    _GAUGE = _NullGauge()
    _HISTOGRAM = _NullHistogram()

    def __init__(self):
        super().__init__("null")

    def counter(self, name: str, **labels) -> Counter:
        return self._COUNTER

    def gauge(self, name: str, **labels) -> Gauge:
        return self._GAUGE

    def histogram(self, name: str, **labels) -> Histogram:
        return self._HISTOGRAM

    @contextmanager
    def timed(self, name: str, clock=time.perf_counter, **labels):
        yield

    def checkpoint(self) -> dict:
        return {}

    def delta(self, marks: dict) -> "MetricsRegistry":
        return MetricsRegistry("null-delta")  # empty: nothing accumulates

    def merge(self, other, **extra_labels):
        return self

    def rollup(self, *drop_labels):
        return self


NULL_REGISTRY = NullRegistry()


def active(metrics: MetricsRegistry | None) -> MetricsRegistry:
    """Normalize an optional registry argument: ``None`` means disabled."""
    return metrics if metrics is not None else NULL_REGISTRY
