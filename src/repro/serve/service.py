"""`QueryService`: the concurrent online query-serving front end.

One asyncio service mounts a recovered/attached `MultiEpochStore` and
turns the synchronous, single-caller read path into something that can
absorb skewed traffic from many concurrent clients:

* **Batching & coalescing** — concurrent lookups for the same
  ``(epoch, key)`` share one store probe; each dispatch window drains up
  to ``max_batch`` admitted requests and groups them per candidate rank,
  so a partition's table is touched once per window rather than once per
  request.
* **Two-level read cache** — a bounded LRU of finished responses keyed by
  ``(epoch, key)`` plus a negative cache of refuted ``(epoch, key, rank)``
  candidates, so repeat FilterKV queries skip the aux table's false
  candidates entirely (`repro.serve.cache`).
* **Admission control** — a bounded in-flight request budget and
  queue-depth watermarks with hysteresis: past the high watermark the
  service sheds new arrivals with an explicit ``overloaded`` response
  until the queue drains below the low watermark, instead of letting
  latency collapse.  Per-request deadlines cancel stragglers: an expired
  waiter gets ``deadline_exceeded``, and a queued request all of whose
  waiters expired is dropped without touching the store.

Epochs are immutable once committed, so both caches key by *resolved*
epoch: committing a new epoch shifts what an unqualified query resolves
to (newest wins) rather than mutating cached state — the stale entry can
only ever be served for an explicit historical epoch, where it is the
correct answer.  `invalidate` exists for belt-and-braces cache drops.

Everything is single-event-loop: the batch executor runs synchronously
inside the dispatcher task, so no locks guard the caches or engines.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from ..core.reader import QueryStats
from ..obs import (
    ActiveSpan,
    MetricsRegistry,
    TimeseriesHub,
    TraceCollector,
    TraceContext,
    counter_key,
    span_to_dict,
)
from .cache import LRUCache, NegativeCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.multiepoch import MultiEpochStore
    from ..core.reader import CachedQueryEngine

__all__ = [
    "QueryService",
    "ServeResponse",
    "ANY_EPOCH",
    "OK",
    "NOT_FOUND",
    "OVERLOADED",
    "DEADLINE_EXCEEDED",
    "ERROR",
]

# Sentinel epoch for "the newest value anywhere": the request walks live
# epochs newest-first and stops at the first hit — the cross-epoch view
# compaction preserves.  Cache entries for it are versioned by the newest
# epoch id, so both new commits and compactions shift the cache key.
ANY_EPOCH = -1

OK = "ok"
NOT_FOUND = "not_found"
OVERLOADED = "overloaded"
DEADLINE_EXCEEDED = "deadline_exceeded"
ERROR = "error"

STATUSES = (OK, NOT_FOUND, OVERLOADED, DEADLINE_EXCEEDED, ERROR)

# Counter families a traced request attributes to its spans.  Everything
# the serve stack can touch: its own counters, the engines' reader.*,
# aux-table fetches, and the storage layer underneath.
_TRACE_PREFIXES = ("serve.", "reader.", "aux.", "sstable.", "vlog.")


@dataclass(frozen=True)
class ServeResponse:
    """One request's outcome.  ``status`` is always meaningful: a request
    is either answered (``ok`` / ``not_found``), explicitly refused
    (``overloaded``), timed out (``deadline_exceeded``), or failed
    (``error`` + ``detail``) — never silently dropped.

    ``code`` is the machine-readable error class (protocol v2): routers
    branch on it (``unknown_epoch`` means *my view is stale*, ``closed``
    and transport faults mean *retry elsewhere*) where ``detail`` is for
    humans.  ``shard_state`` is the answering service's piggybacked
    ``(compaction generation, newest epoch)`` token — how a router
    notices that a shard moved underneath its sealed-aux view without a
    dedicated poll.
    """

    status: str
    key: int
    epoch: int | None
    value: bytes | None = None
    cached: bool = False
    detail: str = ""
    trace: list | None = None  # span dicts, only on sampled requests
    code: str = ""
    shard_state: tuple | None = None

    @property
    def ok(self) -> bool:
        return self.status == OK


class _Pending:
    """One admitted, not-yet-executed probe shared by its waiters.

    ``epoch`` is the resolved cache token: a live epoch id, or the
    ``("any", newest)`` tuple for cross-epoch requests.
    """

    __slots__ = ("key", "epoch", "future", "live_waiters", "traced")

    def __init__(self, key: int, epoch, future: asyncio.Future):
        self.key = key
        self.epoch = epoch
        self.future = future
        self.live_waiters = 1
        # (root span, enqueue time) per *traced* waiter — empty on the
        # fast path, so untraced requests never touch it.
        self.traced: list[tuple[ActiveSpan, float]] = []


class _FilterWork:
    """Per-request probe state while a FilterKV batch executes."""

    __slots__ = ("key", "stats", "ranks", "value", "found")

    def __init__(self, key: int, stats: QueryStats, ranks: list[int]):
        self.key = key
        self.stats = stats
        self.ranks = ranks
        self.value: bytes | None = None
        self.found = False


@dataclass
class _Shedder:
    """Queue-depth watermarks with hysteresis.

    Above ``high`` the service sheds every new arrival; shedding stays on
    until the queue drains to ``low``, so a saturating client sees a
    clean ``overloaded`` band instead of flapping at the boundary.
    """

    high: int
    low: int
    shedding: bool = field(default=False, init=False)

    def __post_init__(self):
        if self.low < 0 or self.high < 1 or self.low >= self.high:
            raise ValueError(f"need 0 <= low < high, got low={self.low} high={self.high}")

    def should_shed(self, depth: int) -> bool:
        if self.shedding:
            if depth <= self.low:
                self.shedding = False
        elif depth >= self.high:
            self.shedding = True
        return self.shedding


class QueryService:
    """Serve point queries over a `MultiEpochStore` to many asyncio tasks.

    Parameters
    ----------
    store:
        The mounted dataset.  New epochs committed while serving are
        picked up on the next request (newest-epoch resolution).
    max_batch:
        Most requests one dispatch window executes together.
    batch_window_s:
        How long the dispatcher waits to fill a window after the first
        request arrives.  0 (default) means "drain whatever is queued":
        coalescing still happens under concurrency without adding idle
        latency.
    result_cache_entries / negative_cache_entries:
        Bounds for the two read caches.
    max_inflight:
        Budget of admitted-but-unanswered requests (coalesced waiters
        each count); beyond it new arrivals are shed.
    queue_high_watermark / queue_low_watermark:
        Shedding hysteresis on the dispatch queue depth.
    default_deadline_s:
        Applied to requests that do not carry their own deadline.
    table_cache_entries:
        Per-epoch engine reader-cache bound (see `CachedQueryEngine`).
    metrics:
        Registry for the ``serve.*`` (and the engines' ``reader.*``)
        series; a private real registry is created when omitted, because
        a serving tier's hit rates and shed counts are part of its
        behavior, not optional debug output.
    tracer:
        Span collector for sampled requests.  Defaults to a collector
        with ``sample_rate=0`` — the service originates no traces of its
        own but still records requests whose clients sampled them (the
        `TraceContext` arrives in the frame header).  Pass a collector
        with a positive rate to sample server-side.
    stats_window_s:
        Trailing window for `live_stats` (the ``STATS`` verb / ``repro
        top`` view).
    """

    def __init__(
        self,
        store: "MultiEpochStore",
        *,
        max_batch: int = 64,
        batch_window_s: float = 0.0,
        result_cache_entries: int = 4096,
        negative_cache_entries: int = 65536,
        max_inflight: int = 1024,
        queue_high_watermark: int = 512,
        queue_low_watermark: int | None = None,
        default_deadline_s: float | None = None,
        table_cache_entries: int = 64,
        parallel_probe: bool = False,
        pool=None,
        pool_min_keys: int = 64,
        metrics: MetricsRegistry | None = None,
        tracer: TraceCollector | None = None,
        stats_window_s: float = 10.0,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_inflight < 1:
            raise ValueError(f"max_inflight must be >= 1, got {max_inflight}")
        self.store = store
        self.max_batch = max_batch
        self.batch_window_s = batch_window_s
        self.max_inflight = max_inflight
        self.default_deadline_s = default_deadline_s
        self.table_cache_entries = table_cache_entries
        self.parallel_probe = parallel_probe
        # Optional WorkerPool: dispatch windows big enough to beat the
        # shipping cost probe across processes instead of on this thread.
        self._pool = pool
        self.pool_min_keys = pool_min_keys
        self._pooled = None  # lazy PooledReads over (store, pool)
        self._pool_tasks: set[asyncio.Task] = set()
        self.metrics = metrics if metrics is not None else MetricsRegistry("serve")
        # A real collector even when tracing "off": sample_rate 0 means
        # the service originates no traces, but a request that arrives
        # with a sampled TraceContext (the client decided) still records.
        self.tracer = tracer if tracer is not None else TraceCollector()
        self._tracer_may_sample = self.tracer.sample_rate > 0.0
        self.timeseries = TimeseriesHub(
            STATUSES,
            answered=(OK, NOT_FOUND),
            shed=(OVERLOADED, DEADLINE_EXCEEDED),
            window_s=stats_window_s,
        )
        low = (
            queue_low_watermark
            if queue_low_watermark is not None
            else max(0, queue_high_watermark // 2)
        )
        self._shedder = _Shedder(high=queue_high_watermark, low=low)
        self._rcache = LRUCache(result_cache_entries, self.metrics, name="serve.result_cache")
        self._negcache = NegativeCache(negative_cache_entries, self.metrics)
        self._engines: dict[int, "CachedQueryEngine"] = {}
        # Compaction generation last observed on the store.  When it moves,
        # mounted engines hold handles on extents the sweep deleted and
        # epoch-keyed cache entries may describe retired epochs — both are
        # dropped before the next probe runs.
        self._store_gen = getattr(store, "compactions", 0)
        self._queue: asyncio.Queue = asyncio.Queue()
        self._index: dict[tuple, _Pending] = {}
        self._inflight = 0
        self._dispatcher: asyncio.Task | None = None
        self._closed = False
        m = self.metrics
        self._m_requests = {s: m.counter("serve.requests", status=s) for s in STATUSES}
        self._m_latency = {s: m.histogram("serve.latency_seconds", status=s) for s in STATUSES}
        self._m_sheds = m.counter("serve.sheds")
        self._m_coalesced = m.counter("serve.coalesced")
        self._m_batches = m.counter("serve.batches")
        self._m_occupancy = m.histogram("serve.batch_occupancy")
        self._m_deadline_dropped = m.counter("serve.deadline_dropped")
        self._m_inflight_gauge = m.gauge("serve.inflight")
        self._m_pooled_windows = m.counter("serve.pooled_windows")

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "QueryService":
        self._ensure_dispatcher()
        return self

    async def close(self) -> None:
        """Drain already-admitted requests, then stop the dispatcher."""
        if self._closed:
            return
        self._closed = True
        if self._dispatcher is not None:
            self._queue.put_nowait(None)  # sentinel: FIFO, so admitted work drains first
            await self._dispatcher
            self._dispatcher = None
        if self._pool_tasks:  # pooled windows still out on the workers
            await asyncio.gather(*list(self._pool_tasks), return_exceptions=True)
        if self._pooled is not None:
            self._pooled.release()
            self._pooled = None
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()

    async def __aenter__(self) -> "QueryService":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    def _ensure_dispatcher(self) -> None:
        if self._dispatcher is None or self._dispatcher.done():
            self._dispatcher = asyncio.get_running_loop().create_task(self._dispatch_loop())

    # -- cache/version management -----------------------------------------

    def invalidate(self) -> None:
        """Drop both read caches and mounted engines.

        Not needed for correctness on epoch commits (resolution is
        versioned by epoch — see the module docstring); exists for
        defense in depth and for tests.
        """
        self._rcache.clear()
        self._negcache.clear()
        for engine in self._engines.values():
            engine.close()
        self._engines.clear()

    def _engine(self, epoch: int) -> "CachedQueryEngine":
        engine = self._engines.get(epoch)
        if engine is None:
            engine = self.store.cached_engine(
                epoch,
                metrics=self.metrics,
                table_cache_entries=self.table_cache_entries,
                parallel_probe=self.parallel_probe,
            )
            self._engines[epoch] = engine
        return engine

    def _check_generation(self) -> None:
        """Pick up a compaction swap: drop engines and epoch-keyed caches."""
        gen = getattr(self.store, "compactions", 0)
        if gen != self._store_gen:
            self.invalidate()
            self._store_gen = gen

    def _resolve_epoch(self, epoch: int | None):
        """Which committed epoch a request addresses (newest when
        unqualified).  ``None`` means the store has no epochs yet.

        `ANY_EPOCH` resolves to the ``("any", newest)`` token: hashable
        (it versions the result cache — a new commit or a compaction
        moves the newest id, shifting the key) and recognized by the
        dispatcher as "walk all live epochs".  Epoch ids retired by
        compaction resolve to the merged epoch that absorbed them.
        """
        epochs = self.store.epochs
        if not epochs:
            return None
        if epoch is None:
            return epochs[-1]
        epoch = int(epoch)
        if epoch == ANY_EPOCH:
            return ("any", epochs[-1])
        if epoch in epochs:
            return epoch
        resolve = getattr(self.store, "resolve_epoch", None)
        if resolve is not None:
            try:
                return resolve(epoch)
            except KeyError:
                pass
        raise LookupError(f"no such epoch {epoch} (have {epochs})")

    # -- the request path --------------------------------------------------

    async def get(
        self,
        key: int,
        epoch: int | None = None,
        deadline_s: float | None = None,
        trace: "TraceContext | dict | None" = None,
    ) -> ServeResponse:
        """Point lookup.  Always returns a `ServeResponse`; never raises
        for data-plane conditions (bad epoch, overload, deadline).

        ``trace`` is an optional propagated `TraceContext` (or its wire
        dict); a sampled context — or a hit on the local tracer's sample
        rate — makes the response carry its full span tree.
        """
        t0 = time.perf_counter()
        key = int(key)
        # Fast path: no propagated context and a tracer that never samples
        # means no request here can be traced — skip the helper entirely
        # (it costs a wire-context parse per call, which is pure waste at
        # the default sample rate of 0).
        if trace is None and not self._tracer_may_sample:
            root = None
        else:
            root = self._trace_begin(key, epoch, trace)
        if self._closed:
            return self._done(
                t0,
                ServeResponse(ERROR, key, epoch, detail="service closed", code="closed"),
                root,
            )
        self._check_generation()
        try:
            resolved = self._resolve_epoch(epoch)
        except LookupError as e:
            return self._done(
                t0,
                ServeResponse(ERROR, key, epoch, detail=str(e), code="unknown_epoch"),
                root,
            )
        if resolved is None:
            return self._done(t0, ServeResponse(NOT_FOUND, key, epoch), root)

        hit, entry = self._rcache.lookup((resolved, key))
        if root is not None:
            root.charge("serve.result_cache.hits" if hit else "serve.result_cache.misses")
        if hit:
            status, value, found_epoch = entry
            return self._done(
                t0, ServeResponse(status, key, found_epoch, value=value, cached=True), root
            )

        # Tuple tokens are cache/dispatch internals; responses that carry
        # no answer report the requested sentinel instead.
        public = resolved if isinstance(resolved, int) else ANY_EPOCH

        # Admission control: explicit refusal beats queueing collapse.
        if self._inflight >= self.max_inflight or self._shedder.should_shed(
            self._queue.qsize()
        ):
            self._m_sheds.inc()
            if root is not None:
                root.charge("serve.sheds")
            self._trace_shed(root, "overloaded")
            return self._done(t0, ServeResponse(OVERLOADED, key, public), root)

        self._ensure_dispatcher()
        ck = (resolved, key)
        pending = self._index.get(ck)
        if pending is not None:
            pending.live_waiters += 1
            self._m_coalesced.inc()
            if root is not None:
                root.annotate(coalesced=True)
                root.charge("serve.coalesced")
        else:
            pending = _Pending(key, resolved, asyncio.get_running_loop().create_future())
            self._index[ck] = pending
            self._queue.put_nowait(pending)
        if root is not None:
            pending.traced.append((root, time.perf_counter()))
        self._inflight += 1
        self._m_inflight_gauge.inc()
        if deadline_s is None:
            deadline_s = self.default_deadline_s
        try:
            if deadline_s is None:
                response = await asyncio.shield(pending.future)
            else:
                response = await asyncio.wait_for(
                    asyncio.shield(pending.future), timeout=deadline_s
                )
        except asyncio.TimeoutError:
            pending.live_waiters -= 1
            self._trace_shed(root, "deadline")
            return self._done(t0, ServeResponse(DEADLINE_EXCEEDED, key, public), root)
        finally:
            self._inflight -= 1
            self._m_inflight_gauge.dec()
        pending.live_waiters -= 1
        return self._done(t0, response, root)

    def _done(
        self, t0: float, response: ServeResponse, root: ActiveSpan | None = None
    ) -> ServeResponse:
        dt = time.perf_counter() - t0
        self._m_requests[response.status].inc()
        self._m_latency[response.status].observe(dt)
        self.timeseries.record(response.status, dt)
        if root is not None:
            root.annotate(status=response.status)
            if response.cached:
                root.annotate(cached=True)
            root.charge(counter_key("serve.requests", (("status", response.status),)))
            root.finish(
                status="ok" if response.status in (OK, NOT_FOUND) else response.status
            )
            tree = self.tracer.trace(root.trace_id)
            response = replace(response, trace=[span_to_dict(s) for s in tree])
        return response

    # -- tracing helpers ---------------------------------------------------

    def _trace_begin(
        self, key: int, epoch: int | None, trace: "TraceContext | dict | None"
    ) -> ActiveSpan | None:
        """Open the request's root span when this request is sampled —
        either upstream (propagated context) or by the local tracer.

        The root takes no registry snapshot: it stays open across the
        await on the dispatcher, where concurrent requests interleave,
        so a snapshot delta would claim sibling requests' work.  Its own
        enumerable increments are attributed with `ActiveSpan.charge`;
        the shared probe work is attributed by the synchronous
        ``serve.batch`` span (charged to the window's lead traced
        request, like bulk-read I/O is charged to a group's first key).
        """
        ctx = trace if isinstance(trace, TraceContext) else TraceContext.from_wire(trace)
        if ctx is not None and not ctx.sampled:
            ctx = None
        if ctx is None and not self.tracer.should_sample():
            return None
        return self.tracer.start("serve.get", parent=ctx, key=key, epoch=epoch)

    def _trace_shed(self, root: ActiveSpan | None, reason: str) -> None:
        """Terminal zero-width span marking where a request was refused."""
        if root is None:
            return
        now = time.perf_counter()
        self.tracer.record(
            "serve.shed",
            now,
            now,
            trace_id=root.trace_id,
            parent_id=root.span_id,
            status="shed",
            attrs={"reason": reason},
        )

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is None:
                break
            batch = [first]
            stop = False
            if self.batch_window_s > 0:
                window_end = loop.time() + self.batch_window_s
                while len(batch) < self.max_batch:
                    timeout = window_end - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        nxt = await asyncio.wait_for(self._queue.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                    if nxt is None:
                        stop = True
                        break
                    batch.append(nxt)
            else:
                while len(batch) < self.max_batch:
                    try:
                        nxt = self._queue.get_nowait()
                    except asyncio.QueueEmpty:
                        break
                    if nxt is None:
                        stop = True
                        break
                    batch.append(nxt)
            self._run_batch(batch)
            if stop:
                break
            # One cooperative yield per window: waiters see their results
            # (and their deadline timers fire) before the next window.
            await asyncio.sleep(0)
        # Anything still queued after the sentinel was admitted while
        # closing; fail it explicitly rather than hanging its waiters.
        while not self._queue.empty():
            pending = self._queue.get_nowait()
            if pending is not None:
                self._finish(
                    pending,
                    ServeResponse(
                        ERROR,
                        pending.key,
                        self._public_epoch(pending.epoch),
                        detail="service closed",
                    ),
                )

    @staticmethod
    def _public_epoch(token) -> int | None:
        """The epoch a response may carry: internal tuple tokens map back
        to the `ANY_EPOCH` sentinel the client sent."""
        return token if (token is None or isinstance(token, int)) else ANY_EPOCH

    def _run_batch(self, batch: list[_Pending]) -> None:
        """Execute one dispatch window against the store (synchronous)."""
        self._m_batches.inc()
        self._m_occupancy.observe(len(batch))
        # A compaction that landed since these requests were admitted
        # deleted the extents the mounted engines hold handles on.
        self._check_generation()
        live: list[_Pending] = []
        for pending in batch:
            self._index.pop((pending.epoch, pending.key), None)
            if pending.live_waiters <= 0:
                # Every waiter gave up already: drop the probe entirely.
                self._m_deadline_dropped.inc()
                pending.future.set_result(
                    ServeResponse(
                        DEADLINE_EXCEEDED, pending.key, self._public_epoch(pending.epoch)
                    )
                )
            else:
                live.append(pending)
        now = time.perf_counter()
        for pending in live:
            for root, enqueued_at in pending.traced:
                self.tracer.record(
                    "serve.queue",
                    enqueued_at,
                    now,
                    trace_id=root.trace_id,
                    parent_id=root.span_id,
                )
        by_epoch: dict = {}
        for pending in live:
            by_epoch.setdefault(pending.epoch, []).append(pending)
        for token, items in by_epoch.items():
            if (
                self._pool is not None
                and isinstance(token, int)
                and len(items) >= self.pool_min_keys
                and not any(p.traced for p in items)
            ):
                # Big untraced single-epoch window: probe it on the worker
                # pool without blocking this dispatch loop.  Answers are
                # identical to the in-process path (the workers run the
                # same engine over a snapshot); the negative cache is
                # bypassed — it only ever removes probes known to miss —
                # and traced windows stay in-process so span attribution
                # keeps its lead-member convention.
                self._m_pooled_windows.inc()
                task = asyncio.get_running_loop().create_task(
                    self._run_group_pooled(token, items)
                )
                self._pool_tasks.add(task)
                task.add_done_callback(self._pool_tasks.discard)
                continue
            try:
                if isinstance(token, tuple):
                    runner = lambda items=items: self._probe_any(items)  # noqa: E731
                    epoch_attr = "any"
                else:
                    engine = self._engine(token)
                    runner = lambda e=engine, t=token, i=items: self._probe_group(  # noqa: E731
                        e, t, i
                    )
                    epoch_attr = token
                roots = [root for p in items for root, _ in p.traced]
                if roots:
                    self._probe_traced(runner, items, roots, epoch_attr)
                else:
                    runner()
            except Exception as e:  # fail this group loudly, keep serving
                for pending in items:
                    if not pending.future.done():
                        self._finish(
                            pending,
                            ServeResponse(
                                ERROR,
                                pending.key,
                                self._public_epoch(token),
                                detail=repr(e),
                            ),
                        )

    def _pooled_reads(self):
        if self._pooled is None:
            from ..parallel.reads import PooledReads  # local: avoid cycle

            self._pooled = PooledReads(
                self.store,
                self._pool,
                min_keys=self.pool_min_keys,
                metrics=self.metrics,
            )
        return self._pooled

    async def _run_group_pooled(self, epoch: int, items: list[_Pending]) -> None:
        """One dispatch window probed across the worker pool."""
        try:
            keys = np.fromiter((p.key for p in items), dtype=np.uint64, count=len(items))
            values, _ = await self._pooled_reads().get_many_async(keys, epoch)
            for pending, value in zip(items, values):
                status = OK if value is not None else NOT_FOUND
                self._finish(
                    pending, ServeResponse(status, pending.key, epoch, value=value)
                )
        except Exception as e:  # fail this window loudly, keep serving
            for pending in items:
                if not pending.future.done():
                    self._finish(
                        pending,
                        ServeResponse(ERROR, pending.key, epoch, detail=repr(e)),
                    )

    def _probe_group(self, engine, epoch: int, items: list[_Pending]) -> None:
        """One live epoch's window: bulk-probe and finish every pending."""
        keys = np.fromiter((p.key for p in items), dtype=np.uint64, count=len(items))
        values = self._bulk_values(engine, epoch, keys)
        for pending, value in zip(items, values):
            status = OK if value is not None else NOT_FOUND
            self._finish(pending, ServeResponse(status, pending.key, epoch, value=value))

    def _probe_any(self, items: list[_Pending]) -> None:
        """Cross-epoch window: walk live epochs newest-first, carrying only
        still-unanswered keys forward — the serving-tier twin of
        `MultiEpochStore.lookup_many`, sharing the per-epoch bulk probe
        (and, for FilterKV, the negative cache) with single-epoch windows.
        """
        live = list(self.store.epochs)
        n = len(items)
        values: list[bytes | None] = [None] * n
        where: list[int | None] = [None] * n
        remaining = list(range(n))
        for epoch in reversed(live):
            if not remaining:
                break
            engine = self._engine(epoch)
            keys = np.fromiter(
                (items[i].key for i in remaining), dtype=np.uint64, count=len(remaining)
            )
            vals = self._bulk_values(engine, epoch, keys)
            still: list[int] = []
            for i, value in zip(remaining, vals):
                if value is not None:
                    values[i] = value
                    where[i] = epoch
                else:
                    still.append(i)
            remaining = still
        newest = live[-1] if live else None
        for i, pending in enumerate(items):
            if values[i] is not None:
                response = ServeResponse(OK, pending.key, where[i], value=values[i])
            else:
                response = ServeResponse(NOT_FOUND, pending.key, newest)
            self._finish(pending, response)

    def _probe_traced(
        self, runner, items: list[_Pending], roots: list[ActiveSpan], epoch_attr
    ) -> None:
        """Probe with the window's shared work attributed to spans.

        The *lead* traced member owns the real ``serve.batch`` subtree —
        its counter deltas are the window's shared cost, charged once
        (the same convention the bulk read path uses for physical I/O).
        Every other traced member gets a structural mirror of that
        subtree (fresh span ids, no counters, ``shared=True``) so its
        tree still shows *where* time went without double-counting.
        """
        lead = roots[0]
        with self.tracer.span(
            "serve.batch",
            parent=lead,
            counters=self.metrics,
            prefixes=_TRACE_PREFIXES,
            batch=len(items),
            epoch=epoch_attr,
            traced=len(roots),
        ) as bspan:
            runner()
        if len(roots) > 1:
            subtree = self.tracer.subtree(bspan.span_id)
            for other in roots[1:]:
                self._mirror_subtree(subtree, other)

    def _mirror_subtree(self, spans, member_root: ActiveSpan) -> None:
        """Copy a finished span subtree under another trace's root."""
        copy_of: dict[str, str] = {}
        for s in sorted(spans, key=lambda s: (s.start, s.end)):
            parent = copy_of.get(s.parent_id or "", member_root.span_id)
            rec = self.tracer.record(
                s.name,
                s.start,
                s.end,
                trace_id=member_root.trace_id,
                parent_id=parent,
                status=s.status,
                attrs={**s.attrs, "shared": True},
            )
            copy_of[s.span_id] = rec.span_id

    def _finish(self, pending: _Pending, response: ServeResponse) -> None:
        if response.status in (OK, NOT_FOUND):
            # The entry keeps the epoch the answer came from, so an
            # ANY_EPOCH cache hit still reports where the key was found.
            self._rcache.insert(
                (pending.epoch, pending.key),
                (response.status, response.value, response.epoch),
            )
        if not pending.future.done():
            pending.future.set_result(response)

    # -- probe strategies --------------------------------------------------

    def _bulk_values(self, engine, epoch: int, keys: np.ndarray) -> list[bytes | None]:
        """One epoch's bulk probe for a window's keys; values align with
        ``keys`` (None = not in this epoch).

        base / dataptr ride the engine's block-coalesced ``get_many``.
        filterkv resolves aux candidates minus refuted ranks in one
        vectorized pass per owner partition; ranks then ascend, each
        rank's survivors probed with one block-coalesced ``get_many``,
        and a key stops probing at its first hit — so the answers are
        identical to the sequential engine's candidate walk.  The
        grouping only changes *when* each table is touched, and the
        negative cache only removes probes that are known to miss.
        Physical I/O shared by a group is charged to the group's first
        request (aggregates stay exact).
        """
        if self.store.fmt.name != "filterkv":
            values, _ = engine.get_many(keys)
            return values

        owners = engine.partitioner.partition_of(keys)
        work = [_FilterWork(int(k), QueryStats(), []) for k in keys]
        for owner, pos in engine._groups(owners):
            aux = engine.aux_tables[owner]
            if aux is None:
                raise ValueError(f"no auxiliary table for partition {owner}")
            engine._charge_aux(owner, work[int(pos[0])].stats)
            counts, flat = aux.candidates_many(keys[pos])
            engine._m_candidates.inc(int(counts.sum()))
            splits = np.cumsum(counts)[:-1]
            for p, cand in zip(pos.tolist(), np.split(flat, splits)):
                w = work[p]
                w.ranks = [
                    int(r)
                    for r in cand
                    if not self._negcache.refuted(epoch, w.key, int(r))
                ]

        by_rank: dict[int, list[_FilterWork]] = {}
        for w in work:
            for rank in w.ranks:
                by_rank.setdefault(rank, []).append(w)
        for rank in sorted(by_rank):
            group = [w for w in by_rank[rank] if not w.found]
            if not group:
                continue
            lead = group[0].stats
            reader = engine._open_table(rank, lead)
            try:
                with engine._charged(lead, "data"):
                    vals, _ = reader.get_many(
                        np.fromiter(
                            (w.key for w in group), dtype=np.uint64, count=len(group)
                        )
                    )
            finally:
                engine._release_table(reader)
            for w, hit in zip(group, vals):
                w.stats.partitions_searched += 1
                if hit is None:
                    self._negcache.add(epoch, w.key, rank)
                else:
                    w.value = hit
                    w.found = True

        for w in work:
            w.stats.found = w.found
            engine._observe(w.stats)
        return [w.value for w in work]

    # -- introspection -----------------------------------------------------

    def state_token(self) -> list:
        """``[compaction generation, newest epoch id]`` — the version of
        this service's epoch set.  A router caches it next to the aux
        view it built from `aux_state` and treats any response carrying a
        different token as proof the view is stale (epoch committed or
        compaction swapped since the last refresh)."""
        epochs = self.store.epochs
        return [getattr(self.store, "compactions", 0), epochs[-1] if epochs else -1]

    def aux_state(self) -> dict:
        """The sealed aux blobs a router needs to hold this shard's
        routing state: per live epoch, the per-rank blobs exactly as they
        sit in storage (hex — the wire is JSON).  Formats without aux
        tables export ``None`` rows; a router then has nothing to prune
        with and scatters by ring.  ``state`` is the matching
        `state_token`, so the caller can detect a commit racing the
        export."""
        blobs = {}
        export = getattr(self.store, "aux_blobs", None)
        for epoch in self.store.epochs:
            per_rank = export(epoch) if export is not None else None
            blobs[str(epoch)] = (
                None if per_rank is None else [b.hex() for b in per_rank]
            )
        return {
            "format": self.store.fmt.name,
            "nranks": self.store.nranks,
            "state": self.state_token(),
            "epochs": blobs,
        }

    def stats(self) -> dict:
        """Point-in-time snapshot of the serving counters (JSON-safe)."""
        m = self.metrics
        ok_lat = m.histogram("serve.latency_seconds", status=OK)
        return {
            "epochs": list(self.store.epochs),
            "format": self.store.fmt.name,
            "requests": {s: int(m.total("serve.requests", status=s)) for s in STATUSES},
            "latency_ms": {
                "p50": round(ok_lat.quantile(0.5) * 1e3, 3),
                "p95": round(ok_lat.quantile(0.95) * 1e3, 3),
                "p99": round(ok_lat.quantile(0.99) * 1e3, 3),
                "count": ok_lat.count,
            },
            "result_cache": {
                "hits": int(m.total("serve.result_cache.hits")),
                "misses": int(m.total("serve.result_cache.misses")),
                "entries": len(self._rcache),
            },
            "negative_cache": {
                "skipped_probes": int(m.total("serve.negative_cache.skipped_probes")),
                "inserts": int(m.total("serve.negative_cache.inserts")),
                "entries": len(self._negcache),
            },
            "compactions": getattr(self.store, "compactions", 0),
            "sheds": int(m.total("serve.sheds")),
            "coalesced": int(m.total("serve.coalesced")),
            "batches": int(m.total("serve.batches")),
            "mean_batch_occupancy": round(m.histogram("serve.batch_occupancy").mean, 3),
            "inflight": self._inflight,
        }

    def live_stats(self, window_s: float | None = None) -> dict:
        """Trailing-window view (QPS, shed rate, latency quantiles) —
        the payload behind the ``stats_live`` verb and ``repro top``."""
        out = self.timeseries.snapshot(window_s=window_s)
        out["format"] = self.store.fmt.name
        out["epochs"] = list(self.store.epochs)
        out["inflight"] = self._inflight
        out["queue_depth"] = self._queue.qsize()
        out["shedding"] = self._shedder.shedding
        out["traces_retained"] = len(self.tracer)
        if self._pool is not None:
            out["workers"] = self._pool.stats()
        return out

    def recent_traces(self, n: int = 8) -> list[list[dict]]:
        """The last ``n`` retained traces as span-dict lists (JSON-safe)."""
        return [
            [span_to_dict(s) for s in spans] for spans in self.tracer.recent_traces(n)
        ]
