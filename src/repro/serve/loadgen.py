"""Load generation against a serving client (TCP or in-process).

Drives any client exposing ``async get(key, epoch=None, deadline_s=None)``
with a configurable popularity distribution and loop discipline:

* **Popularity** — ``zipfian`` (weight ∝ 1/rank^theta over a seeded
  shuffle of the key universe, so the hot set is arbitrary keys, not the
  smallest ones) or ``uniform``.  Skewed popularity is what makes the
  serving tier's result/negative caches and request coalescing pay off.
* **Closed loop** — ``concurrency`` workers each keep exactly one request
  outstanding: throughput adapts to service latency (classic benchmark
  discipline, no overload by construction).
* **Open loop** — arrivals are a Poisson process at ``rate_qps``
  regardless of completions: the discipline that actually exercises
  admission control, because a slow service faces a growing queue rather
  than a self-throttling client.

Every run returns a `LoadReport` with client-observed latency quantiles,
per-status counts, and — when the caller supplies the ground truth — a
count of *incorrect* responses (wrong value, or a miss for a present
key).  Shed (``overloaded``) and expired (``deadline_exceeded``) answers
are refusals, not wrong answers; they are never counted as incorrect.

Latency is measured from *send time* (the instant the ``get`` is issued),
not from arrival/enqueue time: in an open loop the generator can fall
behind its own arrival schedule, and folding that client-side queueing
into "latency" would make the quantiles disagree with what the server's
spans measure.  The arrival→send gap is reported separately as
``queue_ms``.

With ``trace_rate > 0`` the generator samples requests for end-to-end
tracing: each sampled request opens a client root span, propagates its
`TraceContext` to the server, and stitches the server's returned span
tree under it — the report keeps the ``keep_traces`` slowest of these
sampled trees, which is how you look at a p99 request's anatomy.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs import TraceCollector, span_to_dict
from .service import DEADLINE_EXCEEDED, NOT_FOUND, OK, OVERLOADED, STATUSES

__all__ = ["KeySampler", "LoadReport", "run_load"]


class KeySampler:
    """Seeded sampler over a key universe with a popularity distribution."""

    def __init__(
        self,
        keys: np.ndarray | list[int],
        distribution: str = "zipfian",
        theta: float = 1.0,
        seed: int = 0,
    ):
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            raise ValueError("key universe is empty")
        if distribution not in ("zipfian", "uniform"):
            raise ValueError(f"unknown distribution {distribution!r}")
        self.distribution = distribution
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        # Popularity rank is assigned over a shuffle so the hot set is not
        # correlated with key order (or with the hash partitioner).
        self._keys = self._rng.permutation(keys)
        if distribution == "zipfian":
            weights = 1.0 / np.power(np.arange(1, keys.size + 1, dtype=np.float64), theta)
            self._cdf = np.cumsum(weights) / weights.sum()
        else:
            self._cdf = None

    def sample(self, n: int) -> np.ndarray:
        """``n`` keys drawn with replacement by popularity."""
        if self._cdf is None:
            idx = self._rng.integers(0, self._keys.size, size=n)
        else:
            idx = np.searchsorted(self._cdf, self._rng.random(n), side="left")
        return self._keys[idx]

    def interarrival_s(self, n: int, rate_qps: float) -> np.ndarray:
        """``n`` Poisson inter-arrival gaps for an open loop at ``rate_qps``."""
        if rate_qps <= 0:
            raise ValueError(f"rate_qps must be positive, got {rate_qps}")
        return self._rng.exponential(1.0 / rate_qps, size=n)


@dataclass(frozen=True)
class LoadReport:
    """Client-side view of one load run (JSON-safe via `to_dict`)."""

    mode: str
    distribution: str
    requests: int
    wall_s: float
    statuses: dict
    latency_ms: dict
    incorrect: int
    checked: int
    queue_ms: dict = field(default_factory=dict)
    traced: int = 0
    slow_traces: list = field(default_factory=list)  # [(latency_ms, [span dicts])]

    @property
    def qps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def answered(self) -> int:
        return self.statuses.get(OK, 0) + self.statuses.get(NOT_FOUND, 0)

    @property
    def shed(self) -> int:
        return self.statuses.get(OVERLOADED, 0) + self.statuses.get(DEADLINE_EXCEEDED, 0)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "distribution": self.distribution,
            "requests": self.requests,
            "wall_s": round(self.wall_s, 4),
            "qps": round(self.qps, 1),
            "statuses": dict(self.statuses),
            "latency_ms": dict(self.latency_ms),
            "queue_ms": dict(self.queue_ms),
            "incorrect": self.incorrect,
            "checked": self.checked,
            "traced": self.traced,
            "slow_traces": list(self.slow_traces),
        }

    def summary(self) -> str:
        lat = self.latency_ms
        out = (
            f"{self.mode}/{self.distribution}: {self.requests} reqs in {self.wall_s:.2f}s "
            f"({self.qps:,.0f} qps), p50={lat['p50']:.3f}ms p99={lat['p99']:.3f}ms "
            f"(queue p95={self.queue_ms.get('p95', 0.0):.3f}ms), "
            f"shed={self.shed}, incorrect={self.incorrect}/{self.checked}"
        )
        if self.traced:
            out += f", traced={self.traced}"
        return out


def _quantiles_ms(values_s: list[float]) -> dict:
    ms = np.asarray(values_s, dtype=np.float64) * 1e3 if values_s else np.zeros(1)
    return {
        "mean": round(float(ms.mean()), 4),
        "p50": round(float(np.percentile(ms, 50)), 4),
        "p90": round(float(np.percentile(ms, 90)), 4),
        "p95": round(float(np.percentile(ms, 95)), 4),
        "p99": round(float(np.percentile(ms, 99)), 4),
        "max": round(float(ms.max()), 4),
    }


def _report(
    mode: str,
    distribution: str,
    statuses: dict,
    latencies: list[float],
    queue_waits: list[float],
    wall_s: float,
    incorrect: int,
    checked: int,
    traced: int,
    slow_traces: list,
) -> LoadReport:
    return LoadReport(
        mode=mode,
        distribution=distribution,
        requests=int(sum(statuses.values())),
        wall_s=wall_s,
        statuses=statuses,
        latency_ms=_quantiles_ms(latencies),
        queue_ms=_quantiles_ms(queue_waits),
        incorrect=incorrect,
        checked=checked,
        traced=traced,
        slow_traces=slow_traces,
    )


async def run_load(
    client,
    sampler: KeySampler,
    total_requests: int,
    mode: str = "closed",
    concurrency: int = 16,
    rate_qps: float | None = None,
    deadline_s: float | None = None,
    epoch: int | None = None,
    expected: dict[int, bytes | None] | None = None,
    trace_rate: float = 0.0,
    trace_seed: int = 0,
    keep_traces: int = 4,
) -> LoadReport:
    """Issue ``total_requests`` lookups and report what the client saw.

    ``expected`` maps key -> value (or None for an intentional miss); when
    given, every answered response is checked against it and mismatches
    are counted in ``LoadReport.incorrect``.

    ``trace_rate`` samples that fraction of requests for end-to-end
    tracing (seeded by ``trace_seed``): a sampled request propagates its
    context to the server and comes back with the server-side span tree
    stitched under a client root span.  The ``keep_traces`` slowest
    sampled trees land in ``LoadReport.slow_traces``.
    """
    if total_requests < 1:
        raise ValueError(f"total_requests must be >= 1, got {total_requests}")
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    keys = sampler.sample(total_requests)
    statuses = {s: 0 for s in STATUSES}
    latencies: list[float] = []
    queue_waits: list[float] = []
    incorrect = 0
    checked = 0
    traced = 0
    sampled_trees: list[tuple[float, list[dict]]] = []
    tracer = TraceCollector(sample_rate=trace_rate, seed=trace_seed) if trace_rate else None

    async def issue(key: int, t_enq: float) -> None:
        nonlocal incorrect, checked, traced
        root = None
        if tracer is not None and tracer.should_sample():
            root = tracer.start("client.get", key=int(key), mode=mode)
        t0 = time.perf_counter()  # send time: latency excludes client queueing
        queue_waits.append(t0 - t_enq)
        if root is None:
            response = await client.get(int(key), epoch=epoch, deadline_s=deadline_s)
        else:
            response = await client.get(
                int(key), epoch=epoch, deadline_s=deadline_s, trace=root.ctx
            )
        dt = time.perf_counter() - t0
        latencies.append(dt)
        statuses[response.status] = statuses.get(response.status, 0) + 1
        if root is not None:
            traced += 1
            root.annotate(status=response.status)
            root.finish()
            tree = [span_to_dict(s) for s in tracer.trace(root.trace_id)]
            tree += list(response.trace or [])
            sampled_trees.append((dt, tree))
        if expected is not None and response.status in (OK, NOT_FOUND):
            checked += 1
            want = expected.get(int(key))
            got = response.value if response.status == OK else None
            if got != want:
                incorrect += 1

    start = time.perf_counter()
    if mode == "closed":
        cursor = iter(range(total_requests))

        async def worker() -> None:
            for i in cursor:  # workers share one iterator: no key is issued twice
                await issue(keys[i], time.perf_counter())

        await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    else:
        if rate_qps is None:
            raise ValueError("open-loop load needs rate_qps")
        gaps = sampler.interarrival_s(total_requests, rate_qps)
        loop = asyncio.get_running_loop()
        tasks = []
        next_at = loop.time()
        for i in range(total_requests):
            next_at += gaps[i]
            delay = next_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            # Enqueue time is the *scheduled* arrival, not "now": at high
            # client counts the generator loop itself falls behind its
            # Poisson schedule (task creation and sleep overshoot
            # accumulate), and stamping perf_counter() here would silently
            # fold that lag out of queue_ms — understating queue wait by
            # exactly the amount the generator drifted.  Anchor the stamp
            # to the schedule instead: convert the loop-clock lag into the
            # perf_counter timebase the latency math uses.
            lag = max(0.0, loop.time() - next_at)
            tasks.append(loop.create_task(issue(keys[i], time.perf_counter() - lag)))
        await asyncio.gather(*tasks)
    wall_s = time.perf_counter() - start

    slow = [
        [round(dt * 1e3, 4), tree]
        for dt, tree in sorted(sampled_trees, key=lambda x: -x[0])[: max(0, keep_traces)]
    ]
    return _report(
        mode,
        sampler.distribution,
        statuses,
        latencies,
        queue_waits,
        wall_s,
        incorrect,
        checked,
        traced,
        slow,
    )
