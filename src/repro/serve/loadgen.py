"""Load generation against a serving client (TCP or in-process).

Drives any client exposing ``async get(key, epoch=None, deadline_s=None)``
with a configurable popularity distribution and loop discipline:

* **Popularity** — ``zipfian`` (weight ∝ 1/rank^theta over a seeded
  shuffle of the key universe, so the hot set is arbitrary keys, not the
  smallest ones) or ``uniform``.  Skewed popularity is what makes the
  serving tier's result/negative caches and request coalescing pay off.
* **Closed loop** — ``concurrency`` workers each keep exactly one request
  outstanding: throughput adapts to service latency (classic benchmark
  discipline, no overload by construction).
* **Open loop** — arrivals are a Poisson process at ``rate_qps``
  regardless of completions: the discipline that actually exercises
  admission control, because a slow service faces a growing queue rather
  than a self-throttling client.

Every run returns a `LoadReport` with client-observed latency quantiles,
per-status counts, and — when the caller supplies the ground truth — a
count of *incorrect* responses (wrong value, or a miss for a present
key).  Shed (``overloaded``) and expired (``deadline_exceeded``) answers
are refusals, not wrong answers; they are never counted as incorrect.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from .service import DEADLINE_EXCEEDED, NOT_FOUND, OK, OVERLOADED, STATUSES

__all__ = ["KeySampler", "LoadReport", "run_load"]


class KeySampler:
    """Seeded sampler over a key universe with a popularity distribution."""

    def __init__(
        self,
        keys: np.ndarray | list[int],
        distribution: str = "zipfian",
        theta: float = 1.0,
        seed: int = 0,
    ):
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            raise ValueError("key universe is empty")
        if distribution not in ("zipfian", "uniform"):
            raise ValueError(f"unknown distribution {distribution!r}")
        self.distribution = distribution
        self.theta = theta
        self._rng = np.random.default_rng(seed)
        # Popularity rank is assigned over a shuffle so the hot set is not
        # correlated with key order (or with the hash partitioner).
        self._keys = self._rng.permutation(keys)
        if distribution == "zipfian":
            weights = 1.0 / np.power(np.arange(1, keys.size + 1, dtype=np.float64), theta)
            self._cdf = np.cumsum(weights) / weights.sum()
        else:
            self._cdf = None

    def sample(self, n: int) -> np.ndarray:
        """``n`` keys drawn with replacement by popularity."""
        if self._cdf is None:
            idx = self._rng.integers(0, self._keys.size, size=n)
        else:
            idx = np.searchsorted(self._cdf, self._rng.random(n), side="left")
        return self._keys[idx]

    def interarrival_s(self, n: int, rate_qps: float) -> np.ndarray:
        """``n`` Poisson inter-arrival gaps for an open loop at ``rate_qps``."""
        if rate_qps <= 0:
            raise ValueError(f"rate_qps must be positive, got {rate_qps}")
        return self._rng.exponential(1.0 / rate_qps, size=n)


@dataclass(frozen=True)
class LoadReport:
    """Client-side view of one load run (JSON-safe via `to_dict`)."""

    mode: str
    distribution: str
    requests: int
    wall_s: float
    statuses: dict
    latency_ms: dict
    incorrect: int
    checked: int

    @property
    def qps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def answered(self) -> int:
        return self.statuses.get(OK, 0) + self.statuses.get(NOT_FOUND, 0)

    @property
    def shed(self) -> int:
        return self.statuses.get(OVERLOADED, 0) + self.statuses.get(DEADLINE_EXCEEDED, 0)

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "distribution": self.distribution,
            "requests": self.requests,
            "wall_s": round(self.wall_s, 4),
            "qps": round(self.qps, 1),
            "statuses": dict(self.statuses),
            "latency_ms": dict(self.latency_ms),
            "incorrect": self.incorrect,
            "checked": self.checked,
        }

    def summary(self) -> str:
        lat = self.latency_ms
        return (
            f"{self.mode}/{self.distribution}: {self.requests} reqs in {self.wall_s:.2f}s "
            f"({self.qps:,.0f} qps), p50={lat['p50']:.3f}ms p99={lat['p99']:.3f}ms, "
            f"shed={self.shed}, incorrect={self.incorrect}/{self.checked}"
        )


def _report(
    mode: str,
    distribution: str,
    statuses: dict,
    latencies: list[float],
    wall_s: float,
    incorrect: int,
    checked: int,
) -> LoadReport:
    lat = np.asarray(latencies, dtype=np.float64) * 1e3 if latencies else np.zeros(1)
    return LoadReport(
        mode=mode,
        distribution=distribution,
        requests=int(sum(statuses.values())),
        wall_s=wall_s,
        statuses=statuses,
        latency_ms={
            "mean": round(float(lat.mean()), 4),
            "p50": round(float(np.percentile(lat, 50)), 4),
            "p90": round(float(np.percentile(lat, 90)), 4),
            "p99": round(float(np.percentile(lat, 99)), 4),
            "max": round(float(lat.max()), 4),
        },
        incorrect=incorrect,
        checked=checked,
    )


async def run_load(
    client,
    sampler: KeySampler,
    total_requests: int,
    mode: str = "closed",
    concurrency: int = 16,
    rate_qps: float | None = None,
    deadline_s: float | None = None,
    epoch: int | None = None,
    expected: dict[int, bytes | None] | None = None,
) -> LoadReport:
    """Issue ``total_requests`` lookups and report what the client saw.

    ``expected`` maps key -> value (or None for an intentional miss); when
    given, every answered response is checked against it and mismatches
    are counted in ``LoadReport.incorrect``.
    """
    if total_requests < 1:
        raise ValueError(f"total_requests must be >= 1, got {total_requests}")
    if mode not in ("closed", "open"):
        raise ValueError(f"mode must be 'closed' or 'open', got {mode!r}")
    keys = sampler.sample(total_requests)
    statuses = {s: 0 for s in STATUSES}
    latencies: list[float] = []
    incorrect = 0
    checked = 0

    async def issue(key: int) -> None:
        nonlocal incorrect, checked
        t0 = time.perf_counter()
        response = await client.get(int(key), epoch=epoch, deadline_s=deadline_s)
        latencies.append(time.perf_counter() - t0)
        statuses[response.status] = statuses.get(response.status, 0) + 1
        if expected is not None and response.status in (OK, NOT_FOUND):
            checked += 1
            want = expected.get(int(key))
            got = response.value if response.status == OK else None
            if got != want:
                incorrect += 1

    start = time.perf_counter()
    if mode == "closed":
        cursor = iter(range(total_requests))

        async def worker() -> None:
            for i in cursor:  # workers share one iterator: no key is issued twice
                await issue(keys[i])

        await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    else:
        if rate_qps is None:
            raise ValueError("open-loop load needs rate_qps")
        gaps = sampler.interarrival_s(total_requests, rate_qps)
        loop = asyncio.get_running_loop()
        tasks = []
        next_at = loop.time()
        for i in range(total_requests):
            next_at += gaps[i]
            delay = next_at - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            tasks.append(loop.create_task(issue(keys[i])))
        await asyncio.gather(*tasks)
    wall_s = time.perf_counter() - start

    return _report(mode, sampler.distribution, statuses, latencies, wall_s, incorrect, checked)
