"""`repro.serve` — the concurrent online query-serving tier.

Mounts a committed `MultiEpochStore` behind an asyncio `QueryService`
(batching, coalescing, result/negative caches, admission control), a
sealed-frame TCP front end (`ServeServer` / `TCPClient`), an in-process
client for tests, and a load generator (`run_load`).  See the module
docstrings — `service` for the serving semantics, `proto` for the wire
format, `cache` for the invalidation-by-versioning story.
"""

from .cache import LRUCache, NegativeCache
from .loadgen import KeySampler, LoadReport, run_load
from .proto import (
    ERR_BAD_REQUEST,
    ERR_CLOSED,
    ERR_INTERNAL,
    ERR_UNKNOWN_EPOCH,
    ERR_UNKNOWN_OP,
    ERR_UNSUPPORTED_VERSION,
    PROTO_VERSION,
    InprocClient,
    ServeServer,
    TCPClient,
    error_frame,
)
from .service import (
    ANY_EPOCH,
    DEADLINE_EXCEEDED,
    ERROR,
    NOT_FOUND,
    OK,
    OVERLOADED,
    QueryService,
    ServeResponse,
)

__all__ = [
    "QueryService",
    "ServeResponse",
    "ServeServer",
    "TCPClient",
    "InprocClient",
    "LRUCache",
    "NegativeCache",
    "KeySampler",
    "LoadReport",
    "run_load",
    "ANY_EPOCH",
    "OK",
    "NOT_FOUND",
    "OVERLOADED",
    "DEADLINE_EXCEEDED",
    "ERROR",
    "PROTO_VERSION",
    "error_frame",
    "ERR_UNKNOWN_OP",
    "ERR_UNSUPPORTED_VERSION",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_EPOCH",
    "ERR_CLOSED",
    "ERR_INTERNAL",
]
