"""Wire front end for `QueryService`: framing, server, clients.

The protocol reuses the storage layer's sealed-envelope convention
(`repro.storage.envelope`) on the wire: every message is

    u32 frame length  ‖  seal(JSON payload)

so a receiver can tell a torn or corrupted frame from a complete one with
the same magic/length/checksum validation the manifest uses on disk — one
integrity story for bytes at rest and bytes in flight.

Messages are id-tagged JSON objects.  Requests::

    {"id": 7, "op": "get", "key": 123, "epoch": null, "deadline_s": 0.05,
     "trace": {"trace_id": "...", "span_id": "...", "sampled": true}}
    {"id": 8, "op": "stats"}
    {"id": 9, "op": "stats_live", "window_s": 5.0}
    {"id": 10, "op": "trace", "n": 4}
    {"id": 11, "op": "ping"}
    {"id": 12, "op": "aux_state"}

Responses echo the id and carry the `ServeResponse` fields (values hex-
encoded — JSON has no bytes).  The optional ``trace`` header is a
propagated `TraceContext`: a sampled context makes the response carry the
request's full server-side span tree, so a client can reassemble an
end-to-end trace across the connection.  ``stats_live`` and ``trace``
are the live-telemetry verbs behind ``repro top``.  Requests on one
connection are served *concurrently* — each frame spawns a task, and
responses are written as they finish, matched by id — so a single
connection still benefits from the service's batching and coalescing.

Protocol v2 (routers need to tell *what failed* apart from *the wire
failed*):

* Every response carries ``"v": PROTO_VERSION``.  Requests may carry a
  ``"v"`` too; v1 requests omit it and are served unchanged — the v2
  fields are additive, so v1 clients keep loading v2 responses (they
  ignore keys they don't know).  A request claiming a version *newer*
  than the server speaks is refused with an explicit error frame rather
  than misinterpreted.
* Failures are **typed error frames**: ``{"id", "v", "status": "error",
  "error": {"code", "retryable"}, "detail"}``.  ``code`` distinguishes
  ``unknown_op`` / ``unsupported_version`` / ``bad_request`` (the request
  is wrong — don't retry) from ``unknown_epoch`` / ``closed`` (the
  *caller's view* of this shard is stale or the shard is draining —
  refresh or fail over).  Before v2 both surfaced as an opaque
  ``status: error`` string, indistinguishable from a transport fault.
* ``get`` responses piggyback ``"st"``, the service's `state_token`
  (compaction generation, newest epoch): a router compares it against
  the token its sealed-aux view was built from and learns — for free, on
  every answer — that the shard committed or compacted underneath it.
* ``aux_state`` exports the shard's sealed aux blobs (hex) per live
  epoch: the only shard bytes a router tier ever holds.

Two clients expose the same async ``get``/``stats`` surface:
`TCPClient` speaks the framed protocol over a socket; `InprocClient`
calls the service directly (tests and single-process load generation).
"""

from __future__ import annotations

import asyncio
import itertools
import json
import struct
from dataclasses import replace

from ..obs import TraceContext
from ..storage.envelope import SealError, seal, unseal
from .service import ERROR, QueryService, ServeResponse

__all__ = [
    "ServeServer",
    "TCPClient",
    "InprocClient",
    "encode_frame",
    "read_frame",
    "error_frame",
    "MAX_FRAME_BYTES",
    "PROTO_VERSION",
    "ERR_UNKNOWN_OP",
    "ERR_UNSUPPORTED_VERSION",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_EPOCH",
    "ERR_CLOSED",
    "ERR_INTERNAL",
]

_LEN = struct.Struct("<I")
MAX_FRAME_BYTES = 1 << 24  # 16 MiB: a point query never comes close

# v1: untyped errors, no state piggyback.  v2 adds the error frame, the
# version echo, the `st` state token on gets, and the aux_state verb.
PROTO_VERSION = 2

# Error codes, grouped by what the caller should do about them.
ERR_UNKNOWN_OP = "unknown_op"              # caller bug: don't retry
ERR_UNSUPPORTED_VERSION = "unsupported_version"  # caller too new: don't retry
ERR_BAD_REQUEST = "bad_request"            # caller bug: don't retry
ERR_UNKNOWN_EPOCH = "unknown_epoch"        # caller's shard view is stale: refresh
ERR_CLOSED = "closed"                      # shard draining: fail over
ERR_INTERNAL = "internal"                  # shard-side fault: retry elsewhere
_RETRYABLE = {ERR_CLOSED, ERR_INTERNAL}


class ProtocolError(ValueError):
    """The peer sent something that is not a valid sealed frame."""


def error_frame(rid, code: str, detail: str, key: int | None = None) -> dict:
    """A typed v2 error response.  ``retryable`` spells out whether the
    failure is about *this request* (malformed, unknown verb — retrying
    is useless) or *this shard right now* (draining, internal fault —
    another replica may answer)."""
    out = {
        "id": rid,
        "v": PROTO_VERSION,
        "status": ERROR,
        "key": key,
        "epoch": None,
        "value": None,
        "cached": False,
        "detail": detail,
        "error": {"code": code, "retryable": code in _RETRYABLE},
    }
    return out


def encode_frame(message: dict) -> bytes:
    body = seal(json.dumps(message).encode())
    return _LEN.pack(len(body)) + body


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Next message on the stream, or ``None`` on clean EOF."""
    try:
        header = await reader.readexactly(_LEN.size)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    (length,) = _LEN.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME_BYTES}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as e:
        raise ProtocolError("connection dropped mid-frame") from e
    try:
        return json.loads(unseal(body))
    except (SealError, ValueError) as e:
        raise ProtocolError(f"bad frame: {e}") from e


def _response_fields(response: ServeResponse) -> dict:
    out = {
        "v": PROTO_VERSION,
        "status": response.status,
        "key": response.key,
        "epoch": response.epoch,
        "value": response.value.hex() if response.value is not None else None,
        "cached": response.cached,
        "detail": response.detail,
    }
    if response.trace is not None:
        out["trace"] = response.trace
    if response.code:
        out["error"] = {"code": response.code, "retryable": response.code in _RETRYABLE}
    if response.shard_state is not None:
        out["st"] = list(response.shard_state)
    return out


def _response_from_fields(fields: dict) -> ServeResponse:
    value = fields.get("value")
    st = fields.get("st")
    return ServeResponse(
        status=fields["status"],
        key=fields["key"],
        epoch=fields.get("epoch"),
        value=bytes.fromhex(value) if value is not None else None,
        cached=bool(fields.get("cached", False)),
        detail=fields.get("detail", ""),
        trace=fields.get("trace"),
        code=(fields.get("error") or {}).get("code", ""),
        shard_state=tuple(st) if st is not None else None,
    )


class ServeServer:
    """Asyncio TCP server mounting one `QueryService`."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.host = host
        self.port = port  # 0: let the OS pick; read back after start()
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "ServeServer":
        await self.service.start()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def __aenter__(self) -> "ServeServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._server.serve_forever()

    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(message: dict) -> None:
            async with write_lock:
                writer.write(encode_frame(message))
                await writer.drain()

        async def run_one(request: dict) -> None:
            rid = request.get("id")
            try:
                op = request.get("op")
                v = request.get("v")
                if v is not None and int(v) > PROTO_VERSION:
                    # A future client: refuse explicitly instead of
                    # answering with semantics it may misread.
                    await respond(
                        error_frame(
                            rid,
                            ERR_UNSUPPORTED_VERSION,
                            f"server speaks v{PROTO_VERSION}, request claims v{v}",
                        )
                    )
                    return
                if op == "get":
                    try:
                        key = int(request["key"])
                    except (KeyError, TypeError, ValueError) as e:
                        await respond(
                            error_frame(rid, ERR_BAD_REQUEST, f"bad get request: {e!r}")
                        )
                        return
                    response = await self.service.get(
                        key,
                        epoch=request.get("epoch"),
                        deadline_s=request.get("deadline_s"),
                        trace=request.get("trace"),
                    )
                    # Piggyback the epoch-set version on every answer: the
                    # cheapest possible staleness signal for a router.
                    response = replace(response, shard_state=tuple(self.service.state_token()))
                    await respond({"id": rid, **_response_fields(response)})
                elif op == "stats":
                    await respond({"id": rid, "stats": self.service.stats()})
                elif op == "stats_live":
                    await respond(
                        {
                            "id": rid,
                            "stats": self.service.live_stats(
                                window_s=request.get("window_s")
                            ),
                        }
                    )
                elif op == "trace":
                    await respond(
                        {
                            "id": rid,
                            "traces": self.service.recent_traces(
                                int(request.get("n", 8))
                            ),
                        }
                    )
                elif op == "aux_state":
                    await respond({"id": rid, "v": PROTO_VERSION, "aux": self.service.aux_state()})
                elif op == "ping":
                    await respond({"id": rid, "v": PROTO_VERSION, "pong": True})
                else:
                    await respond(error_frame(rid, ERR_UNKNOWN_OP, f"unknown op {op!r}"))
            except ConnectionError:
                pass  # client went away; nothing to tell it
            except Exception as e:
                try:
                    await respond(error_frame(rid, ERR_INTERNAL, repr(e)))
                except ConnectionError:
                    pass

        try:
            while True:
                try:
                    request = await read_frame(reader)
                except ProtocolError:
                    break  # framing is broken: the stream is unrecoverable
                if request is None:
                    break
                task = asyncio.get_running_loop().create_task(run_one(request))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass


class TCPClient:
    """Framed-protocol client; safe for many concurrent ``get`` calls."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._pump: asyncio.Task | None = None
        self._waiting: dict[int, asyncio.Future] = {}
        self._ids = itertools.count(1)
        self._write_lock = asyncio.Lock()

    async def connect(self) -> "TCPClient":
        self._reader, self._writer = await asyncio.open_connection(self.host, self.port)
        self._pump = asyncio.get_running_loop().create_task(self._pump_responses())
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._writer = None
        if self._pump is not None:
            await self._pump
            self._pump = None

    async def __aenter__(self) -> "TCPClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    async def _pump_responses(self) -> None:
        assert self._reader is not None
        error: Exception = ConnectionError("connection closed")
        try:
            while True:
                message = await read_frame(self._reader)
                if message is None:
                    break
                future = self._waiting.pop(message.get("id"), None)
                if future is not None and not future.done():
                    future.set_result(message)
        except (ProtocolError, ConnectionError) as e:
            error = e
        for future in self._waiting.values():
            if not future.done():
                future.set_exception(error)
        self._waiting.clear()

    async def _call(self, message: dict) -> dict:
        assert self._writer is not None, "call connect() first"
        rid = next(self._ids)
        future = asyncio.get_running_loop().create_future()
        self._waiting[rid] = future
        async with self._write_lock:
            # v1 servers ignore the version tag; v2 servers use it to
            # refuse clients from the future.
            self._writer.write(encode_frame({"id": rid, "v": PROTO_VERSION, **message}))
            await self._writer.drain()
        return await future

    async def get(
        self,
        key: int,
        epoch: int | None = None,
        deadline_s: float | None = None,
        trace: TraceContext | None = None,
    ) -> ServeResponse:
        message = {"op": "get", "key": int(key), "epoch": epoch, "deadline_s": deadline_s}
        if trace is not None:
            message["trace"] = trace.to_wire()
        return _response_from_fields(await self._call(message))

    async def stats(self) -> dict:
        return (await self._call({"op": "stats"}))["stats"]

    async def stats_live(self, window_s: float | None = None) -> dict:
        return (await self._call({"op": "stats_live", "window_s": window_s}))["stats"]

    async def traces(self, n: int = 8) -> list[list[dict]]:
        return (await self._call({"op": "trace", "n": int(n)}))["traces"]

    async def aux_state(self) -> dict:
        return (await self._call({"op": "aux_state"}))["aux"]

    async def ping(self) -> bool:
        return bool((await self._call({"op": "ping"})).get("pong"))


class InprocClient:
    """`TCPClient`-shaped adapter that calls the service in process.

    Lets tests and the load generator drive the exact client surface
    without sockets; the service's batching/coalescing still applies
    because callers share one event loop.
    """

    def __init__(self, service: QueryService):
        self.service = service

    async def connect(self) -> "InprocClient":
        await self.service.start()
        return self

    async def close(self) -> None:
        pass  # the service's owner closes it

    async def __aenter__(self) -> "InprocClient":
        return await self.connect()

    async def __aexit__(self, *exc) -> None:
        pass

    async def get(
        self,
        key: int,
        epoch: int | None = None,
        deadline_s: float | None = None,
        trace: TraceContext | None = None,
    ) -> ServeResponse:
        response = await self.service.get(
            key, epoch=epoch, deadline_s=deadline_s, trace=trace
        )
        # Same piggyback the TCP front end adds: in-proc and wire clients
        # are interchangeable to a router.
        return replace(response, shard_state=tuple(self.service.state_token()))

    async def stats(self) -> dict:
        return self.service.stats()

    async def stats_live(self, window_s: float | None = None) -> dict:
        return self.service.live_stats(window_s=window_s)

    async def traces(self, n: int = 8) -> list[list[dict]]:
        return self.service.recent_traces(n)

    async def aux_state(self) -> dict:
        return self.service.aux_state()

    async def ping(self) -> bool:
        return True
