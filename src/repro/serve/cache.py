"""Read caches for the serving tier: results and refuted candidates.

Two small, bounded structures sit in front of the store:

`LRUCache`
    Maps ``(epoch, key)`` to a finished response ``(status, value)``.
    Epochs are immutable once committed, so an entry can never go stale
    for the epoch it names — committing a *new* epoch changes which epoch
    an unqualified query resolves to, which versions the cache keys
    instead of invalidating entries (see `repro.serve.service`).

`NegativeCache`
    Remembers ``(epoch, key, rank)`` triples the store has *refuted*: the
    auxiliary table named ``rank`` as a candidate but the rank's table did
    not hold the key.  FilterKV's lossy aux tables make repeat queries pay
    the same false-candidate probes every time (the paper's 1.88
    partitions/query); remembering refutations lets the serving tier skip
    those probes entirely on hot keys.

Both are plain LRU over an `OrderedDict` — runs are single-event-loop, so
no locking — and both report hits/misses/evictions into `repro.obs`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable

from ..obs import MetricsRegistry, active

__all__ = ["LRUCache", "NegativeCache"]


class LRUCache:
    """Bounded map with least-recently-used eviction and telemetry.

    ``lookup`` returns ``(hit, value)`` and counts the outcome;
    ``insert`` adds/refreshes an entry, evicting the coldest when full.
    """

    def __init__(
        self,
        capacity: int,
        metrics: MetricsRegistry | None = None,
        name: str = "serve.result_cache",
        **labels,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        metrics = active(metrics)
        self._m_hits = metrics.counter(f"{name}.hits", **labels)
        self._m_misses = metrics.counter(f"{name}.misses", **labels)
        self._m_evictions = metrics.counter(f"{name}.evictions", **labels)

    def lookup(self, key: Hashable) -> tuple[bool, Any]:
        try:
            value = self._data[key]
        except KeyError:
            self._m_misses.inc()
            return False, None
        self._data.move_to_end(key)
        self._m_hits.inc()
        return True, value

    def insert(self, key: Hashable, value: Any) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self._m_evictions.inc()

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:  # no telemetry: peek only
        return key in self._data


class NegativeCache:
    """Bounded LRU set of refuted ``(epoch, key, rank)`` probes.

    `refuted` is consulted before probing a candidate rank; a ``True``
    answer means a previous query already proved the rank does not hold
    the key, so the probe (a table open plus block reads on the paper's
    read path) is skipped.  Entries are only ever *facts* — a rank either
    holds a key in a committed epoch or it does not — so the cache needs
    no invalidation, only bounding.
    """

    def __init__(self, capacity: int, metrics: MetricsRegistry | None = None, **labels):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._data: OrderedDict[tuple, None] = OrderedDict()
        metrics = active(metrics)
        self._m_skipped = metrics.counter("serve.negative_cache.skipped_probes", **labels)
        self._m_inserts = metrics.counter("serve.negative_cache.inserts", **labels)
        self._m_evictions = metrics.counter("serve.negative_cache.evictions", **labels)

    def refuted(self, epoch: int, key: int, rank: int) -> bool:
        k = (epoch, key, rank)
        if k in self._data:
            self._data.move_to_end(k)
            self._m_skipped.inc()
            return True
        return False

    def add(self, epoch: int, key: int, rank: int) -> None:
        k = (epoch, key, rank)
        self._data[k] = None
        self._data.move_to_end(k)
        if len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self._m_evictions.inc()
        self._m_inserts.inc()

    def clear(self) -> None:
        self._data.clear()

    def __len__(self) -> int:
        return len(self._data)
