"""Standard cuckoo filter (Fan et al., CoNEXT'14) — membership only.

The paper cites the cuckoo filter as one of the general-purpose compact
filters that "may also be used to implement FilterKV" (§VI).  This class is
a thin specialization of `PartialKeyCuckooTable` with a zero-width value
field: it answers *is this key (probably) present*, supports deletion, and
is used by the aux-table ablation benchmark as a membership-mode backend
(queried exhaustively per rank, like the Bloom design).
"""

from __future__ import annotations

import numpy as np

from .cuckoo import CuckooTableFull, PartialKeyCuckooTable

__all__ = ["CuckooFilter"]


class CuckooFilter:
    """Approximate-membership filter with deletion support.

    Parameters
    ----------
    capacity:
        Expected number of keys; the table is sized for ~95 % load.
    fp_bits:
        Fingerprint width; false-positive rate is roughly
        ``2 * slots_per_bucket / 2**fp_bits``.
    """

    def __init__(
        self,
        capacity: int,
        fp_bits: int = 12,
        slots_per_bucket: int = 4,
        max_kicks: int = 500,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        nbuckets = max(1, -(-capacity // slots_per_bucket))  # ceil div
        self._table = PartialKeyCuckooTable(
            nbuckets,
            fp_bits=fp_bits,
            value_bits=0,
            slots_per_bucket=slots_per_bucket,
            max_kicks=max_kicks,
            seed=seed,
        )

    def add(self, key: int) -> None:
        """Insert a key; raises `CuckooTableFull` when the filter saturates."""
        self._table.insert(key, 0)

    def add_many(self, keys: np.ndarray) -> np.ndarray:
        """Bulk insert; returns the mask of keys that fit."""
        return self._table.insert_many(keys, 0)

    def __contains__(self, key: int) -> bool:
        return self._table.contains(key)

    def contains_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized membership test."""
        _, match = self._table.lookup_many(keys)
        return match.any(axis=1)

    def delete(self, key: int) -> bool:
        """Remove one occurrence of the key's fingerprint; True if found."""
        return self._table.delete(key)

    def __len__(self) -> int:
        return len(self._table)

    @property
    def size_bytes(self) -> int:
        return self._table.size_bytes

    @property
    def load_factor(self) -> float:
        return self._table.load_factor

    def expected_fpr(self) -> float:
        """Analytic false-positive rate at the current load."""
        probed = 2 * self._table.slots_per_bucket * self._table.load_factor
        return min(1.0, probed / (1 << self._table.fp_bits))


# Re-exported so callers can catch saturation without importing cuckoo.py.
CuckooFilterFull = CuckooTableFull
