"""Xor filter (Graf & Lemire, 2020): a static compact membership filter.

The paper surveys the filter design space (§VI: Bloom, cuckoo, quotient,
SuRF, SILT's ECT) — all candidates for FilterKV's auxiliary tables.  The
xor filter postdates the paper slightly but has become the standard static
answer: for an *immutable* key set (exactly what an in-situ epoch
produces) it stores one fingerprint per slot at ~1.23 slots/key with
false-positive rate ``2^-fp_bits`` and exactly three memory probes.

Construction peels a random 3-uniform hypergraph: each key maps to three
slots (one per segment); slots referenced by a single key are peeled
repeatedly; assignment then walks the peel stack backwards, setting each
key's free slot so the xor of its three slots equals its fingerprint.
Construction can fail for unlucky seeds (probability vanishes at ~1.23×
occupancy) and is retried with a fresh seed.
"""

from __future__ import annotations

import math

import numpy as np

from .hashing import fingerprint, hash64

__all__ = ["XorFilter", "XorConstructionError"]


class XorConstructionError(RuntimeError):
    """Peeling failed for every attempted seed (should be ~impossible)."""


class XorFilter:
    """Static membership filter over 64-bit keys."""

    def __init__(self, keys: np.ndarray, fp_bits: int = 8, seed: int = 0, max_tries: int = 32):
        if not 1 <= fp_bits <= 32:
            raise ValueError(f"fp_bits must be in [1, 32], got {fp_bits}")
        keys = np.unique(np.asarray(keys, dtype=np.uint64).ravel())
        if keys.size == 0:
            raise ValueError("xor filter needs at least one key")
        self.fp_bits = int(fp_bits)
        self.nkeys = int(keys.size)
        self._segment = max(2, math.ceil(1.23 * keys.size / 3) + 8)
        nslots = 3 * self._segment
        for attempt in range(max_tries):
            self.seed = seed + attempt * 0x9E37
            order = self._peel(keys)
            if order is not None:
                self._slots = self._assign(keys, order, nslots)
                return
        raise XorConstructionError(f"peeling failed after {max_tries} seeds")

    @classmethod
    def from_state(cls, slots: np.ndarray, nkeys: int, fp_bits: int, seed: int) -> "XorFilter":
        """Rebuild a filter from its persisted slot array (no re-peeling).

        ``seed`` must be the *final* seed the build settled on (the one the
        instance reports), not the seed the build started from.
        """
        slots = np.asarray(slots, dtype=np.uint32).ravel()
        if slots.size % 3:
            raise ValueError(f"slot array length {slots.size} is not 3 segments")
        f = object.__new__(cls)
        f.fp_bits = int(fp_bits)
        f.nkeys = int(nkeys)
        f._segment = slots.size // 3
        f.seed = int(seed)
        f._slots = slots
        return f

    # -- hashing ------------------------------------------------------------

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """(n, 3) slot indices, one per segment."""
        seg = np.uint64(self._segment)
        cols = [
            (hash64(keys, self.seed + i) % seg).astype(np.int64) + i * self._segment
            for i in range(3)
        ]
        return np.stack(cols, axis=1)

    def _fingerprints(self, keys: np.ndarray) -> np.ndarray:
        return fingerprint(keys, self.fp_bits, seed=self.seed + 0xF1).astype(np.uint32)

    # -- construction ---------------------------------------------------------

    def _peel(self, keys: np.ndarray) -> list[tuple[int, int]] | None:
        """Peel order as (key index, freed slot), or None on failure."""
        pos = self._positions(keys)
        nslots = 3 * self._segment
        count = np.zeros(nslots, dtype=np.int64)
        xor_keyidx = np.zeros(nslots, dtype=np.int64)
        for c in range(3):
            np.add.at(count, pos[:, c], 1)
            np.bitwise_xor.at(xor_keyidx, pos[:, c], np.arange(keys.size))
        queue = list(np.nonzero(count == 1)[0])
        order: list[tuple[int, int]] = []
        alive = np.ones(keys.size, dtype=bool)
        while queue:
            slot = queue.pop()
            if count[slot] != 1:
                continue
            ki = int(xor_keyidx[slot])
            if not alive[ki]:
                continue
            alive[ki] = False
            order.append((ki, int(slot)))
            for c in range(3):
                s = int(pos[ki, c])
                count[s] -= 1
                xor_keyidx[s] ^= ki
                if count[s] == 1:
                    queue.append(s)
        return order if len(order) == keys.size else None

    def _assign(self, keys: np.ndarray, order: list[tuple[int, int]], nslots: int) -> np.ndarray:
        pos = self._positions(keys)
        fps = self._fingerprints(keys)
        slots = np.zeros(nslots, dtype=np.uint32)
        for ki, free_slot in reversed(order):
            acc = np.uint32(fps[ki])
            for c in range(3):
                s = int(pos[ki, c])
                if s != free_slot:
                    acc ^= slots[s]
            slots[free_slot] = acc
        return slots

    # -- queries ---------------------------------------------------------------

    def contains_many(self, keys: np.ndarray) -> np.ndarray:
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        pos = self._positions(keys)
        acc = self._slots[pos[:, 0]] ^ self._slots[pos[:, 1]] ^ self._slots[pos[:, 2]]
        return acc == self._fingerprints(keys)

    def __contains__(self, key: int) -> bool:
        return bool(self.contains_many(np.asarray([key], dtype=np.uint64))[0])

    # -- accounting --------------------------------------------------------------

    def __len__(self) -> int:
        return self.nkeys

    @property
    def size_bytes(self) -> int:
        return math.ceil(3 * self._segment * self.fp_bits / 8)

    @property
    def bits_per_key(self) -> float:
        return self.size_bytes * 8 / self.nkeys

    def expected_fpr(self) -> float:
        return 2.0**-self.fp_bits
