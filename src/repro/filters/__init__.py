"""Compact filter substrate: the data structures behind FilterKV aux tables.

Exports:

* `BloomFilter` — vectorized Bloom filter (paper §IV-A).
* `PartialKeyCuckooTable` / `ChainedCuckooTable` — partial-key cuckoo hash
  tables with the paper's chained-growth scheme (§IV-B).
* `CuckooFilter` — standard membership cuckoo filter (related work, §VI).
* `QuotientFilter` — quotient filter (related work, §VI).
* `XorFilter` — static xor filter for sealed key sets.
* `XorMaplet` — compressed static function (key → value maplet) with a
  fused fingerprint guard, for sealed aux tables.
* hashing helpers (`splitmix64`, `hash64`, `hash_pair`, `fingerprint`).
"""

from .blockedbloom import BlockedBloomFilter
from .bloom import BloomFilter, false_positive_rate, optimal_nhashes
from .cuckoo import ChainedCuckooTable, CuckooStats, CuckooTableFull, PartialKeyCuckooTable
from .countingbloom import CountingBloomFilter
from .csf import CsfConstructionError, XorMaplet
from .cuckoofilter import CuckooFilter
from .hashing import double_hash_probes, fingerprint, hash64, hash_pair, splitmix64
from .quotient import QuotientFilter, QuotientFilterFull
from .xorfilter import XorConstructionError, XorFilter

__all__ = [
    "BlockedBloomFilter",
    "BloomFilter",
    "false_positive_rate",
    "optimal_nhashes",
    "ChainedCuckooTable",
    "CuckooStats",
    "CuckooTableFull",
    "PartialKeyCuckooTable",
    "CountingBloomFilter",
    "CuckooFilter",
    "QuotientFilter",
    "QuotientFilterFull",
    "XorConstructionError",
    "XorFilter",
    "CsfConstructionError",
    "XorMaplet",
    "splitmix64",
    "hash64",
    "hash_pair",
    "fingerprint",
    "double_hash_probes",
]
