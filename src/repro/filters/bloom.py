"""Bloom filter on a NumPy bit vector, with vectorized bulk operations.

This is the filter behind the paper's first auxiliary-table design
(§IV-A, Fig. 4): opaque ``key‖rank`` mapping objects are inserted, and a
query exhaustively tests every candidate rank.  The class itself is a
general-purpose membership filter over 64-bit digests; the aux-table layer
(`repro.core.auxtable.BloomAuxTable`) decides what digest to insert.

The standard sizing identities used throughout the paper and this repo:

* optimal probe count    ``k = b · ln 2``         (``b`` = bits per key)
* false-positive rate    ``fpr ≈ 0.6185 ** b``
* bits for a target fpr  ``b = 1.44 · log2(1/fpr)``

See `repro.analysis.models` for the Table I math built on these.
"""

from __future__ import annotations

import math

import numpy as np

from .hashing import double_hash_probes

__all__ = ["BloomFilter", "optimal_nhashes", "false_positive_rate"]


def optimal_nhashes(bits_per_key: float) -> int:
    """Probe count minimizing false positives for a given bit budget."""
    return max(1, round(bits_per_key * math.log(2)))


def false_positive_rate(bits_per_key: float, nhashes: int | None = None) -> float:
    """Analytic false-positive rate of a Bloom filter at ``bits_per_key``.

    With the optimal probe count this reduces to ``0.6185 ** bits_per_key``.
    """
    if bits_per_key <= 0:
        return 1.0
    k = optimal_nhashes(bits_per_key) if nhashes is None else nhashes
    return (1.0 - math.exp(-k / bits_per_key)) ** k


class BloomFilter:
    """A classic Bloom filter storing 64-bit digests.

    Parameters
    ----------
    nbits:
        Size of the underlying bit vector.  Rounded up to a multiple of 64.
    nhashes:
        Number of probe positions per element.
    seed:
        Base seed for the probe hash functions.
    """

    def __init__(self, nbits: int, nhashes: int, seed: int = 0):
        if nbits <= 0:
            raise ValueError(f"nbits must be positive, got {nbits}")
        if nhashes <= 0:
            raise ValueError(f"nhashes must be positive, got {nhashes}")
        self.nbits = int(math.ceil(nbits / 64) * 64)
        self.nhashes = int(nhashes)
        self.seed = int(seed)
        self._words = np.zeros(self.nbits // 64, dtype=np.uint64)
        self._count = 0

    @classmethod
    def from_bits_per_key(cls, nkeys: int, bits_per_key: float, seed: int = 0) -> "BloomFilter":
        """Size a filter for ``nkeys`` elements at ``bits_per_key`` bits each."""
        if nkeys <= 0:
            raise ValueError(f"nkeys must be positive, got {nkeys}")
        if bits_per_key <= 0:
            raise ValueError(f"bits_per_key must be positive, got {bits_per_key}")
        nbits = max(64, int(math.ceil(nkeys * bits_per_key)))
        return cls(nbits, optimal_nhashes(bits_per_key), seed=seed)

    # -- core ops ---------------------------------------------------------

    def add_many(self, digests: np.ndarray) -> None:
        """Insert a batch of 64-bit digests."""
        digests = np.asarray(digests, dtype=np.uint64)
        if digests.size == 0:
            return
        pos = double_hash_probes(digests.ravel(), self.nhashes, self.nbits, self.seed)
        if self.nbits <= 1 << 25:
            # Scatter through a transient bit-per-bool array and repack:
            # an order-independent OR, so the words come out identical to
            # any scatter method, at a fraction of `bitwise_or.at`'s cost.
            bits = np.zeros(self.nbits, dtype=bool)
            bits[pos.ravel()] = True
            self._words |= np.packbits(bits, bitorder="little").view("<u8")
        else:
            # Huge filters: skip the nbits-byte transient allocation.
            words, offsets = np.divmod(pos.ravel(), 64)
            np.bitwise_or.at(self._words, words, np.uint64(1) << offsets.astype(np.uint64))
        self._count += digests.size

    def contains_many(self, digests: np.ndarray) -> np.ndarray:
        """Vectorized membership test; returns a boolean array."""
        digests = np.asarray(digests, dtype=np.uint64)
        if digests.size == 0:
            return np.zeros(0, dtype=bool)
        pos = double_hash_probes(digests.ravel(), self.nhashes, self.nbits, self.seed)
        words, offsets = np.divmod(pos, 64)
        bits = (self._words[words] >> offsets.astype(np.uint64)) & np.uint64(1)
        return bits.all(axis=1)

    def add(self, digest: int) -> None:
        """Insert a single digest."""
        self.add_many(np.asarray([digest], dtype=np.uint64))

    def __contains__(self, digest: int) -> bool:
        return bool(self.contains_many(np.asarray([digest], dtype=np.uint64))[0])

    # -- accounting -------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        """On-storage size of the bit vector."""
        return self.nbits // 8

    @property
    def fill_fraction(self) -> float:
        """Fraction of bits set — a direct handle on the empirical fpr."""
        set_bits = int(np.bitwise_count(self._words).sum())
        return set_bits / self.nbits

    def expected_fpr(self) -> float:
        """False-positive rate implied by the current fill fraction."""
        return self.fill_fraction**self.nhashes

    def to_bytes(self) -> bytes:
        """Serialize the bit vector (little-endian words)."""
        return self._words.astype("<u8").tobytes()

    @classmethod
    def from_bytes(cls, data: bytes, nhashes: int, seed: int = 0) -> "BloomFilter":
        """Rebuild a filter from `to_bytes` output."""
        if len(data) % 8:
            raise ValueError("serialized Bloom filter must be a multiple of 8 bytes")
        f = cls(len(data) * 8, nhashes, seed=seed)
        f._words = np.frombuffer(data, dtype="<u8").astype(np.uint64)
        return f
