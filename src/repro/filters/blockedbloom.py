"""Blocked Bloom filter: the cache-conscious Bloom variant.

A standard Bloom filter's k probes touch k random cache lines; a *blocked*
Bloom filter (Putze, Sanders & Singler) hashes each key to one 512-bit
block (one cache line) and sets all k bits inside it, trading a slightly
higher false-positive rate for one memory access per query.  On the
manycore CPUs the paper targets — where memory stalls cost relatively more
than arithmetic — this is the variant a production FilterKV would deploy,
so it ships here as an alternative to `BloomFilter` with the same API.
"""

from __future__ import annotations

import math

import numpy as np

from .bloom import optimal_nhashes
from .hashing import hash64

__all__ = ["BlockedBloomFilter"]

_BLOCK_BITS = 512
_BLOCK_WORDS = _BLOCK_BITS // 64


class BlockedBloomFilter:
    """Bloom filter with all probes confined to one 512-bit block per key."""

    def __init__(self, nblocks: int, nhashes: int, seed: int = 0):
        if nblocks <= 0:
            raise ValueError(f"nblocks must be positive, got {nblocks}")
        if nhashes <= 0:
            raise ValueError(f"nhashes must be positive, got {nhashes}")
        self.nblocks = int(nblocks)
        self.nhashes = int(nhashes)
        self.seed = int(seed)
        self._words = np.zeros(self.nblocks * _BLOCK_WORDS, dtype=np.uint64)
        self._count = 0

    @classmethod
    def from_bits_per_key(
        cls, nkeys: int, bits_per_key: float, seed: int = 0
    ) -> "BlockedBloomFilter":
        if nkeys <= 0 or bits_per_key <= 0:
            raise ValueError("nkeys and bits_per_key must be positive")
        nblocks = max(1, math.ceil(nkeys * bits_per_key / _BLOCK_BITS))
        return cls(nblocks, optimal_nhashes(bits_per_key), seed=seed)

    def _positions(self, digests: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(word index, bit offset) for every probe of every digest."""
        d = np.asarray(digests, dtype=np.uint64).ravel()
        block = (hash64(d, self.seed) % np.uint64(self.nblocks)).astype(np.int64)
        h1 = hash64(d, self.seed + 1)
        h2 = hash64(d, self.seed + 2) | np.uint64(1)
        i = np.arange(self.nhashes, dtype=np.uint64)
        inblock = ((h1[:, None] + i[None, :] * h2[:, None]) % np.uint64(_BLOCK_BITS)).astype(
            np.int64
        )
        words = block[:, None] * _BLOCK_WORDS + inblock // 64
        return words, (inblock % 64).astype(np.uint64)

    def add_many(self, digests: np.ndarray) -> None:
        digests = np.asarray(digests, dtype=np.uint64)
        if digests.size == 0:
            return
        words, offsets = self._positions(digests)
        np.bitwise_or.at(self._words, words.ravel(), np.uint64(1) << offsets.ravel())
        self._count += digests.size

    def contains_many(self, digests: np.ndarray) -> np.ndarray:
        digests = np.asarray(digests, dtype=np.uint64)
        if digests.size == 0:
            return np.zeros(0, dtype=bool)
        words, offsets = self._positions(digests)
        bits = (self._words[words] >> offsets) & np.uint64(1)
        return bits.all(axis=1)

    def add(self, digest: int) -> None:
        self.add_many(np.asarray([digest], dtype=np.uint64))

    def __contains__(self, digest: int) -> bool:
        return bool(self.contains_many(np.asarray([digest], dtype=np.uint64))[0])

    def __len__(self) -> int:
        return self._count

    @property
    def size_bytes(self) -> int:
        return self.nblocks * _BLOCK_BITS // 8

    @property
    def cache_lines_per_query(self) -> int:
        """The whole point: exactly one."""
        return 1
