"""Quotient filter (Bender et al., VLDB'12) — the related-work alternative.

The paper lists quotient filters among the hash-based compact filters that
could implement FilterKV's lossy auxiliary tables (§VI).  This is a faithful
single-table implementation with the classic three metadata bits per slot
(``is_occupied``, ``is_continuation``, ``is_shifted``) and in-cluster
shifting.  It stores 64-bit digests split into a ``q``-bit quotient and an
``r``-bit remainder; false positives arise when two digests collide on both.

It is deliberately scalar (insert and lookup walk clusters) — the aux-table
ablation uses it at moderate scale to compare space/amplification against
the Bloom and cuckoo designs, not to win throughput contests.
"""

from __future__ import annotations

import numpy as np

from .hashing import hash64

__all__ = ["QuotientFilter", "QuotientFilterFull"]


class QuotientFilterFull(Exception):
    """Raised when an insert cannot find an empty slot in the table."""


class QuotientFilter:
    """Approximate-membership quotient filter over 64-bit digests.

    Parameters
    ----------
    qbits:
        log2 of the slot count.
    rbits:
        Remainder width; the false-positive rate is about
        ``load_factor / 2**rbits``.
    seed:
        Seed for the digest scrambler applied to incoming keys.
    """

    def __init__(self, qbits: int, rbits: int, seed: int = 0):
        if not 1 <= qbits <= 31:
            raise ValueError(f"qbits must be in [1, 31], got {qbits}")
        if not 1 <= rbits <= 32:
            raise ValueError(f"rbits must be in [1, 32], got {rbits}")
        self.qbits = qbits
        self.rbits = rbits
        self.seed = seed
        self.nslots = 1 << qbits
        self._rem = np.zeros(self.nslots, dtype=np.uint32)
        self._occ = np.zeros(self.nslots, dtype=bool)
        self._cont = np.zeros(self.nslots, dtype=bool)
        self._shift = np.zeros(self.nslots, dtype=bool)
        self._count = 0

    # -- digesting --------------------------------------------------------

    def _split(self, key: int) -> tuple[int, int]:
        h = int(hash64(np.uint64(key), self.seed)[()])
        quotient = (h >> self.rbits) & (self.nslots - 1)
        remainder = h & ((1 << self.rbits) - 1)
        return quotient, remainder

    # -- slot helpers -----------------------------------------------------

    def _is_empty(self, i: int) -> bool:
        return not (self._occ[i] or self._cont[i] or self._shift[i])

    def _prev(self, i: int) -> int:
        return (i - 1) % self.nslots

    def _next(self, i: int) -> int:
        return (i + 1) % self.nslots

    def _find_run_start(self, quotient: int) -> int:
        """Start slot of the run for ``quotient`` (which must be occupied)."""
        # Walk left to the cluster start (first unshifted slot).
        b = quotient
        while self._shift[b]:
            b = self._prev(b)
        # Walk forward run-by-run until we have consumed as many runs as
        # there are occupied quotients in [cluster start, quotient].
        s = b
        qi = b
        while qi != quotient:
            s = self._next(s)
            while self._cont[s]:
                s = self._next(s)
            qi = self._next(qi)
            while not self._occ[qi]:
                qi = self._next(qi)
        return s

    # -- public ops -------------------------------------------------------

    def add(self, key: int) -> None:
        """Insert a key (idempotent for identical digests)."""
        quotient, remainder = self._split(key)
        if self._count >= self.nslots:
            raise QuotientFilterFull("quotient filter has no empty slots")
        if self._is_empty(quotient) and not self._occ[quotient]:
            self._rem[quotient] = remainder
            self._occ[quotient] = True
            self._count += 1
            return
        run_exists = bool(self._occ[quotient])
        self._occ[quotient] = True
        if run_exists:
            start = self._find_run_start(quotient)
            # Scan the (sorted) run for the insertion point.
            pos = start
            while True:
                cur = int(self._rem[pos])
                if cur == remainder:
                    return  # already present: set semantics
                if cur > remainder:
                    break
                nxt = self._next(pos)
                if not self._cont[nxt]:
                    pos = nxt  # insert after the run's last element
                    break
                pos = nxt
            inserting_at_start = pos == start
        else:
            # A brand-new run begins where the run *would* start.  That is
            # the slot right after the runs of all smaller occupied
            # quotients in this cluster, which _find_run_start computes once
            # the occupied bit is set (done above) — but with no existing
            # run the scan needs the would-be position:
            # With the occupied bit just set, `_find_run_start` lands on the
            # slot right after the runs of all earlier occupied quotients in
            # this cluster — exactly where the new run must begin.
            pos = self._find_run_start(quotient)
            inserting_at_start = True
        self._shift_in(pos, remainder, quotient, inserting_at_start, run_exists)
        self._count += 1

    def _shift_in(
        self, pos: int, remainder: int, quotient: int, at_run_start: bool, run_exists: bool
    ) -> None:
        """Place ``remainder`` at ``pos``, rippling the cluster rightward."""
        cur_rem = remainder
        # The inserted element is a continuation iff it lands mid-run.
        cur_cont = run_exists and not at_run_start
        i = pos
        first = True
        while True:
            if self._is_empty(i):
                self._rem[i] = cur_rem
                self._cont[i] = cur_cont
                self._shift[i] = i != quotient if first else True
                return
            old_rem = int(self._rem[i])
            old_cont = bool(self._cont[i])
            self._rem[i] = cur_rem
            if first and at_run_start and run_exists:
                # The displaced old run head becomes a continuation.
                old_cont_out = True
            else:
                old_cont_out = old_cont
            self._cont[i] = cur_cont
            self._shift[i] = i != quotient if first else True
            cur_rem, cur_cont = old_rem, old_cont_out
            first = False
            i = self._next(i)

    def __contains__(self, key: int) -> bool:
        quotient, remainder = self._split(key)
        if not self._occ[quotient]:
            return False
        pos = self._find_run_start(quotient)
        while True:
            if int(self._rem[pos]) == remainder:
                return True
            pos = self._next(pos)
            if not self._cont[pos]:
                return False

    def contains_many(self, keys: np.ndarray) -> np.ndarray:
        """Membership test for a batch of keys (scalar loop inside)."""
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        return np.fromiter((int(k) in self for k in keys), dtype=bool, count=keys.size)

    # -- accounting -------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def load_factor(self) -> float:
        return self._count / self.nslots

    @property
    def size_bytes(self) -> int:
        """Packed size: (rbits + 3 metadata bits) per slot."""
        return -(-self.nslots * (self.rbits + 3) // 8)

    def expected_fpr(self) -> float:
        """Analytic false-positive rate at the current load factor."""
        return min(1.0, self.load_factor / (1 << self.rbits) * 2)
