"""Partial-key cuckoo hash tables (paper §IV-B, Figs. 5–6).

A partial-key cuckoo hash table stores, for every inserted key, a small
fingerprint (the *partial key*) plus an application value — here the source
rank of a KV pair.  Each key maps to two candidate buckets; the alternate
bucket is computable from the fingerprint alone (``b2 = b1 ^ h(fp)``), which
is what makes relocation possible without retaining full keys.

Two classes:

`PartialKeyCuckooTable`
    A single fixed-size table.  Insertion uses a *non-destructive* eviction
    path search: a random walk over candidate relocations is simulated
    first, and the table is only mutated once a complete path to an empty
    slot is known.  A failed insert therefore leaves the table untouched and
    raises `CuckooTableFull` — the property the chained-growth scheme relies
    on.

`ChainedCuckooTable`
    The paper's growth scheme: rather than doubling (which either wastes
    half the slots or requires retaining every key for a rehash), a full
    table is *frozen* and a smaller overflow table is chained in front of it
    (e.g. a 1 M-slot table plus a 128 K-slot table holding 1.1 M keys at
    ~95 % combined utilization).

Bulk insertion and lookup are vectorized with NumPy; only the eviction tail
(the few percent of keys whose both buckets are full) takes the scalar path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .hashing import MASK64, fingerprint, hash64, splitmix64_int

__all__ = [
    "CuckooTableFull",
    "PartialKeyCuckooTable",
    "ChainedCuckooTable",
    "CuckooStats",
]

_EMPTY = np.uint32(0)  # fingerprint 0 marks an empty slot
_PER_TABLE_HEADER_BYTES = 32  # footer/metadata charged per physical table


class CuckooTableFull(Exception):
    """Raised when no eviction path to an empty slot exists for an insert."""


@dataclass(frozen=True)
class CuckooStats:
    """Occupancy and space accounting for a (chained) cuckoo table."""

    nkeys: int
    nslots: int
    ntables: int
    size_bytes: int
    kicks: int = 0
    failed_inserts: int = 0

    @property
    def utilization(self) -> float:
        """Fraction of allocated slots actually holding an entry."""
        return self.nkeys / self.nslots if self.nslots else 0.0

    @property
    def bytes_per_key(self) -> float:
        return self.size_bytes / self.nkeys if self.nkeys else 0.0


def _round_pow2(n: int) -> int:
    """Smallest power of two >= n (and >= 1)."""
    return 1 << max(0, math.ceil(math.log2(max(1, n))))


class PartialKeyCuckooTable:
    """A single fixed-size partial-key cuckoo hash table.

    Parameters
    ----------
    nbuckets:
        Number of buckets; rounded up to a power of two.
    fp_bits:
        Fingerprint width in bits (the paper uses 4).
    value_bits:
        Width of the stored value (``log2(N)`` for N data partitions).
        ``0`` is allowed, degrading the table to a plain cuckoo *filter*.
    slots_per_bucket:
        Bucket associativity (the paper and Fan et al. use 4).
    max_kicks:
        Bound on the relocation walk before declaring the table full
        (the paper quotes 500).
    """

    def __init__(
        self,
        nbuckets: int,
        fp_bits: int = 4,
        value_bits: int = 16,
        slots_per_bucket: int = 4,
        max_kicks: int = 500,
        seed: int = 0,
    ):
        if not 1 <= fp_bits <= 32:
            raise ValueError(f"fp_bits must be in [1, 32], got {fp_bits}")
        if not 0 <= value_bits <= 32:
            raise ValueError(f"value_bits must be in [0, 32], got {value_bits}")
        if slots_per_bucket < 1:
            raise ValueError("slots_per_bucket must be >= 1")
        self.nbuckets = _round_pow2(nbuckets)
        self.fp_bits = int(fp_bits)
        self.value_bits = int(value_bits)
        self.slots_per_bucket = int(slots_per_bucket)
        self.max_kicks = int(max_kicks)
        self.seed = int(seed)
        self._mask = np.uint64(self.nbuckets - 1)
        self._fps = np.zeros((self.nbuckets, self.slots_per_bucket), dtype=np.uint32)
        self._vals = np.zeros((self.nbuckets, self.slots_per_bucket), dtype=np.uint32)
        self._occ = np.zeros(self.nbuckets, dtype=np.int64)
        self._nkeys = 0
        self.kicks = 0  # entries displaced by successful eviction walks
        self.failed_inserts = 0  # walks that burned max_kicks and gave up
        self._rng = np.random.default_rng(seed ^ 0xC0C0)
        # Alternate-bucket displacement per fingerprint value, precomputed so
        # the eviction walk runs on plain Python ints (fingerprints are only
        # fp_bits wide, so the table is small).
        if self.fp_bits <= 20:
            fp_values = np.arange(1 << self.fp_bits, dtype=np.uint64)
            self._alt_lut = (hash64(fp_values, self.seed + 0xA17) & self._mask).astype(np.int64)
            self._alt_lut_list = self._alt_lut.tolist()
        else:
            self._alt_lut = None
            self._alt_lut_list = None
        # Scalar probe constants (plain Python ints): the serving tier and
        # the fleet router probe one key per request, where per-call array
        # overhead dwarfs the hashing itself.
        self._mask_int = self.nbuckets - 1
        self._fp_span = (1 << self.fp_bits) - 1
        self._seed_mix = splitmix64_int(self.seed & MASK64)
        self._fp_seed_mix = splitmix64_int((self.seed + 0x5BD1) & MASK64)
        self._alt_seed_mix = splitmix64_int((self.seed + 0xA17) & MASK64)

    # -- addressing -------------------------------------------------------

    def _fingerprints(self, keys: np.ndarray) -> np.ndarray:
        return fingerprint(keys, self.fp_bits, seed=self.seed + 0x5BD1).astype(np.uint32)

    def _primary_buckets(self, keys: np.ndarray) -> np.ndarray:
        return (hash64(keys, self.seed) & self._mask).astype(np.int64)

    def _alt_buckets(self, buckets: np.ndarray, fps: np.ndarray) -> np.ndarray:
        """Alternate bucket, computable from (bucket, fingerprint) alone."""
        if self._alt_lut is not None:
            return np.asarray(buckets, dtype=np.int64) ^ self._alt_lut[np.asarray(fps)]
        h = hash64(np.asarray(fps, dtype=np.uint64), self.seed + 0xA17) & self._mask
        return (np.asarray(buckets, dtype=np.uint64) ^ h).astype(np.int64)

    def _alt_bucket_scalar(self, bucket: int, fp: int) -> int:
        if self._alt_lut is not None:
            return bucket ^ int(self._alt_lut[fp])
        h = hash64(np.uint64(fp), self.seed + 0xA17) & self._mask
        return bucket ^ int(h)

    # -- insertion --------------------------------------------------------

    def insert(self, key: int, value: int = 0) -> None:
        """Insert one key→value mapping; raises `CuckooTableFull` on failure."""
        keys = np.asarray([key], dtype=np.uint64)
        fp = int(self._fingerprints(keys)[0])
        b1 = int(self._primary_buckets(keys)[0])
        self._insert_fp(fp, int(value), b1)

    def _insert_fp(self, fp: int, value: int, b1: int) -> None:
        b2 = self._alt_bucket_scalar(b1, fp)
        for b in (b1, b2):
            if self._occ[b] < self.slots_per_bucket:
                self._place(b, fp, value)
                return
        self._insert_with_eviction(fp, value, b1, b2)

    def _place(self, bucket: int, fp: int, value: int) -> None:
        slot = int(self._occ[bucket])
        self._fps[bucket, slot] = fp
        self._vals[bucket, slot] = value
        self._occ[bucket] += 1
        self._nkeys += 1

    def _insert_with_eviction(self, fp: int, value: int, b1: int, b2: int) -> None:
        """Random-walk eviction, simulated first and applied only on success.

        The walk records its displacements in an overlay dict instead of
        mutating the table, so (a) a failed insert leaves the table
        byte-identical to its pre-insert state, and (b) revisits of the same
        slot during the walk observe the simulated — i.e. eventual — contents
        rather than stale ones.
        """
        # Tight scalar loop: everything is a Python int — table cells are
        # read with ndarray.item (no 0-d array round trip) and the alternate
        # bucket comes from a list LUT — this walk is the only per-record
        # work left at high load.  The RNG is consumed exactly as one coin
        # draw plus one max_kicks-wide slot draw per walk, so walk outcomes
        # (and hence table layout) are a pure function of the seed and
        # insert order, stable across revisions.
        slots_per_bucket = self.slots_per_bucket
        fps_item = self._fps.item
        vals_item = self._vals.item
        occ_item = self._occ.item
        lut = self._alt_lut_list
        start = b1 if self._rng.integers(2) == 0 else b2
        choices = self._rng.integers(slots_per_bucket, size=self.max_kicks).tolist()
        writes: dict[tuple[int, int], tuple[int, int]] = {}
        cur_fp, cur_val = int(fp), int(value)
        bucket = start
        for slot in choices:
            key = (bucket, slot)
            victim = writes.get(key)
            if victim is None:
                victim = (fps_item(bucket, slot), vals_item(bucket, slot))
            writes[key] = (cur_fp, cur_val)
            cur_fp, cur_val = victim
            if lut is not None:
                bucket ^= lut[cur_fp]
            else:
                bucket = self._alt_bucket_scalar(bucket, cur_fp)
            if occ_item(bucket) < slots_per_bucket:
                for (wb, ws), (wfp, wval) in writes.items():
                    self._fps[wb, ws] = wfp
                    self._vals[wb, ws] = wval
                self._place(bucket, cur_fp, cur_val)
                self.kicks += len(writes)
                return
        self.failed_inserts += 1
        raise CuckooTableFull(
            f"no eviction path within {self.max_kicks} kicks "
            f"(load {self._nkeys}/{self.capacity_slots})"
        )

    def insert_many(self, keys: np.ndarray, values: np.ndarray | int = 0) -> np.ndarray:
        """Bulk insert; returns a boolean mask of keys that fit.

        Keys whose buckets have free slots are placed with vectorized
        scatter (resolving intra-batch collisions by bucket-sorting); the
        remainder falls back to the scalar eviction path.  The table is
        left valid regardless of how many keys fit.
        """
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        n = keys.size
        vals = np.broadcast_to(np.asarray(values, dtype=np.uint32), (n,)).copy()
        if n == 0:
            return np.zeros(0, dtype=bool)
        fps = self._fingerprints(keys)
        b1 = self._primary_buckets(keys)
        b2 = self._alt_buckets(b1, fps)
        inserted = np.zeros(n, dtype=bool)

        pending = np.arange(n)
        for attempt_buckets in (b1, b2, b1):  # two direct rounds + one retry
            if pending.size == 0:
                break
            placed = self._bulk_place(attempt_buckets[pending], fps[pending], vals[pending])
            inserted[pending[placed]] = True
            pending = pending[~placed]

        # Scalar eviction tail.  The first failed eviction walk is strong
        # evidence the table is saturated; later items would almost all burn
        # max_kicks too, so we stop and leave them for the caller (the
        # chained scheme opens an overflow table for exactly this case).
        for i in pending:
            try:
                self._insert_fp(int(fps[i]), int(vals[i]), int(b1[i]))
                inserted[i] = True
            except CuckooTableFull:
                break
        return inserted

    def _bulk_place(self, buckets: np.ndarray, fps: np.ndarray, vals: np.ndarray) -> np.ndarray:
        """Vectorized placement into ``buckets`` where free slots exist."""
        n = buckets.size
        # Stable argsort on a narrow dtype takes numpy's radix path — same
        # order (bucket ids are < nbuckets), several times faster.
        narrow = buckets.astype(np.uint16) if self.nbuckets <= 0x10000 else buckets
        order = np.argsort(narrow, kind="stable")
        bs = buckets[order]
        idx = np.arange(n)
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        new_group[1:] = bs[1:] != bs[:-1]
        group_start = np.maximum.accumulate(np.where(new_group, idx, 0))
        seq = idx - group_start
        slots = self._occ[bs] + seq
        ok = slots < self.slots_per_bucket
        self._fps[bs[ok], slots[ok]] = fps[order][ok]
        self._vals[bs[ok], slots[ok]] = vals[order][ok]
        np.add.at(self._occ, bs[ok], 1)
        self._nkeys += int(ok.sum())
        placed = np.zeros(n, dtype=bool)
        placed[order[ok]] = True
        return placed

    # -- lookup -----------------------------------------------------------

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Candidate values for each key.

        Returns ``(vals, match)`` where both have shape
        ``(nkeys, 2 * slots_per_bucket)``; ``match[i, j]`` is True where the
        slot's fingerprint equals key *i*'s fingerprint.  Because multiple
        keys can share a fingerprint, matches beyond the true entry are the
        false positives the paper trades space for.
        """
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        fps = self._fingerprints(keys)
        b1 = self._primary_buckets(keys)
        b2 = self._alt_buckets(b1, fps)
        slot_fps = np.concatenate([self._fps[b1], self._fps[b2]], axis=1)
        slot_vals = np.concatenate([self._vals[b1], self._vals[b2]], axis=1)
        match = (slot_fps == fps[:, None]) & (slot_fps != _EMPTY)
        return slot_vals, match

    def candidate_values_scalar(self, key: int) -> list[int]:
        """Sorted distinct candidate values for one key, as plain ints.

        Bit-identical to `candidate_values` (same fingerprint, bucket, and
        alternate-bucket arithmetic) but with no array allocation on the
        way: this is what a router claim or a single served probe costs.
        """
        k = int(key) & MASK64
        fp = (splitmix64_int(k ^ self._fp_seed_mix) % self._fp_span) + 1
        b1 = splitmix64_int(k ^ self._seed_mix) & self._mask_int
        if self._alt_lut_list is not None:
            b2 = b1 ^ self._alt_lut_list[fp]
        else:
            b2 = b1 ^ (splitmix64_int((fp & MASK64) ^ self._alt_seed_mix) & self._mask_int)
        out = set()
        fps, vals = self._fps, self._vals
        for b in (b1,) if b1 == b2 else (b1, b2):
            frow = fps[b]
            for j in range(self.slots_per_bucket):
                if int(frow[j]) == fp:
                    out.add(int(vals[b, j]))
        return sorted(out)

    def candidate_values(self, key: int) -> np.ndarray:
        """Sorted distinct candidate values for one key."""
        return np.asarray(self.candidate_values_scalar(key), dtype=np.uint32)

    def contains(self, key: int) -> bool:
        """Membership test (any slot with a matching fingerprint)."""
        # A match always contributes a value, so "any candidates" is
        # exactly "any slot with a matching fingerprint".
        return bool(self.candidate_values_scalar(key))

    def delete(self, key: int) -> bool:
        """Remove one entry matching the key's fingerprint, if present."""
        keys = np.asarray([key], dtype=np.uint64)
        fp = self._fingerprints(keys)[0]
        b1 = int(self._primary_buckets(keys)[0])
        b2 = int(self._alt_buckets(np.asarray([b1]), np.asarray([fp]))[0])
        for b in dict.fromkeys((b1, b2)):
            row = self._fps[b]
            hits = np.nonzero(row == fp)[0]
            if hits.size:
                slot = int(hits[0])
                last = int(self._occ[b]) - 1
                self._fps[b, slot] = self._fps[b, last]
                self._vals[b, slot] = self._vals[b, last]
                self._fps[b, last] = _EMPTY
                self._vals[b, last] = 0
                self._occ[b] = last
                self._nkeys -= 1
                return True
        return False

    # -- accounting -------------------------------------------------------

    def __len__(self) -> int:
        return self._nkeys

    @property
    def capacity_slots(self) -> int:
        return self.nbuckets * self.slots_per_bucket

    @property
    def load_factor(self) -> float:
        return self._nkeys / self.capacity_slots

    @property
    def size_bytes(self) -> int:
        """On-storage size: packed (fp_bits + value_bits) per slot + header."""
        bits = self.capacity_slots * (self.fp_bits + self.value_bits)
        return math.ceil(bits / 8) + _PER_TABLE_HEADER_BYTES

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Dense (fps, vals) views for serialization layers."""
        return self._fps, self._vals


class ChainedCuckooTable:
    """The paper's chained-growth scheme over `PartialKeyCuckooTable`.

    Parameters
    ----------
    fp_bits, value_bits, slots_per_bucket, max_kicks, seed:
        Forwarded to every physical table.
    capacity_hint:
        Expected number of keys.  When given, the first table is sized to
        the largest power-of-two slot count not exceeding the hint; each
        overflow table is then sized from the keys that actually remain —
        the 1 M + 128 K construction from §IV-B (1.1 M keys → a 2^20-slot
        table plus a 2^17-slot overflow), reaching ~95 % combined
        utilization.  Without a hint, the first table starts at
        ``min_buckets`` and each overflow table is sized from the keys
        inserted so far (doubling-flavored growth, lower utilization).
    load_target:
        Assumed achievable per-table load factor when sizing overflow
        tables (random-walk insertion fills 4-way buckets to ~0.98, so 0.95
        is conservative and reproduces the paper's sizing example exactly).
    """

    def __init__(
        self,
        fp_bits: int = 4,
        value_bits: int = 16,
        slots_per_bucket: int = 4,
        max_kicks: int = 500,
        seed: int = 0,
        capacity_hint: int | None = None,
        load_target: float = 0.95,
        min_buckets: int = 16,
    ):
        if capacity_hint is not None and capacity_hint <= 0:
            raise ValueError("capacity_hint must be positive when given")
        if not 0.1 <= load_target <= 1.0:
            raise ValueError("load_target must be in [0.1, 1.0]")
        self.fp_bits = fp_bits
        self.value_bits = value_bits
        self.slots_per_bucket = slots_per_bucket
        self.max_kicks = max_kicks
        self.seed = seed
        self.capacity_hint = capacity_hint
        self.load_target = load_target
        self.min_buckets = min_buckets
        self.tables: list[PartialKeyCuckooTable] = [self._make_table(first=True)]

    def _make_table(self, first: bool, expected: int | None = None) -> PartialKeyCuckooTable:
        min_slots = self.min_buckets * self.slots_per_bucket
        if first:
            if self.capacity_hint is not None:
                slots = 1 << math.floor(math.log2(max(min_slots, self.capacity_hint)))
            else:
                slots = min_slots
        else:
            if expected is None:
                if self.capacity_hint is not None:
                    expected = max(1, int(self.capacity_hint * 1.05) - len(self))
                else:
                    expected = max(1, len(self))
            # Balanced power-of-two sizing: take the next power of two when
            # the overflow table would end up reasonably full, otherwise
            # take the one below and let the chain continue (utilization
            # stays ~95 % regardless of where the key count falls between
            # powers of two — the paper's 1 M + 128 K example generalized).
            need = max(min_slots, expected / self.load_target)
            ceil_p = _round_pow2(math.ceil(need))
            if expected / ceil_p >= 0.8 * self.load_target or ceil_p <= min_slots:
                slots = ceil_p
            else:
                slots = max(min_slots, ceil_p // 2)
        nbuckets = max(self.min_buckets, slots // self.slots_per_bucket)
        return PartialKeyCuckooTable(
            nbuckets,
            fp_bits=self.fp_bits,
            value_bits=self.value_bits,
            slots_per_bucket=self.slots_per_bucket,
            max_kicks=self.max_kicks,
            seed=self.seed + len(getattr(self, "tables", [])),
        )

    # -- mutation ---------------------------------------------------------

    def insert(self, key: int, value: int = 0) -> None:
        """Insert into the active table, chaining a new one on overflow."""
        while True:
            try:
                self.tables[-1].insert(key, value)
                return
            except CuckooTableFull:
                self.tables.append(self._make_table(first=False))

    def insert_many(self, keys: np.ndarray, values: np.ndarray | int = 0) -> None:
        """Bulk insert, chaining overflow tables as needed."""
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        vals = np.broadcast_to(np.asarray(values, dtype=np.uint32), keys.shape).copy()
        pending_keys, pending_vals = keys, vals
        while pending_keys.size:
            ok = self.tables[-1].insert_many(pending_keys, pending_vals)
            pending_keys = pending_keys[~ok]
            pending_vals = pending_vals[~ok]
            if pending_keys.size:
                self.tables.append(self._make_table(first=False, expected=pending_keys.size))

    # -- lookup -----------------------------------------------------------

    def candidate_values(self, key: int) -> np.ndarray:
        """Distinct candidate values across every chained table."""
        out: set[int] = set()
        for t in self.tables:
            out.update(t.candidate_values_scalar(key))
        return np.asarray(sorted(out), dtype=np.uint32)

    def candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized candidate sets for a whole key array.

        Returns ``(counts, flat)``: ``flat`` concatenates each key's sorted
        distinct candidate values and ``counts[i]`` says how many belong to
        key *i* — the flattened form the bulk read path schedules from.
        One `lookup_many` per chained table resolves fingerprints and
        buckets for every key at once; no per-key Python work.
        """
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        all_vals = []
        all_match = []
        for t in self.tables:
            vals, match = t.lookup_many(keys)
            all_vals.append(vals)
            all_match.append(match)
        vals = np.concatenate(all_vals, axis=1).astype(np.int64)
        match = np.concatenate(all_match, axis=1)
        # Distinct values per row: push non-matches to a sentinel, sort each
        # row, keep the first of every run of equal non-sentinel entries.
        sentinel = np.int64(-1)
        masked = np.where(match, vals, sentinel)
        masked.sort(axis=1)
        keep = masked != sentinel
        keep[:, 1:] &= masked[:, 1:] != masked[:, :-1]
        rows, cols = np.nonzero(keep)  # row-major: ascending value per row
        return (
            np.bincount(rows, minlength=keys.size).astype(np.int64),
            masked[rows, cols],
        )

    def candidate_counts(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized count of *distinct* candidate values per key.

        This is the paper's query-amplification metric (Fig. 7a): how many
        data partitions a reader must consult for each key.
        """
        return self.candidates_many(keys)[0]

    def contains(self, key: int) -> bool:
        return any(t.contains(key) for t in self.tables)

    # -- accounting -------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(t) for t in self.tables)

    @property
    def total_kicks(self) -> int:
        return sum(t.kicks for t in self.tables)

    @property
    def stats(self) -> CuckooStats:
        return CuckooStats(
            nkeys=len(self),
            nslots=sum(t.capacity_slots for t in self.tables),
            ntables=len(self.tables),
            size_bytes=sum(t.size_bytes for t in self.tables),
            kicks=self.total_kicks,
            failed_inserts=sum(t.failed_inserts for t in self.tables),
        )

    @property
    def size_bytes(self) -> int:
        return self.stats.size_bytes
