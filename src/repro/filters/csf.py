"""Compressed static function (maplet): key → small value, xor construction.

The aux table the paper builds is really a *maplet* — a compact map from
each key to its candidate partition rank — and once an epoch seals, the
key set is immutable.  That is exactly the regime compressed static
functions (CSFs) are built for: store ``f(key) = value`` for a fixed key
set in ~1.23·b bits per key (b = value width), with *no* per-key pointers
and exactly three memory probes per lookup.

`XorMaplet` is the hash-and-displace / xor-construction CSF, fused with a
fingerprint filter guard per AutoCSF: every slot is ``fp_bits + value_bits``
wide and a key's three slots xor to ``fingerprint(key) ‖ value``.  For an
in-set key the reconstruction is exact (the maplet never loses a mapping);
for an out-of-set key the reconstructed fingerprint matches only with
probability ``2^-fp_bits``, so the guard converts "garbage value" into "no
answer" almost always.

Construction peels a random 3-uniform hypergraph exactly like the xor
filter (`repro.filters.xorfilter`): keys map to one slot per segment,
slots referenced by a single key peel repeatedly, and assignment walks the
peel order backwards setting each key's free slot.  Peeling fails for
unlucky seeds with vanishing probability at 1.23× occupancy and is retried
with a fresh seed.  Unlike a filter, a static *function* requires one
value per key — duplicate keys are a caller error and rejected up front.
"""

from __future__ import annotations

import math

import numpy as np

from .hashing import fingerprint, hash64

__all__ = ["XorMaplet", "CsfConstructionError"]

_SEED_STRIDE = 0x9E37  # per-retry seed step, matching XorFilter


class CsfConstructionError(RuntimeError):
    """Peeling failed for every attempted seed (should be ~impossible)."""


class XorMaplet:
    """Static key → value map over 64-bit keys with a fused filter guard.

    Parameters
    ----------
    keys:
        Distinct ``uint64`` keys (duplicates raise — a function stores one
        value per key; dedupe or reject conflicts before building).
    values:
        One value per key, each in ``[0, 2**value_bits)``.
    value_bits:
        Payload width per key.
    fp_bits:
        Fingerprint-guard width; out-of-set lookups report a (spurious)
        hit with probability ``2^-fp_bits``.
    """

    def __init__(
        self,
        keys: np.ndarray,
        values: np.ndarray,
        value_bits: int,
        fp_bits: int = 4,
        seed: int = 0,
        max_tries: int = 32,
    ):
        if not 1 <= value_bits <= 32:
            raise ValueError(f"value_bits must be in [1, 32], got {value_bits}")
        if not 1 <= fp_bits <= 32:
            raise ValueError(f"fp_bits must be in [1, 32], got {fp_bits}")
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        values = np.asarray(values, dtype=np.uint64).ravel()
        if keys.size == 0:
            raise ValueError("maplet needs at least one key")
        if keys.shape != values.shape:
            raise ValueError("need exactly one value per key")
        if np.unique(keys).size != keys.size:
            raise ValueError("duplicate keys: a static function maps each key once")
        if values.size and int(values.max()) >> value_bits:
            raise ValueError(f"value {int(values.max())} does not fit in {value_bits} bits")
        self.fp_bits = int(fp_bits)
        self.value_bits = int(value_bits)
        self.nkeys = int(keys.size)
        self._segment = max(2, math.ceil(1.23 * keys.size / 3) + 8)
        self.tries = 0
        for attempt in range(max_tries):
            self.seed = seed + attempt * _SEED_STRIDE
            self.tries = attempt + 1
            order = self._peel(keys)
            if order is not None:
                self._slots = self._assign(keys, values, order)
                return
        raise CsfConstructionError(f"peeling failed after {max_tries} seeds")

    @classmethod
    def from_state(
        cls,
        slots: np.ndarray,
        nkeys: int,
        value_bits: int,
        fp_bits: int,
        seed: int,
    ) -> "XorMaplet":
        """Rebuild a maplet from its persisted slot array (no re-peeling).

        ``seed`` must be the *final* seed the build settled on (the one the
        instance reports), not the seed the build started from.
        """
        slots = np.asarray(slots, dtype=np.uint64).ravel()
        if slots.size % 3:
            raise ValueError(f"slot array length {slots.size} is not 3 segments")
        m = object.__new__(cls)
        m.fp_bits = int(fp_bits)
        m.value_bits = int(value_bits)
        m.nkeys = int(nkeys)
        m._segment = slots.size // 3
        m.seed = int(seed)
        m.tries = 0
        m._slots = slots
        return m

    # -- hashing ------------------------------------------------------------

    def _positions(self, keys: np.ndarray) -> np.ndarray:
        """(n, 3) slot indices, one per segment."""
        seg = np.uint64(self._segment)
        cols = [
            (hash64(keys, self.seed + i) % seg).astype(np.int64) + i * self._segment
            for i in range(3)
        ]
        return np.stack(cols, axis=1)

    def _fingerprints(self, keys: np.ndarray) -> np.ndarray:
        return fingerprint(keys, self.fp_bits, seed=self.seed + 0xF1).astype(np.uint64)

    # -- construction --------------------------------------------------------

    def _peel(self, keys: np.ndarray) -> list[tuple[int, int]] | None:
        """Peel order as (key index, freed slot), or None on failure."""
        pos = self._positions(keys)
        nslots = 3 * self._segment
        count = np.zeros(nslots, dtype=np.int64)
        xor_keyidx = np.zeros(nslots, dtype=np.int64)
        for c in range(3):
            np.add.at(count, pos[:, c], 1)
            np.bitwise_xor.at(xor_keyidx, pos[:, c], np.arange(keys.size))
        queue = list(np.nonzero(count == 1)[0])
        order: list[tuple[int, int]] = []
        alive = np.ones(keys.size, dtype=bool)
        while queue:
            slot = queue.pop()
            if count[slot] != 1:
                continue
            ki = int(xor_keyidx[slot])
            if not alive[ki]:
                continue
            alive[ki] = False
            order.append((ki, int(slot)))
            for c in range(3):
                s = int(pos[ki, c])
                count[s] -= 1
                xor_keyidx[s] ^= ki
                if count[s] == 1:
                    queue.append(s)
        return order if len(order) == keys.size else None

    def _assign(
        self, keys: np.ndarray, values: np.ndarray, order: list[tuple[int, int]]
    ) -> np.ndarray:
        pos = self._positions(keys)
        words = (self._fingerprints(keys) << np.uint64(self.value_bits)) | values
        slots = np.zeros(3 * self._segment, dtype=np.uint64)
        for ki, free_slot in reversed(order):
            acc = words[ki]
            for c in range(3):
                s = int(pos[ki, c])
                if s != free_slot:
                    acc ^= slots[s]
            slots[free_slot] = acc
        return slots

    # -- queries ---------------------------------------------------------------

    def lookup_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """``(guard_hits, values)`` for a whole key array.

        For every key inserted at build time ``guard_hits`` is True and the
        value is exactly the one stored; for out-of-set keys ``guard_hits``
        is True with probability ``2^-fp_bits`` and the value is noise.
        """
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        if keys.size == 0:
            return np.zeros(0, dtype=bool), np.zeros(0, dtype=np.uint64)
        pos = self._positions(keys)
        acc = self._slots[pos[:, 0]] ^ self._slots[pos[:, 1]] ^ self._slots[pos[:, 2]]
        hits = (acc >> np.uint64(self.value_bits)) == self._fingerprints(keys)
        values = acc & np.uint64((1 << self.value_bits) - 1)
        return hits, values

    def get(self, key: int) -> int | None:
        """The stored value, or None when the fingerprint guard rejects."""
        hit, value = self.lookup_many(np.asarray([key], dtype=np.uint64))
        return int(value[0]) if hit[0] else None

    def __contains__(self, key: int) -> bool:
        return self.get(int(key)) is not None

    # -- accounting --------------------------------------------------------------

    def __len__(self) -> int:
        return self.nkeys

    @property
    def slot_bits(self) -> int:
        return self.fp_bits + self.value_bits

    @property
    def nslots(self) -> int:
        return 3 * self._segment

    @property
    def size_bytes(self) -> int:
        return math.ceil(self.nslots * self.slot_bits / 8)

    @property
    def bits_per_key(self) -> float:
        return self.size_bytes * 8 / self.nkeys

    def expected_fpr(self) -> float:
        """Probability an out-of-set key passes the fingerprint guard."""
        return 2.0**-self.fp_bits
