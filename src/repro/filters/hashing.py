"""Vectorized 64-bit hashing primitives shared by every filter in this package.

All functions operate on ``numpy.uint64`` arrays (scalars are accepted and
promoted) and rely on the wrap-around semantics of unsigned integer
arithmetic.  Python ``int`` constants are explicitly wrapped in
``numpy.uint64`` because mixing a Python int with a ``uint64`` array would
silently upcast to ``float64`` for some operations.

The core mixer is `splitmix64` (Steele et al., the finalizer used by
xxhash/murmur-style hashes), which is a bijection on 64-bit words with good
avalanche behaviour.  Everything else — seeded hashing, fingerprinting,
double-hash probe sequences — is derived from it.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "splitmix64",
    "splitmix64_int",
    "hash64",
    "hash64_int",
    "hash_pair",
    "fingerprint",
    "double_hash_probes",
    "MASK64",
]

MASK64 = (1 << 64) - 1

_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
_SHIFT30 = np.uint64(30)
_SHIFT27 = np.uint64(27)
_SHIFT31 = np.uint64(31)
_SHIFT32 = np.uint64(32)


def splitmix64(x: np.ndarray | int) -> np.ndarray:
    """Finalizing mixer of the SplitMix64 generator.

    A bijective scrambling of 64-bit words: equal inputs give equal outputs,
    distinct inputs give well-distributed distinct outputs.

    Parameters
    ----------
    x:
        ``uint64`` array (or anything convertible to one).

    Returns
    -------
    ``uint64`` array of the same shape.
    """
    z = np.asarray(x, dtype=np.uint64)
    with np.errstate(over="ignore"):  # wraparound is the point
        z = z + _GAMMA
        z = (z ^ (z >> _SHIFT30)) * _MIX1
        z = (z ^ (z >> _SHIFT27)) * _MIX2
    return z ^ (z >> _SHIFT31)


def splitmix64_int(x: int) -> int:
    """`splitmix64` of one plain Python int — bit-identical to the array
    version.  Serving probes one key at a time; the uint64 array
    round-trip (asarray, errstate, five ufunc dispatches) costs ~50x the
    arithmetic itself, which this path avoids."""
    x = (x + 0x9E3779B97F4A7C15) & MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & MASK64
    return x ^ (x >> 31)


def hash64_int(key: int, seed: int = 0) -> int:
    """Scalar twin of `hash64`, same value for any 64-bit input."""
    return splitmix64_int((key ^ splitmix64_int(seed & MASK64)) & MASK64)


def hash64(keys: np.ndarray | int, seed: int = 0) -> np.ndarray:
    """Seeded 64-bit hash of ``keys``.

    Different seeds give independent-looking hash functions, which is how the
    Bloom filter derives its two base hashes.
    """
    k = np.asarray(keys, dtype=np.uint64)
    return splitmix64(k ^ splitmix64(np.uint64(seed)))


def hash_pair(keys: np.ndarray | int, ranks: np.ndarray | int, seed: int = 0) -> np.ndarray:
    """Hash of the opaque ``key‖rank`` mapping object (paper §IV-A).

    The Bloom auxiliary table stores key→rank mappings by inserting the
    *combination* of key and source rank; this helper provides the canonical
    64-bit digest of that combination.
    """
    k = np.asarray(keys, dtype=np.uint64)
    r = np.asarray(ranks, dtype=np.uint64)
    return splitmix64(hash64(k, seed) ^ splitmix64(r * _GAMMA))


def fingerprint(keys: np.ndarray | int, bits: int, seed: int = 0x5BD1) -> np.ndarray:
    """Nonzero ``bits``-wide fingerprint of each key.

    Zero is reserved as the empty-slot sentinel in the cuckoo tables, so
    fingerprints are drawn from ``[1, 2**bits - 1]``.  The hash is folded onto
    that range; the fold keeps the distribution uniform up to the negligible
    bias of the modulo.
    """
    if not 1 <= bits <= 32:
        raise ValueError(f"fingerprint width must be in [1, 32], got {bits}")
    h = hash64(keys, seed)
    span = np.uint64((1 << bits) - 1)
    return (h % span) + np.uint64(1)


def double_hash_probes(keys: np.ndarray, nprobes: int, nbits: int, seed: int = 0) -> np.ndarray:
    """Kirsch–Mitzenmacher double-hashing probe positions for a Bloom filter.

    Returns an array of shape ``(len(keys), nprobes)`` of bit positions in
    ``[0, nbits)``.  Two base hashes are enough to simulate ``nprobes``
    independent hash functions without measurable loss in false-positive
    rate.
    """
    k = np.asarray(keys, dtype=np.uint64)
    h1 = hash64(k, seed)
    h2 = hash64(k, seed + 0x7F4A7C15) | np.uint64(1)  # odd => full-period step
    i = np.arange(nprobes, dtype=np.uint64)
    probes = h1[:, None] + i[None, :] * h2[:, None]
    return (probes % np.uint64(nbits)).astype(np.int64)
