"""Counting Bloom filter: Bloom semantics plus deletion.

The paper cites general-purpose counting filters (§VI, Pandey et al.) as
part of the design space.  A counting Bloom filter replaces each bit with
a small saturating counter, buying `remove` at 4× the space of a plain
Bloom filter — relevant to aux tables for workloads that *overwrite* keys
across epochs rather than freezing each epoch.
"""

from __future__ import annotations

import math

import numpy as np

from .bloom import optimal_nhashes
from .hashing import double_hash_probes

__all__ = ["CountingBloomFilter"]

_COUNTER_MAX = 255  # uint8 counters; saturate rather than wrap


class CountingBloomFilter:
    """Bloom filter over 64-bit digests with per-slot counters."""

    def __init__(self, nslots: int, nhashes: int, seed: int = 0):
        if nslots <= 0:
            raise ValueError(f"nslots must be positive, got {nslots}")
        if nhashes <= 0:
            raise ValueError(f"nhashes must be positive, got {nhashes}")
        self.nslots = int(nslots)
        self.nhashes = int(nhashes)
        self.seed = int(seed)
        self._counts = np.zeros(self.nslots, dtype=np.uint8)
        self._nkeys = 0

    @classmethod
    def from_slots_per_key(
        cls, nkeys: int, slots_per_key: float = 10.0, seed: int = 0
    ) -> "CountingBloomFilter":
        if nkeys <= 0 or slots_per_key <= 0:
            raise ValueError("nkeys and slots_per_key must be positive")
        return cls(
            max(64, math.ceil(nkeys * slots_per_key)),
            optimal_nhashes(slots_per_key),
            seed=seed,
        )

    def _probes(self, digests: np.ndarray) -> np.ndarray:
        return double_hash_probes(
            np.asarray(digests, dtype=np.uint64).ravel(), self.nhashes, self.nslots, self.seed
        )

    def add(self, digest: int) -> None:
        pos = self._probes(np.asarray([digest], dtype=np.uint64))[0]
        under = self._counts[pos] < _COUNTER_MAX
        self._counts[pos[under]] += 1
        self._nkeys += 1

    def add_many(self, digests: np.ndarray) -> None:
        digests = np.asarray(digests, dtype=np.uint64)
        if digests.size == 0:
            return
        pos = self._probes(digests)
        # Saturating add: bincount the probe positions, clip into uint8.
        hits = np.bincount(pos.ravel(), minlength=self.nslots)
        merged = np.minimum(self._counts.astype(np.int64) + hits, _COUNTER_MAX)
        self._counts = merged.astype(np.uint8)
        self._nkeys += digests.size

    def remove(self, digest: int) -> bool:
        """Delete one prior insertion; False (and no change) if absent."""
        pos = self._probes(np.asarray([digest], dtype=np.uint64))[0]
        if not (self._counts[pos] > 0).all():
            return False
        unsaturated = self._counts[pos] < _COUNTER_MAX  # saturated slots stay
        self._counts[pos[unsaturated]] -= 1
        self._nkeys -= 1
        return True

    def __contains__(self, digest: int) -> bool:
        pos = self._probes(np.asarray([digest], dtype=np.uint64))[0]
        return bool((self._counts[pos] > 0).all())

    def contains_many(self, digests: np.ndarray) -> np.ndarray:
        digests = np.asarray(digests, dtype=np.uint64)
        if digests.size == 0:
            return np.zeros(0, dtype=bool)
        pos = self._probes(digests)
        return (self._counts[pos] > 0).all(axis=1)

    def __len__(self) -> int:
        return self._nkeys

    @property
    def size_bytes(self) -> int:
        return self.nslots  # one byte per counter

    @property
    def fill_fraction(self) -> float:
        return float((self._counts > 0).mean())
