"""Calibration audit: re-derive every tuned constant from its paper anchor.

EXPERIMENTS.md lists the constants the machine model calibrates against
specific numbers in the paper.  This module *recomputes* the quantity each
constant was tuned for and reports predicted vs. target, so a change
anywhere in the model that silently drifts a calibration shows up as a
failing check rather than a quietly wrong benchmark.

`audit()` returns one `CalibrationCheck` per anchor; the test suite
asserts every check stays within its tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.burstbuffer import BurstBufferAllocation
from ..net.cpu import CPUS, TRANSPORTS, rpc_cpu_time
from ..net.flowmodel import pernode_alltoall_bandwidth
from ..net.rpc import measure_rpc_latency
from ..net.topology import ARIES_DRAGONFLY, NARWHAL_FATTREE

__all__ = ["CalibrationCheck", "audit"]


@dataclass(frozen=True)
class CalibrationCheck:
    """One anchor: what the model predicts vs what the paper reports."""

    name: str
    predicted: float
    target: float
    tolerance: float  # relative
    source: str

    @property
    def ok(self) -> bool:
        if self.target == 0:
            return self.predicted == 0
        return abs(self.predicted - self.target) / abs(self.target) <= self.tolerance

    def __str__(self) -> str:
        flag = "ok " if self.ok else "OFF"
        return (
            f"[{flag}] {self.name}: predicted {self.predicted:.3g} "
            f"vs target {self.target:.3g} (±{self.tolerance * 100:.0f}%, {self.source})"
        )


def audit() -> list[CalibrationCheck]:
    """Recompute every calibrated anchor."""
    checks: list[CalibrationCheck] = []

    # Fig. 1a: KNL ≈ 4× Haswell small-message RPC latency.
    h = measure_rpc_latency("haswell", "gni", 8, "polling", nmessages=32).mean_us
    k = measure_rpc_latency("trinity-knl", "gni", 8, "polling", nmessages=32).mean_us
    checks.append(CalibrationCheck("knl/haswell RPC latency ratio", k / h, 4.0, 0.15, "Fig. 1a"))

    # Fig. 1d: Haswell PPN=1 at 16 KB ≈ 200 MB/s.
    bw1 = pernode_alltoall_bandwidth("haswell", "gni", ARIES_DRAGONFLY, 32, 1, 16384)
    checks.append(
        CalibrationCheck("haswell PPN=1 bandwidth (MB/s)", bw1.bandwidth / 1e6, 200, 0.3, "Fig. 1d")
    )

    # Fig. 1d: Haswell plateau ≈ 3× the KNL plateau.
    hs = pernode_alltoall_bandwidth("haswell", "gni", ARIES_DRAGONFLY, 32, 64, 16384).bandwidth
    kn = pernode_alltoall_bandwidth("trinity-knl", "gni", ARIES_DRAGONFLY, 32, 64, 16384).bandwidth
    checks.append(CalibrationCheck("haswell/knl plateau ratio", hs / kn, 3.0, 0.4, "Fig. 1d"))

    # LMbench aside (§II): context-heavy paths ~6× slower on KNL.  Our
    # blocking-mode *extra* cost scales with slowdown — check the ratio.
    extra_h = rpc_cpu_time(CPUS["haswell"], TRANSPORTS["gni"], 8, True) - rpc_cpu_time(
        CPUS["haswell"], TRANSPORTS["gni"], 8, False
    )
    extra_k = rpc_cpu_time(CPUS["trinity-knl"], TRANSPORTS["gni"], 8, True) - rpc_cpu_time(
        CPUS["trinity-knl"], TRANSPORTS["gni"], 8, False
    )
    checks.append(
        CalibrationCheck("knl/haswell context-switch cost", extra_k / extra_h, 4.0, 0.05, "§II")
    )

    # Fig. 10 x-axis: 64 compute nodes at ratios 32:1 / 12:1 → 11 / ~29 GB/s.
    lo = BurstBufferAllocation(64, 32.0).aggregate_bandwidth / 1e9
    hi = BurstBufferAllocation(64, 12.0).aggregate_bandwidth / 1e9
    checks.append(CalibrationCheck("burst buffer 32:1 (GB/s)", lo, 11.0, 0.05, "Fig. 10"))
    checks.append(CalibrationCheck("burst buffer 12:1 (GB/s)", hi, 28.0, 0.1, "Fig. 10"))

    # Fig. 8: Narwhal fat-tree efficiency collapse from 16 to 160 nodes.
    e16 = NARWHAL_FATTREE.alltoall_efficiency(16)
    e160 = NARWHAL_FATTREE.alltoall_efficiency(160)
    checks.append(
        CalibrationCheck("narwhal eff(16)/eff(160)", e16 / e160, 8.0, 0.5, "Fig. 8b growth")
    )

    return checks
