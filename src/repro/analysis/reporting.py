"""Fixed-width table/series renderers for the benchmark harness.

Every ``benchmarks/bench_*.py`` prints the rows/series the corresponding
paper table or figure reports; these helpers keep that output uniform and
diff-friendly (EXPERIMENTS.md embeds it verbatim).
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_value", "percent", "mb", "banner"]


def format_value(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        return f"{v:.2f}"
    return str(v)


def percent(x: float) -> str:
    """Render a fractional slowdown the way the paper does (x1.0 = 100 %)."""
    return f"{x * 100:.0f}%"


def mb(nbytes: float) -> str:
    return f"{nbytes / 1e6:.1f}MB"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def banner(text: str) -> str:
    bar = "=" * max(40, len(text) + 4)
    return f"{bar}\n  {text}\n{bar}"
