"""Fixed-width table/series renderers for the benchmark harness.

Every ``benchmarks/bench_*.py`` prints the rows/series the corresponding
paper table or figure reports; these helpers keep that output uniform and
diff-friendly (EXPERIMENTS.md embeds it verbatim).

Besides the human-readable rendering there is a machine-readable twin:
`table_data` turns the same (headers, rows) into a JSON-safe dict, and
`table_artifact` returns both forms at once so a benchmark can hand the
``report`` fixture its text *and* the structured payload that
``pytest benchmarks/ --json`` serializes to ``results/<name>.json``
(schema `BENCH_SCHEMA`).
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = [
    "render_table",
    "format_value",
    "percent",
    "mb",
    "banner",
    "table_data",
    "table_artifact",
    "bench_document",
    "BENCH_SCHEMA",
]

BENCH_SCHEMA = "repro.bench/v1"


def format_value(v: Any) -> str:
    if isinstance(v, float):
        if v == 0:
            return "0"  # covers -0.0: a signed zero is still zero
        if abs(v) >= 1000 or abs(v) < 0.01:
            return f"{v:.3g}"
        s = f"{v:.2f}"
        # Values like 999.996 round across the threshold under %.2f and
        # would print "1000.00" next to "1e+03" peers; keep the thousands
        # scale consistent by re-rendering them the way >=1000 goes.
        if abs(float(s)) >= 1000:
            return f"{v:.3g}"
        return s
    return str(v)


def percent(x: float) -> str:
    """Render a fractional slowdown the way the paper does (x1.0 = 100 %)."""
    return f"{x * 100:.0f}%"


def mb(nbytes: float) -> str:
    return f"{nbytes / 1e6:.1f}MB"


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Monospace table with right-aligned numeric columns."""
    cells = [[format_value(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def banner(text: str) -> str:
    bar = "=" * max(40, len(text) + 4)
    return f"{bar}\n  {text}\n{bar}"


def _native(v: Any) -> Any:
    """JSON-safe scalar: unwrap numpy types, stringify anything exotic."""
    if hasattr(v, "item"):
        try:
            v = v.item()
        except (TypeError, ValueError):
            pass
    if v is None or isinstance(v, (bool, int, float, str)):
        return v
    return str(v)


def table_data(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> dict:
    """Machine-readable twin of `render_table`'s output."""
    return {
        "title": title,
        "columns": [str(h) for h in headers],
        "rows": [[_native(v) for v in row] for row in rows],
    }


def table_artifact(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = ""
) -> tuple[str, dict]:
    """(rendered text, JSON payload) for one benchmark table."""
    return render_table(headers, rows, title), table_data(headers, rows, title)


def bench_document(name: str, data: dict) -> dict:
    """Wrap one benchmark's structured payload in the versioned envelope
    that ``results/<name>.json`` files carry."""
    return {"schema": BENCH_SCHEMA, "bench": name, **data}
