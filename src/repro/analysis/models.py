"""Closed-form analysis: Table I's Bloom budgets and amplification math.

Table I of the paper asks: *how many Bloom-filter bytes per key bound the
number of data partitions a query must search at b?*  With one filter per
partition-owner storing ``key‖rank`` mappings and a query testing all N
ranks, a query returns the true partition plus ``(N−1)·fpr`` false ones:

    amplification = 1 + (N − 1) · fpr        →  fpr = (b − 1) / (N − 1)

and the standard Bloom sizing ``bits = 1.44 · log2(1/fpr)`` converts that
to a per-key budget.  For the paper's machines this lands at ~3 bytes/key
(Table I quotes e.g. Trinity b2 = 3.40 B, b10 = 2.98 B; our formula gives
3.58 B and 3.01 B — same math modulo their rounding of core counts).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "bloom_bytes_per_key_for_bound",
    "bloom_amplification",
    "cuckoo_amplification",
    "Table1Machine",
    "TABLE1_MACHINES",
]


def bloom_bytes_per_key_for_bound(nparts: int, bound: float) -> float:
    """Bloom bytes/key so that expected partitions searched ≤ ``bound``."""
    if nparts < 2:
        return 0.0
    if bound <= 1:
        raise ValueError("bound must exceed 1 (the true partition always hits)")
    fpr = (bound - 1) / (nparts - 1)
    if fpr >= 1:
        return 0.0
    bits = 1.44 * math.log2(1.0 / fpr)
    return bits / 8.0


def bloom_amplification(nparts: int, bits_per_key: float) -> float:
    """Expected partitions per query for a Bloom aux table (Fig. 7a model).

    Uses the optimal-k false-positive rate ``0.6185 ** bits_per_key``.
    """
    if nparts < 1:
        raise ValueError("nparts must be >= 1")
    fpr = 0.6185**bits_per_key
    return 1.0 + (nparts - 1) * fpr


def cuckoo_amplification(
    fp_bits: int, load: float = 0.95, slots_per_bucket: int = 4, ntables: int = 2
) -> float:
    """Expected partitions per query for the cuckoo design (Fig. 7a model).

    A lookup probes ``2 × slots_per_bucket`` slots in each chained table;
    each occupied non-target slot matches the 4-bit fingerprint with
    probability ``1/(2**fp_bits − 1)``.  Independent of N — the property
    that distinguishes Fmt-Cuckoo from Fmt-BF.
    """
    if not 0 <= load <= 1:
        raise ValueError("load must be in [0, 1]")
    probed = 2 * slots_per_bucket * ntables * load
    return 1.0 + max(0.0, probed - 1.0) / ((1 << fp_bits) - 1)


@dataclass(frozen=True)
class Table1Machine:
    """One row of the paper's Table I."""

    rank: int
    name: str
    organization: str
    cores: int
    paper_b2: float
    paper_b10: float

    def b2(self) -> float:
        return bloom_bytes_per_key_for_bound(self.cores, 2)

    def b10(self) -> float:
        return bloom_bytes_per_key_for_bound(self.cores, 10)


# Core counts from the paper's Table I (top500, Nov 2018), with the byte
# budgets the paper prints for cross-checking.
TABLE1_MACHINES = (
    Table1Machine(6, "Trinity", "LANL", 979_072, 3.40, 2.98),
    Table1Machine(12, "Cori", "NERSC", 622_336, 3.28, 2.87),
    Table1Machine(13, "Nurion", "KISTI", 570_020, 3.26, 2.84),
    Table1Machine(14, "Oakforest-PACS", "JCAHPC", 556_104, 3.26, 2.84),
    Table1Machine(16, "Tera", "CEA", 561_408, 3.26, 2.84),
    Table1Machine(17, "Stampede2", "TACC", 367_024, 3.15, 2.73),
    Table1Machine(19, "Marconi", "CINECA", 348_000, 3.13, 2.72),
    Table1Machine(24, "Theta", "ANL", 280_320, 3.08, 2.66),
)
