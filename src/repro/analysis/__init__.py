"""Closed-form models (Table I math) and report rendering."""

from .calibration import CalibrationCheck, audit
from .models import (
    TABLE1_MACHINES,
    Table1Machine,
    bloom_amplification,
    bloom_bytes_per_key_for_bound,
    cuckoo_amplification,
)
from .figures import ascii_bars, ascii_series
from .tradeoffs import kv_size_crossover, storage_bandwidth_crossover
from .reporting import (
    BENCH_SCHEMA,
    banner,
    bench_document,
    format_value,
    mb,
    percent,
    render_table,
    table_artifact,
    table_data,
)

__all__ = [
    "CalibrationCheck",
    "audit",
    "TABLE1_MACHINES",
    "Table1Machine",
    "bloom_amplification",
    "bloom_bytes_per_key_for_bound",
    "cuckoo_amplification",
    "banner",
    "ascii_bars",
    "ascii_series",
    "kv_size_crossover",
    "storage_bandwidth_crossover",
    "format_value",
    "mb",
    "percent",
    "render_table",
    "table_artifact",
    "table_data",
    "bench_document",
    "BENCH_SCHEMA",
]
