"""Crossover analysis: where one partitioning format overtakes another.

The paper's evaluation is organized around crossovers — base beats the
indirection formats when storage is slow (Fig. 10a left), DataPtr falls
behind base for tiny KV pairs (Fig. 9), FilterKV wins once networks or
record counts grow.  These helpers locate the crossover points of the
write-phase model numerically, so a deployment can be placed on the right
side of each boundary without sweeping by hand.
"""

from __future__ import annotations

from ..cluster.machines import Machine
from ..core.costmodel import WriteRunConfig, model_write_phase
from ..core.formats import FormatSpec

__all__ = ["storage_bandwidth_crossover", "kv_size_crossover"]


def _slowdown(fmt: FormatSpec, machine: Machine, nprocs: int, kv: int, dpp: float, resid):
    return model_write_phase(
        WriteRunConfig(
            fmt=fmt,
            machine=machine,
            nprocs=nprocs,
            kv_bytes=kv,
            data_per_proc=dpp,
            residual_fraction=resid,
        )
    ).slowdown


def storage_bandwidth_crossover(
    fmt_a: FormatSpec,
    fmt_b: FormatSpec,
    machine: Machine,
    nprocs: int,
    kv_bytes: int,
    data_per_proc: float,
    residual_fraction: float | None = None,
    lo: float = 1e6,
    hi: float = 1e11,
    iterations: int = 60,
) -> float | None:
    """Per-node storage bandwidth where ``fmt_a`` and ``fmt_b`` tie.

    Returns None when one format dominates across the whole ``[lo, hi]``
    range.  Above the returned bandwidth the format with the smaller
    network footprint wins (Fig. 10a's structure).
    """

    def gap(bw: float) -> float:
        m = machine.with_storage_bandwidth(bw)
        return _slowdown(fmt_a, m, nprocs, kv_bytes, data_per_proc, residual_fraction) - _slowdown(
            fmt_b, m, nprocs, kv_bytes, data_per_proc, residual_fraction
        )

    g_lo, g_hi = gap(lo), gap(hi)
    if g_lo == 0:
        return lo
    if g_hi == 0:
        return hi
    if (g_lo > 0) == (g_hi > 0):
        return None  # no sign change: one format dominates
    for _ in range(iterations):
        mid = (lo * hi) ** 0.5  # geometric: bandwidths span decades
        if (gap(mid) > 0) == (g_lo > 0):
            lo = mid
        else:
            hi = mid
    return (lo * hi) ** 0.5


def kv_size_crossover(
    fmt_a: FormatSpec,
    fmt_b: FormatSpec,
    machine: Machine,
    nprocs: int,
    data_per_proc: float,
    residual_fraction: float | None = None,
    lo: int = 9,
    hi: int = 4096,
) -> int | None:
    """Smallest KV size (bytes) at which ``fmt_a`` stops losing to
    ``fmt_b`` (Fig. 9's structure: indirection catches up as records
    grow).  None when no flip occurs in ``[lo, hi]``."""

    def gap(kv: int) -> float:
        return _slowdown(fmt_a, machine, nprocs, kv, data_per_proc, residual_fraction) - _slowdown(
            fmt_b, machine, nprocs, kv, data_per_proc, residual_fraction
        )

    if gap(lo) <= 0:
        return lo  # already winning at the smallest size
    if gap(hi) > 0:
        return None
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return hi
