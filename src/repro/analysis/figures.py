"""ASCII renderings of the paper's figures.

The benchmark harness prints tables; these helpers add terminal-friendly
charts so the *shape* of a reproduced figure (growth, crossover, plateau)
is visible at a glance in `benchmarks/results/` without a plotting stack.
"""

from __future__ import annotations

import math
from typing import Sequence

__all__ = ["ascii_series", "ascii_bars"]

_MARKS = "*o+x#@%&"


def ascii_series(
    series: dict[str, Sequence[float]],
    xlabels: Sequence,
    height: int = 12,
    logy: bool = False,
    title: str = "",
) -> str:
    """Plot one or more y-series over a shared categorical x-axis."""
    if not series:
        raise ValueError("need at least one series")
    npoints = len(xlabels)
    for name, ys in series.items():
        if len(ys) != npoints:
            raise ValueError(f"series {name!r} has {len(ys)} points, x-axis has {npoints}")
    all_y = [y for ys in series.values() for y in ys]
    if logy and min(all_y) <= 0:
        raise ValueError("logy requires positive values")
    tr = (lambda v: math.log10(v)) if logy else (lambda v: v)
    lo = min(tr(v) for v in all_y)
    hi = max(tr(v) for v in all_y)
    span = (hi - lo) or 1.0

    col_width = max(max(len(str(x)) for x in xlabels) + 1, 6)
    width = col_width * npoints
    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        mark = _MARKS[si % len(_MARKS)]
        for i, y in enumerate(ys):
            row = height - 1 - int(round((tr(y) - lo) / span * (height - 1)))
            col = i * col_width + col_width // 2
            grid[row][col] = mark

    lines = []
    if title:
        lines.append(title)
    top = f"{10**hi:.3g}" if logy else f"{hi:.3g}"
    bot = f"{10**lo:.3g}" if logy else f"{lo:.3g}"
    label_w = max(len(top), len(bot))
    for r, row in enumerate(grid):
        label = top if r == 0 else (bot if r == height - 1 else "")
        lines.append(f"{label:>{label_w}} |" + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w + "  " + "".join(str(x).center(col_width) for x in xlabels)
    )
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * label_w + "  " + legend)
    return "\n".join(lines)


def ascii_bars(labels: Sequence[str], values: Sequence[float], width: int = 50) -> str:
    """Horizontal bar chart (non-negative values)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if not values:
        return ""
    if min(values) < 0:
        raise ValueError("ascii_bars needs non-negative values")
    peak = max(values) or 1.0
    lw = max(len(s) for s in labels)
    lines = []
    for label, v in zip(labels, values):
        n = int(round(v / peak * width))
        lines.append(f"{label:>{lw}} | {'#' * n} {v:.3g}")
    return "\n".join(lines)
