"""FilterKV: compact filters for fast online data partitioning.

A full reproduction of Zheng et al., *Compact Filters for Fast Online
Data Partitioning* (IEEE CLUSTER 2019), as an installable Python library:

* ``repro.filters`` — Bloom filters, partial-key cuckoo hash tables with
  chained growth, cuckoo filters, quotient filters;
* ``repro.storage`` — value logs, flattened-LSM SSTables, Snappy-format
  compression, charged storage devices;
* ``repro.net`` — discrete-event RPC model, CPU/transport profiles
  (Haswell vs KNL), topologies, all-to-all flow model;
* ``repro.cluster`` — machine configs and an in-process simulated cluster
  with exact message/byte accounting;
* ``repro.core`` — the three partitioning formats (Base, DataPtr,
  FilterKV), auxiliary tables, write pipelines, read path, cost model;
* ``repro.apps`` — a reduced VPIC particle workload and KV generators;
* ``repro.analysis`` — Table I math and report rendering;
* ``repro.obs`` — unified telemetry: labeled counter/gauge/histogram
  registry threaded through every layer, JSON/JSONL export.

Quickstart::

    from repro.cluster import SimCluster
    from repro.core import FMT_FILTERKV

    cluster = SimCluster(nranks=16, fmt=FMT_FILTERKV, value_bytes=56)
    stats = cluster.run_epoch(records_per_rank=10_000)
    value, cost = cluster.query_engine().get(some_key)
"""

__version__ = "0.1.0"

from .cluster import SimCluster
from .core import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV, QueryEngine
from .obs import MetricsRegistry

__all__ = [
    "__version__",
    "SimCluster",
    "FMT_BASE",
    "FMT_DATAPTR",
    "FMT_FILTERKV",
    "QueryEngine",
    "MetricsRegistry",
]
