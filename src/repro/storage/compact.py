"""Storage-side primitives for epoch compaction: merge reads and writes.

Compaction k-way-merges the sorted SSTables of several sealed epochs into
one.  Because every source table is already sorted and `SSTableWriter`
re-sorts with a *stable* argsort, the merge reduces to array work: read
each source into columnar arrays, concatenate in newest-epoch-first chunk
order, and keep the first occurrence of every key — exactly the record the
pre-compaction read path (newest epoch first, first hit wins) would have
returned.  The orchestration (which epochs, aux rebuild, manifest swap)
lives in `repro.core.compact`; this module knows only about tables.
"""

from __future__ import annotations

import numpy as np

from .blockio import StorageDevice
from .sstable import SSTableWriter, TableStats

__all__ = [
    "read_table_arrays",
    "concat_values",
    "take_values",
    "first_occurrence",
    "write_merged_table",
]


def read_table_arrays(
    device: StorageDevice, name: str
) -> tuple[np.ndarray, np.ndarray | list[bytes]]:
    """One source table's full contents as ``(keys, values)`` arrays.

    Opens, streams, and closes the reader — compaction must not leak
    handles while the store keeps serving.
    """
    from .sstable import SSTableReader  # local: avoid import-order knots

    with SSTableReader(device, name) as reader:
        return reader.scan_arrays()


def concat_values(
    chunks: list[np.ndarray | list[bytes]],
) -> np.ndarray | list[bytes]:
    """Concatenate per-table value columns, preserving chunk order.

    Stays a 2-D uint8 matrix when every chunk is fixed-width at the same
    width (the vectorized merge path); degrades to list[bytes] otherwise.
    """
    if not chunks:
        return np.zeros((0, 0), dtype=np.uint8)
    mats = [c for c in chunks if isinstance(c, np.ndarray)]
    if len(mats) == len(chunks):
        nonempty = [m for m in mats if m.shape[0]]
        widths = {m.shape[1] for m in nonempty}
        if len(widths) <= 1:
            if not nonempty:
                return mats[0]
            return nonempty[0] if len(nonempty) == 1 else np.concatenate(nonempty, axis=0)
    flat: list[bytes] = []
    for c in chunks:
        if isinstance(c, np.ndarray):
            flat.extend(bytes(row) for row in c)
        else:
            flat.extend(c)
    return flat


def take_values(
    values: np.ndarray | list[bytes], idx: np.ndarray
) -> np.ndarray | list[bytes]:
    """Row-gather that works on both value representations."""
    if isinstance(values, np.ndarray):
        return values[idx]
    return [values[int(i)] for i in idx]


def first_occurrence(keys: np.ndarray) -> np.ndarray:
    """Winning row per distinct key under first-write-wins.

    Returns indices (in ascending key order) of the *first* occurrence of
    each key in ``keys``.  Feed it concatenated chunks ordered newest epoch
    first and the survivors are precisely what the multi-epoch walk serves:
    the stable argsort keeps equal keys in input order, so position in the
    concatenation is the tiebreak.
    """
    if keys.size == 0:
        return np.zeros(0, dtype=np.int64)
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    firsts = np.flatnonzero(np.r_[True, sorted_keys[1:] != sorted_keys[:-1]])
    return order[firsts]


def write_merged_table(
    device: StorageDevice,
    name: str,
    keys: np.ndarray,
    values: np.ndarray | list[bytes],
    block_size: int,
) -> TableStats:
    """Write one merged partition table with the streaming bulk writer.

    Empty inputs still produce a valid (zero-entry) table: every rank must
    own a table in the merged epoch because aux false positives can name
    any rank, and the reader opens tables unconditionally for the direct
    formats.
    """
    writer = SSTableWriter(device, name, block_size=block_size)
    if keys.size:
        writer.add_many(keys, values)
    stats = writer.finish()
    writer.close()
    return stats
