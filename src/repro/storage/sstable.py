"""Flattened-LSM SSTable: the on-storage partition format (DeltaFS analog).

Each data partition is persisted as a single sorted table per epoch,
mirroring how DeltaFS Indexed Massive Directories flatten their LSM-tree
(paper §V-B: "each partition is persisted as a flattened LSM-Tree").  The
read path matches Fig. 11's cost structure:

1. read the fixed-size **footer** at the end of the file;
2. read the **index block** (per-block first keys + offsets) and the
   optional per-table **Bloom filter block**;
3. binary-search the index and read the candidate **data block(s)**.

Layout (all little-endian, 8-byte keys as in the paper's workloads)::

    [data block]*  [filter block]  [index block]  [footer (64 B)]

    data block  := u32 nentries, then nentries × (u64 key, u32 vlen, value),
                   then u64 fastsum64 of everything before it
    filter block:= bloom bytes ‖ u64 fastsum64          (absent when empty)
    index block := u32 nblocks, then nblocks × (u64 first, u64 last,
                   u64 off, u32 len, u32 n), then u64 fastsum64
    footer      := magic u64, index_off u64, index_len u64,
                   filter_off u64, filter_len u64, nentries u64,
                   block_size u32, bloom_nhashes u32,
                   u64 fastsum64 of the first 56 footer bytes

    Every section carries its own checksum, so corruption anywhere in the
    table — data, filter, index, or footer — is detected at read time
    rather than silently changing answers.

Writers buffer entries, sort by key, and emit blocks of ``block_size``
bytes.  Readers are handed a `StorageFile`, so every access is charged to
the owning `StorageDevice` — seeks and bytes line up with Fig. 11b/c.
"""

from __future__ import annotations

import struct
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..filters.bloom import BloomFilter
from ..obs.trace import child_span, current_span
from .blockio import StorageDevice, StorageFile
from .checksum import CHECKSUM_BYTES, fastsum64

__all__ = [
    "SSTableWriter",
    "SSTableReader",
    "TableStats",
    "FOOTER_BYTES",
    "CorruptBlockError",
]


class CorruptBlockError(ValueError):
    """A data block's stored checksum does not match its contents."""

_MAGIC = 0xF117E5CB_DE17AF5
FOOTER_BYTES = 64
_FOOTER_BODY = struct.Struct("<QQQQQQII")  # + trailing fastsum64 = 64 B
_ENTRY_HDR = struct.Struct("<QI")
_U32 = struct.Struct("<I")
_INDEX_ENTRY = struct.Struct("<QQQII")


@dataclass(frozen=True)
class TableStats:
    """Size breakdown of a finished SSTable."""

    nentries: int
    data_bytes: int
    filter_bytes: int
    index_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.filter_bytes + self.index_bytes + FOOTER_BYTES


class SSTableWriter:
    """Buffers KV entries and writes a sorted, indexed table.

    Parameters
    ----------
    device, name:
        Where the table lands.
    block_size:
        Target data-block size; the paper's read path fetches blocks in
        4 MiB units, benchmarks use smaller blocks at reduced scale.
    bloom_bits_per_key:
        Per-table Bloom filter budget; 0 disables the filter block.
    vectorized:
        When True (default) fixed-width tables are sorted, blocked, and
        serialized with array operations; False forces the per-record
        reference path (same bytes — kept as the scalar-equivalence
        baseline and exercised automatically for variable-width values).
    """

    def __init__(
        self,
        device: StorageDevice,
        name: str,
        block_size: int = 4 << 20,
        bloom_bits_per_key: float = 10.0,
        vectorized: bool = True,
    ):
        if block_size < 64:
            raise ValueError(f"block_size too small: {block_size}")
        self.block_size = block_size
        self.bloom_bits_per_key = bloom_bits_per_key
        self.vectorized = vectorized
        self._file: StorageFile = device.open(name, create=True)
        # Entries are buffered as columnar chunks in arrival order: each
        # chunk is (keys u64, values) where values is a 2-D uint8 matrix
        # (fixed-width fast path) or a list[bytes] (variable-width).
        # Scalar `add`s accumulate in a pending tail that is sealed into a
        # chunk lazily, so interleaved add/add_many keeps insertion order.
        self._chunks: list[tuple[np.ndarray, np.ndarray | list[bytes]]] = []
        self._pending_keys: list[int] = []
        self._pending_values: list[bytes] = []
        self._nentries = 0
        self._finished = False

    def __len__(self) -> int:
        return self._nentries

    def add(self, key: int, value: bytes) -> None:
        """Buffer one entry (duplicate keys are kept; reader returns first)."""
        if self._finished:
            raise ValueError("writer already finished")
        self._pending_keys.append(int(key))
        self._pending_values.append(bytes(value))
        self._nentries += 1

    def add_many(self, keys: np.ndarray, values: np.ndarray | list[bytes]) -> None:
        """Buffer a batch of entries without per-record Python work.

        ``values`` is either a ``(len(keys), width)`` uint8 matrix — the
        vectorized fixed-width path — or a list of bytes of any widths.
        """
        if self._finished:
            raise ValueError("writer already finished")
        keys = np.ascontiguousarray(keys, dtype=np.uint64).ravel()
        if isinstance(values, np.ndarray):
            values = np.asarray(values, dtype=np.uint8)
            if values.ndim != 2 or values.shape[0] != keys.size:
                raise ValueError(
                    f"values must be ({keys.size}, width); got {values.shape}"
                )
        elif len(values) != keys.size:
            raise ValueError("keys and values length mismatch")
        if keys.size == 0:
            return
        self._seal_pending()
        self._chunks.append((keys, values))
        self._nentries += keys.size

    def _seal_pending(self) -> None:
        if self._pending_keys:
            self._chunks.append(
                (
                    np.asarray(self._pending_keys, dtype=np.uint64),
                    self._pending_values,
                )
            )
            self._pending_keys = []
            self._pending_values = []

    def _collect(self) -> tuple[np.ndarray, np.ndarray | list[bytes]]:
        """All buffered entries in insertion order.

        Returns ``(keys, values)`` with values as one 2-D uint8 matrix when
        every entry has the same width, else as a flat list[bytes].
        """
        self._seal_pending()
        if not self._chunks:
            return np.zeros(0, dtype=np.uint64), np.zeros((0, 0), dtype=np.uint8)
        keys = (
            self._chunks[0][0]
            if len(self._chunks) == 1
            else np.concatenate([c[0] for c in self._chunks])
        )
        widths = set()
        for _, vals in self._chunks:
            if isinstance(vals, np.ndarray):
                widths.add(vals.shape[1])
            else:
                widths.update(len(v) for v in vals)
            if len(widths) > 1:
                break
        if len(widths) == 1:
            w = widths.pop()
            mats = [
                vals
                if isinstance(vals, np.ndarray)
                else np.frombuffer(b"".join(vals), dtype=np.uint8).reshape(len(vals), w)
                for _, vals in self._chunks
            ]
            values = mats[0] if len(mats) == 1 else np.concatenate(mats, axis=0)
            return keys, values
        flat: list[bytes] = []
        for _, vals in self._chunks:
            if isinstance(vals, np.ndarray):
                flat.extend(vals.tobytes()[i : i + vals.shape[1]] for i in
                            range(0, vals.size, vals.shape[1]))
            else:
                flat.extend(vals)
        return keys, flat

    def finish(self) -> TableStats:
        """Sort, write blocks + filter + index + footer; returns sizes."""
        if self._finished:
            raise ValueError("writer already finished")
        self._finished = True
        keys, values = self._collect()
        order = np.argsort(keys, kind="stable")
        index_entries: list[tuple[int, int, int, int, int]] = []
        nentries = keys.size
        data_bytes = 0

        if self.vectorized and isinstance(values, np.ndarray) and nentries:
            # Fixed-width fast path: every record is KEY+len+value bytes, so
            # block boundaries fall at a uniform record count and the whole
            # data section is built with array ops (byte-identical to the
            # scalar path's incremental block building).
            width = values.shape[1]
            rec = _ENTRY_HDR.size + width
            skeys = keys[order]
            recs = np.empty((nentries, rec), dtype=np.uint8)
            recs[:, :8] = skeys.astype("<u8").view(np.uint8).reshape(-1, 8)
            recs[:, 8:12] = np.frombuffer(_U32.pack(width), dtype=np.uint8)
            recs[:, 12:] = values[order]
            per_block = max(1, -(-self.block_size // rec))  # ceil
            for start in range(0, nentries, per_block):
                rows = recs[start : start + per_block]
                payload = _U32.pack(rows.shape[0]) + rows.tobytes()
                payload += fastsum64(payload).to_bytes(CHECKSUM_BYTES, "little")
                off = self._file.append(payload)
                index_entries.append(
                    (
                        int(skeys[start]),
                        int(skeys[min(start + per_block, nentries) - 1]),
                        off,
                        len(payload),
                        rows.shape[0],
                    )
                )
                data_bytes += len(payload)
        elif nentries:
            block = bytearray()
            block_keys: list[int] = []

            def flush_block() -> None:
                nonlocal block, block_keys, data_bytes
                if not block_keys:
                    return
                payload = _U32.pack(len(block_keys)) + bytes(block)
                payload += fastsum64(payload).to_bytes(CHECKSUM_BYTES, "little")
                off = self._file.append(payload)
                index_entries.append(
                    (block_keys[0], block_keys[-1], off, len(payload), len(block_keys))
                )
                data_bytes += len(payload)
                block = bytearray()
                block_keys = []

            arr = isinstance(values, np.ndarray)
            for i in order:
                k = int(keys[i])
                v = values[i].tobytes() if arr else values[i]
                block += _ENTRY_HDR.pack(k, len(v)) + v
                block_keys.append(k)
                if len(block) >= self.block_size:
                    flush_block()
            flush_block()

        # Filter block (checksummed like data blocks).
        filter_blob = b""
        bloom_nhashes = 0
        if self.bloom_bits_per_key > 0 and nentries > 0:
            bf = BloomFilter.from_bits_per_key(nentries, self.bloom_bits_per_key)
            bf.add_many(keys)
            filter_blob = bf.to_bytes()
            filter_blob += fastsum64(filter_blob).to_bytes(CHECKSUM_BYTES, "little")
            bloom_nhashes = bf.nhashes
        filter_off = self._file.append(filter_blob) if filter_blob else self._file.size

        # Index block (checksummed like data blocks).
        index_blob = _U32.pack(len(index_entries)) + b"".join(
            _INDEX_ENTRY.pack(*e) for e in index_entries
        )
        index_blob += fastsum64(index_blob).to_bytes(CHECKSUM_BYTES, "little")
        index_off = self._file.append(index_blob)

        footer_body = _FOOTER_BODY.pack(
            _MAGIC,
            index_off,
            len(index_blob),
            filter_off,
            len(filter_blob),
            nentries,
            self.block_size,
            bloom_nhashes,
        )
        self._file.append(
            footer_body + fastsum64(footer_body).to_bytes(CHECKSUM_BYTES, "little")
        )
        self._chunks.clear()
        return TableStats(
            nentries=nentries,
            data_bytes=data_bytes,
            filter_bytes=len(filter_blob),
            index_bytes=len(index_blob),
        )

    def close(self) -> None:
        """Release the output extent handle (idempotent; after `finish`)."""
        self._file.close()


class SSTableReader:
    """Reads point queries out of a finished SSTable.

    The constructor performs the footer + index (+ filter) reads, mirroring
    a reader program opening a partition; `get` then costs one data-block
    read per candidate block.  Pass ``preloaded=True`` to model a reader
    that has already cached footer/index/filter (Fig. 11 amortizes these
    across the 100 queries only partially — each query opens its partition
    afresh in the paper, which is the default here).
    """

    def __init__(
        self,
        device: StorageDevice,
        name: str,
        verify_checksums: bool = True,
        block_cache_blocks: int = 2,
    ):
        self._file = device.open(name)
        self.name = name
        self._metrics = device.metrics
        self.verify_checksums = verify_checksums
        # Small LRU over decoded data blocks: consecutive gets that land in
        # the same block (sorted scans, hot blocks under a warm reader)
        # skip the re-read *and* the re-checksum.  Parsed entry arrays ride
        # along so the batch path decodes each cached block once.
        self.block_cache_blocks = max(0, int(block_cache_blocks))
        self._block_cache: OrderedDict[int, bytes] = OrderedDict()
        self._parsed_cache: OrderedDict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray, bytes]
        ] = OrderedDict()
        self._m_bc_hits = device.metrics.counter("sstable.block_cache.hits")
        self._m_bc_misses = device.metrics.counter("sstable.block_cache.misses")
        size = self._file.size
        if size < FOOTER_BYTES:
            raise ValueError(f"table {name!r} too small to hold a footer")
        footer = self._file.read(size - FOOTER_BYTES, FOOTER_BYTES)
        body, stored = footer[: _FOOTER_BODY.size], footer[_FOOTER_BODY.size :]
        (
            magic,
            index_off,
            index_len,
            filter_off,
            filter_len,
            self.nentries,
            self.block_size,
            bloom_nhashes,
        ) = _FOOTER_BODY.unpack(body)
        if magic != _MAGIC:
            raise ValueError(f"bad magic in table {name!r}")
        if self.verify_checksums and fastsum64(body) != int.from_bytes(stored, "little"):
            raise CorruptBlockError(f"footer checksum mismatch in table {name!r}")
        # Filter and index blobs are adjacent on storage; fetch them with a
        # single read, like the paper's "load the partition's indexes"
        # step (one ~12 MB read in their runs).
        if filter_len:
            span = self._file.read(filter_off, (index_off + index_len) - filter_off)
            filter_blob = span[:filter_len]
            index_blob = span[index_off - filter_off :]
        else:
            filter_blob = b""
            index_blob = self._file.read(index_off, index_len)
        index_blob = self._checked(index_blob, "index block", name)
        if filter_blob:
            filter_blob = self._checked(filter_blob, "filter block", name)
        (nblocks,) = _U32.unpack(index_blob[:4])
        raw = np.frombuffer(
            index_blob, dtype=np.uint8, count=nblocks * _INDEX_ENTRY.size, offset=4
        )
        entries = raw.reshape(nblocks, _INDEX_ENTRY.size) if nblocks else raw.reshape(0, 1)
        if nblocks:
            self._first = entries[:, 0:8].copy().view("<u8").ravel()
            self._last = entries[:, 8:16].copy().view("<u8").ravel()
            self._off = entries[:, 16:24].copy().view("<u8").ravel()
            self._len = entries[:, 24:28].copy().view("<u4").ravel()
        else:
            self._first = self._last = self._off = np.zeros(0, dtype=np.uint64)
            self._len = np.zeros(0, dtype=np.uint32)
        self._bloom: BloomFilter | None = None
        if filter_len:
            self._bloom = BloomFilter.from_bytes(filter_blob, bloom_nhashes)

    def close(self) -> None:
        """Release the underlying extent handle (idempotent).

        Readers that a query path opens per lookup must be closed (or
        cached for reuse) — `StorageDevice.open_handles` audits exactly
        this.  Footer/index/filter state stays resident, but further
        `get`/`scan` calls will fail on the closed handle.
        """
        self._file.close()

    def __enter__(self) -> "SSTableReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _checked(self, blob: bytes, what: str, name: str) -> bytes:
        """Verify and strip a section's trailing checksum."""
        if len(blob) < CHECKSUM_BYTES + 4:
            raise CorruptBlockError(f"{what} truncated to {len(blob)} bytes in {name!r}")
        body, stored = blob[:-CHECKSUM_BYTES], blob[-CHECKSUM_BYTES:]
        if self.verify_checksums and fastsum64(body) != int.from_bytes(stored, "little"):
            raise CorruptBlockError(f"{what} checksum mismatch in table {name!r}")
        return body

    def may_contain(self, key: int) -> bool:
        """Bloom-filter gate: False means the key is definitely absent."""
        if self._bloom is None:
            return True
        return int(key) in self._bloom

    def get(self, key: int) -> bytes | None:
        """Point lookup; returns the (first) value or None."""
        key = int(key)
        if current_span() is None:  # untraced: skip span-argument setup
            return self._get(key)
        with child_span(
            "sstable.get", counters=self._metrics, prefixes=("sstable.",), table=self.name
        ):
            return self._get(key)

    def _get(self, key: int) -> bytes | None:
        if not self.may_contain(key):
            return None
        lo = int(np.searchsorted(self._last, np.uint64(key), side="left"))
        while lo < self._first.size and self._first[lo] <= key:
            payload = self._read_block(lo)
            hit = self._search_block(payload, key)
            if hit is not None:
                return hit
            lo += 1
        return None

    def _read_block(self, i: int) -> bytes:
        """Fetch block ``i``, verifying its trailing checksum.

        Served from the reader's small block cache when the block was
        fetched recently — a cache hit costs no device read and no
        re-checksum (``sstable.block_cache.{hits,misses}`` count both).
        """
        cached = self._block_cache.get(i)
        if cached is not None:
            self._block_cache.move_to_end(i)
            self._m_bc_hits.inc()
            return cached
        self._m_bc_misses.inc()
        payload = self._file.read(int(self._off[i]), int(self._len[i]))
        if len(payload) < CHECKSUM_BYTES + 4:
            raise CorruptBlockError(f"block {i} truncated to {len(payload)} bytes")
        body, stored = payload[:-CHECKSUM_BYTES], payload[-CHECKSUM_BYTES:]
        if self.verify_checksums and fastsum64(body) != int.from_bytes(stored, "little"):
            raise CorruptBlockError(f"checksum mismatch in block {i}")
        if self.block_cache_blocks:
            self._block_cache[i] = body
            if len(self._block_cache) > self.block_cache_blocks:
                self._block_cache.popitem(last=False)
        return body

    def _parsed_block(self, i: int) -> tuple[np.ndarray, np.ndarray, np.ndarray, bytes]:
        """Block ``i`` decoded to entry arrays: (keys, value offsets into
        ``body``, value lengths, body).  Cached alongside the raw block so a
        batch touching the block repeatedly decodes it exactly once."""
        parsed = self._parsed_cache.get(i)
        if parsed is not None:
            self._parsed_cache.move_to_end(i)
            return parsed
        body = self._read_block(i)
        parsed = self._parse_block(body)
        if self.block_cache_blocks:
            self._parsed_cache[i] = parsed
            if len(self._parsed_cache) > self.block_cache_blocks:
                self._parsed_cache.popitem(last=False)
        return parsed

    @staticmethod
    def _parse_block(body: bytes) -> tuple[np.ndarray, np.ndarray, np.ndarray, bytes]:
        """Decode one block body into (keys, value_offsets, value_lengths).

        Fixed-width fast path: if striding at the first entry's width makes
        every stored ``vlen`` field read back that same width, the layout
        *is* uniform (each aligned vlen proves the next record's position by
        induction), and the whole block decodes with array ops.  Otherwise
        falls back to the sequential scalar walk.
        """
        (n,) = _U32.unpack(body[:4])
        if n == 0:
            z = np.zeros(0, dtype=np.int64)
            return np.zeros(0, dtype=np.uint64), z, z, body
        buf = np.frombuffer(body, dtype=np.uint8)
        (w0,) = _U32.unpack(body[12:16])
        rec = _ENTRY_HDR.size + w0
        if 4 + n * rec == len(body):
            mat = buf[4 : 4 + n * rec].reshape(n, rec)
            vlens = mat[:, 8:12].copy().view("<u4").ravel()
            if (vlens == w0).all():
                bkeys = mat[:, :8].copy().view("<u8").ravel().astype(np.uint64)
                voffs = 4 + _ENTRY_HDR.size + np.arange(n, dtype=np.int64) * rec
                return bkeys, voffs, vlens.astype(np.int64), body
        bkeys = np.empty(n, dtype=np.uint64)
        voffs = np.empty(n, dtype=np.int64)
        vlens = np.empty(n, dtype=np.int64)
        pos = 4
        for j in range(n):
            k, vlen = _ENTRY_HDR.unpack(body[pos : pos + _ENTRY_HDR.size])
            pos += _ENTRY_HDR.size
            bkeys[j], voffs[j], vlens[j] = k, pos, vlen
            pos += vlen
        return bkeys, voffs, vlens, body

    def may_contain_many(self, keys: np.ndarray) -> np.ndarray:
        """Vectorized Bloom gate; False means definitely absent."""
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        if self._bloom is None:
            return np.ones(keys.size, dtype=bool)
        return self._bloom.contains_many(keys)

    def get_many(self, keys: np.ndarray) -> tuple[list[bytes | None], int]:
        """Batched point lookups; returns ``(values, blocks_touched)``.

        ``values[i]`` is byte-identical to ``self.get(keys[i])``; keys are
        coalesced per data block so each needed block is read, checksummed,
        and decoded once for the whole batch (the filter and index are
        consulted once per batch with array ops).  ``blocks_touched`` is the
        number of per-block resolution passes the batch needed — the
        denominator of the block-coalescing ratio.
        """
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        if current_span() is None:  # untraced: skip span-argument setup
            return self._get_many(keys)
        with child_span(
            "sstable.get_many",
            counters=self._metrics,
            prefixes=("sstable.",),
            table=self.name,
            keys=int(keys.size),
        ) as span:
            values, blocks_touched = self._get_many(keys)
            if span is not None:
                span.annotate(blocks=blocks_touched)
            return values, blocks_touched

    def _get_many(self, keys: np.ndarray) -> tuple[list[bytes | None], int]:
        values: list[bytes | None] = [None] * keys.size
        if keys.size == 0 or self._first.size == 0:
            return values, 0
        alive = np.nonzero(self.may_contain_many(keys))[0]
        if alive.size == 0:
            return values, 0
        pos = alive
        cur = np.searchsorted(self._last, keys[alive], side="left").astype(np.int64)
        blocks_touched = 0
        while pos.size:
            # A key is still in play while its candidate block exists and
            # starts at-or-before it (the scalar walk's loop condition).
            ok = cur < self._first.size
            ok[ok] = self._first[cur[ok]] <= keys[pos[ok]]
            pos, cur = pos[ok], cur[ok]
            if pos.size == 0:
                break
            order = np.argsort(cur, kind="stable")
            pos, cur = pos[order], cur[order]
            starts = np.flatnonzero(np.r_[True, cur[1:] != cur[:-1]])
            ends = np.r_[starts[1:], cur.size]
            next_pos: list[np.ndarray] = []
            next_cur: list[np.ndarray] = []
            for s, e in zip(starts, ends):
                bkeys, voffs, vlens, body = self._parsed_block(int(cur[s]))
                blocks_touched += 1
                gk = keys[pos[s:e]]
                loc = np.searchsorted(bkeys, gk, side="left")
                hit = loc < bkeys.size
                hit[hit] = bkeys[loc[hit]] == gk[hit]
                for j in np.nonzero(hit)[0]:
                    o = int(voffs[loc[j]])
                    values[int(pos[s + j])] = body[o : o + int(vlens[loc[j]])]
                miss = np.nonzero(~hit)[0]
                if miss.size:
                    next_pos.append(pos[s:e][miss])
                    next_cur.append(cur[s:e][miss] + 1)
            if not next_pos:
                break
            pos = np.concatenate(next_pos)
            cur = np.concatenate(next_cur)
        return values, blocks_touched

    @staticmethod
    def _search_block(payload: bytes, key: int) -> bytes | None:
        (n,) = _U32.unpack(payload[:4])
        pos = 4
        for _ in range(n):
            k, vlen = _ENTRY_HDR.unpack(payload[pos : pos + _ENTRY_HDR.size])
            pos += _ENTRY_HDR.size
            if k == key:
                return payload[pos : pos + vlen]
            if k > key:
                return None
            pos += vlen
        return None

    def scan_arrays(self) -> tuple[np.ndarray, np.ndarray | list[bytes]]:
        """Full table contents as columnar arrays, in stored key order.

        Returns ``(keys, values)`` where values is a ``(n, width)`` uint8
        matrix when every entry has the same width (the compaction merge
        fast path), else a list[bytes].  Blocks stream through the block
        cache one at a time, so peak memory is the decoded output plus one
        block.
        """
        key_parts: list[np.ndarray] = []
        val_parts: list[np.ndarray | list[bytes]] = []
        widths: set[int] = set()
        for i in range(self._off.size):
            bkeys, voffs, vlens, body = self._parsed_block(i)
            if bkeys.size == 0:
                continue
            key_parts.append(bkeys)
            buf = np.frombuffer(body, dtype=np.uint8)
            if (vlens == vlens[0]).all():
                w = int(vlens[0])
                widths.add(w)
                val_parts.append(buf[voffs[:, None] + np.arange(w, dtype=np.int64)])
            else:
                widths.add(-1)
                val_parts.append(
                    [body[int(o) : int(o) + int(n)] for o, n in zip(voffs, vlens)]
                )
        if not key_parts:
            return np.zeros(0, dtype=np.uint64), np.zeros((0, 0), dtype=np.uint8)
        keys = key_parts[0] if len(key_parts) == 1 else np.concatenate(key_parts)
        if len(widths) == 1 and -1 not in widths:
            mats = [np.asarray(p, dtype=np.uint8) for p in val_parts]
            return keys, mats[0] if len(mats) == 1 else np.concatenate(mats, axis=0)
        flat: list[bytes] = []
        for part in val_parts:
            if isinstance(part, np.ndarray):
                flat.extend(bytes(row) for row in part)
            else:
                flat.extend(part)
        return keys, flat

    def scan(self) -> list[tuple[int, bytes]]:
        """Full scan in key order (test/verification helper)."""
        out: list[tuple[int, bytes]] = []
        for i in range(self._off.size):
            payload = self._read_block(i)
            (n,) = _U32.unpack(payload[:4])
            pos = 4
            for _ in range(n):
                k, vlen = _ENTRY_HDR.unpack(payload[pos : pos + _ENTRY_HDR.size])
                pos += _ENTRY_HDR.size
                out.append((k, payload[pos : pos + vlen]))
                pos += vlen
        return out
