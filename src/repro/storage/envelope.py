"""Sealed extents: self-validating byte envelopes for whole-blob records.

Crash-consistent metadata (the manifest, auxiliary-table snapshots) is
persisted as a *sealed* extent: a magic, the payload length, the payload,
and a trailing `fastsum64` over everything before it.  A reader can then
tell a complete record from a torn one without out-of-band state — a torn
append leaves a short blob whose declared length exceeds the bytes
present, and a bit flip anywhere breaks the checksum.

The unit of atomicity in this storage model is the *whole extent*: commit
protocols write a sealed extent under a fresh name and treat "the newest
name whose seal validates" as the promoted version, so a crash at any
byte boundary leaves the previous version intact and discoverable.
"""

from __future__ import annotations

import struct

from .checksum import CHECKSUM_BYTES, fastsum64

__all__ = ["seal", "unseal", "try_unseal", "SealError", "SEAL_OVERHEAD_BYTES"]

_SEAL_MAGIC = 0x5EA1ED_EC7E_2025
_HEADER = struct.Struct("<QQ")  # magic, payload length
SEAL_OVERHEAD_BYTES = _HEADER.size + CHECKSUM_BYTES


class SealError(ValueError):
    """The blob is not a complete, unmodified sealed extent."""


def seal(payload: bytes) -> bytes:
    """Wrap ``payload`` so completeness and integrity are self-evident."""
    body = _HEADER.pack(_SEAL_MAGIC, len(payload)) + bytes(payload)
    return body + fastsum64(body).to_bytes(CHECKSUM_BYTES, "little")


def unseal(blob: bytes) -> bytes:
    """Return the payload, or raise `SealError` if torn or corrupted."""
    if len(blob) < SEAL_OVERHEAD_BYTES:
        raise SealError(f"blob of {len(blob)} bytes is too short to be sealed")
    magic, length = _HEADER.unpack(blob[: _HEADER.size])
    if magic != _SEAL_MAGIC:
        raise SealError("bad seal magic")
    expected = SEAL_OVERHEAD_BYTES + length
    if len(blob) != expected:
        raise SealError(f"sealed blob is {len(blob)} bytes, expected {expected} (torn write?)")
    body, stored = blob[:-CHECKSUM_BYTES], blob[-CHECKSUM_BYTES:]
    if fastsum64(body) != int.from_bytes(stored, "little"):
        raise SealError("seal checksum mismatch")
    return blob[_HEADER.size : _HEADER.size + length]


def try_unseal(blob: bytes) -> bytes | None:
    """`unseal`, but mapping every validation failure to ``None``."""
    try:
        return unseal(blob)
    except SealError:
        return None
