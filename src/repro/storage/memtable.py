"""Write buffering: memtables, sorted runs, and the flattened merge.

The paper's driver "buffers at most 16MB of data in memory before writing
it to storage efficiently" (§V-A), and DeltaFS persists each partition as
a *flattened* LSM-tree — sorted runs written during the burst, merged into
one table at finalize time rather than compacted repeatedly (§V-B).

`MemTable` is the bounded in-memory buffer; `RunWriter` spills full
memtables as sorted runs into a log extent; `flatten_runs` merge-sorts the
runs into a final `SSTableWriter` — giving the write path real memory
bounds instead of unbounded Python lists.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from ..obs import MetricsRegistry, active
from .blockio import StorageDevice
from .sstable import SSTableWriter, TableStats

__all__ = ["MemTable", "RunWriter", "flatten_runs"]

_ENTRY = struct.Struct("<QI")


class MemTable:
    """Bounded in-memory KV buffer.

    ``add`` returns ``True`` while the entry fit under the byte budget;
    once it returns ``False`` the caller must drain (`sorted_items`) and
    `reset`.  Sizing counts key + value bytes, like the paper's 16 MB
    figure.
    """

    def __init__(self, budget_bytes: int = 16 << 20):
        if budget_bytes < 64:
            raise ValueError(f"budget too small: {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._keys: list[int] = []
        self._values: list[bytes] = []
        self._bytes = 0

    def add(self, key: int, value: bytes) -> bool:
        """Buffer one entry; False if the budget is now exhausted."""
        self._keys.append(int(key))
        self._values.append(bytes(value))
        self._bytes += 8 + len(value)
        return self._bytes < self.budget_bytes

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def full(self) -> bool:
        return self._bytes >= self.budget_bytes

    def sorted_items(self) -> list[tuple[int, bytes]]:
        """Entries in key order (stable: first write of a key first)."""
        order = np.argsort(np.asarray(self._keys, dtype=np.uint64), kind="stable")
        return [(self._keys[i], self._values[i]) for i in order]

    def reset(self) -> None:
        self._keys.clear()
        self._values.clear()
        self._bytes = 0


@dataclass(frozen=True)
class _Run:
    offset: int
    length: int
    nentries: int


class RunWriter:
    """Spills memtables as sorted runs into one log extent."""

    def __init__(
        self, device: StorageDevice, name: str, metrics: MetricsRegistry | None = None
    ):
        self._file = device.open(name, create=True)
        self.runs: list[_Run] = []
        m = active(metrics)
        self._m_flushes = m.counter("storage.memtable_flushes")
        self._m_spill_bytes = m.counter("storage.memtable_spill_bytes")

    def spill(self, memtable: MemTable) -> None:
        """Write the memtable's sorted contents as one run and reset it."""
        if len(memtable) == 0:
            return
        blob = bytearray()
        n = 0
        for key, value in memtable.sorted_items():
            blob += _ENTRY.pack(key, len(value)) + value
            n += 1
        offset = self._file.append(bytes(blob))
        self.runs.append(_Run(offset, len(blob), n))
        self._m_flushes.inc()
        self._m_spill_bytes.inc(len(blob))
        memtable.reset()

    def read_run(self, i: int) -> list[tuple[int, bytes]]:
        """Load one spilled run back (already key-sorted)."""
        run = self.runs[i]
        blob = self._file.read(run.offset, run.length)
        out = []
        pos = 0
        for _ in range(run.nentries):
            key, vlen = _ENTRY.unpack(blob[pos : pos + _ENTRY.size])
            pos += _ENTRY.size
            out.append((key, blob[pos : pos + vlen]))
            pos += vlen
        return out

    @property
    def total_entries(self) -> int:
        return sum(r.nentries for r in self.runs)


def flatten_runs(run_writer: RunWriter, table: SSTableWriter) -> TableStats:
    """Merge-sort all spilled runs into one final SSTable.

    This is the "flattened LSM-tree" step: a single k-way merge at burst
    end instead of repeated background compaction.  Stable across runs, so
    the earliest write of a duplicate key stays first (matching
    `SSTableReader`'s first-wins lookup).
    """
    streams = [iter(run_writer.read_run(i)) for i in range(len(run_writer.runs))]
    heap: list[tuple[int, int, int, bytes]] = []
    counters = [0] * len(streams)

    def push(si: int) -> None:
        item = next(streams[si], None)
        if item is not None:
            key, value = item
            # Tiebreak (run index, within-run position): runs are spilled in
            # write order, so equal keys keep their original order and the
            # reader's first-wins semantics see the earliest write.
            heapq.heappush(heap, (key, si, counters[si], value))
            counters[si] += 1

    for si in range(len(streams)):
        push(si)
    while heap:
        key, _si, _pos, value = heapq.heappop(heap)
        table.add(key, value)
        push(_si)
    return table.finish()
