"""Write buffering: memtables, sorted runs, and the flattened merge.

The paper's driver "buffers at most 16MB of data in memory before writing
it to storage efficiently" (§V-A), and DeltaFS persists each partition as
a *flattened* LSM-tree — sorted runs written during the burst, merged into
one table at finalize time rather than compacted repeatedly (§V-B).

`MemTable` is the bounded in-memory buffer; `RunWriter` spills full
memtables as sorted runs into a log extent; `flatten_runs` merge-sorts the
runs into a final `SSTableWriter` — giving the write path real memory
bounds instead of unbounded Python lists.

The hot path is columnar: `MemTable.add_many` buffers whole key/value
arrays, `RunWriter.spill` serializes a run with array ops, and
`flatten_runs` merges runs as one stable array sort instead of a per-record
heap.  Scalar `add`/`sorted_items` remain for variable-width values.
"""

from __future__ import annotations

import heapq
import struct
from dataclasses import dataclass

import numpy as np

from ..obs import MetricsRegistry, active
from .blockio import StorageDevice
from .sstable import SSTableWriter, TableStats

__all__ = ["MemTable", "RunWriter", "flatten_runs"]

_ENTRY = struct.Struct("<QI")


class MemTable:
    """Bounded in-memory KV buffer.

    ``add`` returns ``True`` while the entry fit under the byte budget;
    once it returns ``False`` the caller must drain (`sorted_items` /
    `sorted_arrays`) and `reset`.  ``add_many`` buffers as many records of
    a batch as the budget admits (matching a scalar add-until-False loop)
    and returns how many it took.  Sizing counts key + value bytes, like
    the paper's 16 MB figure.
    """

    def __init__(self, budget_bytes: int = 16 << 20):
        if budget_bytes < 64:
            raise ValueError(f"budget too small: {budget_bytes}")
        self.budget_bytes = budget_bytes
        # Columnar chunks in arrival order; scalar adds pool in a pending
        # tail sealed lazily so interleaving keeps insertion order.
        self._chunks: list[tuple[np.ndarray, np.ndarray | list[bytes]]] = []
        self._pending_keys: list[int] = []
        self._pending_values: list[bytes] = []
        self._len = 0
        self._bytes = 0

    def add(self, key: int, value: bytes) -> bool:
        """Buffer one entry; False if the budget is now exhausted."""
        self._pending_keys.append(int(key))
        self._pending_values.append(bytes(value))
        self._len += 1
        self._bytes += 8 + len(value)
        return self._bytes < self.budget_bytes

    def add_many(self, keys: np.ndarray, values: np.ndarray) -> int:
        """Buffer a prefix of ``(keys, values)``; returns how many fit.

        ``values`` is a ``(len(keys), width)`` uint8 matrix.  Records are
        taken until the running byte size reaches the budget — including
        the record that crosses it, exactly like the scalar `add` loop —
        so callers spill-and-retry with the remainder.
        """
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        values = np.asarray(values, dtype=np.uint8)
        if values.ndim != 2 or values.shape[0] != keys.size:
            raise ValueError(f"values must be ({keys.size}, width); got {values.shape}")
        if keys.size == 0:
            return 0
        if self.full:
            return 0
        rec = 8 + values.shape[1]
        room = self.budget_bytes - self._bytes
        # Smallest count whose bytes reach the budget (scalar semantics
        # include the crossing record), capped at the batch size.
        take = min(keys.size, -(-room // rec))
        self._seal_pending()
        self._chunks.append((keys[:take], values[:take]))
        self._len += take
        self._bytes += take * rec
        return take

    def _seal_pending(self) -> None:
        if self._pending_keys:
            self._chunks.append(
                (np.asarray(self._pending_keys, dtype=np.uint64), self._pending_values)
            )
            self._pending_keys = []
            self._pending_values = []

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def __len__(self) -> int:
        return self._len

    @property
    def full(self) -> bool:
        return self._bytes >= self.budget_bytes

    def _collect(self) -> tuple[np.ndarray, np.ndarray | list[bytes]]:
        """Buffered entries in insertion order (values as a matrix when
        every entry shares one width, else a list[bytes])."""
        self._seal_pending()
        if not self._chunks:
            return np.zeros(0, dtype=np.uint64), np.zeros((0, 0), dtype=np.uint8)
        keys = (
            self._chunks[0][0]
            if len(self._chunks) == 1
            else np.concatenate([c[0] for c in self._chunks])
        )
        widths = set()
        for _, vals in self._chunks:
            if isinstance(vals, np.ndarray):
                widths.add(vals.shape[1])
            else:
                widths.update(len(v) for v in vals)
            if len(widths) > 1:
                break
        if len(widths) == 1:
            w = widths.pop()
            mats = [
                vals
                if isinstance(vals, np.ndarray)
                else np.frombuffer(b"".join(vals), dtype=np.uint8).reshape(len(vals), w)
                for _, vals in self._chunks
            ]
            return keys, mats[0] if len(mats) == 1 else np.concatenate(mats, axis=0)
        flat: list[bytes] = []
        for _, vals in self._chunks:
            if isinstance(vals, np.ndarray):
                flat.extend(
                    vals.tobytes()[i : i + vals.shape[1]]
                    for i in range(0, vals.size, vals.shape[1])
                )
            else:
                flat.extend(vals)
        return keys, flat

    def sorted_arrays(self) -> tuple[np.ndarray, np.ndarray | list[bytes]]:
        """Entries in key order as arrays (stable: first write first)."""
        keys, values = self._collect()
        order = np.argsort(keys, kind="stable")
        if isinstance(values, np.ndarray):
            return keys[order], values[order]
        return keys[order], [values[i] for i in order]

    def sorted_items(self) -> list[tuple[int, bytes]]:
        """Entries in key order (stable: first write of a key first)."""
        keys, values = self.sorted_arrays()
        if isinstance(values, np.ndarray):
            w = values.shape[1]
            blob = values.tobytes()
            return [
                (int(k), blob[i * w : (i + 1) * w]) for i, k in enumerate(keys)
            ]
        return [(int(k), bytes(v)) for k, v in zip(keys, values)]

    def reset(self) -> None:
        self._chunks.clear()
        self._pending_keys.clear()
        self._pending_values.clear()
        self._len = 0
        self._bytes = 0


@dataclass(frozen=True)
class _Run:
    offset: int
    length: int
    nentries: int
    value_bytes: int | None = None  # fixed width of every value, if uniform


class RunWriter:
    """Spills memtables as sorted runs into one log extent."""

    def __init__(
        self, device: StorageDevice, name: str, metrics: MetricsRegistry | None = None
    ):
        self._file = device.open(name, create=True)
        self.runs: list[_Run] = []
        m = active(metrics)
        self._m_flushes = m.counter("storage.memtable_flushes")
        self._m_spill_bytes = m.counter("storage.memtable_spill_bytes")

    def spill(self, memtable: MemTable, vectorized: bool = True) -> None:
        """Write the memtable's sorted contents as one run and reset it.

        ``vectorized=False`` serializes with the per-record reference loop
        (same bytes, scalar speed) — the equivalence baseline.
        """
        if len(memtable) == 0:
            return
        if not vectorized:
            parts = bytearray()
            n = 0
            for key, value in memtable.sorted_items():
                parts += _ENTRY.pack(key, len(value)) + value
                n += 1
            offset = self._file.append(bytes(parts))
            self.runs.append(_Run(offset, len(parts), n))
            self._m_flushes.inc()
            self._m_spill_bytes.inc(len(parts))
            memtable.reset()
            return
        keys, values = memtable.sorted_arrays()
        if isinstance(values, np.ndarray):
            n, w = values.shape
            recs = np.empty((n, _ENTRY.size + w), dtype=np.uint8)
            recs[:, :8] = keys.astype("<u8").view(np.uint8).reshape(-1, 8)
            recs[:, 8:12] = np.frombuffer(_ENTRY.pack(0, w)[8:], dtype=np.uint8)
            recs[:, 12:] = values
            blob = recs.tobytes()
            width: int | None = w
        else:
            parts = bytearray()
            for k, v in zip(keys, values):
                parts += _ENTRY.pack(int(k), len(v)) + v
            blob = bytes(parts)
            width = None
        offset = self._file.append(blob)
        self.runs.append(_Run(offset, len(blob), len(keys), width))
        self._m_flushes.inc()
        self._m_spill_bytes.inc(len(blob))
        memtable.reset()

    def read_run_arrays(self, i: int) -> tuple[np.ndarray, np.ndarray | list[bytes]]:
        """Load one spilled run back as arrays (already key-sorted)."""
        run = self.runs[i]
        blob = self._file.read(run.offset, run.length)
        if run.value_bytes is not None:
            rec = _ENTRY.size + run.value_bytes
            rows = np.frombuffer(blob, dtype=np.uint8).reshape(run.nentries, rec)
            keys = rows[:, :8].copy().view("<u8").ravel()
            return keys, rows[:, 12:]
        keys = np.empty(run.nentries, dtype=np.uint64)
        values: list[bytes] = []
        pos = 0
        for j in range(run.nentries):
            key, vlen = _ENTRY.unpack(blob[pos : pos + _ENTRY.size])
            pos += _ENTRY.size
            keys[j] = key
            values.append(blob[pos : pos + vlen])
            pos += vlen
        return keys, values

    def read_run(self, i: int) -> list[tuple[int, bytes]]:
        """Load one spilled run back (already key-sorted)."""
        keys, values = self.read_run_arrays(i)
        if isinstance(values, np.ndarray):
            w = values.shape[1]
            blob = values.tobytes()
            return [(int(k), blob[j * w : (j + 1) * w]) for j, k in enumerate(keys)]
        return [(int(k), bytes(v)) for k, v in zip(keys, values)]

    @property
    def total_entries(self) -> int:
        return sum(r.nentries for r in self.runs)

    @property
    def size_bytes(self) -> int:
        """Bytes of spilled run data currently in the extent."""
        return self._file.size


def flatten_runs(
    run_writer: RunWriter, table: SSTableWriter, bulk: bool = True
) -> TableStats:
    """Merge all spilled runs into one final SSTable.

    This is the "flattened LSM-tree" step: a single merge at burst end
    instead of repeated background compaction.  Runs are concatenated in
    spill order and handed to the table writer, whose stable sort puts
    equal keys in (run, within-run) order — exactly the earliest-write-
    first semantics `SSTableReader`'s first-wins lookup expects, and the
    same order a per-record k-way heap merge produces.

    ``bulk=False`` runs that heap merge literally (per-record reference,
    identical output bytes).
    """
    if not bulk:
        streams = [iter(run_writer.read_run(i)) for i in range(len(run_writer.runs))]
        heap: list[tuple[int, int, int, bytes]] = []
        counters = [0] * len(streams)

        def push(si: int) -> None:
            item = next(streams[si], None)
            if item is not None:
                key, value = item
                # Tiebreak (run index, within-run position): runs spill in
                # write order, so equal keys keep first-wins order.
                heapq.heappush(heap, (key, si, counters[si], value))
                counters[si] += 1

        for si in range(len(streams)):
            push(si)
        while heap:
            key, _si, _pos, value = heapq.heappop(heap)
            table.add(key, value)
            push(_si)
        return table.finish()
    for i in range(len(run_writer.runs)):
        keys, values = run_writer.read_run_arrays(i)
        table.add_many(keys, values)
    return table.finish()
