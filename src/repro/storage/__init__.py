"""Storage substrate: value logs, SSTables, device models, compression.

Exports:

* `StorageDevice` / `DeviceProfile` / `IOCounters` — charged byte store.
* `ValueLog` / `DataPointer` — indirection logs (paper §III-B).
* `SSTableWriter` / `SSTableReader` — flattened-LSM partition format.
* `compress` / `decompress` — Snappy-wire-format codec (paper §IV-C).
"""

from .blockio import DeviceProfile, ExtentLostError, IOCounters, StorageDevice, StorageFile
from .checksum import CHECKSUM_BYTES, fastsum64
from .envelope import SEAL_OVERHEAD_BYTES, SealError, seal, try_unseal, unseal
from .manifest import MANIFEST_NAME, MANIFEST_PREFIX, EpochInfo, Manifest, RecoveryReport
from .compression import SnappyError, compress, compression_ratio, decompress
from .log import POINTER_BYTES, DataPointer, ValueLog
from .memtable import MemTable, RunWriter, flatten_runs
from .tiering import BurstReport, TierConfig, TieredStorage
from .sstable import (
    FOOTER_BYTES,
    CorruptBlockError,
    SSTableReader,
    SSTableWriter,
    TableStats,
)

__all__ = [
    "DeviceProfile",
    "ExtentLostError",
    "IOCounters",
    "StorageDevice",
    "StorageFile",
    "SEAL_OVERHEAD_BYTES",
    "SealError",
    "seal",
    "try_unseal",
    "unseal",
    "MANIFEST_PREFIX",
    "RecoveryReport",
    "SnappyError",
    "compress",
    "compression_ratio",
    "decompress",
    "POINTER_BYTES",
    "DataPointer",
    "ValueLog",
    "MemTable",
    "RunWriter",
    "flatten_runs",
    "BurstReport",
    "TierConfig",
    "TieredStorage",
    "FOOTER_BYTES",
    "CorruptBlockError",
    "CHECKSUM_BYTES",
    "fastsum64",
    "MANIFEST_NAME",
    "EpochInfo",
    "Manifest",
    "SSTableReader",
    "SSTableWriter",
    "TableStats",
]
