"""Storage device model: seek + bandwidth costs, with exact I/O accounting.

The paper's read-path evaluation (Fig. 11) reports three quantities per
query: latency, number of storage read operations (seeks), and bytes
fetched.  `StorageDevice` charges a fixed per-operation seek cost plus a
bandwidth-proportional transfer cost, and keeps counters for all three.
Real bytes live in an in-memory extent store (or an optional backing file),
so readers get back exactly what writers stored — the timing model and the
data path are both exercised.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from ..obs import MetricsRegistry, active

__all__ = [
    "DeviceProfile",
    "ExtentLostError",
    "IOCounters",
    "StorageDevice",
    "StorageFile",
]


class ExtentLostError(OSError):
    """A read or write hit an extent that was deleted or truncated away.

    Distinguishes *data loss* from an ordinary short read at end-of-file:
    reads that start at or before the extent's current end return whatever
    bytes exist (possibly fewer than requested), while reads that start
    beyond it — the offset referred to bytes that no longer exist — raise
    this instead of silently returning nothing.
    """


@dataclass(frozen=True)
class DeviceProfile:
    """Performance envelope of a storage target.

    Attributes
    ----------
    read_bandwidth / write_bandwidth:
        Sustained transfer rates in bytes/second.
    seek_time:
        Fixed cost charged per read/write operation, seconds.  For the
        paper's burst-buffer + parallel-filesystem stack this models the
        per-request round trip rather than a disk arm.
    """

    name: str = "generic"
    read_bandwidth: float = 1e9
    write_bandwidth: float = 1e9
    seek_time: float = 5e-3

    def __post_init__(self):
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")
        if self.seek_time < 0:
            raise ValueError("seek_time must be non-negative")

    def read_time(self, nbytes: int) -> float:
        return self.seek_time + nbytes / self.read_bandwidth

    def write_time(self, nbytes: int) -> float:
        return self.seek_time + nbytes / self.write_bandwidth


@dataclass
class IOCounters:
    """Cumulative I/O accounting for a device."""

    reads: int = 0
    writes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    read_time: float = 0.0
    write_time: float = 0.0

    def snapshot(self) -> "IOCounters":
        return IOCounters(**vars(self))

    def delta(self, since: "IOCounters") -> "IOCounters":
        return IOCounters(
            reads=self.reads - since.reads,
            writes=self.writes - since.writes,
            bytes_read=self.bytes_read - since.bytes_read,
            bytes_written=self.bytes_written - since.bytes_written,
            read_time=self.read_time - since.read_time,
            write_time=self.write_time - since.write_time,
        )


class StorageDevice:
    """A byte-addressable device with cost accounting.

    Files are named extents inside the device; `open` returns a
    `StorageFile` whose reads and writes are charged to this device's
    counters.
    """

    def __init__(
        self,
        profile: DeviceProfile | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.profile = profile or DeviceProfile()
        self.counters = IOCounters()
        self.metrics = active(metrics)
        dev = self.profile.name
        self._m_reads = self.metrics.counter("storage.reads", device=dev)
        self._m_writes = self.metrics.counter("storage.writes", device=dev)
        self._m_bytes_read = self.metrics.counter("storage.bytes_read", device=dev)
        self._m_bytes_written = self.metrics.counter("storage.bytes_written", device=dev)
        self._files: dict[str, io.BytesIO] = {}
        # Live StorageFile handles (opens minus closes): leak audits assert
        # that a read path leaves this unchanged after N queries.
        self.open_handles = 0

    def open(self, name: str, create: bool = False) -> "StorageFile":
        if name not in self._files:
            if not create:
                raise FileNotFoundError(f"no such extent: {name!r}")
            self._files[name] = io.BytesIO()
        self.open_handles += 1
        return StorageFile(self, name)

    def exists(self, name: str) -> bool:
        return name in self._files

    def file_size(self, name: str) -> int:
        return len(self._require(name).getbuffer())

    def list_files(self) -> list[str]:
        return sorted(self._files)

    def total_bytes_stored(self) -> int:
        return sum(len(b.getbuffer()) for b in self._files.values())

    # -- transport-side import (uncharged) --------------------------------

    def adopt_extent(self, name: str, data, append: bool = False) -> None:
        """Import bytes produced on another device (a pool worker's mirror,
        a replica transfer) without charging any I/O.

        The charged path is `_append`: it models the workload performing a
        write.  Adoption models bytes that were *already written* elsewhere
        and are being landed here verbatim — the worker's own charged
        counters travel separately (see `absorb_counters`), so charging the
        import too would double-count.  ``append=True`` extends an existing
        extent (a value-log tail continuing past the parent's end);
        otherwise the name must be new.
        """
        if not append and name in self._files:
            raise FileExistsError(f"extent {name!r} already exists (pass append=True)")
        buf = self._files.setdefault(name, io.BytesIO())
        buf.seek(0, io.SEEK_END)
        buf.write(bytes(data))

    def absorb_counters(self, delta: "IOCounters") -> None:
        """Fold another device's I/O accounting into this one.

        Pairs with `adopt_extent`: a worker mirror charged its reads and
        writes locally; absorbing the delta keeps this device's `counters`
        equal to what a single-process run would have charged.  Metric
        counters are *not* touched — worker registries merge through
        `repro.obs` and would double-count here.
        """
        c = self.counters
        c.reads += delta.reads
        c.writes += delta.writes
        c.bytes_read += delta.bytes_read
        c.bytes_written += delta.bytes_written
        c.read_time += delta.read_time
        c.write_time += delta.write_time

    # -- fault surface (public; tests and fault injectors use these) ------

    def corrupt(self, name: str, offset: int, delta: int | None = None,
                xor: int | None = None) -> None:
        """Modify one stored byte in place (no I/O charged — this models
        at-rest damage, not an operation the workload performed).

        Exactly one of ``delta`` (byte added mod 256; default 1) or ``xor``
        (mask xored in, e.g. ``1 << bit`` for a single bit flip) applies.
        """
        if delta is not None and xor is not None:
            raise ValueError("pass delta or xor, not both")
        buf = self._require(name).getbuffer()
        if not 0 <= offset < len(buf):
            raise ValueError(f"offset {offset} outside extent {name!r} ({len(buf)} B)")
        if xor is not None:
            buf[offset] ^= xor & 0xFF
        else:
            buf[offset] = (buf[offset] + (1 if delta is None else delta)) % 256

    def truncate(self, name: str, size: int) -> None:
        """Cut an extent down to ``size`` bytes (a torn/partial flush)."""
        buf = self._require(name)
        if size < 0 or size > len(buf.getbuffer()):
            raise ValueError(f"cannot truncate {name!r} to {size} bytes")
        buf.truncate(size)

    def delete(self, name: str) -> None:
        """Drop an extent entirely (a lost file)."""
        self._require(name)
        del self._files[name]

    def _require(self, name: str) -> io.BytesIO:
        buf = self._files.get(name)
        if buf is None:
            raise FileNotFoundError(f"no such extent: {name!r}")
        return buf

    # -- charged primitives, used by StorageFile --------------------------

    def _charge_read(self, nbytes: int) -> None:
        self.counters.reads += 1
        self.counters.bytes_read += nbytes
        self.counters.read_time += self.profile.read_time(nbytes)
        self._m_reads.inc()
        self._m_bytes_read.inc(nbytes)

    def _charge_write(self, nbytes: int) -> None:
        self.counters.writes += 1
        self.counters.bytes_written += nbytes
        self.counters.write_time += self.profile.write_time(nbytes)
        self._m_writes.inc()
        self._m_bytes_written.inc(nbytes)

    def _read(self, name: str, offset: int, size: int) -> bytes:
        buf = self._files.get(name)
        if buf is None:
            raise ExtentLostError(f"extent {name!r} was deleted underneath a reader")
        if offset > len(buf.getbuffer()):
            raise ExtentLostError(
                f"read at offset {offset} beyond extent {name!r} "
                f"({len(buf.getbuffer())} B) — truncated underneath a reader?"
            )
        data = buf.getbuffer()[offset : offset + size].tobytes()
        self._charge_read(len(data))
        return data

    def _append(self, name: str, data: bytes) -> int:
        buf = self._files.get(name)
        if buf is None:
            raise ExtentLostError(f"extent {name!r} was deleted underneath a writer")
        buf.seek(0, io.SEEK_END)
        offset = buf.tell()
        buf.write(data)
        self._charge_write(len(data))
        return offset


@dataclass
class StorageFile:
    """Handle to one extent of a `StorageDevice`."""

    device: StorageDevice
    name: str
    _closed: bool = field(default=False, repr=False)

    def append(self, data: bytes) -> int:
        """Append and return the offset the data landed at."""
        self._check_open()
        return self.device._append(self.name, bytes(data))

    def read(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes starting at ``offset``.

        A read that begins at or before the extent's end may come back
        short (plain EOF); a read that begins *past* the end, or against a
        deleted extent, raises `ExtentLostError` — the bytes the offset
        referred to were lost underneath this handle.
        """
        self._check_open()
        if offset < 0 or size < 0:
            raise ValueError("offset and size must be non-negative")
        return self.device._read(self.name, offset, size)

    @property
    def size(self) -> int:
        return self.device.file_size(self.name)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self.device.open_handles -= 1

    def _check_open(self) -> None:
        if self._closed:
            raise ValueError(f"I/O on closed file {self.name!r}")

    def __enter__(self) -> "StorageFile":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
