"""Dataset manifest: what lives where across epochs, committed atomically.

A multi-timestep in-situ run leaves behind one set of partition files per
dump epoch (main tables, value logs, aux tables).  The manifest records
the dataset's shape — format, rank count, value width, per-epoch record
counts and file inventories — so a reader program can open a dataset
without out-of-band knowledge.

Persistence follows the LevelDB/DeltaFS recipe adapted to this storage
model, where the atomicity unit is a whole extent: `commit` writes a
*sealed* JSON blob (magic + length + checksum, `repro.storage.envelope`)
under a fresh generation name ``MANIFEST.<n>``; promotion is implicit —
readers scan the generations and take the newest one whose seal
validates.  A crash mid-commit leaves a torn blob that fails validation,
so the previous generation wins and the interrupted epoch is simply not
visible.  `recover` builds on that: it re-reads the surviving manifest,
checks every referenced extent (footers and checksums included with
``deep=True``), quarantines epochs whose files are missing or damaged,
and sweeps extents no committed epoch references.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from ..obs import MetricsRegistry, active
from .blockio import StorageDevice
from .envelope import seal, try_unseal

__all__ = ["EpochInfo", "Manifest", "RecoveryReport", "MANIFEST_NAME", "MANIFEST_PREFIX"]

MANIFEST_NAME = "MANIFEST"  # legacy single-extent name, still readable
MANIFEST_PREFIX = "MANIFEST."
_GENERATION_RE = re.compile(r"^MANIFEST\.(\d{6,})$")
_KEEP_GENERATIONS = 2  # newest + one fallback survive each commit's sweep
_VERSION = 1


@dataclass(frozen=True)
class EpochInfo:
    """One dump epoch's inventory.

    ``order`` is the epoch's rank in the newest-first read walk.  For
    ingested epochs it equals the epoch id; a *merged* epoch inherits the
    order of its newest source, because its data is only as recent as
    what went into it — its (fresh, high) id says when it was *written*,
    not how recent its contents are.  Defaults to the epoch id, so
    manifests from before compaction read back unchanged.
    """

    epoch: int
    records: int
    files: tuple[str, ...]
    bytes: int
    order: int = -1  # -1: stand-in for "same as epoch"
    # Aux backend(s) this epoch's partitions sealed with (comma-joined when
    # the flush-time policy picked differently per rank).  None for formats
    # without aux tables and for manifests from before backend selection —
    # omitted from the serialized dict so old manifests read back unchanged.
    aux_backend: str | None = None

    def __post_init__(self) -> None:
        if self.order < 0:
            object.__setattr__(self, "order", self.epoch)

    def to_dict(self) -> dict:
        d = {
            "epoch": self.epoch,
            "records": self.records,
            "files": list(self.files),
            "bytes": self.bytes,
        }
        if self.order != self.epoch:
            d["order"] = self.order
        if self.aux_backend is not None:
            d["aux_backend"] = self.aux_backend
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "EpochInfo":
        return cls(
            epoch=int(d["epoch"]),
            records=int(d["records"]),
            files=tuple(d["files"]),
            bytes=int(d["bytes"]),
            order=int(d.get("order", d["epoch"])),
            aux_backend=d.get("aux_backend"),
        )

    @property
    def aux_files(self) -> tuple[str, ...]:
        """The epoch's sealed aux extents, rank order.  This is the slice
        of the inventory a router tier replicates to itself (the compact
        routing state); everything else in ``files`` stays shard-local."""
        return tuple(sorted(n for n in self.files if n.startswith("aux.")))


@dataclass
class Manifest:
    """Complete description of a persisted dataset.

    ``next_epoch`` is a monotone id watermark: epoch ids are never reused,
    even after compaction retires them, so an ``(epoch, key)`` cache entry
    anywhere in the system can never alias a later epoch.  ``compacted``
    maps every retired epoch id to the merged epoch that absorbed it.
    """

    fmt: str
    nranks: int
    value_bytes: int
    epochs: list[EpochInfo] = field(default_factory=list)
    next_epoch: int = 0
    compacted: dict[int, int] = field(default_factory=dict)

    def add_epoch(self, info: EpochInfo) -> None:
        if any(e.epoch == info.epoch for e in self.epochs):
            raise ValueError(f"epoch {info.epoch} already recorded")
        if info.epoch in self.compacted:
            raise ValueError(f"epoch id {info.epoch} was retired by compaction")
        self.epochs.append(info)
        # Data-recency order, oldest first: ``epochs[-1]`` is always the
        # epoch holding the newest data (not necessarily the highest id —
        # a merged epoch's id is fresh but its contents are old).
        self.epochs.sort(key=lambda e: (e.order, e.epoch))
        self.next_epoch = max(self.next_epoch, info.epoch + 1)

    def remove_epoch(self, epoch: int) -> EpochInfo:
        for i, e in enumerate(self.epochs):
            if e.epoch == epoch:
                return self.epochs.pop(i)
        raise KeyError(f"no such epoch {epoch}")

    def note_compaction(self, retired: list[int], merged: int) -> None:
        """Record that ``retired`` epoch ids were absorbed into ``merged``.

        Earlier retirees whose target is itself being retired are re-pointed
        at the new merged epoch, so every mapping entry resolves to a live
        epoch in one hop.
        """
        retired_set = set(retired)
        for old, target in list(self.compacted.items()):
            if target in retired_set:
                self.compacted[old] = merged
        for epoch in retired_set:
            self.compacted[epoch] = merged
        self.next_epoch = max(self.next_epoch, merged + 1)

    def resolve_epoch(self, epoch: int) -> int:
        """The live epoch serving ``epoch``'s data (identity if still live)."""
        seen = 0
        while epoch in self.compacted:
            epoch = self.compacted[epoch]
            seen += 1
            if seen > len(self.compacted):  # defensive: corrupt mapping
                raise KeyError(f"compaction mapping cycles at epoch {epoch}")
        if any(e.epoch == epoch for e in self.epochs):
            return epoch
        raise KeyError(f"no such epoch {epoch}")

    @property
    def total_records(self) -> int:
        return sum(e.records for e in self.epochs)

    @property
    def epoch_ids(self) -> list[int]:
        return [e.epoch for e in self.epochs]

    # -- persistence -------------------------------------------------------

    def to_bytes(self) -> bytes:
        doc = {
            "version": _VERSION,
            "format": self.fmt,
            "nranks": self.nranks,
            "value_bytes": self.value_bytes,
            "epochs": [e.to_dict() for e in self.epochs],
            "next_epoch": self.next_epoch,
            "compacted": {str(k): v for k, v in sorted(self.compacted.items())},
        }
        return json.dumps(doc, indent=1, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Manifest":
        try:
            doc = json.loads(blob)
        except json.JSONDecodeError as e:
            raise ValueError(f"malformed manifest: {e}") from e
        if doc.get("version") != _VERSION:
            raise ValueError(f"unsupported manifest version {doc.get('version')!r}")
        m = cls(
            fmt=doc["format"], nranks=int(doc["nranks"]), value_bytes=int(doc["value_bytes"])
        )
        # `compacted` first: add_epoch refuses ids the mapping has retired.
        m.compacted = {int(k): int(v) for k, v in doc.get("compacted", {}).items()}
        for e in doc["epochs"]:
            m.add_epoch(EpochInfo.from_dict(e))
        # Manifests from before compaction carry no watermark; derive one.
        retired_cap = max(m.compacted, default=-1) + 1
        m.next_epoch = max(m.next_epoch, retired_cap, int(doc.get("next_epoch", 0)))
        return m

    # -- atomic commit -----------------------------------------------------

    @staticmethod
    def _generation_name(seq: int) -> str:
        return f"{MANIFEST_PREFIX}{seq:06d}"

    @staticmethod
    def _scan_generations(device: StorageDevice) -> list[tuple[int, str]]:
        """All ``MANIFEST.<n>`` extents present, newest first."""
        gens = []
        for name in device.list_files():
            m = _GENERATION_RE.match(name)
            if m:
                gens.append((int(m.group(1)), name))
        gens.sort(reverse=True)
        return gens

    def commit(self, device: StorageDevice) -> int:
        """Atomically promote this manifest; returns the generation number.

        The new generation is one sealed append — complete or torn, never
        half-interpreted.  Older generations beyond a small keep window
        (and any legacy unsealed ``MANIFEST`` extent) are swept afterwards;
        a crash between the append and the sweep only leaves extra old
        generations, which the next load ignores and the next commit sweeps.
        """
        gens = self._scan_generations(device)
        seq = (gens[0][0] + 1) if gens else 1
        with device.open(self._generation_name(seq), create=True) as f:
            f.append(seal(self.to_bytes()))
        for old_seq, name in gens[_KEEP_GENERATIONS - 1 :]:
            device.delete(name)
        if device.exists(MANIFEST_NAME):
            device.delete(MANIFEST_NAME)
        return seq

    def save(self, device: StorageDevice) -> None:
        """Back-compat alias for `commit`."""
        self.commit(device)

    @classmethod
    def load(cls, device: StorageDevice) -> "Manifest":
        """Newest generation whose seal validates; torn commits lose.

        Falls back to the legacy unsealed ``MANIFEST`` extent for datasets
        written before generations existed.
        """
        m = cls._load_valid(device)[1]
        if m is None:
            raise FileNotFoundError("no valid manifest on device")
        return m

    @classmethod
    def _load_valid(
        cls, device: StorageDevice
    ) -> tuple[int | None, "Manifest | None", list[str]]:
        """(generation, manifest, invalid-extent-names) for the device."""
        invalid: list[str] = []
        for seq, name in cls._scan_generations(device):
            f = device.open(name)
            payload = try_unseal(f.read(0, f.size))
            if payload is not None:
                try:
                    return seq, cls.from_bytes(payload), invalid
                except ValueError:
                    pass
            invalid.append(name)
        if device.exists(MANIFEST_NAME):
            f = device.open(MANIFEST_NAME)
            try:
                return 0, cls.from_bytes(f.read(0, f.size)), invalid
            except ValueError:
                invalid.append(MANIFEST_NAME)
        return None, None, invalid

    # -- crash recovery ----------------------------------------------------

    @classmethod
    def recover(
        cls,
        device: StorageDevice,
        deep: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> "tuple[Manifest | None, RecoveryReport]":
        """Bring the device back to a consistent, fully-readable state.

        * the newest valid manifest generation wins; torn or corrupt ones
          are discarded (a crash mid-commit reverts to the prior epoch set);
        * every committed epoch's extents are checked — existence always,
          footers/section checksums for tables and sealed aux blobs, full
          data-block verification with ``deep=True`` — and epochs that fail
          are *quarantined* (dropped from the manifest, reported);
        * extents no surviving epoch references (partial output of the
          interrupted epoch, spill runs, stale manifests) are swept.

        Returns ``(manifest-or-None, report)``; the repaired manifest is
        re-committed when quarantining changed it.
        """
        reg = active(metrics)
        generation, manifest, invalid = cls._load_valid(device)
        quarantined: list[tuple[int, str]] = []
        if manifest is not None:
            for info in list(manifest.epochs):
                problem = _validate_epoch(device, info, deep=deep)
                if problem is not None:
                    manifest.remove_epoch(info.epoch)
                    quarantined.append((info.epoch, problem))
        if quarantined:
            generation = manifest.commit(device)

        referenced: set[str] = set()
        if manifest is not None:
            for info in manifest.epochs:
                referenced.update(info.files)
            for _, name in cls._scan_generations(device)[:_KEEP_GENERATIONS]:
                referenced.add(name)
        orphans: list[str] = []
        bytes_reclaimed = 0
        for name in device.list_files():
            if name not in referenced:
                bytes_reclaimed += device.file_size(name)
                device.delete(name)
                orphans.append(name)

        committed = manifest.epoch_ids if manifest is not None else []
        reg.counter("recovery.runs").inc()
        reg.counter("recovery.epochs_committed").inc(len(committed))
        reg.counter("recovery.epochs_quarantined").inc(len(quarantined))
        reg.counter("recovery.orphans_removed").inc(len(orphans))
        reg.counter("recovery.bytes_reclaimed").inc(bytes_reclaimed)
        reg.counter("recovery.invalid_manifests").inc(len(invalid))
        report = RecoveryReport(
            generation=generation,
            committed_epochs=committed,
            quarantined_epochs=quarantined,
            orphans_removed=orphans,
            invalid_manifests=invalid,
            bytes_reclaimed=bytes_reclaimed,
        )
        return manifest, report


def _validate_epoch(device: StorageDevice, info: EpochInfo, deep: bool) -> str | None:
    """None if every extent the epoch references is present and sound,
    else a human-readable description of the first problem found."""
    from .sstable import SSTableReader  # local: keep module import light

    for name in info.files:
        if not device.exists(name):
            return f"missing extent {name!r}"
        try:
            if name.startswith("part."):
                reader = SSTableReader(device, name)
                if deep:
                    reader.scan()
            elif name.startswith("aux."):
                f = device.open(name)
                payload = try_unseal(f.read(0, f.size))
                if payload is None:
                    return f"aux extent {name!r} torn or corrupt"
        except ValueError as e:  # bad magic, checksum mismatch, truncation
            return f"extent {name!r} unreadable: {e}"
    return None


@dataclass
class RecoveryReport:
    """What `Manifest.recover` found and did."""

    generation: int | None
    committed_epochs: list[int]
    quarantined_epochs: list[tuple[int, str]]
    orphans_removed: list[str]
    invalid_manifests: list[str]
    bytes_reclaimed: int

    @property
    def clean(self) -> bool:
        return not (self.quarantined_epochs or self.orphans_removed or self.invalid_manifests)

    def summary(self) -> str:
        lines = [
            f"manifest generation: {self.generation if self.generation is not None else '(none)'}",
            f"committed epochs:    {self.committed_epochs or '(none)'}",
        ]
        for epoch, why in self.quarantined_epochs:
            lines.append(f"quarantined epoch {epoch}: {why}")
        if self.invalid_manifests:
            lines.append(f"discarded manifests: {', '.join(self.invalid_manifests)}")
        lines.append(
            f"swept {len(self.orphans_removed)} orphan extent(s), "
            f"reclaimed {self.bytes_reclaimed:,} B"
        )
        return "\n".join(lines)
