"""Dataset manifest: what lives where across epochs.

A multi-timestep in-situ run leaves behind one set of partition files per
dump epoch (main tables, value logs, aux tables).  The manifest records
the dataset's shape — format, rank count, value width, per-epoch record
counts and file inventories — so a reader program can open a dataset
without out-of-band knowledge.  Stored as a JSON extent on the same
device as the data.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .blockio import StorageDevice

__all__ = ["EpochInfo", "Manifest", "MANIFEST_NAME"]

MANIFEST_NAME = "MANIFEST"
_VERSION = 1


@dataclass(frozen=True)
class EpochInfo:
    """One dump epoch's inventory."""

    epoch: int
    records: int
    files: tuple[str, ...]
    bytes: int

    def to_dict(self) -> dict:
        return {
            "epoch": self.epoch,
            "records": self.records,
            "files": list(self.files),
            "bytes": self.bytes,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "EpochInfo":
        return cls(
            epoch=int(d["epoch"]),
            records=int(d["records"]),
            files=tuple(d["files"]),
            bytes=int(d["bytes"]),
        )


@dataclass
class Manifest:
    """Complete description of a persisted dataset."""

    fmt: str
    nranks: int
    value_bytes: int
    epochs: list[EpochInfo] = field(default_factory=list)

    def add_epoch(self, info: EpochInfo) -> None:
        if any(e.epoch == info.epoch for e in self.epochs):
            raise ValueError(f"epoch {info.epoch} already recorded")
        self.epochs.append(info)
        self.epochs.sort(key=lambda e: e.epoch)

    @property
    def total_records(self) -> int:
        return sum(e.records for e in self.epochs)

    @property
    def epoch_ids(self) -> list[int]:
        return [e.epoch for e in self.epochs]

    # -- persistence -------------------------------------------------------

    def to_bytes(self) -> bytes:
        doc = {
            "version": _VERSION,
            "format": self.fmt,
            "nranks": self.nranks,
            "value_bytes": self.value_bytes,
            "epochs": [e.to_dict() for e in self.epochs],
        }
        return json.dumps(doc, indent=1, sort_keys=True).encode()

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Manifest":
        try:
            doc = json.loads(blob)
        except json.JSONDecodeError as e:
            raise ValueError(f"malformed manifest: {e}") from e
        if doc.get("version") != _VERSION:
            raise ValueError(f"unsupported manifest version {doc.get('version')!r}")
        m = cls(
            fmt=doc["format"], nranks=int(doc["nranks"]), value_bytes=int(doc["value_bytes"])
        )
        for e in doc["epochs"]:
            m.add_epoch(EpochInfo.from_dict(e))
        return m

    def save(self, device: StorageDevice) -> None:
        """(Re)write the manifest extent on the device."""
        device._files.pop(MANIFEST_NAME, None)  # manifests are replaced whole
        device.open(MANIFEST_NAME, create=True).append(self.to_bytes())

    @classmethod
    def load(cls, device: StorageDevice) -> "Manifest":
        f = device.open(MANIFEST_NAME)
        return cls.from_bytes(f.read(0, f.size))
