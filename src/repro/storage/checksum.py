"""Block checksums for the on-storage formats.

Storage formats that survive real deployments carry per-block checksums;
DeltaFS's tables (the paper's substrate) inherit LevelDB-style block CRCs.
This module provides `fastsum64`, a vectorized 64-bit checksum built on
the same splitmix64 mixer as the filters: each 8-byte word is mixed with a
position-dependent multiplier and folded, so bit flips, swaps, and
truncations all change the sum.

It is not cryptographic — it defends against corruption, not adversaries.
"""

from __future__ import annotations

import numpy as np

from ..filters.hashing import splitmix64

__all__ = ["fastsum64", "CHECKSUM_BYTES"]

CHECKSUM_BYTES = 8
_LEN_SALT = np.uint64(0x1DA177E4C3F41524)


def fastsum64(data: bytes, seed: int = 0) -> int:
    """64-bit checksum of ``data`` (vectorized; ~GB/s on NumPy).

    Equal inputs give equal sums; any single-bit flip flips ~half the sum's
    bits; permuted or truncated inputs disagree because words are weighted
    by position and the length is folded in.
    """
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    pad = (-raw.size) % 8
    if pad:
        raw = np.concatenate([raw, np.zeros(pad, dtype=np.uint8)])
    words = raw.view("<u8").astype(np.uint64)
    with np.errstate(over="ignore"):
        positions = splitmix64(np.arange(words.size, dtype=np.uint64) ^ np.uint64(seed))
        mixed = splitmix64(words ^ positions)
        folded = np.bitwise_xor.reduce(mixed) if mixed.size else np.uint64(0)
        out = splitmix64(folded ^ (np.uint64(len(data)) * _LEN_SALT))
    return int(out[()])
