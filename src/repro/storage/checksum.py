"""Block checksums for the on-storage formats.

Storage formats that survive real deployments carry per-block checksums;
DeltaFS's tables (the paper's substrate) inherit LevelDB-style block CRCs.
This module provides `fastsum64`, a vectorized 64-bit checksum built on
the same splitmix64 mixer as the filters: each 8-byte word is mixed with a
position-dependent multiplier and folded, so bit flips, swaps, and
truncations all change the sum.

It is not cryptographic — it defends against corruption, not adversaries.
"""

from __future__ import annotations

import numpy as np

from ..filters.hashing import splitmix64

__all__ = ["fastsum64", "CHECKSUM_BYTES"]

CHECKSUM_BYTES = 8
_LEN_SALT = np.uint64(0x1DA177E4C3F41524)

# The position-mix series depends only on (word index, seed); blocks in one
# table share a size, so memoizing it removes half the per-block hash work.
_POS_CACHE: dict[int, np.ndarray] = {}


def _positions(n: int, seed: int) -> np.ndarray:
    cached = _POS_CACHE.get(seed)
    if cached is None or cached.size < n:
        size = max(n, 1024, 2 * cached.size if cached is not None else 0)
        with np.errstate(over="ignore"):
            cached = splitmix64(np.arange(size, dtype=np.uint64) ^ np.uint64(seed))
        _POS_CACHE[seed] = cached
    return cached[:n]


def fastsum64(data: bytes, seed: int = 0) -> int:
    """64-bit checksum of ``data`` (vectorized; ~GB/s on NumPy).

    Equal inputs give equal sums; any single-bit flip flips ~half the sum's
    bits; permuted or truncated inputs disagree because words are weighted
    by position and the length is folded in.
    """
    raw = np.frombuffer(bytes(data), dtype=np.uint8)
    pad = (-raw.size) % 8
    if pad:
        raw = np.concatenate([raw, np.zeros(pad, dtype=np.uint8)])
    words = raw.view("<u8")
    with np.errstate(over="ignore"):
        positions = _positions(words.size, seed)
        mixed = splitmix64(words ^ positions)
        folded = np.bitwise_xor.reduce(mixed) if mixed.size else np.uint64(0)
        out = splitmix64(folded ^ (np.uint64(len(data)) * _LEN_SALT))
    return int(out[()])
