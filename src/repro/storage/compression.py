"""Snappy-format LZ77 codec, implemented from scratch.

The paper compresses index data with Google's Snappy (§IV-C, Fig. 7b).
Snappy is unavailable offline, so this module implements the same wire
format (format description v1.1):

* a varint preamble with the uncompressed length, then a token stream;
* literal tokens (tag ``00``) carrying raw bytes;
* copy tokens with 1-byte (tag ``01``), 2-byte (tag ``10``) or 4-byte
  (tag ``11``) little-endian offsets into the already-decoded output.

Like the reference implementation, input is compressed in independent
64 KiB windows so copy offsets fit the 2-byte form.  Match discovery is
vectorized with NumPy (previous occurrence of every 4-gram via a
sort-by-hash pass); the emit loop runs per *token*, not per byte, so
throughput is adequate for the benchmark sample sizes.

`compress` / `decompress` round-trip byte-exactly; `compression_ratio` is
the helper the Fig. 7b benchmark calls.
"""

from __future__ import annotations

import numpy as np

from ..obs import get_default_registry

__all__ = ["compress", "decompress", "compression_ratio", "SnappyError"]

_WINDOW = 1 << 16  # compress in 64 KiB windows, like reference snappy
_MIN_MATCH = 4
_MAX_COPY_LEN = 64


class SnappyError(ValueError):
    """Raised on malformed compressed input."""


# -- varints ---------------------------------------------------------------


def _emit_varint(n: int, out: bytearray) -> None:
    while n >= 0x80:
        out.append((n & 0x7F) | 0x80)
        n >>= 7
    out.append(n)


def _read_varint(data: bytes, pos: int) -> tuple[int, int]:
    result = 0
    shift = 0
    while True:
        if pos >= len(data):
            raise SnappyError("truncated varint preamble")
        b = data[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result, pos
        shift += 7
        if shift > 35:
            raise SnappyError("varint overflow")


# -- token emission ---------------------------------------------------------


def _emit_literal(data: bytes, start: int, end: int, out: bytearray) -> None:
    length = end - start
    while length > 0:
        chunk = min(length, 0x10000)  # keep extra-length bytes ≤ 2
        n = chunk - 1
        if n < 60:
            out.append(n << 2)
        elif n < 0x100:
            out.append(60 << 2)
            out.append(n)
        else:
            out.append(61 << 2)
            out += n.to_bytes(2, "little")
        out += data[start : start + chunk]
        start += chunk
        length -= chunk


def _emit_copy(offset: int, length: int, out: bytearray) -> None:
    # Longer matches are split into ≤64-byte copy tokens.  Avoid leaving a
    # tail shorter than 4 bytes, which the 1-byte-offset form cannot encode.
    while length > 0:
        chunk = min(length, _MAX_COPY_LEN)
        if length - chunk in (1, 2, 3) and chunk > 4:
            chunk = length - 4
        if 4 <= chunk <= 11 and offset < 2048:
            out.append(0b01 | ((chunk - 4) << 2) | ((offset >> 8) << 5))
            out.append(offset & 0xFF)
        else:
            out.append(0b10 | ((chunk - 1) << 2))
            out += offset.to_bytes(2, "little")
        length -= chunk


# -- match finding -----------------------------------------------------------


def _prev_occurrence(window: np.ndarray) -> np.ndarray:
    """For each position, the most recent earlier position with the same
    4-gram hash (or -1).  Hash collisions are verified by the emit loop."""
    n = window.size
    if n < _MIN_MATCH:
        return np.full(max(0, n), -1, dtype=np.int64)
    grams = (
        window[: n - 3].astype(np.uint32)
        | (window[1 : n - 2].astype(np.uint32) << np.uint32(8))
        | (window[2 : n - 1].astype(np.uint32) << np.uint32(16))
        | (window[3:n].astype(np.uint32) << np.uint32(24))
    )
    order = np.argsort(grams, kind="stable")
    sorted_grams = grams[order]
    prev = np.full(n, -1, dtype=np.int64)
    same = np.empty(order.size, dtype=bool)
    same[0] = False
    same[1:] = sorted_grams[1:] == sorted_grams[:-1]
    prev[order[same]] = order[np.nonzero(same)[0] - 1]
    return prev


def compress(data: bytes) -> bytes:
    """Compress ``data`` into the Snappy wire format."""
    out = bytearray()
    _emit_varint(len(data), out)
    view = bytes(data)
    for base in range(0, len(view), _WINDOW):
        _compress_window(view, base, min(len(view), base + _WINDOW), out)
    if not data:
        pass  # preamble alone encodes the empty stream
    # Pure function, so telemetry goes to the process-wide registry (null
    # unless a run installed one).
    m = get_default_registry()
    m.counter("storage.compress_in_bytes").inc(len(data))
    m.counter("storage.compress_out_bytes").inc(len(out))
    return bytes(out)


def _compress_window(data: bytes, base: int, end: int, out: bytearray) -> None:
    window = np.frombuffer(data, dtype=np.uint8, count=end - base, offset=base)
    prev = _prev_occurrence(window)
    i = base
    literal_start = base
    limit = end - _MIN_MATCH
    while i <= limit:
        j_rel = prev[i - base]
        if j_rel < 0:
            i += 1
            continue
        j = base + int(j_rel)
        if data[j : j + _MIN_MATCH] != data[i : i + _MIN_MATCH]:
            i += 1  # hash collision
            continue
        # Extend the match greedily in growing chunks (memcmp at C speed).
        length = _MIN_MATCH
        while True:
            step = min(64, end - (i + length))
            if step <= 0:
                break
            if data[j + length : j + length + step] == data[i + length : i + length + step]:
                length += step
            else:
                lo, hi = 0, step
                while lo < hi:
                    mid = (lo + hi) // 2 + 1
                    if data[j + length : j + length + mid] == data[i + length : i + length + mid]:
                        lo = mid
                    else:
                        hi = mid - 1
                length += lo
                break
        if literal_start < i:
            _emit_literal(data, literal_start, i, out)
        _emit_copy(i - j, length, out)
        i += length
        literal_start = i
    if literal_start < end:
        _emit_literal(data, literal_start, end, out)


# -- decoding ----------------------------------------------------------------


def decompress(data: bytes) -> bytes:
    """Decode a Snappy stream produced by `compress` (or reference snappy,
    for streams whose copies never cross our decoder's output so far)."""
    expected, pos = _read_varint(bytes(data), 0)
    out = bytearray()
    data = bytes(data)
    n = len(data)
    while pos < n:
        tag = data[pos]
        pos += 1
        kind = tag & 0b11
        if kind == 0b00:  # literal
            length = tag >> 2
            if length >= 60:
                nbytes = length - 59
                if pos + nbytes > n:
                    raise SnappyError("truncated literal length")
                length = int.from_bytes(data[pos : pos + nbytes], "little")
                pos += nbytes
            length += 1
            if pos + length > n:
                raise SnappyError("truncated literal body")
            out += data[pos : pos + length]
            pos += length
            continue
        if kind == 0b01:  # copy, 1-byte offset
            length = ((tag >> 2) & 0b111) + 4
            if pos >= n:
                raise SnappyError("truncated copy offset")
            offset = ((tag >> 5) << 8) | data[pos]
            pos += 1
        elif kind == 0b10:  # copy, 2-byte offset
            length = (tag >> 2) + 1
            if pos + 2 > n:
                raise SnappyError("truncated copy offset")
            offset = int.from_bytes(data[pos : pos + 2], "little")
            pos += 2
        else:  # copy, 4-byte offset
            length = (tag >> 2) + 1
            if pos + 4 > n:
                raise SnappyError("truncated copy offset")
            offset = int.from_bytes(data[pos : pos + 4], "little")
            pos += 4
        if offset == 0 or offset > len(out):
            raise SnappyError(f"copy offset {offset} out of range at {len(out)} bytes")
        start = len(out) - offset
        for k in range(length):  # may self-overlap; must copy byte-serially
            out.append(out[start + k])
    if len(out) != expected:
        raise SnappyError(f"length mismatch: preamble {expected}, decoded {len(out)}")
    m = get_default_registry()
    m.counter("storage.decompress_in_bytes").inc(n)
    m.counter("storage.decompress_out_bytes").inc(len(out))
    return bytes(out)


def compression_ratio(data: bytes) -> float:
    """compressed/uncompressed size ratio (1.0 = incompressible)."""
    if not data:
        return 1.0
    return len(compress(data)) / len(data)
