"""Two-tier storage: burst buffer absorbing bursts, draining to the PFS.

The paper's macrobenchmark writes each dump to a burst-buffer allocation;
the data "is later written to the platform's underlying filesystem" and
queries run from the filesystem (§V-B).  This model answers the questions
that setup raises: does the burst buffer absorb a dump without filling?
How long until the data is queryable on the PFS?  Can the next dump start
before the previous drain completes?

`TieredStorage.write_burst` advances a simple fluid model: bursts land at
the BB's ingest bandwidth (or are throttled by remaining capacity), and
the BB drains continuously to the PFS at the drain bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TierConfig", "BurstReport", "TieredStorage"]


@dataclass(frozen=True)
class TierConfig:
    """Bandwidths and capacity of the two-tier stack (bytes, bytes/s)."""

    bb_capacity: float
    bb_ingest_bandwidth: float
    drain_bandwidth: float

    def __post_init__(self):
        if self.bb_capacity <= 0:
            raise ValueError("bb_capacity must be positive")
        if self.bb_ingest_bandwidth <= 0 or self.drain_bandwidth <= 0:
            raise ValueError("bandwidths must be positive")


@dataclass(frozen=True)
class BurstReport:
    """Outcome of one dump burst."""

    t_start: float
    t_absorbed: float  # burst fully inside the BB
    t_queryable: float  # burst fully drained to the PFS
    throttled: bool  # BB filled: ingest fell back to drain speed

    @property
    def absorb_time(self) -> float:
        return self.t_absorbed - self.t_start

    @property
    def drain_lag(self) -> float:
        """Extra wait between absorbed and queryable."""
        return self.t_queryable - self.t_absorbed


@dataclass
class TieredStorage:
    """Fluid model of a burst buffer draining to a parallel filesystem."""

    config: TierConfig
    now: float = 0.0
    bb_occupancy: float = 0.0
    drained_total: float = 0.0
    reports: list[BurstReport] = field(default_factory=list)

    def _drain(self, dt: float) -> None:
        removed = min(self.bb_occupancy, self.config.drain_bandwidth * dt)
        self.bb_occupancy -= removed
        self.drained_total += removed

    def idle(self, dt: float) -> None:
        """Advance time with no new writes (compute phase between dumps)."""
        if dt < 0:
            raise ValueError("dt must be non-negative")
        self._drain(dt)
        self.now += dt

    def write_burst(self, nbytes: float) -> BurstReport:
        """Absorb one dump and report when it is queryable."""
        if nbytes <= 0:
            raise ValueError("burst must be positive")
        cfg = self.config
        t_start = self.now
        remaining = float(nbytes)
        throttled = False
        # Phase 1: ingest at full speed while the BB has headroom.  Net
        # fill rate is ingest − drain; the BB is full when occupancy hits
        # capacity, after which ingest proceeds at drain speed.
        while remaining > 1e-9:
            headroom = cfg.bb_capacity - self.bb_occupancy
            net_fill = cfg.bb_ingest_bandwidth - cfg.drain_bandwidth
            if headroom <= 1e-9 or net_fill <= 0:
                # Steady state: bounded by the slower of drain/ingest.
                rate = min(cfg.bb_ingest_bandwidth, cfg.drain_bandwidth)
                throttled = throttled or headroom <= 1e-9
                dt = remaining / rate
                self.now += dt
                self.drained_total += min(remaining, cfg.drain_bandwidth * dt)
                remaining = 0.0
                break
            dt_fill = headroom / net_fill  # time until BB full
            dt_burst = remaining / cfg.bb_ingest_bandwidth
            dt = min(dt_fill, dt_burst)
            self.now += dt
            absorbed = cfg.bb_ingest_bandwidth * dt
            remaining -= absorbed
            self.bb_occupancy = min(
                cfg.bb_capacity, self.bb_occupancy + absorbed - cfg.drain_bandwidth * dt
            )
            self.drained_total += cfg.drain_bandwidth * dt
        t_absorbed = self.now
        # Phase 2: drain whatever is still buffered.
        drain_time = self.bb_occupancy / cfg.drain_bandwidth
        t_queryable = t_absorbed + drain_time
        report = BurstReport(t_start, t_absorbed, t_queryable, throttled)
        self.reports.append(report)
        return report

    def queryable_after(self) -> float:
        """Absolute time at which everything written so far is on the PFS."""
        return self.now + self.bb_occupancy / self.config.drain_bandwidth
