"""Per-process value logs and the composite data pointers into them.

Under simple data indirection (paper §III-B, Fig. 3b) each process appends
the value portion of every KV pair to its own log file and ships
``(key, pointer)`` to the partition owner.  A pointer names the log file
(by the writer's rank, 4 bytes) and the byte offset of the value (8 bytes)
— the 12-byte per-key overhead FilterKV sets out to eliminate.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

from ..obs.trace import child_span, current_span
from .blockio import ExtentLostError, StorageDevice, StorageFile

__all__ = ["DataPointer", "ValueLog", "POINTER_BYTES"]

POINTER_BYTES = 12  # 4-byte file/rank id + 8-byte offset (paper §III-C)
_PTR_STRUCT = struct.Struct("<Iq")


@dataclass(frozen=True)
class DataPointer:
    """Composite pointer: which process's log, and where in it."""

    rank: int
    offset: int

    def pack(self) -> bytes:
        return _PTR_STRUCT.pack(self.rank, self.offset)

    @classmethod
    def unpack(cls, data: bytes) -> "DataPointer":
        if len(data) != POINTER_BYTES:
            raise ValueError(f"pointer must be {POINTER_BYTES} bytes, got {len(data)}")
        rank, offset = _PTR_STRUCT.unpack(data)
        return cls(rank, offset)


class ValueLog:
    """Append-only log of length-prefixed values for one process.

    Each record is ``u32 length ‖ value bytes`` so that a pointer to the
    record start is sufficient to read the value back.
    """

    _LEN = struct.Struct("<I")

    def __init__(self, device: StorageDevice, rank: int):
        if rank < 0:
            raise ValueError(f"rank must be non-negative, got {rank}")
        self.rank = rank
        self._file: StorageFile = device.open(self.filename(rank), create=True)
        self._nvalues = 0

    @staticmethod
    def filename(rank: int) -> str:
        return f"vlog.{rank:06d}"

    @classmethod
    def open(cls, device: StorageDevice, rank: int) -> "ValueLog":
        """Attach to an existing log for reading (no create)."""
        log = cls.__new__(cls)
        log.rank = rank
        log._file = device.open(cls.filename(rank))
        log._nvalues = -1  # unknown for a reader-side attach
        return log

    def append(self, value: bytes) -> DataPointer:
        """Append one value; returns the pointer that recovers it."""
        offset = self._file.append(self._LEN.pack(len(value)) + bytes(value))
        self._nvalues += 1
        return DataPointer(self.rank, offset)

    def append_many(self, values: np.ndarray | list[bytes]) -> np.ndarray:
        """Append a batch of values with one storage write.

        ``values`` is a ``(n, width)`` uint8 matrix (vectorized fixed-width
        path) or a list of bytes.  Returns the ``uint64`` record-start
        offsets, identical to ``n`` scalar `append` calls; the log bytes are
        byte-for-byte the same, landed in a single device write.
        """
        base = self._file.size
        if isinstance(values, np.ndarray):
            values = np.asarray(values, dtype=np.uint8)
            if values.ndim != 2:
                raise ValueError(f"values matrix must be 2-D, got shape {values.shape}")
            n, width = values.shape
            if n == 0:
                return np.zeros(0, dtype=np.uint64)
            recs = np.empty((n, self._LEN.size + width), dtype=np.uint8)
            recs[:, : self._LEN.size] = np.frombuffer(
                self._LEN.pack(width), dtype=np.uint8
            )
            recs[:, self._LEN.size :] = values
            self._file.append(recs.tobytes())
            offsets = base + np.arange(n, dtype=np.uint64) * np.uint64(
                self._LEN.size + width
            )
        else:
            if not values:
                return np.zeros(0, dtype=np.uint64)
            offsets = np.empty(len(values), dtype=np.uint64)
            blob = bytearray()
            for i, v in enumerate(values):
                offsets[i] = base + len(blob)
                blob += self._LEN.pack(len(v)) + bytes(v)
            self._file.append(bytes(blob))
        self._nvalues += len(offsets)
        return offsets

    def read(self, pointer: DataPointer, size_hint: int = 4096) -> bytes:
        """Read the value a pointer refers to.

        A single device read covers the length prefix plus ``size_hint``
        bytes — one storage seek for typical values (the paper's indirection
        costs exactly one extra read op per query); only values larger than
        the hint need a second read.
        """
        if pointer.rank != self.rank:
            raise ValueError(f"pointer targets rank {pointer.rank}, log is rank {self.rank}")
        try:
            first = self._file.read(pointer.offset, self._LEN.size + size_hint)
        except ExtentLostError as e:
            raise ValueError(f"bad pointer offset {pointer.offset}: {e}") from e
        if len(first) < self._LEN.size:
            raise ValueError(f"bad pointer offset {pointer.offset}")
        (length,) = self._LEN.unpack(first[: self._LEN.size])
        body = first[self._LEN.size : self._LEN.size + length]
        if len(body) < length:
            body += self._file.read(pointer.offset + len(first), length - len(body))
        return body

    def read_many(self, pointers: list[DataPointer], size_hint: int = 4096) -> list[bytes]:
        """Read a batch of pointers, issuing reads in ascending offset order.

        Returns values aligned with ``pointers``.  Each value still costs
        one read (two for values larger than ``size_hint``), but a batch
        sweeps the log monotonically instead of seeking back and forth —
        the access pattern a real device rewards.
        """
        if current_span() is None:  # untraced: skip span-argument setup
            return self._read_many(pointers, size_hint)
        with child_span("vlog.read_many", rank=self.rank, n=len(pointers)):
            return self._read_many(pointers, size_hint)

    def _read_many(self, pointers: list[DataPointer], size_hint: int) -> list[bytes]:
        order = sorted(range(len(pointers)), key=lambda i: pointers[i].offset)
        out: list[bytes] = [b""] * len(pointers)
        for i in order:
            out[i] = self.read(pointers[i], size_hint)
        return out

    def close(self) -> None:
        """Release the log's extent handle (idempotent; reader-side attach)."""
        self._file.close()

    def __len__(self) -> int:
        return self._nvalues

    @property
    def size_bytes(self) -> int:
        return self._file.size
