"""Synthetic workload generators for the microbenchmarks (paper §V-A).

The paper's driver program starts N parallel processes, each generating
random KV pairs of a fixed size; keys are 8-byte random integers.  This
module provides that generator plus two alternative key distributions used
by the extension benchmarks (skewed keys stress load balance; sequential
keys are the best case for compression and the worst for entropy claims).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.kv import KVBatch, random_kv_batch
from ..filters.hashing import splitmix64

__all__ = ["uniform_batches", "zipf_batches", "sequential_batches", "microbench_stream"]


def uniform_batches(
    nbatches: int, records_per_batch: int, value_bytes: int, seed: int = 0
) -> Iterator[KVBatch]:
    """The paper's workload: uniformly random 8-byte keys."""
    rng = np.random.default_rng(seed)
    for _ in range(nbatches):
        yield random_kv_batch(records_per_batch, value_bytes, rng)


def zipf_batches(
    nbatches: int,
    records_per_batch: int,
    value_bytes: int,
    a: float = 1.3,
    universe: int = 1 << 24,
    seed: int = 0,
) -> Iterator[KVBatch]:
    """Zipf-skewed keys (hot keys repeat).  Keys are scrambled through
    splitmix64 so skew lives in *frequency*, not in key-space locality."""
    if a <= 1.0:
        raise ValueError("zipf exponent must be > 1")
    rng = np.random.default_rng(seed)
    for _ in range(nbatches):
        raw = rng.zipf(a, size=records_per_batch) % universe
        keys = splitmix64(raw.astype(np.uint64))
        values = rng.integers(0, 256, size=(records_per_batch, value_bytes), dtype=np.uint8)
        yield KVBatch(keys, values)


def sequential_batches(
    nbatches: int, records_per_batch: int, value_bytes: int, start: int = 0, seed: int = 0
) -> Iterator[KVBatch]:
    """Monotonically increasing keys — minimal entropy, maximal
    compressibility; the antithesis of the paper's HPC assumption."""
    rng = np.random.default_rng(seed)
    next_key = start
    for _ in range(nbatches):
        keys = np.arange(next_key, next_key + records_per_batch, dtype=np.uint64)
        next_key += records_per_batch
        values = rng.integers(0, 256, size=(records_per_batch, value_bytes), dtype=np.uint8)
        yield KVBatch(keys, values)


def microbench_stream(
    rank: int, records: int, value_bytes: int, batch_records: int = 4096, seed: int = 0
) -> Iterator[KVBatch]:
    """Per-rank stream matching the paper's §V-A driver: each process
    generates ``records`` random KV pairs in buffered batches."""
    rng = np.random.default_rng((seed << 20) ^ rank)
    remaining = records
    while remaining > 0:
        n = min(batch_records, remaining)
        yield random_kv_batch(n, value_bytes, rng)
        remaining -= n
