"""A reduced VPIC-style particle workload (paper §V-B).

The paper's macrobenchmark runs LANL's Vector Particle-In-Cell code for
magnetic-reconnection simulations: each process owns a region of cells,
particles drift between regions, and every few timesteps each process
dumps the 64-byte state of the particles it *currently* holds.  Because
particles migrate, a particle's trajectory ends up scattered across many
processes' output — the reason readers need online partitioning at all.

This module reproduces exactly those properties at laptop scale:

* 64-byte records keyed by an 8-byte particle ID;
* deterministic particle motion on a 1-D ring of rank domains with
  random-walk drift, so cross-rank migration rates are controllable;
* per-timestep dumps grouped by current owner rank.

The physics (field solves, Boris push) is irrelevant to FilterKV and is
replaced by the drift process; what the data-management layer sees —
sizes, keys, entropy, migration — is preserved.
"""

from __future__ import annotations

import numpy as np

from ..core.kv import KEY_BYTES, KVBatch

__all__ = ["VPICSimulation", "VPICSimulation2D", "PARTICLE_BYTES", "PARTICLE_VALUE_BYTES"]

PARTICLE_BYTES = 64  # per-particle state in the paper's runs
PARTICLE_VALUE_BYTES = PARTICLE_BYTES - KEY_BYTES


class VPICSimulation:
    """Particles on a periodic 1-D domain decomposition.

    Parameters
    ----------
    nranks:
        Number of simulation processes (= domain slabs).
    particles_per_rank:
        Initial particles per rank.
    drift:
        RMS per-step displacement in units of slab widths; ~0.1 gives a
        few percent migration per step, like a magnetized plasma between
        dump intervals.
    """

    def __init__(
        self,
        nranks: int,
        particles_per_rank: int,
        drift: float = 0.1,
        seed: int = 0,
    ):
        if nranks < 2:
            raise ValueError("need at least 2 ranks")
        if particles_per_rank < 1:
            raise ValueError("need at least 1 particle per rank")
        if drift < 0:
            raise ValueError("drift must be non-negative")
        self.nranks = nranks
        self.drift = drift
        self._rng = np.random.default_rng(seed)
        n = nranks * particles_per_rank
        # Particle IDs are scrambled so key order carries no locality —
        # the "extreme entropy" the paper calls out (§I).
        from ..filters.hashing import splitmix64

        self.ids = splitmix64(np.arange(n, dtype=np.uint64))
        self.x = self._rng.uniform(0, nranks, size=n)
        self.v = self._rng.normal(0, drift, size=n)
        self.timestep = 0

    @property
    def nparticles(self) -> int:
        return self.ids.size

    def owner_of(self) -> np.ndarray:
        """Current owner rank of every particle."""
        return np.floor(self.x).astype(np.int64) % self.nranks

    def step(self, nsteps: int = 1) -> None:
        """Advance the simulation: drift + velocity scattering."""
        for _ in range(nsteps):
            self.v = 0.9 * self.v + self._rng.normal(0, self.drift, size=self.v.size)
            self.x = (self.x + self.v) % self.nranks
            self.timestep += 1

    def migration_fraction(self, owners_before: np.ndarray) -> float:
        """Fraction of particles that changed owner since ``owners_before``."""
        return float((self.owner_of() != owners_before).mean())

    def dump(self) -> list[KVBatch]:
        """Per-rank 64-byte particle dumps for the current timestep.

        Record layout: the value packs position, velocity, and a synthetic
        field/weight block to reach the paper's 64-byte particle size.
        """
        owners = self.owner_of()
        values = np.zeros((self.nparticles, PARTICLE_VALUE_BYTES), dtype=np.uint8)
        state = np.zeros((self.nparticles, 14), dtype="<f4")  # 56 bytes
        state[:, 0] = self.x
        state[:, 1] = self.v
        state[:, 2] = self.timestep
        # Synthetic per-particle field samples / weights: deterministic
        # functions of position so dumps are reproducible.
        for j in range(3, 14):
            state[:, j] = np.sin((j - 2) * self.x) * np.cos(j * self.v)
        values[:] = state.view(np.uint8).reshape(self.nparticles, PARTICLE_VALUE_BYTES)
        batches = []
        for rank in range(self.nranks):
            mask = owners == rank
            batches.append(KVBatch(self.ids[mask], values[mask]))
        return batches

    def find_particle(self, particle_id: int) -> int:
        """Index of a particle by ID (testing helper)."""
        hits = np.nonzero(self.ids == np.uint64(particle_id))[0]
        if hits.size == 0:
            raise KeyError(f"no particle {particle_id:#x}")
        return int(hits[0])


class VPICSimulation2D:
    """2-D domain decomposition: a ``px × py`` grid of rank domains.

    Magnetic-reconnection runs decompose the simulation box in two or
    three dimensions; particles near domain corners can migrate to any of
    eight neighbors between dumps, spreading a trajectory across output
    files even faster than the 1-D ring.  Rank layout is row-major:
    ``rank = iy * px + ix``.

    The dump format and record size are identical to `VPICSimulation`, so
    the two are drop-in interchangeable as SimCluster workloads.
    """

    def __init__(
        self,
        px: int,
        py: int,
        particles_per_rank: int,
        drift: float = 0.1,
        seed: int = 0,
    ):
        if px < 1 or py < 1 or px * py < 2:
            raise ValueError("grid must contain at least 2 ranks")
        if particles_per_rank < 1:
            raise ValueError("need at least 1 particle per rank")
        if drift < 0:
            raise ValueError("drift must be non-negative")
        self.px, self.py = px, py
        self.nranks = px * py
        self.drift = drift
        self._rng = np.random.default_rng(seed)
        n = self.nranks * particles_per_rank
        from ..filters.hashing import splitmix64

        self.ids = splitmix64(np.arange(n, dtype=np.uint64) + np.uint64(1 << 40))
        self.x = self._rng.uniform(0, px, size=n)
        self.y = self._rng.uniform(0, py, size=n)
        self.vx = self._rng.normal(0, drift, size=n)
        self.vy = self._rng.normal(0, drift, size=n)
        self.timestep = 0

    @property
    def nparticles(self) -> int:
        return self.ids.size

    def owner_of(self) -> np.ndarray:
        ix = np.floor(self.x).astype(np.int64) % self.px
        iy = np.floor(self.y).astype(np.int64) % self.py
        return iy * self.px + ix

    def step(self, nsteps: int = 1) -> None:
        """Drift + scattering in both dimensions, with a weak ExB-like
        rotation coupling vx and vy (particles gyrate, not just diffuse)."""
        for _ in range(nsteps):
            rot = 0.2
            vx = 0.9 * (self.vx - rot * self.vy) + self._rng.normal(0, self.drift, self.vx.size)
            vy = 0.9 * (self.vy + rot * self.vx) + self._rng.normal(0, self.drift, self.vy.size)
            self.vx, self.vy = vx, vy
            self.x = (self.x + self.vx) % self.px
            self.y = (self.y + self.vy) % self.py
            self.timestep += 1

    def migration_fraction(self, owners_before: np.ndarray) -> float:
        return float((self.owner_of() != owners_before).mean())

    def dump(self) -> list[KVBatch]:
        """Per-rank 64-byte particle dumps (same layout as the 1-D code)."""
        owners = self.owner_of()
        state = np.zeros((self.nparticles, 14), dtype="<f4")
        state[:, 0] = self.x
        state[:, 1] = self.y
        state[:, 2] = self.vx
        state[:, 3] = self.vy
        state[:, 4] = self.timestep
        for j in range(5, 14):
            state[:, j] = np.sin((j - 4) * self.x) * np.cos(j * self.y)
        values = state.view(np.uint8).reshape(self.nparticles, PARTICLE_VALUE_BYTES)
        return [
            KVBatch(self.ids[owners == rank], values[owners == rank])
            for rank in range(self.nranks)
        ]
