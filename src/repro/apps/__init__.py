"""Application workloads: reduced VPIC and synthetic KV generators."""

from .vpic import PARTICLE_BYTES, PARTICLE_VALUE_BYTES, VPICSimulation, VPICSimulation2D
from .workloads import microbench_stream, sequential_batches, uniform_batches, zipf_batches

__all__ = [
    "PARTICLE_BYTES",
    "PARTICLE_VALUE_BYTES",
    "VPICSimulation",
    "VPICSimulation2D",
    "microbench_stream",
    "sequential_batches",
    "uniform_batches",
    "zipf_batches",
]
