"""Shuffle collectives on the discrete-event engine.

`alltoallv` runs a complete personalized exchange — every process sends a
(possibly different) number of batches to every other process — through
per-process CPU resources and a shared-wire model.  It is the DES-grade
version of what `repro.net.flowmodel` computes in closed form, and the
integration suite uses it to validate the flow model at small scale.

It also powers latency-accurate small experiments the flow model cannot
express, e.g. skewed shuffles where one hot receiver serializes everyone
(`test_collectives.py::test_hot_receiver_skew`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cpu import CPUS, TRANSPORTS, CpuProfile, TransportProfile, rpc_cpu_time
from .des import Resource, Simulator

__all__ = ["AllToAllResult", "alltoallv"]


@dataclass(frozen=True)
class AllToAllResult:
    """Outcome of one DES shuffle."""

    elapsed: float
    total_bytes: int
    total_messages: int
    nprocs: int

    @property
    def pernode_bandwidth(self) -> float:
        """Achieved per-process shuffle bandwidth (bytes/s)."""
        return self.total_bytes / self.elapsed / self.nprocs if self.elapsed else 0.0


def alltoallv(
    send_matrix: np.ndarray,
    msg_bytes: int,
    cpu: str | CpuProfile = "haswell",
    transport: str | TransportProfile = "gni",
    blocking: bool = False,
    wire_bandwidth: float | None = None,
) -> AllToAllResult:
    """Simulate a personalized exchange of batched messages.

    Parameters
    ----------
    send_matrix:
        ``(P, P)`` array; entry ``[s, d]`` is how many ``msg_bytes``-sized
        batches process *s* sends to process *d* (diagonal ignored — local
        data never crosses the wire).
    wire_bandwidth:
        Optional shared-fabric byte rate; ``None`` models a CPU-bound
        exchange (the regime of the paper's Fig. 1d left half).
    """
    m = np.asarray(send_matrix, dtype=np.int64)
    if m.ndim != 2 or m.shape[0] != m.shape[1]:
        raise ValueError(f"send_matrix must be square, got {m.shape}")
    if (m < 0).any():
        raise ValueError("send_matrix entries must be non-negative")
    nprocs = m.shape[0]
    cpu_p = CPUS[cpu] if isinstance(cpu, str) else cpu
    tr_p = TRANSPORTS[transport] if isinstance(transport, str) else transport

    sim = Simulator()
    cores = [Resource(sim, 1) for _ in range(nprocs)]
    wire = Resource(sim, 1) if wire_bandwidth else None
    per_side = rpc_cpu_time(cpu_p, tr_p, msg_bytes, blocking)
    wire_time = msg_bytes / wire_bandwidth if wire_bandwidth else 0.0

    total_messages = 0

    def one_message(src: int, dst: int):
        yield cores[src].request()
        yield sim.timeout(per_side)  # send-side software
        cores[src].release()
        if wire is not None:
            yield wire.request()
            yield sim.timeout(wire_time)
            wire.release()
        yield cores[dst].request()
        yield sim.timeout(per_side)  # receive-side software
        cores[dst].release()

    for src in range(nprocs):
        for dst in range(nprocs):
            if src == dst:
                continue
            for _ in range(int(m[src, dst])):
                sim.spawn(one_message(src, dst))
                total_messages += 1

    sim.run()
    off_diag = int(m.sum() - np.trace(m))
    return AllToAllResult(
        elapsed=sim.now,
        total_bytes=off_diag * msg_bytes,
        total_messages=total_messages,
        nprocs=nprocs,
    )
