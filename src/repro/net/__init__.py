"""Network substrate: DES engine, CPU/transport profiles, topologies,
RPC latency model, and the analytic all-to-all flow model."""

from .collectives import AllToAllResult, alltoallv
from .cpu import CPUS, TRANSPORTS, CpuProfile, TransportProfile, rpc_cpu_time
from .des import Event, Process, Resource, SimulationError, Simulator
from .flowmodel import AllToAllModel, pernode_alltoall_bandwidth, transfer_time
from .rpc import RpcEndpoint, RpcLatencyResult, measure_rpc_latency, rpc_roundtrip
from .tracing import Span, Tracer
from .mpi_backend import HAVE_MPI, LoopbackTransport, make_transport
from .topology import ARIES_DRAGONFLY, NARWHAL_FATTREE, DragonflyTopology, FatTreeTopology

__all__ = [
    "AllToAllResult",
    "alltoallv",
    "CPUS",
    "TRANSPORTS",
    "CpuProfile",
    "TransportProfile",
    "rpc_cpu_time",
    "Event",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "AllToAllModel",
    "pernode_alltoall_bandwidth",
    "transfer_time",
    "RpcEndpoint",
    "RpcLatencyResult",
    "measure_rpc_latency",
    "rpc_roundtrip",
    "ARIES_DRAGONFLY",
    "NARWHAL_FATTREE",
    "DragonflyTopology",
    "FatTreeTopology",
    "Span",
    "Tracer",
    "HAVE_MPI",
    "LoopbackTransport",
    "make_transport",
]
