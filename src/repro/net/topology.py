"""Interconnect topologies and their all-to-all efficiency.

Two topology families cover the paper's testbeds:

* `FatTreeTopology` — CMU Narwhal's Ethernet fat tree with a 14:6
  oversubscription at the access layer and 24:20 at the distribution layer
  (paper §V-A).  All-to-all traffic that crosses a layer competes for the
  oversubscribed uplinks, so the effective per-node shuffle bandwidth
  *shrinks as the job grows* — the driving effect behind Fig. 8's steep
  base-format curve.
* `DragonflyTopology` — Trinity/Theta's Cray Aries network, modeled as a
  mildly tapering global bandwidth (adaptive routing keeps all-to-all
  efficiency high and nearly scale-independent at the paper's job sizes).

Both expose ``alltoall_efficiency(nnodes)``: the fraction of a node's NIC
bandwidth usable for all-to-all shuffle at that job size, plus an
``incast_factor`` capturing endpoint contention.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FatTreeTopology", "DragonflyTopology", "NARWHAL_FATTREE", "ARIES_DRAGONFLY"]


@dataclass(frozen=True)
class FatTreeTopology:
    """Two-layer oversubscribed tree.

    Attributes
    ----------
    nodes_per_edge:
        Hosts attached to one access (edge) switch.
    edges_per_pod:
        Access switches below one distribution switch.
    access_oversub / dist_oversub:
        Downlink:uplink capacity ratios (>1 means oversubscribed).
    incast_alpha:
        Endpoint-contention loss per doubling of the job's edge-switch
        span.  All-to-all over commodity Ethernet degrades sharply once a
        job spreads across many switches (receiver incast, buffer
        pressure); this calibrated constant reproduces the steep growth of
        the base format's write slowdown in Fig. 8.
    """

    name: str = "fat-tree"
    nodes_per_edge: int = 14
    edges_per_pod: int = 12
    access_oversub: float = 14.0 / 6.0
    dist_oversub: float = 24.0 / 20.0
    incast_alpha: float = 1.2

    def alltoall_efficiency(self, nnodes: int) -> float:
        """Usable fraction of NIC bandwidth for uniform all-to-all."""
        if nnodes <= 1:
            return 1.0
        # Fraction of a node's traffic leaving its edge switch / its pod.
        in_edge = min(self.nodes_per_edge, nnodes)
        cross_edge = (nnodes - in_edge) / (nnodes - 1)
        pod = self.nodes_per_edge * self.edges_per_pod
        in_pod = min(pod, nnodes)
        cross_pod = (nnodes - in_pod) / (nnodes - 1)
        # Bottleneck analysis: the uplink a flow crosses is shared by the
        # oversubscription factor of that layer.
        demand = 1.0 + cross_edge * (self.access_oversub - 1.0) + cross_pod * (
            self.dist_oversub - 1.0
        )
        span = max(1.0, nnodes / self.nodes_per_edge)
        incast = 1.0 + self.incast_alpha * math.log2(span)
        return 1.0 / (demand * incast)


@dataclass(frozen=True)
class DragonflyTopology:
    """Aries-class dragonfly: high, mildly tapering all-to-all efficiency."""

    name: str = "dragonfly"
    base_efficiency: float = 0.9
    taper_alpha: float = 0.01

    def alltoall_efficiency(self, nnodes: int) -> float:
        if nnodes <= 1:
            return 1.0
        eff = self.base_efficiency / (1.0 + self.taper_alpha * math.log2(nnodes))
        return max(0.1, eff)


# Narwhal: 14:6 access, 24:20 distribution oversubscription (paper §V-A).
NARWHAL_FATTREE = FatTreeTopology()

# Trinity / Theta Aries interconnect.
ARIES_DRAGONFLY = DragonflyTopology()
