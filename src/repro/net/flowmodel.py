"""Analytic flow model for bulk transfers (write phase, Fig. 1d bandwidth).

The big parameter sweeps (Figs. 8–10) move millions of batched RPCs; a
pure-Python DES cannot push that many events, and doesn't need to: what
determines the write phase is which *resource* saturates.  This module
computes per-node steady-state bandwidths from three candidate
bottlenecks, mirroring the paper's analysis:

1. **CPU** — each core sustains ``1 / (send_cost + recv_cost)`` messages
   per second, and in an all-to-all every sent message is matched by a
   received one;
2. **progress path** — a per-node message-rate ceiling that scales with
   single-thread speed (one interrupt queue / polling thread, paper §I);
3. **wire** — NIC bandwidth derated by the topology's all-to-all
   efficiency at that job size.

The DES in `repro.net.rpc` cross-validates this model at small scale
(see tests/net/test_flow_vs_des.py).
"""

from __future__ import annotations

from dataclasses import dataclass

from .cpu import CPUS, TRANSPORTS, CpuProfile, TransportProfile, rpc_cpu_time
from .topology import DragonflyTopology, FatTreeTopology

__all__ = ["AllToAllModel", "pernode_alltoall_bandwidth", "transfer_time"]

Topology = FatTreeTopology | DragonflyTopology


@dataclass(frozen=True)
class AllToAllModel:
    """Per-node bandwidth breakdown for an all-to-all exchange (bytes/s)."""

    cpu_limit: float
    progress_limit: float
    wire_limit: float

    @property
    def bandwidth(self) -> float:
        return min(self.cpu_limit, self.progress_limit, self.wire_limit)

    @property
    def bottleneck(self) -> str:
        b = self.bandwidth
        if b == self.wire_limit:
            return "wire"
        if b == self.progress_limit:
            return "progress"
        return "cpu"


def pernode_alltoall_bandwidth(
    cpu: str | CpuProfile,
    transport: str | TransportProfile,
    topology: Topology,
    nnodes: int,
    ppn: int,
    msg_bytes: int,
    blocking: bool = False,
) -> AllToAllModel:
    """Steady-state per-node shuffle bandwidth during uniform all-to-all.

    Reproduces Fig. 1d's structure: bandwidth rises with PPN while CPU-bound,
    then plateaus at whichever of the progress-path or wire limits is lower
    — ~3× lower on KNL than Haswell because the progress ceiling scales
    with single-thread speed.
    """
    cpu_p = CPUS[cpu] if isinstance(cpu, str) else cpu
    tr_p = TRANSPORTS[transport] if isinstance(transport, str) else transport
    if nnodes < 1 or ppn < 1:
        raise ValueError("nnodes and ppn must be >= 1")
    if msg_bytes <= 0:
        raise ValueError("msg_bytes must be positive")

    per_msg_cpu = 2 * rpc_cpu_time(cpu_p, tr_p, msg_bytes, blocking)  # send + recv
    active_cores = min(ppn, cpu_p.cores_per_node)
    cpu_limit = active_cores * msg_bytes / per_msg_cpu

    # The progress-path ceiling is a software message rate, so a heavier
    # transport stack (TCP's kernel path) lowers it proportionally.
    stack_factor = 1.0 + tr_p.sw_overhead_us / cpu_p.rpc_base_us
    progress_limit = (cpu_p.progress_msgs_per_s / cpu_p.slowdown / stack_factor) * msg_bytes

    wire = tr_p.link_bandwidth_gbps * 1e9 / 8
    wire_limit = wire * topology.alltoall_efficiency(nnodes)

    return AllToAllModel(cpu_limit, progress_limit, wire_limit)


def transfer_time(nbytes: float, bandwidth: float) -> float:
    """Seconds to move ``nbytes`` at ``bandwidth`` bytes/s."""
    if bandwidth <= 0:
        raise ValueError("bandwidth must be positive")
    return nbytes / bandwidth
