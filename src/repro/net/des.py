"""A small discrete-event simulation engine (generator coroutines).

The RPC microbenchmarks (paper Fig. 1) are reproduced by *simulating* the
message exchange rather than timing real sockets: per-message CPU costs,
wire latency, serialization and context switches are charged explicitly.
This module provides the event loop those simulations run on.

Processes are Python generators that ``yield`` the thing they wait for:

* ``sim.timeout(dt)`` — resume after ``dt`` simulated seconds;
* an `Event` — resume when somebody calls ``event.succeed(value)``;
* another `Process` — resume when it finishes (join), receiving its
  return value;
* a `Resource.request()` — resume once the resource is acquired.

Example::

    sim = Simulator()

    def pinger(sim, link):
        yield sim.timeout(1.0)
        link.succeed("ping @ %.1f" % sim.now)

    link = Event(sim)
    sim.spawn(pinger(sim, link))
    sim.run()
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

__all__ = ["Simulator", "Event", "Process", "Resource", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for illegal simulator operations (double-fire, bad yields)."""


class Event:
    """A one-shot occurrence processes can wait on."""

    __slots__ = ("sim", "_value", "_fired", "_waiters")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._value: Any = None
        self._fired = False
        self._waiters: list[Process] = []

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Fire the event, waking every waiter at the current time."""
        if self._fired:
            raise SimulationError("event already fired")
        self._fired = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            self.sim._schedule(0.0, proc._advance, value)
        return self

    def _add_waiter(self, proc: "Process") -> None:
        if self._fired:
            self.sim._schedule(0.0, proc._advance, self._value)
        else:
            self._waiters.append(proc)


class Process(Event):
    """A running coroutine; also an Event that fires when it returns."""

    __slots__ = ("_gen", "name")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "proc"):
        super().__init__(sim)
        if not isinstance(gen, Generator):
            raise SimulationError(f"spawn() needs a generator, got {type(gen).__name__}")
        self._gen = gen
        self.name = name

    def _advance(self, sent: Any = None) -> None:
        try:
            target = self._gen.send(sent)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        if isinstance(target, Event):
            target._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "yield an Event, Process, or sim.timeout(...)"
            )


class Resource:
    """A counted resource (e.g. a CPU core or NIC DMA engine).

    ``request()`` returns an Event that fires when a unit is granted;
    ``release()`` hands the unit to the next waiter (FIFO).
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._queue: list[Event] = []

    def request(self) -> Event:
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed()
        else:
            self._queue.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._queue:
            self._queue.pop(0).succeed()
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._queue)


class Simulator:
    """Event loop with a virtual clock."""

    def __init__(self):
        self._now = 0.0
        self._seq = 0
        self._heap: list[tuple[float, int, Callable, tuple]] = []

    @property
    def now(self) -> float:
        return self._now

    def _schedule(self, delay: float, fn: Callable, *args: Any) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, (self._now + delay, self._seq, fn, args))

    def timeout(self, delay: float) -> Event:
        """An event that fires ``delay`` simulated seconds from now."""
        ev = Event(self)
        self._schedule(delay, ev.succeed)
        return ev

    def event(self) -> Event:
        return Event(self)

    def spawn(self, gen: Generator, name: str = "proc") -> Process:
        """Start a coroutine process immediately (at the current time)."""
        proc = Process(self, gen, name=name)
        self._schedule(0.0, proc._advance, None)
        return proc

    def run(self, until: float | None = None) -> float:
        """Drain events; returns the final clock value.

        With ``until``, stops once the next event lies beyond it and leaves
        that event queued (the clock advances to exactly ``until``).
        """
        while self._heap:
            t, _, fn, args = self._heap[0]
            if until is not None and t > until:
                self._now = until
                return self._now
            heapq.heappop(self._heap)
            self._now = t
            fn(*args)
        if until is not None:
            self._now = max(self._now, until)
        return self._now

    def run_all(self, procs: Iterable[Generator]) -> list[Any]:
        """Spawn all generators, run to completion, return their results."""
        handles = [self.spawn(g, name=f"proc{i}") for i, g in enumerate(procs)]
        self.run()
        unfinished = [h.name for h in handles if not h.fired]
        if unfinished:
            raise SimulationError(f"deadlock: processes never finished: {unfinished}")
        return [h.value for h in handles]
