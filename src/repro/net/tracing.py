"""Execution tracing for the discrete-event simulator.

A `Tracer` records spans — named intervals attributed to a resource — so a
DES experiment can report what the paper's §II instruments on hardware:
how busy each core's progress path was, where time went, and a rendered
timeline for small runs.  Used by the RPC microbenchmarks when digging
into *why* a configuration is slow rather than just how slow it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .des import Simulator

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One traced interval."""

    resource: str
    label: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects spans against a simulator's clock."""

    sim: Simulator
    spans: list[Span] = field(default_factory=list)

    def record(self, resource: str, label: str, start: float, end: float | None = None) -> None:
        end = self.sim.now if end is None else end
        if end < start:
            raise ValueError(f"span ends before it starts: {start} > {end}")
        self.spans.append(Span(resource, label, start, end))

    def span(self, resource: str, label: str):
        """Context manager: trace the enclosed simulated interval."""
        tracer = self

        class _Span:
            def __enter__(inner):
                inner.start = tracer.sim.now
                return inner

            def __exit__(inner, *exc):
                tracer.record(resource, label, inner.start)

        return _Span()

    # -- analysis -----------------------------------------------------------

    def busy_time(self, resource: str) -> float:
        """Total traced time on one resource (spans assumed non-overlapping,
        which holds for unit-capacity resources)."""
        return sum(s.duration for s in self.spans if s.resource == resource)

    def utilization(self, resource: str, horizon: float | None = None) -> float:
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time(resource) / horizon)

    def by_label(self) -> dict[str, float]:
        """Total time per span label across all resources."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.label] = out.get(s.label, 0.0) + s.duration
        return out

    def timeline(self, width: int = 64, resources: list[str] | None = None) -> str:
        """ASCII Gantt of the trace (small runs only)."""
        if not self.spans:
            return "(empty trace)"
        horizon = max(s.end for s in self.spans) or 1.0
        names = resources or sorted({s.resource for s in self.spans})
        lw = max(len(n) for n in names)
        lines = []
        for name in names:
            row = [" "] * width
            for s in self.spans:
                if s.resource != name:
                    continue
                a = int(s.start / horizon * (width - 1))
                b = max(a + 1, int(s.end / horizon * (width - 1)) + 1)
                mark = s.label[0] if s.label else "#"
                for i in range(a, min(b, width)):
                    row[i] = mark
            lines.append(f"{name:>{lw}} |{''.join(row)}|")
        lines.append(f"{'':>{lw}}  0{' ' * (width - len(f'{horizon:.3g}') - 1)}{horizon:.3g}s")
        return "\n".join(lines)
