"""Execution tracing for the discrete-event simulator.

A `Tracer` records spans — named intervals attributed to a resource — so a
DES experiment can report what the paper's §II instruments on hardware:
how busy each core's progress path was, where time went, and a rendered
timeline for small runs.  Used by the RPC microbenchmarks when digging
into *why* a configuration is slow rather than just how slow it is.

Tracing shares the telemetry layer's export path twice over: give the
tracer a `MetricsRegistry` and every span is mirrored into a
``trace.span_seconds`` histogram (labeled by resource, span label, and
outcome), so DES timelines land in the same JSON document as the
pipeline/storage counters; and `to_spans` converts the whole timeline to
the request-tracing layer's `SpanRecord`s, so one DES run exports to the
same ``repro.trace/v1`` JSONL and Chrome ``trace_event`` formats as a
traced serving request (`export_jsonl` / `chrome_trace`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

from ..obs import MetricsRegistry, SpanRecord, active
from ..obs import chrome_trace as _chrome_trace
from ..obs import dump_trace_jsonl
from .des import Simulator

__all__ = ["Span", "Tracer"]


@dataclass(frozen=True)
class Span:
    """One traced interval."""

    resource: str
    label: str
    start: float
    end: float
    error: bool = False

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Tracer:
    """Collects spans against a simulator's clock."""

    sim: Simulator
    spans: list[Span] = field(default_factory=list)
    metrics: MetricsRegistry | None = None

    def __post_init__(self):
        self.metrics = active(self.metrics)

    def record(
        self,
        resource: str,
        label: str,
        start: float,
        end: float | None = None,
        error: bool = False,
    ) -> None:
        end = self.sim.now if end is None else end
        if end < start:
            raise ValueError(f"span ends before it starts: {start} > {end}")
        self.spans.append(Span(resource, label, start, end, error=error))
        self.metrics.histogram(
            "trace.span_seconds",
            resource=resource,
            label=label,
            outcome="error" if error else "ok",
        ).observe(end - start)

    @contextmanager
    def span(self, resource: str, label: str):
        """Context manager: trace the enclosed simulated interval.

        The interval is recorded even when the body raises — the span is
        tagged ``error`` instead of being silently dropped.
        """
        start = self.sim.now
        try:
            yield
        except BaseException:
            self.record(resource, label, start, error=True)
            raise
        self.record(resource, label, start)

    # -- unification with request tracing -----------------------------------

    def to_spans(self, trace_id: str = "des") -> list[SpanRecord]:
        """The timeline as request-tracing `SpanRecord`s.

        Every DES span becomes a root span (simulated work has no caller
        chain) named ``resource.label``, with the resource and label kept
        as attrs.  Ids are deterministic — position in the timeline — so
        repeated exports of the same run are byte-identical.
        """
        return [
            SpanRecord(
                trace_id=trace_id,
                span_id=f"{trace_id}-{i:06d}",
                parent_id=None,
                name=f"{s.resource}.{s.label}" if s.label else s.resource,
                start=s.start,
                end=s.end,
                status="error" if s.error else "ok",
                attrs={"resource": s.resource, "label": s.label},
            )
            for i, s in enumerate(self.spans)
        ]

    def export_jsonl(self, trace_id: str = "des") -> str:
        """The timeline as ``repro.trace/v1`` JSONL."""
        return dump_trace_jsonl(self.to_spans(trace_id))

    def chrome_trace(self, trace_id: str = "des") -> dict:
        """The timeline as a Chrome/Perfetto ``trace_event`` document."""
        return _chrome_trace(self.to_spans(trace_id))

    # -- analysis -----------------------------------------------------------

    def busy_time(self, resource: str) -> float:
        """Total traced time on one resource (spans assumed non-overlapping,
        which holds for unit-capacity resources)."""
        return sum(s.duration for s in self.spans if s.resource == resource)

    def utilization(self, resource: str, horizon: float | None = None) -> float:
        horizon = self.sim.now if horizon is None else horizon
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time(resource) / horizon)

    def by_label(self) -> dict[str, float]:
        """Total time per span label across all resources."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.label] = out.get(s.label, 0.0) + s.duration
        return out

    def timeline(self, width: int = 64, resources: list[str] | None = None) -> str:
        """ASCII Gantt of the trace (small runs only)."""
        if not self.spans:
            return "(empty trace)"
        horizon = max(s.end for s in self.spans) or 1.0
        names = resources or sorted({s.resource for s in self.spans})
        lw = max(len(n) for n in names)
        lines = []
        for name in names:
            row = [" "] * width
            for s in self.spans:
                if s.resource != name:
                    continue
                a = int(s.start / horizon * (width - 1))
                b = max(a + 1, int(s.end / horizon * (width - 1)) + 1)
                mark = s.label[0] if s.label else "#"
                for i in range(a, min(b, width)):
                    row[i] = mark
            lines.append(f"{name:>{lw}} |{''.join(row)}|")
        lines.append(f"{'':>{lw}}  0{' ' * (width - len(f'{horizon:.3g}') - 1)}{horizon:.3g}s")
        return "\n".join(lines)
