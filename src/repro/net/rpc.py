"""RPC cost model on the DES: latency and message exchange (paper Fig. 1).

An RPC round trip is decomposed the way the paper's Mercury benchmark
behaves:

1. client CPU issues the request (serialization, tag matching, doorbell);
2. the wire carries ``nbytes`` (payloads beyond the transport's eager
   limit pay an extra rendezvous round trip, like GNI bulk transfers);
3. server CPU receives and handles it — in *blocking* mode this includes
   the context switches of being woken up (paper Fig. 1c), in *polling*
   mode the progress thread is already spinning;
4. a small response travels back and the client completes it.

Every CPU stage is charged through `rpc_cpu_time`, so single-thread
``slowdown`` is the lever that separates Haswell from KNL — the paper's
central observation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .cpu import CPUS, TRANSPORTS, CpuProfile, TransportProfile, rpc_cpu_time
from .des import Resource, Simulator

__all__ = ["RpcEndpoint", "rpc_roundtrip", "measure_rpc_latency", "RpcLatencyResult"]

_RESPONSE_BYTES = 32  # tiny ack payload


class RpcEndpoint:
    """One process's RPC stack: a CPU progress path modeled as a resource."""

    def __init__(
        self,
        sim: Simulator,
        cpu: CpuProfile,
        transport: TransportProfile,
        mode: str = "polling",
    ):
        if mode not in ("polling", "blocking"):
            raise ValueError(f"mode must be 'polling' or 'blocking', got {mode!r}")
        self.sim = sim
        self.cpu = cpu
        self.transport = transport
        self.mode = mode
        self.core = Resource(sim, capacity=1)
        self.messages_handled = 0

    @property
    def blocking(self) -> bool:
        return self.mode == "blocking"

    def busy(self, nbytes: int, handling: bool = True):
        """Coroutine: occupy the progress core for one message's CPU work."""
        yield self.core.request()
        try:
            dt = rpc_cpu_time(self.cpu, self.transport, nbytes, self.blocking and handling)
            yield self.sim.timeout(dt)
            self.messages_handled += 1
        finally:
            self.core.release()


def _wire_time(transport: TransportProfile, nbytes: int) -> float:
    bw = transport.link_bandwidth_gbps * 1e9 / 8
    return transport.wire_latency_us * 1e-6 + nbytes / bw


def rpc_roundtrip(sim: Simulator, client: RpcEndpoint, server: RpcEndpoint, nbytes: int):
    """Coroutine: one request/response exchange; returns its latency (s)."""
    if nbytes < 0:
        raise ValueError("nbytes must be non-negative")
    t0 = sim.now
    transport = client.transport
    if nbytes > transport.max_eager_bytes:
        # Rendezvous/bulk handshake: an extra small round trip before the
        # payload flows (GNI requires bulk transfers past 16 KB, §II).
        yield sim.spawn(client.busy(0, handling=False))
        yield sim.timeout(_wire_time(transport, _RESPONSE_BYTES))
        yield sim.spawn(server.busy(0))
        yield sim.timeout(_wire_time(transport, _RESPONSE_BYTES))
    yield sim.spawn(client.busy(nbytes, handling=False))  # send side
    yield sim.timeout(_wire_time(transport, nbytes))  # request on the wire
    yield sim.spawn(server.busy(nbytes))  # receive + handle
    yield sim.timeout(_wire_time(transport, _RESPONSE_BYTES))  # response
    yield sim.spawn(client.busy(_RESPONSE_BYTES))  # completion
    return sim.now - t0


@dataclass(frozen=True)
class RpcLatencyResult:
    """Latency statistics from `measure_rpc_latency` (microseconds)."""

    cpu: str
    transport: str
    mode: str
    msg_bytes: int
    mean_us: float
    nmessages: int


def measure_rpc_latency(
    cpu: str | CpuProfile,
    transport: str | TransportProfile = "gni",
    msg_bytes: int = 8,
    mode: str = "polling",
    nmessages: int = 64,
) -> RpcLatencyResult:
    """Simulate a sender/receiver pair on two nodes (paper Fig. 1a–c setup).

    Messages are issued back to back; the mean round-trip latency is
    reported in microseconds.
    """
    cpu_p = CPUS[cpu] if isinstance(cpu, str) else cpu
    tr_p = TRANSPORTS[transport] if isinstance(transport, str) else transport
    sim = Simulator()
    client = RpcEndpoint(sim, cpu_p, tr_p, mode)
    server = RpcEndpoint(sim, cpu_p, tr_p, mode)

    latencies: list[float] = []

    def driver():
        for _ in range(nmessages):
            lat = yield sim.spawn(rpc_roundtrip(sim, client, server, msg_bytes))
            latencies.append(lat)

    sim.spawn(driver())
    sim.run()
    return RpcLatencyResult(
        cpu=cpu_p.name,
        transport=tr_p.name,
        mode=mode,
        msg_bytes=msg_bytes,
        mean_us=float(np.mean(latencies) * 1e6),
        nmessages=nmessages,
    )
