"""CPU and transport profiles that drive the RPC cost model.

The paper's motivation (§II, Fig. 1) is that RPC cost is a function of
*single-thread* CPU performance, not NIC speed: request handling, tag
matching, context switches and system calls all serialize on one core.
Manycore KNL parts run these paths ~4× slower than Haswell, and blocking
(interrupt-driven) progress adds context switches that cost ~6× more on
KNL.

Profiles below are calibrated against the paper's Fig. 1 endpoints (see
EXPERIMENTS.md for the table of calibrated constants):

* Haswell polling RPC latency ≈ 15 µs for small messages;
* KNL ≈ 4× Haswell latency (Fig. 1a), blocking mode far worse (Fig. 1c);
* per-node all-to-all RPC bandwidth at 16 KB messages ≈ 3× lower on KNL
  (Fig. 1d), despite KNL nodes having 2× the cores.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuProfile", "TransportProfile", "CPUS", "TRANSPORTS", "rpc_cpu_time"]


@dataclass(frozen=True)
class CpuProfile:
    """Single-thread cost envelope of one processor type.

    Attributes
    ----------
    slowdown:
        Single-thread slowdown relative to Haswell (Haswell = 1.0).
    cores_per_node:
        Physical cores exposed to the application.
    rpc_base_us:
        CPU time to issue/handle one RPC (serialization, tag matching,
        doorbell) on Haswell-speed hardware, microseconds.
    rpc_per_kb_us:
        Additional CPU time per KiB of payload touched (checksum, copy).
    context_switch_us:
        One context switch / interrupt wakeup at Haswell speed.
    progress_msgs_per_s:
        Per-node message-rate ceiling of the NIC progress path at Haswell
        speed.  The paper observes that NICs expose a single interrupt
        queue and library code "can only poll as fast as the cores will
        let it" (§I) — so this ceiling divides by ``slowdown``, which is
        why KNL nodes plateau ~3× below Haswell in Fig. 1d despite having
        more cores.
    """

    name: str
    slowdown: float
    cores_per_node: int
    rpc_base_us: float = 15.0
    rpc_per_kb_us: float = 1.5
    context_switch_us: float = 3.0
    progress_msgs_per_s: float = 150_000.0

    def __post_init__(self):
        if self.slowdown <= 0:
            raise ValueError("slowdown must be positive")
        if self.cores_per_node <= 0:
            raise ValueError("cores_per_node must be positive")


@dataclass(frozen=True)
class TransportProfile:
    """Wire-level properties of a network transport stack.

    ``sw_overhead_us`` is the extra per-message software cost of the stack
    (TCP's kernel path vs GNI's user-level path), charged at the CPU's
    single-thread speed like every other software cost.
    """

    name: str
    wire_latency_us: float
    link_bandwidth_gbps: float
    sw_overhead_us: float = 0.0
    max_eager_bytes: int = 16384  # largest payload without a bulk handshake

    def __post_init__(self):
        if self.link_bandwidth_gbps <= 0:
            raise ValueError("link bandwidth must be positive")


def rpc_cpu_time(cpu: CpuProfile, transport: TransportProfile, nbytes: int, blocking: bool) -> float:
    """Seconds of single-thread CPU consumed by one RPC endpoint.

    Polling endpoints spin, paying only the software path; blocking
    endpoints sleep and pay two context switches (wakeup + reschedule) per
    message — the effect Fig. 1c isolates.
    """
    us = cpu.rpc_base_us + transport.sw_overhead_us + cpu.rpc_per_kb_us * (nbytes / 1024)
    if blocking:
        us += 2 * cpu.context_switch_us
    return us * cpu.slowdown * 1e-6


# Calibrated processor inventory (paper §II / §V-B).
CPUS: dict[str, CpuProfile] = {
    "haswell": CpuProfile("haswell", slowdown=1.0, cores_per_node=32),
    # Trinity KNL: 1.4 GHz Xeon Phi, 68 cores; ~4x single-thread gap (Fig. 1a).
    "trinity-knl": CpuProfile("trinity-knl", slowdown=4.0, cores_per_node=68),
    # Theta KNL: 1.3 GHz, slightly slower clocks than Trinity's part.
    "theta-knl": CpuProfile("theta-knl", slowdown=4.3, cores_per_node=64),
    # CMU Narwhal: old Opteron-class nodes, 4 cores (paper §V-A).
    "narwhal": CpuProfile("narwhal", slowdown=1.5, cores_per_node=4),
}

TRANSPORTS: dict[str, TransportProfile] = {
    # Cray Aries user-level transport: 16 KB is the largest eager payload
    # GNI supports without bulk transfers (paper §II).
    "gni": TransportProfile("gni", wire_latency_us=1.3, link_bandwidth_gbps=80.0),
    # Kernel TCP over the same wire: more software per message.
    "tcp": TransportProfile(
        "tcp", wire_latency_us=15.0, link_bandwidth_gbps=80.0, sw_overhead_us=18.0
    ),
    # Narwhal's 1000 Mbps Ethernet NIC (paper §V-A).
    "ethernet-1g": TransportProfile(
        "ethernet-1g", wire_latency_us=50.0, link_bandwidth_gbps=1.0, sw_overhead_us=18.0
    ),
}
