"""Optional mpi4py transport: run the pipelines as a real parallel job.

`SimCluster` executes every rank in one process, which is what an offline
workstation supports.  On a machine with ``mpi4py`` + an MPI runtime, the
same `WriterState`/`ReceiverState` pipelines can run as an actual SPMD
job: this module provides the envelope transport.

* `MpiTransport` — nonblocking mpi4py sends of packed envelopes
  (buffer-based ``Isend``/``Probe``/``Recv``, per the mpi4py guidance of
  preferring buffer-provider objects for bulk data);
* `LoopbackTransport` — the no-MPI fallback: all ranks in one process,
  queues in memory, identical call surface;
* `make_transport()` — picks whichever is available.

`examples/mpi_partition.py` is the runnable entry point::

    mpiexec -n 8 python examples/mpi_partition.py   # real MPI
    python examples/mpi_partition.py                # loopback fallback
"""

from __future__ import annotations

import struct
from collections import deque
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..core.pipeline import Envelope

__all__ = [
    "HAVE_MPI",
    "LoopbackTransport",
    "MpiTransport",
    "make_transport",
    "pack_envelope",
    "unpack_envelope",
]

try:  # pragma: no cover - exercised only where mpi4py exists
    from mpi4py import MPI as _MPI

    HAVE_MPI = True
except ImportError:
    _MPI = None
    HAVE_MPI = False

_HDR = struct.Struct("<IIQ")  # src, dest, nrecords
_TAG_DATA = 0x5F
_TAG_DONE = 0x60


def pack_envelope(env: "Envelope") -> bytes:
    return _HDR.pack(env.src, env.dest, env.nrecords) + env.payload


def unpack_envelope(blob: bytes) -> "Envelope":
    from ..core.pipeline import Envelope  # local: avoid a package cycle

    if len(blob) < _HDR.size:
        raise ValueError(f"envelope too short: {len(blob)} bytes")
    src, dest, nrecords = _HDR.unpack(blob[: _HDR.size])
    return Envelope(src, dest, blob[_HDR.size :], int(nrecords))


class LoopbackTransport:
    """All ranks in one process: per-rank FIFO queues.

    Mirrors the MPI transport's surface so driver code is identical; the
    *caller* iterates ranks (SPMD emulation), whereas under MPI each
    process owns exactly one rank.
    """

    def __init__(self, nranks: int):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.size = nranks
        self._queues: list[deque[bytes]] = [deque() for _ in range(nranks)]
        self.sent = 0
        self.received = 0

    def send(self, env: Envelope) -> None:
        if not 0 <= env.dest < self.size:
            raise ValueError(f"destination {env.dest} out of range")
        self._queues[env.dest].append(pack_envelope(env))
        self.sent += 1

    def poll(self, rank: int) -> list[Envelope]:
        """Drain everything queued for ``rank``."""
        out = []
        q = self._queues[rank]
        while q:
            out.append(unpack_envelope(q.popleft()))
        self.received += len(out)
        return out

    def barrier(self) -> None:  # single process: nothing to synchronize
        pass

    @property
    def pending(self) -> int:
        return sum(len(q) for q in self._queues)


class MpiTransport:  # pragma: no cover - needs a real MPI runtime
    """mpi4py-backed envelope transport (one rank per process)."""

    def __init__(self, comm=None):
        if not HAVE_MPI:
            raise RuntimeError("mpi4py is not available; use LoopbackTransport")
        self.comm = comm if comm is not None else _MPI.COMM_WORLD
        self.rank = self.comm.Get_rank()
        self.size = self.comm.Get_size()
        self._inflight: list = []
        self.sent = 0
        self.received = 0

    def send(self, env: Envelope) -> None:
        blob = pack_envelope(env)
        req = self.comm.Isend([blob, _MPI.BYTE], dest=env.dest, tag=_TAG_DATA)
        self._inflight.append((req, blob))  # keep the buffer alive
        self.sent += 1

    def poll(self, rank: int | None = None) -> list[Envelope]:
        out = []
        status = _MPI.Status()
        while self.comm.Iprobe(source=_MPI.ANY_SOURCE, tag=_TAG_DATA, status=status):
            nbytes = status.Get_count(_MPI.BYTE)
            buf = bytearray(nbytes)
            self.comm.Recv([buf, _MPI.BYTE], source=status.Get_source(), tag=_TAG_DATA)
            out.append(unpack_envelope(bytes(buf)))
        self.received += len(out)
        self._inflight = [(r, b) for r, b in self._inflight if not r.Test()]
        return out

    def barrier(self) -> None:
        for req, _ in self._inflight:
            req.Wait()
        self._inflight.clear()
        self.comm.Barrier()


def make_transport(nranks: int | None = None):
    """MPI transport when running under ``mpiexec``; loopback otherwise."""
    if HAVE_MPI and _MPI.COMM_WORLD.Get_size() > 1:
        return MpiTransport()
    return LoopbackTransport(nranks or 1)
