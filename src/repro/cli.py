"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``     — package, module, and machine inventory;
* ``compare``  — run all three formats on a simulated cluster and print
  the measured network/storage/message costs (``--metrics-out FILE``
  additionally captures every telemetry series as JSON);
* ``metrics``  — run an instrumented simulation and emit the full
  metrics registry as JSON or JSONL;
* ``advise``   — recommend a format for a deployment (machine, job size,
  KV size, read weight);
* ``recover``  — crash-consistency demo: write epochs under fault
  injection, crash mid-epoch, recover, verify what survived;
* ``compact``  — read-amplification demo: write overlapping epochs,
  measure per-query device reads, compact, verify byte-equality and
  re-measure;
* ``serve``    — build a synthetic dataset and serve point queries over
  the sealed-frame TCP protocol (``repro.serve``);
* ``loadgen``  — drive a serving tier with Zipfian/uniform load and
  print client-observed QPS, latency quantiles, and shed counts;
  ``--trace-sample`` traces a fraction of requests end-to-end and
  ``--trace-out``/``--chrome-trace-out`` export the slowest span trees;
* ``top``      — live dashboard against a running ``repro serve``:
  trailing-window QPS, per-status rates, latency quantiles, and the
  most recent sampled request traces; ``--fleet`` renders the router
  dashboard (per-shard breakers, staleness, aux memory) against a
  ``repro fleet --serve`` front end;
* ``fleet``    — sharded serving demo (``repro.fleet``): build an
  N-shard fleet with R-way replication, drive it through the
  aux-routing router, kill a shard under load, verify byte-correct
  answers through failover, recover, and re-verify; ``--serve`` mounts
  the router behind the TCP front end instead;
* ``table1``   — print the paper's Table I from the Bloom math;
* ``machines`` — list the built-in machine models.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="FilterKV: compact filters for fast online data partitioning "
        "(CLUSTER'19 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and experiment inventory")
    sub.add_parser("machines", help="list machine models")
    sub.add_parser("table1", help="print Table I (Bloom bytes/key bounds)")

    c = sub.add_parser("compare", help="run the three formats on a simulated cluster")
    c.add_argument("--ranks", type=int, default=8)
    c.add_argument("--records", type=int, default=10_000, help="records per rank")
    c.add_argument("--value-bytes", type=int, default=56)
    c.add_argument("--seed", type=int, default=0)
    c.add_argument(
        "--metrics-out",
        metavar="FILE",
        default=None,
        help="also write every telemetry series (all layers, all formats) as JSON",
    )
    c.add_argument(
        "--queries",
        type=int,
        default=256,
        help="point queries sampled per format for read-path metrics "
        "(only with --metrics-out)",
    )
    c.add_argument(
        "--aux-backend",
        default=None,
        help="filterkv aux backend: a registered backend name (exact, bloom, "
        "cuckoo, quotient, xor, csf, rankxor) or 'auto' for the flush-time "
        "backend tournament (default: the format's static choice, cuckoo)",
    )

    m = sub.add_parser("metrics", help="run an instrumented simulation, emit telemetry")
    m.add_argument(
        "--format",
        dest="fmt",
        choices=["base", "dataptr", "filterkv", "all"],
        default="all",
    )
    m.add_argument("--ranks", type=int, default=4)
    m.add_argument("--records", type=int, default=5_000, help="records per rank")
    m.add_argument("--value-bytes", type=int, default=56)
    m.add_argument("--seed", type=int, default=0)
    m.add_argument("--queries", type=int, default=256, help="point queries to sample")
    m.add_argument("--out", metavar="FILE", default="-", help="output file ('-' = stdout)")
    m.add_argument(
        "--jsonl", action="store_true", help="one series per line instead of a document"
    )

    r = sub.add_parser(
        "recover",
        help="demonstrate crash recovery: write epochs, crash, recover, verify",
    )
    r.add_argument("--ranks", type=int, default=4)
    r.add_argument("--records", type=int, default=2_000, help="records per rank per epoch")
    r.add_argument("--epochs", type=int, default=3)
    r.add_argument("--value-bytes", type=int, default=24)
    r.add_argument("--seed", type=int, default=0)
    r.add_argument(
        "--crash-op",
        type=int,
        default=10,
        help="crash this many device operations into the final epoch",
    )
    r.add_argument(
        "--format",
        dest="fmt",
        choices=["base", "dataptr", "filterkv"],
        default="filterkv",
    )
    r.add_argument(
        "--corrupt",
        action="store_true",
        help="also flip a stored byte in a committed epoch before recovering",
    )
    r.add_argument(
        "--deep", action="store_true", help="verify data-block checksums during recovery"
    )

    c2 = sub.add_parser(
        "compact",
        help="demonstrate epoch compaction: write epochs, compact, verify, re-measure",
    )
    c2.add_argument("--ranks", type=int, default=4)
    c2.add_argument("--records", type=int, default=2_000, help="records per rank per epoch")
    c2.add_argument("--epochs", type=int, default=6)
    c2.add_argument("--value-bytes", type=int, default=24)
    c2.add_argument("--seed", type=int, default=0)
    c2.add_argument(
        "--format",
        dest="fmt",
        choices=["base", "dataptr", "filterkv"],
        default="filterkv",
    )
    c2.add_argument(
        "--overlap",
        type=float,
        default=0.25,
        help="fraction of each epoch's keys rewritten from the previous epoch",
    )
    c2.add_argument(
        "--probes", type=int, default=256, help="keys sampled for the before/after measurement"
    )

    def _dataset_args(sp, ranks=8, records=2_000):
        sp.add_argument("--ranks", type=int, default=ranks)
        sp.add_argument("--records", type=int, default=records, help="records per rank")
        sp.add_argument("--epochs", type=int, default=1)
        sp.add_argument("--value-bytes", type=int, default=24)
        sp.add_argument("--seed", type=int, default=0)

    s = sub.add_parser("serve", help="serve point queries over TCP (repro.serve)")
    s.add_argument(
        "--format", dest="fmt", choices=["base", "dataptr", "filterkv"], default="filterkv"
    )
    _dataset_args(s)
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=0, help="0 = let the OS pick")
    s.add_argument("--max-batch", type=int, default=64)
    s.add_argument("--max-inflight", type=int, default=1024)
    s.add_argument("--queue-high-watermark", type=int, default=512)
    s.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="server-side trace sampling rate in [0,1] (client-sampled "
        "requests are always traced)",
    )
    s.add_argument(
        "--stats-window", type=float, default=10.0, help="stats_live trailing window (s)"
    )
    s.add_argument(
        "--workers",
        type=int,
        default=0,
        help="attach a process pool of N workers (0 = serve in-process); "
        "big dispatch windows route through pooled bulk reads",
    )
    s.add_argument(
        "--pool-min-keys",
        type=int,
        default=64,
        help="smallest dispatch window worth shipping to the pool",
    )

    lg = sub.add_parser("loadgen", help="drive a serving tier and report latency/QPS")
    lg.add_argument(
        "--format",
        dest="fmt",
        choices=["base", "dataptr", "filterkv", "all"],
        default="all",
    )
    _dataset_args(lg)
    lg.add_argument("--requests", type=int, default=5_000)
    lg.add_argument("--mode", choices=["closed", "open"], default="closed")
    lg.add_argument("--concurrency", type=int, default=16, help="closed-loop workers")
    lg.add_argument("--rate", type=float, default=20_000.0, help="open-loop arrival QPS")
    lg.add_argument(
        "--distribution", choices=["zipfian", "uniform"], default="zipfian"
    )
    lg.add_argument("--theta", type=float, default=1.0, help="Zipfian skew")
    lg.add_argument("--deadline-ms", type=float, default=None)
    lg.add_argument(
        "--tcp", action="store_true", help="go through the TCP front end, not in-process"
    )
    lg.add_argument("--json-out", metavar="FILE", default=None, help="also write reports as JSON")
    lg.add_argument(
        "--trace-sample",
        type=float,
        default=0.0,
        metavar="RATE",
        help="trace this fraction of requests end-to-end (client span + "
        "server span tree)",
    )
    lg.add_argument(
        "--trace-out",
        metavar="FILE",
        default=None,
        help="write the slowest sampled traces as repro.trace/v1 JSONL",
    )
    lg.add_argument(
        "--chrome-trace-out",
        metavar="FILE",
        default=None,
        help="write the slowest sampled traces as a Chrome trace_event JSON "
        "(load in chrome://tracing or Perfetto)",
    )
    lg.add_argument(
        "--keep-traces", type=int, default=4, help="slowest sampled traces to keep per format"
    )

    t = sub.add_parser("top", help="live dashboard for a running `repro serve`")
    t.add_argument("--host", default="127.0.0.1")
    t.add_argument("--port", type=int, required=True)
    t.add_argument("--interval", type=float, default=2.0, help="refresh period (s)")
    t.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop after N refreshes (0 = run until Ctrl-C)",
    )
    t.add_argument("--window", type=float, default=None, help="override the stats window (s)")
    t.add_argument("--traces", type=int, default=2, help="recent traces to show per refresh")
    t.add_argument(
        "--fleet",
        action="store_true",
        help="render the fleet-router dashboard (per-shard breakers, aux "
        "staleness, router memory) instead of the single-service one",
    )

    f = sub.add_parser(
        "fleet",
        help="sharded serving demo: aux routing, kill a shard, verify, recover",
    )
    f.add_argument("--shards", type=int, default=3)
    f.add_argument("--rf", type=int, default=2, help="replicas per key (ring owners)")
    f.add_argument("--ranks", type=int, default=4, help="writer ranks per shard")
    f.add_argument(
        "--records", type=int, default=8_000, help="records per epoch (fleet-wide)"
    )
    f.add_argument("--epochs", type=int, default=2)
    f.add_argument("--value-bytes", type=int, default=24)
    f.add_argument("--seed", type=int, default=0)
    f.add_argument("--vnodes", type=int, default=64, help="ring vnodes per shard")
    f.add_argument(
        "--tcp", action="store_true", help="shards behind real TCP front ends"
    )
    f.add_argument("--requests", type=int, default=2_000, help="requests per load burst")
    f.add_argument("--concurrency", type=int, default=16, help="closed-loop workers")
    f.add_argument(
        "--distribution", choices=["zipfian", "uniform"], default="zipfian"
    )
    f.add_argument("--theta", type=float, default=1.0, help="Zipfian skew")
    f.add_argument(
        "--kill",
        type=int,
        default=0,
        metavar="SHARD",
        help="shard to crash between bursts (-1 = skip the failure drill)",
    )
    f.add_argument(
        "--aux-backend",
        default=None,
        help="filterkv aux backend name, or 'auto' for the flush-time tournament",
    )
    f.add_argument("--json-out", metavar="FILE", default=None, help="also write reports as JSON")
    f.add_argument(
        "--serve",
        action="store_true",
        help="after ingest, mount the router behind the TCP front end and "
        "serve until Ctrl-C (pairs with `repro top --fleet`)",
    )
    f.add_argument("--host", default="127.0.0.1")
    f.add_argument("--port", type=int, default=0, help="0 = let the OS pick (--serve)")

    a = sub.add_parser("advise", help="recommend a format for a deployment")
    a.add_argument("--machine", default="narwhal")
    a.add_argument("--procs", type=int, default=256)
    a.add_argument("--kv-bytes", type=int, default=64)
    a.add_argument("--data-per-proc", type=float, default=960e6)
    a.add_argument("--residual", type=float, default=None)
    a.add_argument("--read-weight", type=float, default=0.1)
    return p


def _cmd_info() -> str:
    import repro

    lines = [
        f"repro {repro.__version__} — FilterKV reproduction (IEEE CLUSTER 2019)",
        "subpackages: filters, storage, net, cluster, core, apps, analysis",
        "experiments: Table I, Figs. 1/7/8/9/10/11 (see benchmarks/)",
        "docs: README.md, DESIGN.md, EXPERIMENTS.md",
    ]
    return "\n".join(lines)


def _cmd_machines() -> str:
    from .cluster.machines import MACHINES

    rows = []
    for m in MACHINES.values():
        rows.append(
            f"{m.name:16s} cpu={m.cpu.name:12s} x{m.cpu.cores_per_node:<3d} "
            f"ppn={m.ppn:<3d} transport={m.transport.name:12s} "
            f"storage={m.storage_bw_per_node / 1e6:.0f} MB/s/node"
        )
    return "\n".join(rows)


def _cmd_table1() -> str:
    from .analysis.models import TABLE1_MACHINES
    from .analysis.reporting import render_table

    rows = [
        [m.rank, m.name, f"{m.cores / 1000:.0f}K", round(m.b2(), 2), round(m.b10(), 2)]
        for m in TABLE1_MACHINES
    ]
    return render_table(["rank", "machine", "cores", "b2 B/key", "b10 B/key"], rows)


def _instrumented_run(fmt, ranks, records, value_bytes, seed, queries, aux_policy=None):
    """One epoch (plus a query sample) with telemetry on.

    Returns ``(registry, cluster_stats, cluster)``.  The registry holds
    every series the run produced — pipeline, aux/filter, storage, reader —
    including compression counters, which flow through the process-wide
    default registry installed for the duration of the run.
    """
    from .cluster.simcluster import SimCluster
    from .core.kv import random_kv_batch
    from .obs import MetricsRegistry, set_default_registry

    registry = MetricsRegistry(fmt.name)
    prev = set_default_registry(registry)
    try:
        cluster = SimCluster(
            nranks=ranks,
            fmt=fmt,
            value_bytes=value_bytes,
            records_hint=ranks * records,
            seed=seed,
            aux_policy=aux_policy,
            metrics=registry,
        )
        # Same generation loop as SimCluster.run_epoch (one seeded stream,
        # 4096-record batches), but keeping each rank's first batch so the
        # query sample spans every source rank — sampling only rank 0 would
        # always find the key at the first (lowest) candidate and hide read
        # amplification.
        pools = []
        rng = np.random.default_rng(seed)
        for rank in range(ranks):
            remaining = records
            first = True
            while remaining > 0:
                n = min(4096, remaining)
                batch = random_kv_batch(n, value_bytes, rng)
                if first:
                    pools.append(batch.keys)
                    first = False
                cluster.put(rank, batch)
                remaining -= n
        cluster.finish_epoch()
        st = cluster.stats
        if queries > 0:
            engine = cluster.query_engine()
            for i in range(queries):
                pool = pools[i % ranks]
                engine.get(int(pool[(i * 37) % len(pool)]))
    finally:
        set_default_registry(prev)
    return registry, st, cluster


def _cmd_compare(args) -> str:
    import dataclasses

    from .analysis.reporting import render_table
    from .cluster.simcluster import SimCluster
    from .core.auxtable import AUX_BACKENDS, AuxBackendPolicy
    from .core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV

    metrics_out = getattr(args, "metrics_out", None)
    merged = None
    if metrics_out:
        from .obs import MetricsRegistry

        merged = MetricsRegistry("compare")

    # Filterkv aux-backend selection: a fixed registered backend, or
    # 'auto' = the flush-time tournament (AuxBackendPolicy) picking per
    # epoch from the sealed key set.
    choice = getattr(args, "aux_backend", None)
    fmt_filterkv, aux_policy = FMT_FILTERKV, None
    if choice == "auto":
        aux_policy = AuxBackendPolicy()
    elif choice is not None:
        if choice not in AUX_BACKENDS:
            raise SystemExit(
                f"unknown aux backend {choice!r}; pick one of "
                f"{sorted(AUX_BACKENDS)} or 'auto'"
            )
        fmt_filterkv = dataclasses.replace(FMT_FILTERKV, aux_backend=choice)

    rows = []
    for fmt in (FMT_BASE, FMT_DATAPTR, fmt_filterkv):
        policy = aux_policy if fmt.name == "filterkv" else None
        if merged is not None:
            registry, st, cluster = _instrumented_run(
                fmt,
                args.ranks,
                args.records,
                args.value_bytes,
                args.seed,
                args.queries,
                aux_policy=policy,
            )
            merged.merge(registry, format=fmt.name)
        else:
            cluster = SimCluster(
                nranks=args.ranks,
                fmt=fmt,
                value_bytes=args.value_bytes,
                records_hint=args.ranks * args.records,
                seed=args.seed,
                aux_policy=policy,
            )
            st = cluster.run_epoch(args.records)
        rows.append(
            [
                fmt.name,
                cluster.aux_backends() or "-",
                st.rpc_messages,
                round(st.shuffle_bytes_per_record, 2),
                round(st.storage_bytes_per_record, 2),
                round(st.aux_bytes / st.records, 2) if st.aux_bytes else "-",
            ]
        )
    out = render_table(
        ["format", "aux", "msgs", "net B/rec", "disk B/rec", "aux B/key"],
        rows,
        title=f"{args.ranks} ranks × {args.records} records × "
        f"{8 + args.value_bytes} B KV pairs",
    )
    if merged is not None:
        import pathlib

        from .obs import registry_to_json

        pathlib.Path(metrics_out).write_text(registry_to_json(merged) + "\n")
        out += f"\nmetrics: {len(merged)} series -> {metrics_out}"
    return out


def _cmd_metrics(args) -> str:
    from .core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
    from .obs import MetricsRegistry, dump_jsonl, registry_to_json

    by_name = {f.name: f for f in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV)}
    formats = list(by_name.values()) if args.fmt == "all" else [by_name[args.fmt]]
    merged = MetricsRegistry("metrics")
    for fmt in formats:
        registry, _, _ = _instrumented_run(
            fmt, args.ranks, args.records, args.value_bytes, args.seed, args.queries
        )
        merged.merge(registry, format=fmt.name)
    text = dump_jsonl(merged) if args.jsonl else registry_to_json(merged) + "\n"
    if args.out != "-":
        import pathlib

        pathlib.Path(args.out).write_text(text)
        return f"metrics: {len(merged)} series -> {args.out}"
    return text.rstrip("\n")


def _cmd_recover(args) -> str:
    """Crash-consistency walkthrough: the EXPERIMENTS.md transcript."""
    from .core.formats import FORMATS
    from .core.kv import random_kv_batch
    from .core.multiepoch import MultiEpochStore
    from .faults import CrashPoint, FaultPlan, FaultyStorageDevice
    from .obs import MetricsRegistry

    fmt = FORMATS[args.fmt]
    registry = MetricsRegistry("recover")
    device = FaultyStorageDevice(FaultPlan(seed=args.seed), metrics=registry)
    store = MultiEpochStore(
        nranks=args.ranks,
        fmt=fmt,
        value_bytes=args.value_bytes,
        device=device,
        seed=args.seed,
    )
    rng = np.random.default_rng(args.seed)
    lines = [
        f"writing {args.epochs} epochs: {args.ranks} ranks x {args.records:,} "
        f"records, format={fmt.name}"
    ]
    keys_by_epoch: list[np.ndarray] = []
    for e in range(args.epochs):
        batches = [random_kv_batch(args.records, args.value_bytes, rng) for _ in range(args.ranks)]
        if e == args.epochs - 1:
            device.plan.crash_at(device.op_index + args.crash_op)
        try:
            store.write_epoch(batches)
        except CrashPoint as exc:
            lines.append(f"epoch {e}: ** CRASH ** ({exc})")
            break
        keys_by_epoch.append(np.concatenate([b.keys for b in batches]))
        lines.append(f"epoch {e}: committed, {args.ranks * args.records:,} records")
    if args.corrupt and keys_by_epoch:
        victim = next(n for n in device.list_files() if n.startswith("part.000."))
        device.corrupt(victim, device.file_size(victim) // 3, xor=0x04)
        lines.append(f"flipped one stored bit in committed extent {victim!r}")

    lines.append("")
    lines.append("$ repro recover")
    recovered, report = MultiEpochStore.recover(device, deep=args.deep, metrics=registry)
    lines.append(report.summary())
    lines.append("")

    checked = hits = 0
    for e in report.committed_epochs:
        keys = keys_by_epoch[e]
        sample = keys[:: max(1, keys.size // 16)][:16]
        for k in sample:
            value, _ = recovered.get(int(k), e)
            checked += 1
            hits += value is not None
    lines.append(f"verification: {hits}/{checked} sampled keys readable from committed epochs")
    uncommitted = [e for e in range(len(keys_by_epoch) + 1) if e not in report.committed_epochs]
    leftovers = [
        n
        for n in device.list_files()
        for e in uncommitted
        if n.startswith((f"part.{e:03d}.", f"aux.{e:03d}."))
    ]
    lines.append(f"uncommitted epochs absent from storage: {not leftovers}")
    return "\n".join(lines)


def _cmd_compact(args) -> str:
    """Read-amplification walkthrough: the compaction transcript."""
    from .core.formats import FORMATS
    from .core.kv import KVBatch, random_kv_batch
    from .core.multiepoch import MultiEpochStore

    fmt = FORMATS[args.fmt]
    store = MultiEpochStore(
        nranks=args.ranks, fmt=fmt, value_bytes=args.value_bytes, seed=args.seed
    )
    rng = np.random.default_rng(args.seed)
    lines = [
        f"writing {args.epochs} epochs: {args.ranks} ranks x {args.records:,} "
        f"records, format={fmt.name}, overlap={args.overlap:.0%}"
    ]
    prev_keys: np.ndarray | None = None
    all_keys: list[np.ndarray] = []
    for _ in range(args.epochs):
        batches = [
            random_kv_batch(args.records, args.value_bytes, rng)
            for _ in range(args.ranks)
        ]
        if prev_keys is not None and args.overlap > 0:
            # Rewrite a slice of the previous epoch's keys with fresh
            # values: the newest-wins duplicates compaction must dedupe.
            for i, b in enumerate(batches):
                n = int(len(b) * args.overlap)
                if n:
                    keys = b.keys.copy()
                    keys[:n] = rng.choice(prev_keys, size=n, replace=False)
                    batches[i] = KVBatch(keys, b.values)
        store.write_epoch(batches)
        prev_keys = np.concatenate([b.keys for b in batches])
        all_keys.append(prev_keys)
    # Probe the whole history, not just the newest dump: keys last written
    # long ago are the ones whose lookups walk (and pay for) every epoch.
    universe = np.unique(np.concatenate(all_keys))

    def measure(label: str) -> tuple[float, float]:
        probe_keys = rng.choice(universe, size=min(args.probes, universe.size), replace=False)
        reads = searched = 0
        for k in probe_keys:
            _, _, stats = store.lookup(int(k), cached=False)
            reads += stats.reads
            searched += stats.partitions_searched
        n = probe_keys.size
        lines.append(
            f"{label}: {len(store.epochs)} live epoch(s), "
            f"{reads / n:.2f} device reads / query, "
            f"{searched / n:.2f} partitions searched / query"
        )
        return reads / n, searched / n

    before_reads, _ = measure("before")

    sample = rng.choice(universe, size=min(args.probes, universe.size), replace=False)
    truth = {int(k): store.lookup(int(k))[0] for k in sample}

    lines.append("")
    lines.append("$ repro compact")
    report = store.compact()
    lines.append(report.summary())
    lines.append("")

    ok = sum(store.lookup(k)[0] == v for k, v in truth.items())
    lines.append(f"verification: {ok}/{len(truth)} sampled keys byte-identical after compaction")
    mapped = store.resolve_epoch(report.source_epochs[0])
    lines.append(
        f"retired epoch {report.source_epochs[0]} resolves to merged epoch {mapped}; "
        f"next epoch id {store.manifest.next_epoch} (never reused)"
    )
    after_reads, _ = measure("after")
    if after_reads > 0:
        lines.append(f"read amplification cut: {before_reads / after_reads:.2f}x")
    store.close()
    return "\n".join(lines)


def _build_served_store(args):
    """Synthetic dataset for the serving commands: ``--epochs`` dumps of
    random KV pairs (random keys ⇒ writer rank uncorrelated with owner,
    so FilterKV sees realistic false-candidate rates).  Returns
    ``(store, keys, expected)`` where ``expected`` maps every newest-epoch
    key to its value."""
    from .core.formats import FORMATS
    from .core.kv import random_kv_batch
    from .core.multiepoch import MultiEpochStore

    fmt = FORMATS[args.fmt]
    store = MultiEpochStore(
        nranks=args.ranks, fmt=fmt, value_bytes=args.value_bytes, seed=args.seed
    )
    rng = np.random.default_rng(args.seed)
    expected: dict[int, bytes] = {}
    for _ in range(args.epochs):
        batches = [
            random_kv_batch(args.records, args.value_bytes, rng) for _ in range(args.ranks)
        ]
        store.write_epoch(batches)
        expected = {
            int(k): bytes(v)
            for b in batches
            for k, v in zip(b.keys, np.asarray(b.values).reshape(len(b), -1))
        }
    keys = np.fromiter(expected, dtype=np.int64)
    return store, keys, expected


def _cmd_serve(args) -> int:
    import asyncio

    from .obs import TraceCollector
    from .serve import QueryService, ServeServer

    store, keys, _ = _build_served_store(args)
    print(store.describe())

    pool = None
    if args.workers > 0:
        from .obs import MetricsRegistry
        from .parallel import WorkerPool

        pool = WorkerPool(workers=args.workers, metrics=MetricsRegistry("pool"))
        pool.warm()

    async def run() -> None:
        service = QueryService(
            store,
            max_batch=args.max_batch,
            max_inflight=args.max_inflight,
            queue_high_watermark=args.queue_high_watermark,
            tracer=TraceCollector(sample_rate=args.trace_sample),
            stats_window_s=args.stats_window,
            pool=pool,
            pool_min_keys=args.pool_min_keys,
        )
        async with ServeServer(service, host=args.host, port=args.port) as server:
            # flush so clients scripting around a piped server see the
            # bound port before the first query
            workers = f", {args.workers} pool workers" if pool is not None else ""
            print(
                f"serving {keys.size:,} keys on {server.host}:{server.port}"
                f"{workers} (Ctrl-C to stop)",
                flush=True,
            )
            await server.serve_forever()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nstopped")
    finally:
        if pool is not None:
            pool.close()
    return 0


def _cmd_loadgen(args) -> str:
    import asyncio

    from .analysis.reporting import render_table
    from .serve import InprocClient, KeySampler, QueryService, ServeServer, TCPClient, run_load

    formats = ["base", "dataptr", "filterkv"] if args.fmt == "all" else [args.fmt]
    deadline_s = args.deadline_ms / 1e3 if args.deadline_ms is not None else None
    rows, reports = [], []

    async def drive(fmt_name: str):
        sub_args = argparse.Namespace(**{**vars(args), "fmt": fmt_name})
        store, keys, expected = _build_served_store(sub_args)
        sampler = KeySampler(
            keys, distribution=args.distribution, theta=args.theta, seed=args.seed
        )
        service = QueryService(store)
        load_kwargs = dict(
            mode=args.mode,
            concurrency=args.concurrency,
            rate_qps=args.rate,
            deadline_s=deadline_s,
            expected=expected,
            trace_rate=args.trace_sample,
            trace_seed=args.seed,
            keep_traces=args.keep_traces,
        )
        if args.tcp:
            async with ServeServer(service) as server:
                async with TCPClient(server.host, server.port) as client:
                    report = await run_load(client, sampler, args.requests, **load_kwargs)
        else:
            async with service:
                report = await run_load(
                    InprocClient(service), sampler, args.requests, **load_kwargs
                )
        svc_stats = service.stats()
        return report, svc_stats

    for fmt_name in formats:
        report, svc_stats = asyncio.run(drive(fmt_name))
        reports.append({"format": fmt_name, "report": report.to_dict(), "service": svc_stats})
        lat = report.latency_ms
        rows.append(
            [
                fmt_name,
                report.requests,
                f"{report.qps:,.0f}",
                lat["p50"],
                lat["p95"],
                lat["p99"],
                report.shed,
                svc_stats["result_cache"]["hits"],
                svc_stats["negative_cache"]["skipped_probes"],
                f"{report.incorrect}/{report.checked}",
            ]
        )
    out = render_table(
        [
            "format",
            "reqs",
            "qps",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "shed",
            "rc hits",
            "neg skips",
            "bad",
        ],
        rows,
        title=f"{args.mode}/{args.distribution} load, {args.ranks} ranks x "
        f"{args.records:,} records x {args.epochs} epoch(s)",
    )
    if args.json_out:
        import json
        import pathlib

        pathlib.Path(args.json_out).write_text(json.dumps(reports, indent=2) + "\n")
        out += f"\nreports -> {args.json_out}"
    out += _export_loadgen_traces(args, reports)
    return out


def _export_loadgen_traces(args, reports: list[dict]) -> str:
    """Write the slowest sampled traces from a loadgen run to disk.

    All formats' kept traces go into one document — trace ids are unique
    per tree, so JSONL consumers and the Chrome trace viewer keep them
    apart without per-format files.
    """
    if not (args.trace_out or args.chrome_trace_out):
        return ""
    import json
    import pathlib

    from .obs import chrome_trace, dump_trace_jsonl, span_from_dict

    spans = [
        span_from_dict(d)
        for rep in reports
        for _lat_ms, tree in rep["report"].get("slow_traces", [])
        for d in tree
    ]
    notes = []
    if args.trace_out:
        pathlib.Path(args.trace_out).write_text(dump_trace_jsonl(spans))
        notes.append(f"traces -> {args.trace_out}")
    if args.chrome_trace_out:
        doc = chrome_trace(spans)
        pathlib.Path(args.chrome_trace_out).write_text(json.dumps(doc) + "\n")
        notes.append(f"chrome trace -> {args.chrome_trace_out}")
    if not spans:
        notes.append("(no traces sampled — raise --trace-sample?)")
    return "\n" + ", ".join(notes)


def _fleet_aux_policy(choice: str | None):
    """``--aux-backend`` for the fleet commands: None (format default),
    'auto' (flush-time tournament), or one pinned registered backend."""
    if choice is None:
        return None
    from .core.auxtable import AUX_BACKENDS, AuxBackendPolicy

    if choice == "auto":
        return AuxBackendPolicy()
    if choice not in AUX_BACKENDS:
        raise SystemExit(
            f"unknown aux backend {choice!r}; pick one of "
            f"{sorted(AUX_BACKENDS)} or 'auto'"
        )
    return AuxBackendPolicy(candidates=(choice,))


def _build_fleet(args):
    """Fleet + ingested dataset for the ``fleet`` command.  Returns
    ``(fleet, keys, expected)`` with ``expected`` holding the newest
    value per key across every epoch."""
    from .core.kv import random_kv_batch
    from .fleet import Fleet, FleetSpec

    spec = FleetSpec(
        nshards=args.shards,
        rf=args.rf,
        nranks=args.ranks,
        value_bytes=args.value_bytes,
        seed=args.seed,
        vnodes=args.vnodes,
        tcp=args.tcp,
        aux_policy=_fleet_aux_policy(args.aux_backend),
        # Pin the shard caches small: epochs are immutable, so a crashed
        # shard's warm caches keep answering hot keys *correctly* — which
        # makes the failure drill invisible.  Cold reads must touch the
        # device, so the crash surfaces and the router's failover shows.
        service_kwargs=dict(result_cache_entries=16, table_cache_entries=1),
    )
    fleet = Fleet(spec)
    rng = np.random.default_rng(args.seed)
    expected: dict[int, bytes] = {}
    for _ in range(args.epochs):
        batch = random_kv_batch(args.records, args.value_bytes, rng)
        fleet.ingest(batch)
        values = np.asarray(batch.values).reshape(len(batch), -1)
        expected.update(
            (int(k), bytes(v)) for k, v in zip(batch.keys, values)
        )
    keys = np.fromiter(expected, dtype=np.int64)
    return fleet, keys, expected


def _cmd_fleet(args) -> int:
    import asyncio

    from .serve import ANY_EPOCH, KeySampler, ServeServer, run_load

    fleet, keys, expected = _build_fleet(args)
    rf = fleet.rf
    print(
        f"fleet: {args.shards} shard(s) x {args.ranks} ranks, rf={rf}, "
        f"{keys.size:,} keys across {args.epochs} epoch(s)"
    )

    async def serve_forever() -> None:
        async with fleet:
            async with ServeServer(
                fleet.router, host=args.host, port=args.port
            ) as server:
                print(
                    f"fleet router serving {keys.size:,} keys on "
                    f"{server.host}:{server.port} (Ctrl-C to stop; "
                    f"`repro top --fleet --port {server.port}` to watch)",
                    flush=True,
                )
                await server.serve_forever()

    def burst_line(label: str, report) -> str:
        lat = report.latency_ms
        return (
            f"{label}: {report.requests} reqs, {report.qps:,.0f} qps, "
            f"p50={lat['p50']:.3f}ms p99={lat['p99']:.3f}ms, "
            f"bad={report.incorrect}/{report.checked}"
        )

    async def drill() -> list[dict]:
        reports = []

        def sampler(phase: int) -> KeySampler:
            # A fresh hot set per burst: with one seed throughout, the
            # degraded burst replays burst 1's keys and the shards' result
            # caches absorb the crash — correct, but nothing fails over.
            return KeySampler(
                keys,
                distribution=args.distribution,
                theta=args.theta,
                seed=args.seed + 7919 * phase,
            )

        load_kwargs = dict(
            mode="closed",
            concurrency=args.concurrency,
            epoch=ANY_EPOCH,
            expected=expected,
        )
        async with fleet:
            router = fleet.router
            rep = await run_load(router, sampler(0), args.requests, **load_kwargs)
            reports.append({"phase": "healthy", "report": rep.to_dict()})
            st = router.stats()
            print(burst_line("healthy   ", rep))
            print(
                f"            routed by aux: {st['aux_routed']}, scatter: "
                f"{st['scatter']}, router memory: {st['aux_resident_bytes']:,} B "
                f"resident / {st['aux_blob_bytes']:,} B sealed blobs"
            )
            if args.kill >= 0:
                if args.kill not in fleet.shards:
                    raise SystemExit(
                        f"--kill {args.kill}: no such shard (0..{args.shards - 1})"
                    )
                print(f"\n** crashing shard {args.kill} under load **")
                fleet.crash_shard(args.kill)
                rep = await run_load(router, sampler(1), args.requests, **load_kwargs)
                reports.append({"phase": "degraded", "report": rep.to_dict()})
                st = router.stats()
                print(burst_line("degraded  ", rep))
                print(
                    f"            failovers: {st['failovers']}, retries: "
                    f"{st['retries']}, breaker skips: {st['breaker_skips']}, "
                    f"breakers: {st['breakers']}"
                )
                await fleet.recover_shard(args.kill)
                node = fleet.shards[args.kill]
                print(
                    f"recovered shard {args.kill}: "
                    f"{node.last_recovery.summary().splitlines()[0]}"
                )
                rep = await run_load(router, sampler(2), args.requests, **load_kwargs)
                reports.append({"phase": "recovered", "report": rep.to_dict()})
                print(burst_line("recovered ", rep))
                print(
                    f"            breakers: {router.stats()['breakers']}"
                )
            rolled = fleet.rollup()
            print(
                f"\nfleet totals: {int(rolled.total('fleet.requests')):,} shard "
                f"requests served for "
                f"{int(fleet.merged_metrics().total('fleet.router.requests')):,} "
                "routed queries"
            )
            bad = sum(r["report"]["incorrect"] for r in reports)
            checked = sum(r["report"]["checked"] for r in reports)
            print(f"verification: {checked - bad}/{checked} answers byte-correct")
        return reports

    try:
        if args.serve:
            asyncio.run(serve_forever())
            return 0
        reports = asyncio.run(drill())
    except KeyboardInterrupt:
        print("\nstopped")
        return 0
    if args.json_out:
        import json
        import pathlib

        pathlib.Path(args.json_out).write_text(json.dumps(reports, indent=2) + "\n")
        print(f"reports -> {args.json_out}")
    bad = sum(r["report"]["incorrect"] for r in reports)
    return 1 if bad else 0


def _render_fleet_top_frame(live: dict, stats: dict, where: str) -> str:
    """One dashboard frame for ``repro top --fleet`` (pure: testable
    without a TTY)."""
    lat = live.get("latency_ms", {})
    counts = live.get("counts", {})
    rates = live.get("rates_per_s", {})
    lines = [
        f"repro top — fleet router @ {where}  (trailing {live.get('window_s', '?')}s)",
        f"  qps {live.get('qps', 0):>10,.1f}   "
        f"aux memory {live.get('aux_resident_bytes', 0):,} B resident / "
        f"{live.get('aux_blob_bytes', 0):,} B blobs",
        "  status   " + "  ".join(
            f"{s}={counts.get(s, 0)} ({rates.get(s, 0.0):,.1f}/s)" for s in counts
        ),
        f"  latency  p50 {lat.get('p50', 0.0):.3f}ms  p95 {lat.get('p95', 0.0):.3f}ms  "
        f"p99 {lat.get('p99', 0.0):.3f}ms  max {lat.get('max', 0.0):.3f}ms",
        f"  routing  aux {stats.get('aux_routed', 0)}  scatter {stats.get('scatter', 0)}  "
        f"failovers {stats.get('failovers', 0)}  hedges {stats.get('hedges', 0)}  "
        f"stale {stats.get('stale_detected', 0)}  "
        f"refreshes {stats.get('aux_refreshes', 0)}",
    ]
    for sid, shard in sorted(live.get("shards", {}).items()):
        stale = shard.get("stale")
        lines.append(
            f"  shard {sid}  breaker {shard.get('breaker', '?'):9s} "
            f"view {'stale' if stale else 'none ' if stale is None else 'fresh'} "
            f"epochs {shard.get('epochs', [])}"
        )
    return "\n".join(lines)


def _render_top_frame(live: dict, stats: dict, traces: list[list[dict]], where: str) -> str:
    """One dashboard frame for ``repro top`` (pure: testable without a TTY)."""
    from .obs import render_tree, span_from_dict

    lat = live.get("latency_ms", {})
    rc = stats.get("result_cache", {})
    neg = stats.get("negative_cache", {})
    counts = live.get("counts", {})
    rates = live.get("rates_per_s", {})
    lines = [
        f"repro top — {live.get('format', '?')} @ {where}  "
        f"(trailing {live.get('window_s', '?')}s)",
        f"  qps {live.get('qps', 0):>10,.1f}   inflight {live.get('inflight', 0):<4d} "
        f"queue {live.get('queue_depth', 0):<4d} "
        f"shedding {'YES' if live.get('shedding') else 'no '}  "
        f"shed_rate {live.get('shed_rate', 0.0):.2%}",
        "  status   " + "  ".join(
            f"{s}={counts.get(s, 0)} ({rates.get(s, 0.0):,.1f}/s)" for s in counts
        ),
        f"  latency  p50 {lat.get('p50', 0.0):.3f}ms  p95 {lat.get('p95', 0.0):.3f}ms  "
        f"p99 {lat.get('p99', 0.0):.3f}ms  max {lat.get('max', 0.0):.3f}ms",
        f"  caches   result {rc.get('hits', 0)}/{rc.get('hits', 0) + rc.get('misses', 0)} hit  "
        f"negative {neg.get('skipped_probes', 0)} probes skipped",
    ]
    w = live.get("workers")
    if w:
        rate = w.get("batches_per_s")
        lines.append(
            f"  workers  {w.get('busy_workers', 0)}/{w.get('pool_size', 0)} busy  "
            f"batches {w.get('batches', 0)}"
            + (f" ({rate:,.1f}/s)" if rate is not None else "")
            + f"  failures {w.get('worker_failures', 0)}  "
            f"shm {w.get('shm_bytes', 0):,} B"
        )
    if traces:
        lines.append(f"  traces   {live.get('traces_retained', 0)} retained; most recent:")
        for tree in traces:
            rendered = render_tree([span_from_dict(d) for d in tree])
            lines.extend("    " + ln for ln in rendered.splitlines())
    return "\n".join(lines)


def _cmd_top(args) -> int:
    import asyncio

    from .serve import TCPClient

    async def run() -> None:
        where = f"{args.host}:{args.port}"
        async with TCPClient(args.host, args.port) as client:
            i = 0
            prev_batches = None
            while True:
                live = await client.stats_live(window_s=args.window)
                stats = await client.stats()
                w = live.get("workers")
                if w is not None:
                    # batches/s needs two frames: rate over the refresh gap.
                    if prev_batches is not None and args.interval > 0:
                        w["batches_per_s"] = max(
                            0.0, (w.get("batches", 0) - prev_batches) / args.interval
                        )
                    prev_batches = w.get("batches", 0)
                if args.fleet or live.get("format") == "fleet":
                    print(_render_fleet_top_frame(live, stats, where))
                else:
                    traces = await client.traces(args.traces) if args.traces > 0 else []
                    print(_render_top_frame(live, stats, traces[-args.traces :], where))
                i += 1
                if args.iterations and i >= args.iterations:
                    return
                print()
                await asyncio.sleep(args.interval)

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nstopped")
    except ConnectionError as e:
        raise SystemExit(f"cannot reach {args.host}:{args.port}: {e}")
    return 0


def _cmd_advise(args) -> str:
    from .cluster.machines import MACHINES
    from .core.advisor import recommend_format

    if args.machine not in MACHINES:
        raise SystemExit(f"unknown machine {args.machine!r}; try: {', '.join(MACHINES)}")
    advice = recommend_format(
        MACHINES[args.machine],
        nprocs=args.procs,
        kv_bytes=args.kv_bytes,
        data_per_proc=args.data_per_proc,
        residual_fraction=args.residual,
        read_weight=args.read_weight,
    )
    return advice.explain()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(legacy=False)
    out = {
        "info": _cmd_info,
        "machines": _cmd_machines,
        "table1": _cmd_table1,
    }
    if args.command in out:
        print(out[args.command]())
    elif args.command == "compare":
        print(_cmd_compare(args))
    elif args.command == "metrics":
        print(_cmd_metrics(args))
    elif args.command == "recover":
        print(_cmd_recover(args))
    elif args.command == "compact":
        print(_cmd_compact(args))
    elif args.command == "serve":
        return _cmd_serve(args)
    elif args.command == "fleet":
        return _cmd_fleet(args)
    elif args.command == "loadgen":
        print(_cmd_loadgen(args))
    elif args.command == "top":
        return _cmd_top(args)
    elif args.command == "advise":
        print(_cmd_advise(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
