"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info``     — package, module, and machine inventory;
* ``compare``  — run all three formats on a simulated cluster and print
  the measured network/storage/message costs;
* ``advise``   — recommend a format for a deployment (machine, job size,
  KV size, read weight);
* ``table1``   — print the paper's Table I from the Bloom math;
* ``machines`` — list the built-in machine models.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description="FilterKV: compact filters for fast online data partitioning "
        "(CLUSTER'19 reproduction)",
    )
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="package and experiment inventory")
    sub.add_parser("machines", help="list machine models")
    sub.add_parser("table1", help="print Table I (Bloom bytes/key bounds)")

    c = sub.add_parser("compare", help="run the three formats on a simulated cluster")
    c.add_argument("--ranks", type=int, default=8)
    c.add_argument("--records", type=int, default=10_000, help="records per rank")
    c.add_argument("--value-bytes", type=int, default=56)
    c.add_argument("--seed", type=int, default=0)

    a = sub.add_parser("advise", help="recommend a format for a deployment")
    a.add_argument("--machine", default="narwhal")
    a.add_argument("--procs", type=int, default=256)
    a.add_argument("--kv-bytes", type=int, default=64)
    a.add_argument("--data-per-proc", type=float, default=960e6)
    a.add_argument("--residual", type=float, default=None)
    a.add_argument("--read-weight", type=float, default=0.1)
    return p


def _cmd_info() -> str:
    import repro

    lines = [
        f"repro {repro.__version__} — FilterKV reproduction (IEEE CLUSTER 2019)",
        "subpackages: filters, storage, net, cluster, core, apps, analysis",
        "experiments: Table I, Figs. 1/7/8/9/10/11 (see benchmarks/)",
        "docs: README.md, DESIGN.md, EXPERIMENTS.md",
    ]
    return "\n".join(lines)


def _cmd_machines() -> str:
    from .cluster.machines import MACHINES

    rows = []
    for m in MACHINES.values():
        rows.append(
            f"{m.name:16s} cpu={m.cpu.name:12s} x{m.cpu.cores_per_node:<3d} "
            f"ppn={m.ppn:<3d} transport={m.transport.name:12s} "
            f"storage={m.storage_bw_per_node / 1e6:.0f} MB/s/node"
        )
    return "\n".join(rows)


def _cmd_table1() -> str:
    from .analysis.models import TABLE1_MACHINES
    from .analysis.reporting import render_table

    rows = [
        [m.rank, m.name, f"{m.cores / 1000:.0f}K", round(m.b2(), 2), round(m.b10(), 2)]
        for m in TABLE1_MACHINES
    ]
    return render_table(["rank", "machine", "cores", "b2 B/key", "b10 B/key"], rows)


def _cmd_compare(args) -> str:
    from .analysis.reporting import render_table
    from .cluster.simcluster import SimCluster
    from .core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV

    rows = []
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        cluster = SimCluster(
            nranks=args.ranks,
            fmt=fmt,
            value_bytes=args.value_bytes,
            records_hint=args.ranks * args.records,
            seed=args.seed,
        )
        st = cluster.run_epoch(args.records)
        rows.append(
            [
                fmt.name,
                st.rpc_messages,
                round(st.shuffle_bytes_per_record, 2),
                round(st.storage_bytes_per_record, 2),
                round(st.aux_bytes / st.records, 2) if st.aux_bytes else "-",
            ]
        )
    return render_table(
        ["format", "msgs", "net B/rec", "disk B/rec", "aux B/key"],
        rows,
        title=f"{args.ranks} ranks × {args.records} records × "
        f"{8 + args.value_bytes} B KV pairs",
    )


def _cmd_advise(args) -> str:
    from .cluster.machines import MACHINES
    from .core.advisor import recommend_format

    if args.machine not in MACHINES:
        raise SystemExit(f"unknown machine {args.machine!r}; try: {', '.join(MACHINES)}")
    advice = recommend_format(
        MACHINES[args.machine],
        nprocs=args.procs,
        kv_bytes=args.kv_bytes,
        data_per_proc=args.data_per_proc,
        residual_fraction=args.residual,
        read_weight=args.read_weight,
    )
    return advice.explain()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    np.set_printoptions(legacy=False)
    out = {
        "info": _cmd_info,
        "machines": _cmd_machines,
        "table1": _cmd_table1,
    }
    if args.command in out:
        print(out[args.command]())
    elif args.command == "compare":
        print(_cmd_compare(args))
    elif args.command == "advise":
        print(_cmd_advise(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
