"""A `StorageDevice` that injects scheduled faults into the I/O path.

`FaultyStorageDevice` is a drop-in `StorageDevice`: it counts every
charged read/append as one *operation*, consults its `FaultPlan` before
and after each, and applies whatever fault fires using only the public
fault surface (`corrupt` / `truncate` / `delete`) — so everything a
fault does to stored bytes is something a test could also do by hand.

Crash semantics: once a ``crash`` fires (or a ``torn_append`` tears an
append), the device is *down* — every further read or append raises
`CrashPoint` until `revive()` is called.  The extent store itself is
untouched by revival; recovery code sees exactly the bytes that made it
to storage before the crash, which is the whole point.
"""

from __future__ import annotations

from ..obs import MetricsRegistry
from ..storage.blockio import DeviceProfile, StorageDevice
from .plan import CrashPoint, FaultPlan, FaultSpec

__all__ = ["FaultyStorageDevice"]


class FaultyStorageDevice(StorageDevice):
    """Storage device wrapper that executes a `FaultPlan`.

    Parameters
    ----------
    plan:
        The fault schedule.  ``None`` means no faults — the device then
        behaves exactly like a plain `StorageDevice` (plus op counting).
    """

    def __init__(
        self,
        plan: FaultPlan | None = None,
        profile: DeviceProfile | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        super().__init__(profile=profile, metrics=metrics)
        self.plan = plan or FaultPlan()
        self.op_index = 0
        self.crashed = False
        self._m_crashes = self.metrics.counter("faults.crashes")

    # -- lifecycle ---------------------------------------------------------

    def revive(self) -> None:
        """Bring a crashed device back up; stored bytes are untouched."""
        self.crashed = False

    def _check_up(self) -> None:
        if self.crashed:
            raise CrashPoint(f"device is down (crashed at op {self.op_index})")

    def _go_down(self, spec: FaultSpec, op: int, detail: str) -> None:
        self.crashed = True
        self._m_crashes.inc()
        raise CrashPoint(f"{spec.kind} at op {op}: {detail}")

    def _count_fault(self, spec: FaultSpec) -> None:
        self.metrics.counter("faults.injected", kind=spec.kind).inc()

    # -- faulted primitives ------------------------------------------------

    def _read(self, name: str, offset: int, size: int) -> bytes:
        self._check_up()
        op = self.op_index
        self.op_index += 1
        spec = self.plan.take(op, name, "read")
        if spec is not None:
            self._apply_before_read(spec, op, name, offset, size)
        return super()._read(name, offset, size)

    def _append(self, name: str, data: bytes) -> int:
        self._check_up()
        op = self.op_index
        self.op_index += 1
        spec = self.plan.take(op, name, "append")
        if spec is None:
            return super()._append(name, data)
        return self._apply_on_append(spec, op, name, data)

    # -- fault application -------------------------------------------------

    def _apply_before_read(
        self, spec: FaultSpec, op: int, name: str, offset: int, size: int
    ) -> None:
        self._count_fault(spec)
        if spec.kind == "crash":
            self._go_down(spec, op, f"before read of {name!r}")
        elif spec.kind == "io_error":
            raise OSError(f"injected I/O error reading {name!r} at op {op}")
        elif spec.kind == "drop_extent":
            if self.exists(name):
                self.delete(name)
        elif spec.kind == "bit_flip":
            # Flip a bit inside the range about to be read so the damage is
            # guaranteed visible to this very read.
            end = min(self.file_size(name), offset + max(size, 1))
            if end > offset:
                rng = self.plan.rng_for(op)
                pos = offset + int(rng.integers(end - offset))
                bit = int(spec.arg) if spec.arg is not None else int(rng.integers(8))
                self.corrupt(name, pos, xor=1 << (bit & 7))
        # torn_append is append-only; plan.take never hands it to a read.

    def _apply_on_append(self, spec: FaultSpec, op: int, name: str, data: bytes) -> int:
        self._count_fault(spec)
        if spec.kind == "crash":
            self._go_down(spec, op, f"before append of {len(data)} B to {name!r}")
        if spec.kind == "io_error":
            raise OSError(f"injected I/O error appending to {name!r} at op {op}")
        offset = super()._append(name, data)
        if spec.kind == "torn_append":
            rng = self.plan.rng_for(op)
            frac = float(spec.arg) if spec.arg is not None else float(rng.uniform(0.0, 1.0))
            keep = int(len(data) * min(max(frac, 0.0), 1.0))
            self.truncate(name, offset + keep)
            self._go_down(spec, op, f"append to {name!r} tore after {keep}/{len(data)} B")
        elif spec.kind == "drop_extent":
            self.delete(name)
        elif spec.kind == "bit_flip":
            if data:
                rng = self.plan.rng_for(op)
                pos = offset + int(rng.integers(len(data)))
                bit = int(spec.arg) if spec.arg is not None else int(rng.integers(8))
                self.corrupt(name, pos, xor=1 << (bit & 7))
        return offset
