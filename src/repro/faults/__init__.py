"""Deterministic fault injection for crash-consistency testing.

The two pieces:

* `FaultPlan` / `FaultSpec` — a seeded schedule of faults (bit flips,
  torn appends, dropped extents, injected I/O errors, hard crashes),
  addressed by device operation index and/or extent-name glob.  Same
  seed, same workload → byte-identical damage, so failing trials replay.
* `FaultyStorageDevice` — a drop-in `StorageDevice` that executes the
  plan through the public fault surface (`corrupt`/`truncate`/`delete`)
  and goes *down* on crash until `revive()`.

Injected faults are counted in the obs registry under
``faults.injected{kind=...}`` and ``faults.crashes``.
"""

from .device import FaultyStorageDevice
from .plan import FAULT_KINDS, CrashPoint, FaultPlan, FaultSpec

__all__ = [
    "FAULT_KINDS",
    "CrashPoint",
    "FaultPlan",
    "FaultSpec",
    "FaultyStorageDevice",
]
