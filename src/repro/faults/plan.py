"""Deterministic fault schedules.

A `FaultPlan` is an ordered list of `FaultSpec`s, each describing one
fault to inject into the storage path: *what* goes wrong (`kind`), *when*
(a device operation index), and *where* (an extent-name glob).  Plans are
pure data plus a seed — every randomized detail (which bit flips, where a
torn append tears, which matching extent is dropped) is derived from the
seed and the firing operation's index, so a trial that fails under seed
``s`` replays byte-for-byte under seed ``s``.

Fault kinds
-----------
``bit_flip``
    One stored bit of a matching extent is flipped at rest; the workload
    continues unaware.  Checksums must catch it at read time.
``torn_append``
    An append persists only a prefix and the process dies — the classic
    torn write.  Applied via the public `StorageDevice.truncate`.
``drop_extent``
    A matching extent disappears after the operation completes (lost
    file); later access raises `ExtentLostError`.
``io_error``
    The operation fails with `OSError` instead of executing; the device
    survives and the caller may retry.
``crash``
    The process dies before the operation executes.  The device refuses
    further I/O until `FaultyStorageDevice.revive` — storage keeps
    exactly the bytes that made it down before the crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fnmatch import fnmatchcase

import numpy as np

__all__ = ["CrashPoint", "FaultSpec", "FaultPlan", "FAULT_KINDS"]

FAULT_KINDS = ("bit_flip", "torn_append", "drop_extent", "io_error", "crash")

# Which device operations each kind can fire on.
_APPLIES_TO = {
    "bit_flip": ("append", "read"),
    "torn_append": ("append",),
    "drop_extent": ("append", "read"),
    "io_error": ("append", "read"),
    "crash": ("append", "read"),
}


class CrashPoint(RuntimeError):
    """The simulated process died at a scheduled crash (or torn append)."""


@dataclass
class FaultSpec:
    """One scheduled fault.

    Attributes
    ----------
    kind:
        One of `FAULT_KINDS`.
    op:
        Fire at the first eligible operation whose global index is >= this
        (``None`` = the first eligible operation of any index).
    pattern:
        Extent-name glob the operation's target must match (``None`` = any
        extent).  For ``drop_extent`` the pattern also selects the victim.
    arg:
        Kind-specific knob: the bit index for ``bit_flip``, the surviving
        fraction for ``torn_append``.  ``None`` derives it from the seed.
    """

    kind: str
    op: int | None = None
    pattern: str | None = None
    arg: float | None = None
    fired_at: int | None = field(default=None, compare=False)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; know {FAULT_KINDS}")
        if self.op is not None and self.op < 0:
            raise ValueError("op index must be non-negative")

    @property
    def fired(self) -> bool:
        return self.fired_at is not None

    def eligible(self, op_index: int, name: str, op_type: str) -> bool:
        if self.fired or op_type not in _APPLIES_TO[self.kind]:
            return False
        if self.op is not None and op_index < self.op:
            return False
        return self.pattern is None or fnmatchcase(name, self.pattern)


class FaultPlan:
    """A seeded, fully deterministic schedule of `FaultSpec`s.

    Specs are consumed in order of arming, one at most per device
    operation; a spec whose trigger never occurs simply never fires
    (`unfired` reports them).  The plan is mutable — `crash_at` etc. may
    arm further faults mid-run — which is how harnesses schedule a second
    crash after a first recovery.
    """

    def __init__(self, seed: int = 0, specs: list[FaultSpec] | None = None):
        self.seed = int(seed)
        self.specs: list[FaultSpec] = list(specs or [])

    # -- arming ------------------------------------------------------------

    def add(self, spec: FaultSpec) -> "FaultPlan":
        self.specs.append(spec)
        return self

    def crash_at(self, op: int, pattern: str | None = None) -> "FaultPlan":
        return self.add(FaultSpec("crash", op=op, pattern=pattern))

    def torn_append_at(
        self, op: int, pattern: str | None = None, fraction: float | None = None
    ) -> "FaultPlan":
        return self.add(FaultSpec("torn_append", op=op, pattern=pattern, arg=fraction))

    def bit_flip_at(
        self, op: int | None = None, pattern: str | None = None, bit: int | None = None
    ) -> "FaultPlan":
        return self.add(FaultSpec("bit_flip", op=op, pattern=pattern, arg=bit))

    def drop_extent_at(self, op: int, pattern: str | None = None) -> "FaultPlan":
        return self.add(FaultSpec("drop_extent", op=op, pattern=pattern))

    def io_error_at(self, op: int, pattern: str | None = None) -> "FaultPlan":
        return self.add(FaultSpec("io_error", op=op, pattern=pattern))

    @classmethod
    def random(
        cls,
        seed: int,
        max_op: int,
        kinds: tuple[str, ...] = FAULT_KINDS,
        nfaults: int = 1,
        pattern: str | None = None,
    ) -> "FaultPlan":
        """A reproducible random plan: ``nfaults`` faults of the given
        kinds at operation indices uniform in ``[0, max_op)``."""
        if max_op <= 0:
            raise ValueError("max_op must be positive")
        rng = np.random.default_rng(seed)
        plan = cls(seed=seed)
        for _ in range(nfaults):
            kind = kinds[int(rng.integers(len(kinds)))]
            plan.add(FaultSpec(kind, op=int(rng.integers(max_op)), pattern=pattern))
        return plan

    # -- firing ------------------------------------------------------------

    def take(self, op_index: int, name: str, op_type: str) -> FaultSpec | None:
        """The first armed spec eligible for this operation, marked fired.

        The caller (the faulty device) is responsible for actually
        applying the fault; marking here keeps every spec one-shot.
        """
        for spec in self.specs:
            if spec.eligible(op_index, name, op_type):
                spec.fired_at = op_index
                return spec
        return None

    def rng_for(self, op_index: int) -> np.random.Generator:
        """Deterministic generator for details decided at fire time."""
        return np.random.default_rng((self.seed << 20) ^ 0x5EED ^ op_index)

    @property
    def fired(self) -> list[FaultSpec]:
        return [s for s in self.specs if s.fired]

    @property
    def unfired(self) -> list[FaultSpec]:
        return [s for s in self.specs if not s.fired]

    def __len__(self) -> int:
        return len(self.specs)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.seed}, specs={self.specs!r})"
