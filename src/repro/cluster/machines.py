"""Named machine configurations for the paper's three testbeds.

A `Machine` bundles the processor profile, transport, topology, process
placement, and per-node plain-write storage bandwidth.  The write-phase
cost model consumes these; `SimCluster` uses them only for labeling (its
byte/message accounting is exact and machine-independent).

Calibrated per-machine constants (see EXPERIMENTS.md):

* ``storage_bw_per_node`` — Narwhal's effective per-node write bandwidth
  (~125 MB/s, its NIC line rate, since storage is remote).
* ``insitu_shuffle_efficiency`` — fraction of the microbenchmark shuffle
  bandwidth achievable while the application is also computing and writing
  (Fig. 10: busy KNL nodes shuffle far below their microbenchmark plateau).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..net.cpu import CPUS, TRANSPORTS, CpuProfile, TransportProfile
from ..net.topology import ARIES_DRAGONFLY, NARWHAL_FATTREE, DragonflyTopology, FatTreeTopology

__all__ = ["Machine", "MACHINES", "NARWHAL", "TRINITY_HASWELL", "TRINITY_KNL", "THETA_KNL"]


@dataclass(frozen=True)
class Machine:
    """One named cluster configuration."""

    name: str
    cpu: CpuProfile
    transport: TransportProfile
    topology: FatTreeTopology | DragonflyTopology
    ppn: int
    storage_bw_per_node: float
    insitu_shuffle_efficiency: float = 1.0

    def __post_init__(self):
        if self.ppn < 1:
            raise ValueError("ppn must be >= 1")
        if self.storage_bw_per_node <= 0:
            raise ValueError("storage_bw_per_node must be positive")
        if not 0 < self.insitu_shuffle_efficiency <= 1:
            raise ValueError("insitu_shuffle_efficiency must be in (0, 1]")

    def with_transport(self, transport: str | TransportProfile) -> "Machine":
        """Same machine over a different transport (Fig. 10b: GNI vs TCP)."""
        tr = TRANSPORTS[transport] if isinstance(transport, str) else transport
        return replace(self, transport=tr, name=f"{self.name}+{tr.name}")

    def with_storage_bandwidth(self, per_node: float) -> "Machine":
        """Same machine with a different storage allocation (Fig. 10 x-axis)."""
        return replace(self, storage_bw_per_node=per_node)

    def nnodes_for(self, nprocs: int) -> int:
        return -(-nprocs // self.ppn)


# CMU Narwhal: 4-core nodes, 1000 Mbps Ethernet, oversubscribed fat tree
# (paper §V-A).  Storage is reached over the NIC, so plain-write bandwidth
# per node is the NIC line rate.
NARWHAL = Machine(
    name="narwhal",
    cpu=CPUS["narwhal"],
    transport=TRANSPORTS["ethernet-1g"],
    topology=NARWHAL_FATTREE,
    ppn=4,
    storage_bw_per_node=125e6,
)

# LANL Trinity Haswell partition: 32-core nodes on Aries/GNI (§V-B).
TRINITY_HASWELL = Machine(
    name="trinity-haswell",
    cpu=CPUS["haswell"],
    transport=TRANSPORTS["gni"],
    topology=ARIES_DRAGONFLY,
    ppn=32,
    storage_bw_per_node=170e6,  # overridden per burst-buffer allocation
    insitu_shuffle_efficiency=0.8,
)

# LANL Trinity KNL partition: 68-core manycore nodes (§V-B).
TRINITY_KNL = Machine(
    name="trinity-knl",
    cpu=CPUS["trinity-knl"],
    transport=TRANSPORTS["gni"],
    topology=ARIES_DRAGONFLY,
    ppn=64,
    storage_bw_per_node=170e6,  # overridden per burst-buffer allocation
    insitu_shuffle_efficiency=0.45,
)

# ANL Theta: KNL-only machine used in the Fig. 1 microbenchmarks.
THETA_KNL = Machine(
    name="theta-knl",
    cpu=CPUS["theta-knl"],
    transport=TRANSPORTS["gni"],
    topology=ARIES_DRAGONFLY,
    ppn=64,
    storage_bw_per_node=170e6,
    insitu_shuffle_efficiency=0.45,
)

MACHINES: dict[str, Machine] = {
    m.name: m for m in (NARWHAL, TRINITY_HASWELL, TRINITY_KNL, THETA_KNL)
}
