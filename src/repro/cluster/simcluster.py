"""In-process simulated cluster: real pipelines, exact accounting.

`SimCluster` runs one `WriterState` + `ReceiverState` pair per rank over an
in-memory transport.  Everything the paper *counts* — RPC messages, bytes
shuffled, bytes stored, per-partition index sizes — is measured from real
execution of the real data structures; everything the paper *times* at
scale comes from the analytic model in `repro.core.costmodel`, fed with
these counts.

Typical use::

    cluster = SimCluster(nranks=8, fmt=FMT_FILTERKV, value_bytes=56)
    cluster.run_epoch(batches_per_rank)      # generate + shuffle + persist
    stats = cluster.stats                    # messages, bytes, table sizes
    engine = cluster.query_engine()          # read path over the output
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.auxtable import AuxBackendPolicy
from ..core.formats import FMT_FILTERKV, FormatSpec
from ..core.kv import KVBatch, random_kv_batch
from ..core.partitioning import HashPartitioner
from ..core.pipeline import Envelope, ReceiverState, WriterState
from ..core.routing import DirectRouter, ThreeHopRouter
from ..faults import FaultPlan, FaultyStorageDevice
from ..obs import MetricsRegistry, active
from ..storage.blockio import DeviceProfile, StorageDevice
from ..storage.manifest import Manifest, RecoveryReport

__all__ = ["SimCluster", "ClusterStats"]


@dataclass(frozen=True)
class ClusterStats:
    """Exact counts from one epoch of execution."""

    nranks: int
    records: int
    rpc_messages: int
    shuffle_bytes: int
    storage_bytes: int
    local_storage_bytes: int
    remote_storage_bytes: int
    aux_bytes: int
    local_messages: int = 0

    @property
    def shuffle_bytes_per_record(self) -> float:
        return self.shuffle_bytes / self.records if self.records else 0.0

    @property
    def storage_bytes_per_record(self) -> float:
        return self.storage_bytes / self.records if self.records else 0.0


class SimCluster:
    """A parallel job of ``nranks`` processes executing one output burst."""

    def __init__(
        self,
        nranks: int,
        fmt: FormatSpec = FMT_FILTERKV,
        value_bytes: int = 56,
        batch_bytes: int = 16384,
        device_profile: DeviceProfile | None = None,
        device: StorageDevice | None = None,
        records_hint: int | None = None,
        block_size: int = 1 << 20,
        epoch: int = 0,
        seed: int = 0,
        routing: str = "direct",
        ppn: int = 1,
        spill_budget_bytes: int | None = None,
        bulk: bool = True,
        defer_aux: bool = False,
        aux_policy: AuxBackendPolicy | None = None,
        faults: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
        parallel: str = "off",
        pool=None,
    ):
        if nranks < 2:
            raise ValueError("need at least 2 ranks to partition data")
        if routing not in ("direct", "3hop"):
            raise ValueError(f"routing must be 'direct' or '3hop', got {routing!r}")
        if faults is not None and device is not None:
            raise ValueError("pass faults= or a prebuilt device=, not both")
        if parallel not in ("off", "process"):
            raise ValueError(f"parallel must be 'off' or 'process', got {parallel!r}")
        if parallel == "process":
            if pool is None:
                raise ValueError("parallel='process' needs a WorkerPool (pool=)")
            if routing != "direct":
                raise ValueError("parallel='process' supports routing='direct' only")
            if faults is not None:
                raise ValueError(
                    "parallel='process' cannot inject device faults (workers "
                    "run on mirror devices); use PoolFaultPlan for worker crashes"
                )
        self.nranks = nranks
        self.fmt = fmt
        self.value_bytes = value_bytes
        self.batch_bytes = batch_bytes
        self.epoch = epoch
        self.seed = seed
        self.bulk = bulk
        self.defer_aux = defer_aux
        self.aux_policy = aux_policy
        self.metrics = active(metrics)
        if device is not None:
            self.device = device
        elif faults is not None:
            self.device = FaultyStorageDevice(faults, device_profile, metrics=self.metrics)
        else:
            self.device = StorageDevice(device_profile, metrics=self.metrics)
        self.partitioner = HashPartitioner(nranks)
        self.parallel = parallel
        self.pool = pool
        self._parallel_streams: list[list[Envelope]] | None = None
        self._routing = routing
        self._ppn = ppn
        self._block_size = block_size
        self._spill_budget_bytes = spill_budget_bytes
        self._hint_per_rank = (
            max(64, int(records_hint // nranks * 1.2)) if records_hint else None
        )
        self._build_states()

    def _build_states(self) -> None:
        """(Re)create the transport and per-rank pipeline states.

        Called at construction and by `recover` — after a crash the old
        writer/receiver states hold half-built tables referencing extents
        recovery may have swept, so the epoch restarts from fresh state.
        """
        if self._routing == "3hop":
            self.router = ThreeHopRouter(
                self._deliver, ppn=self._ppn, batch_bytes=self.batch_bytes
            )
        else:
            self.router = DirectRouter(self._deliver, ppn=self._ppn)
        if self.parallel == "process":
            # Pipelines run inside pool workers; `put` buffers batches and
            # `finish_epoch` fans them out.  Building the real states here
            # would also create their extents, colliding with the extents
            # the workers ship back.
            self._pending: list[list[KVBatch]] = [[] for _ in range(self.nranks)]
            self._put_order: list[int] = []
            self.receivers = []
            self.writers = []
            self._finished = False
            return
        self.receivers = [
            ReceiverState(
                r,
                self.nranks,
                self.fmt,
                self.device,
                self.value_bytes,
                epoch=self.epoch,
                block_size=self._block_size,
                capacity_hint=self._hint_per_rank,
                aux_seed=self.seed,
                bulk=self.bulk,
                defer_aux=self.defer_aux,
                aux_policy=self.aux_policy,
                metrics=self.metrics,
            )
            for r in range(self.nranks)
        ]
        self.writers = [
            WriterState(
                r,
                self.fmt,
                self.partitioner,
                self.device,
                self.value_bytes,
                send=self._send,
                batch_bytes=self.batch_bytes,
                epoch=self.epoch,
                block_size=self._block_size,
                spill_budget_bytes=self._spill_budget_bytes,
                bulk=self.bulk,
                metrics=self.metrics,
            )
            for r in range(self.nranks)
        ]
        self._finished = False

    # -- transport ---------------------------------------------------------

    def _send(self, env: Envelope) -> None:
        self.router.send(env)

    def _deliver(self, env: Envelope) -> None:
        if self._parallel_streams is not None:
            # Replay mode: the router charged the wire; the envelope joins
            # its destination's stream for the receiver-phase fan-out.
            self._parallel_streams[env.dest].append(env)
            return
        self.receivers[env.dest].deliver(env)

    @property
    def rpc_messages(self) -> int:
        """Wire messages (node-local hops are shared-memory, not RPCs)."""
        return self.router.wire_messages

    @property
    def shuffle_bytes(self) -> int:
        return self.router.wire_bytes

    # -- driving -----------------------------------------------------------

    def put(self, rank: int, batch: KVBatch) -> None:
        """Feed one generated batch into a rank's writer."""
        if self.parallel == "process":
            # Buffered, not executed: the pool replays every put in this
            # exact global order so the output is byte-identical to serial.
            self._pending[rank].append(batch)
            self._put_order.append(rank)
            return
        self.writers[rank].put_batch(batch)

    def finish_epoch(self) -> None:
        """Flush all writers, then persist every partition."""
        if self._finished:
            raise ValueError("epoch already finished")
        if self.parallel == "process":
            from ..parallel.ingest import run_parallel_epoch  # avoid cycle

            run_parallel_epoch(self)
            self._finished = True
            return
        for w in self.writers:
            w.finish()
        self.router.flush()  # ship any aggregates the 3-hop path buffered
        for r in self.receivers:
            r.finish()
        self._finished = True

    # -- fault injection ---------------------------------------------------

    def crash_at(self, op: int, pattern: str | None = None) -> None:
        """Arm a hard crash at device operation ``op`` (see `FaultPlan`).

        Requires the cluster to have been built with ``faults=``; the crash
        surfaces as `repro.faults.CrashPoint` from whatever pipeline call
        performs that operation.
        """
        if not isinstance(self.device, FaultyStorageDevice):
            raise ValueError(
                "crash_at needs a fault-injecting device; construct with faults=FaultPlan()"
            )
        self.device.plan.crash_at(op, pattern)

    def recover(self, deep: bool = False) -> RecoveryReport:
        """Bring the cluster back after a `CrashPoint` interrupted an epoch.

        Revives the (crashed) device, runs `Manifest.recover` against it —
        committed epochs are validated and kept, the interrupted epoch's
        partial extents are swept — and rebuilds fresh per-rank pipeline
        states so the epoch can be rerun from the start.
        """
        if isinstance(self.device, FaultyStorageDevice):
            self.device.revive()
        _, report = Manifest.recover(self.device, deep=deep, metrics=self.metrics)
        self._build_states()
        return report

    def run_epoch(self, records_per_rank: int, batch_records: int = 4096) -> ClusterStats:
        """Generate random KV pairs on every rank and run the full burst."""
        rng = np.random.default_rng(self.seed)
        for rank in range(self.nranks):
            remaining = records_per_rank
            while remaining > 0:
                n = min(batch_records, remaining)
                self.put(rank, random_kv_batch(n, self.value_bytes, rng))
                remaining -= n
        self.finish_epoch()
        return self.stats

    # -- results -----------------------------------------------------------

    @property
    def stats(self) -> ClusterStats:
        if not self._finished:
            raise ValueError("epoch not finished yet")
        local = sum(w.local_storage_bytes for w in self.writers)
        aux = sum(
            r.aux.size_bytes for r in self.receivers if r.aux is not None
        )
        total = self.device.total_bytes_stored()
        return ClusterStats(
            nranks=self.nranks,
            records=sum(w.records_written for w in self.writers),
            rpc_messages=self.rpc_messages,
            shuffle_bytes=self.shuffle_bytes,
            storage_bytes=total,
            local_storage_bytes=local,
            remote_storage_bytes=total - local,
            aux_bytes=aux,
            local_messages=self.router.local_messages,
        )

    def aux_backends(self) -> str | None:
        """The aux backend(s) this epoch's partitions sealed with — one name
        when uniform (the common case), comma-joined when the flush-time
        policy picked differently per rank.  None for formats without aux."""
        names = sorted({r.aux.backend for r in self.receivers if r.aux is not None})
        return ",".join(names) if names else None

    def metrics_rollup(self) -> MetricsRegistry:
        """Cluster-wide view of the per-rank series (``rank`` label
        dropped, per-rank counters summed)."""
        return self.metrics.rollup("rank")

    def query_engine(self):
        """Read path over this cluster's persisted output."""
        from ..core.reader import QueryEngine  # local import: avoid cycle

        if not self._finished:
            raise ValueError("finish the epoch before querying")
        return QueryEngine(
            device=self.device,
            fmt=self.fmt,
            nranks=self.nranks,
            partitioner=self.partitioner,
            aux_tables=[r.aux for r in self.receivers],
            epoch=self.epoch,
            metrics=self.metrics,
        )
