"""Burst-buffer allocations: compute-to-storage node ratios (Fig. 10).

Trinity pairs roughly one burst-buffer node with every 32 compute nodes
(§V-A); jobs can request larger allocations.  Fig. 10's x-axis sweeps the
compute:storage ratio from 32:1 down to 12:1, which at the paper's job
size corresponds to 11–28 GB/s of aggregate storage bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BurstBufferAllocation", "FIG10_RATIOS"]

# Per-BB-node sustained write bandwidth calibrated so the paper's ratios
# land on its reported 11/17/21/28 GB/s aggregate figures.
_BB_NODE_BW = 5.5e9


@dataclass(frozen=True)
class BurstBufferAllocation:
    """A job's burst-buffer share."""

    compute_nodes: int
    ratio: float  # compute nodes per burst-buffer node
    bb_node_bandwidth: float = _BB_NODE_BW

    def __post_init__(self):
        if self.compute_nodes < 1:
            raise ValueError("compute_nodes must be >= 1")
        if self.ratio <= 0:
            raise ValueError("ratio must be positive")

    @property
    def bb_nodes(self) -> float:
        return self.compute_nodes / self.ratio

    @property
    def aggregate_bandwidth(self) -> float:
        """Total storage bandwidth available to the job (bytes/s)."""
        return self.bb_nodes * self.bb_node_bandwidth

    @property
    def bandwidth_per_compute_node(self) -> float:
        return self.aggregate_bandwidth / self.compute_nodes


# The four compute:storage ratios on Fig. 10's x-axis.
FIG10_RATIOS = (32.0, 20.0, 16.0, 12.0)
