"""Cluster substrate: machine configs, burst buffers, simulated cluster."""

from .burstbuffer import FIG10_RATIOS, BurstBufferAllocation
from .machines import MACHINES, NARWHAL, THETA_KNL, TRINITY_HASWELL, TRINITY_KNL, Machine
from .simcluster import ClusterStats, SimCluster

__all__ = [
    "FIG10_RATIOS",
    "BurstBufferAllocation",
    "MACHINES",
    "NARWHAL",
    "THETA_KNL",
    "TRINITY_HASWELL",
    "TRINITY_KNL",
    "Machine",
    "ClusterStats",
    "SimCluster",
]
