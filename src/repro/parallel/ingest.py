"""Process-parallel ingest: rank pipelines fanned across the worker pool.

`SimCluster(parallel="process", pool=...)` buffers `put` calls instead of
executing them, then `run_parallel_epoch` replays the epoch in two pool
phases mirroring the pipeline's two sides:

1. **Writers** — each worker runs the real `WriterState` for a stripe of
   ranks over a `MirrorDevice`, consuming the buffered batches (shipped as
   one columnar shared-memory blob per task).  Instead of delivering
   envelopes, workers record them grouped *per put call* (plus one flush
   group from `finish`).
2. **Receivers** — the parent replays the recorded groups through its own
   router in the exact global order the `put` calls happened (and then
   flush groups in rank order, as `finish_epoch` would), which both charges
   the wire counters identically and produces per-destination envelope
   streams.  Those streams ship to receiver workers running the real
   `ReceiverState` per rank.

Because every worker executes the unmodified pipeline code on batches in
the same order the serial path would, the produced extents are
byte-identical to ``parallel="off"``; worker I/O counters and metric
registries travel back and fold into the parent's, so the *accounting* is
identical too.  That equivalence is what the tier-1 parallel suite pins.

Restrictions: ``routing="direct"`` only (the 3-hop aggregator's buffers
are cross-rank state that cannot be striped), and no fault injection
(``faults=`` arms a device the workers cannot see).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.formats import FORMATS
from ..core.kv import KVBatch
from ..core.partitioning import HashPartitioner
from ..core.pipeline import Envelope, ReceiverState, WriterState, aux_table_name
from ..core.auxtable import aux_from_blob
from ..obs import NULL_REGISTRY, MetricsRegistry
from ..storage.envelope import unseal
from ..storage.log import ValueLog
from .shm import BlobMap, MirrorDevice, ShmBlob, pack_arrays, unpack_arrays

__all__ = ["run_parallel_epoch"]


class _WriterView:
    """Post-epoch stand-in for a `WriterState`: just the numbers stats reads."""

    __slots__ = ("rank", "records_written", "local_storage_bytes")

    def __init__(self, rank, records_written, local_storage_bytes):
        self.rank = rank
        self.records_written = records_written
        self.local_storage_bytes = local_storage_bytes


class _ReceiverView:
    """Post-epoch stand-in for a `ReceiverState`: the aux table and counts."""

    __slots__ = ("rank", "aux", "records_received")

    def __init__(self, rank, aux, records_received):
        self.rank = rank
        self.aux = aux
        self.records_received = records_received


def _worker_metrics(cfg) -> tuple[MetricsRegistry | None, MetricsRegistry | None]:
    """(pipeline registry, device registry) mirroring the parent's wiring:
    one object when the cluster and its device share a registry, separate
    ones when the device carries its own (the store case)."""
    metrics = MetricsRegistry("pool-worker") if cfg["metrics_on"] else None
    if cfg["shared_metrics"]:
        return metrics, metrics
    dev = MetricsRegistry("pool-worker-dev") if cfg["dev_metrics_on"] else None
    return metrics, dev


def _writer_task(p: dict) -> dict:
    """Pool task: run `WriterState` for a stripe of ranks, recording envelopes."""
    cfg = p["cfg"]
    fmt = FORMATS[cfg["fmt"]]
    metrics, dev_metrics = _worker_metrics(cfg)
    device = MirrorDevice(cfg["profile"], metrics=dev_metrics)
    for name, base in p["vlog_base"].items():
        device.set_base(name, base)
    partitioner = HashPartitioner(cfg["nranks"])
    arrays = (
        unpack_arrays(p["batches"].view(), p["array_metas"]) if p["array_metas"] else []
    )
    shipped: list[Envelope] = []
    per_rank: dict[int, dict] = {}
    payload_chunks: list = []
    for i, rank in enumerate(p["ranks"]):
        keys, values = arrays[2 * i], arrays[2 * i + 1]
        w = WriterState(
            rank,
            fmt,
            partitioner,
            device,
            cfg["value_bytes"],
            send=shipped.append,
            batch_bytes=cfg["batch_bytes"],
            epoch=cfg["epoch"],
            block_size=cfg["block_size"],
            spill_budget_bytes=cfg["spill_budget_bytes"],
            bulk=cfg["bulk"],
            metrics=metrics,
        )
        groups: list[list[tuple[int, int, int]]] = []

        def _take_group():
            metas = [(e.dest, e.nrecords, len(e.payload)) for e in shipped]
            payload_chunks.extend(e.payload for e in shipped)
            shipped.clear()
            groups.append(metas)

        off = 0
        for n in p["counts"][i]:
            w.put_batch(KVBatch(keys[off : off + n], values[off : off + n]))
            off += n
            _take_group()
        w.finish()
        _take_group()  # flush group, replayed by the parent in rank order
        per_rank[rank] = {
            "groups": groups,
            "records_written": w.records_written,
            "local_storage_bytes": w.local_storage_bytes,
        }
    out = {
        "ranks": p["ranks"],
        "per_rank": per_rank,
        "payload": ShmBlob.pack(payload_chunks),
        "extents": BlobMap.pack(device.local_extents()),
        "append_names": set(device._base),
        "io": device.counters,
        "metrics": metrics,
        "dev_metrics": dev_metrics if dev_metrics is not metrics else None,
    }
    p["batches"].release()  # detach quietly before GC tears the frame down
    return out


def _receiver_task(p: dict) -> dict:
    """Pool task: run `ReceiverState` for a stripe of ranks over its streams."""
    cfg = p["cfg"]
    fmt = FORMATS[cfg["fmt"]]
    metrics, dev_metrics = _worker_metrics(cfg)
    device = MirrorDevice(cfg["profile"], metrics=dev_metrics)
    view = p["envs"].view() if p["envs"] is not None else memoryview(b"")
    off = 0
    received = {}
    for rank in p["ranks"]:
        r = ReceiverState(
            rank,
            cfg["nranks"],
            fmt,
            device,
            cfg["value_bytes"],
            epoch=cfg["epoch"],
            block_size=cfg["block_size"],
            capacity_hint=cfg["capacity_hint"],
            aux_seed=cfg["aux_seed"],
            bulk=cfg["bulk"],
            defer_aux=cfg["defer_aux"],
            aux_policy=cfg["aux_policy"],
            metrics=metrics,
        )
        for src, nrec, nb in p["env_metas"][rank]:
            r.deliver(Envelope(src, rank, view[off : off + nb], nrec))
            off += nb
        r.finish()
        received[rank] = r.records_received
    out = {
        "ranks": p["ranks"],
        "received": received,
        "extents": BlobMap.pack(device.local_extents()),
        "io": device.counters,
        "metrics": metrics,
        "dev_metrics": dev_metrics if dev_metrics is not metrics else None,
    }
    p["envs"].release()
    return out


def run_parallel_epoch(cluster) -> None:
    """Execute a buffered `SimCluster` epoch across ``cluster.pool``."""
    pool = cluster.pool
    nranks = cluster.nranks
    nworkers = min(pool.workers, nranks)
    stripes = [list(range(w, nranks, nworkers)) for w in range(nworkers)]
    metrics_on = cluster.metrics is not NULL_REGISTRY
    cfg = {
        "fmt": cluster.fmt.name,
        "nranks": nranks,
        "value_bytes": cluster.value_bytes,
        "batch_bytes": cluster.batch_bytes,
        "epoch": cluster.epoch,
        "block_size": cluster._block_size,
        "spill_budget_bytes": cluster._spill_budget_bytes,
        "bulk": cluster.bulk,
        "profile": cluster.device.profile,
        "metrics_on": metrics_on,
        "dev_metrics_on": cluster.device.metrics is not NULL_REGISTRY,
        "shared_metrics": cluster.metrics is cluster.device.metrics,
        "capacity_hint": cluster._hint_per_rank,
        "aux_seed": cluster.seed,
        "defer_aux": cluster.defer_aux,
        "aux_policy": cluster.aux_policy,
    }

    # -- phase 1: writers --------------------------------------------------
    payloads = []
    for ranks in stripes:
        arrays, counts = [], []
        for rank in ranks:
            batches = cluster._pending[rank]
            counts.append([len(b) for b in batches])
            if batches:
                arrays.append(np.concatenate([b.keys for b in batches]))
                arrays.append(np.concatenate([b.values for b in batches], axis=0))
            else:
                arrays.append(np.zeros(0, dtype=np.uint64))
                arrays.append(np.zeros((0, cluster.value_bytes), dtype=np.uint8))
        metas, chunks = pack_arrays(arrays)
        blob = ShmBlob.pack(chunks)
        if blob.shared:
            pool.note_shm_bytes(blob.nbytes)
        vlog_base = {}
        if cluster.fmt.name == "dataptr":
            for rank in ranks:
                name = ValueLog.filename(rank)
                vlog_base[name] = (
                    cluster.device.file_size(name) if cluster.device.exists(name) else 0
                )
        payloads.append(
            {
                "cfg": cfg,
                "ranks": ranks,
                "counts": counts,
                "array_metas": metas,
                "batches": blob,
                "vlog_base": vlog_base,
            }
        )
    results = pool.run(_writer_task, payloads)
    for p in payloads:
        if p["batches"].shared:
            pool.drop_shm_bytes(p["batches"].nbytes)
        p["batches"].release(unlink=True)

    # -- replay: exact serial envelope order through the parent router -----
    group_queues: dict[int, deque] = {}
    for res in results:
        pv = res["payload"].view()
        off = 0
        for rank in res["ranks"]:
            info = res["per_rank"][rank]
            groups = deque()
            for gmeta in info["groups"]:
                envs = []
                for dest, nrec, nb in gmeta:
                    envs.append(Envelope(rank, dest, pv[off : off + nb], nrec))
                    off += nb
                groups.append(envs)
            group_queues[rank] = groups
    streams: list[list[Envelope]] = [[] for _ in range(nranks)]
    cluster._parallel_streams = streams
    try:
        for rank in cluster._put_order:
            for env in group_queues[rank].popleft():
                cluster.router.send(env)
        for rank in range(nranks):  # finish_epoch flushes writers in rank order
            for env in group_queues[rank].popleft():
                cluster.router.send(env)
    finally:
        cluster._parallel_streams = None

    writer_views = {}
    for res in results:
        ext = res["extents"]
        for name in ext.names():
            cluster.device.adopt_extent(
                name, ext.get(name), append=name in res["append_names"]
            )
        ext.release(unlink=True)
        cluster.device.absorb_counters(res["io"])
        if res["metrics"] is not None:
            cluster.metrics.merge(res["metrics"])
        if res["dev_metrics"] is not None:
            cluster.device.metrics.merge(res["dev_metrics"])
        for rank in res["ranks"]:
            info = res["per_rank"][rank]
            writer_views[rank] = _WriterView(
                rank, info["records_written"], info["local_storage_bytes"]
            )

    # -- phase 2: receivers ------------------------------------------------
    payloads2 = []
    for ranks in stripes:
        env_metas, chunks = {}, []
        for rank in ranks:
            ms = []
            for env in streams[rank]:
                ms.append((env.src, env.nrecords, len(env.payload)))
                chunks.append(env.payload)
            env_metas[rank] = ms
        blob = ShmBlob.pack(chunks)  # copies out of the phase-1 payload blobs
        if blob.shared:
            pool.note_shm_bytes(blob.nbytes)
        payloads2.append(
            {"cfg": cfg, "ranks": ranks, "env_metas": env_metas, "envs": blob}
        )
    for res in results:  # phase-2 blobs hold copies; the originals can go
        res["payload"].release(unlink=True)
    results2 = pool.run(_receiver_task, payloads2)
    for p in payloads2:
        if p["envs"].shared:
            pool.drop_shm_bytes(p["envs"].nbytes)
        p["envs"].release(unlink=True)

    received = {}
    for res in results2:
        ext = res["extents"]
        for name in ext.names():
            cluster.device.adopt_extent(name, ext.get(name))
        ext.release(unlink=True)
        cluster.device.absorb_counters(res["io"])
        if res["metrics"] is not None:
            cluster.metrics.merge(res["metrics"])
        if res["dev_metrics"] is not None:
            cluster.device.metrics.merge(res["dev_metrics"])
        received.update(res["received"])

    # -- rebuild in-memory views the parent hands out ----------------------
    receiver_views = []
    for rank in range(nranks):
        aux = None
        if cluster.fmt.name == "filterkv":
            # Reload the sealed blob bit-exactly, without charging reads the
            # serial path never performs (its aux object stays in memory).
            raw = cluster.device._require(aux_table_name(cluster.epoch, rank)).getvalue()
            aux = aux_from_blob(
                unseal(raw),
                metrics=cluster.metrics if metrics_on else None,
                metric_labels={"rank": str(rank)},
            )
        receiver_views.append(_ReceiverView(rank, aux, received.get(rank, 0)))
    cluster.writers = [writer_views[r] for r in range(nranks)]
    cluster.receivers = receiver_views
    cluster._pending = [[] for _ in range(nranks)]
    cluster._put_order = []
