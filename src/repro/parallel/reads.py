"""Process-parallel bulk reads: `get_many` sharded across the worker pool.

The parent packs every live ``part.* / aux.* / vlog.*`` extent into one
shared-memory `BlobMap` (a *store snapshot*, refreshed only when the
store's epoch set or compaction generation changes) and splits the key
array into contiguous chunks, one probe task per pool worker.  Workers
cache the snapshot process-globally: the first task after a snapshot
change maps the segment into a `MirrorDevice` and reloads the aux tables;
every later task reuses them and pays only the key shipping.

Each probe task runs a *fresh uncached* `QueryEngine` over the worker's
mirror, so a chunk charges exactly what the same chunk executed serially
would charge — `serial_get_many` runs the identical chunk plan in-process
and is the oracle the equivalence tests compare against: values, per-key
``found`` / ``partitions_searched``, I/O counters, and metric counter
sums all match.  Worker registries are long-lived, so tasks ship
`MetricsRegistry.delta` increments rather than whole registries.
"""

from __future__ import annotations

import itertools
import os

import numpy as np

from ..core.auxtable import aux_from_blob
from ..core.formats import FORMATS
from ..core.partitioning import HashPartitioner
from ..core.pipeline import aux_table_name
from ..core.reader import QueryEngine
from ..obs import MetricsRegistry, NULL_REGISTRY, active
from ..storage.envelope import unseal
from .shm import BlobMap, MirrorDevice, ShmBlob

__all__ = ["PooledReads"]

_mirror_ids = itertools.count(1)

# Worker-process-global snapshot cache: store key -> mounted mirror state.
# One parent store maps to at most one live mirror per worker; a task
# carrying a newer mirror id evicts the stale mount.
_WORKER_MIRRORS: dict[str, dict] = {}


def _load_aux_tables(raw_blobs: list[bytes], nranks: int) -> list:
    """Rebuild one epoch's aux tables from their sealed extents.

    Used identically by probe workers and the serial oracle (metrics-free:
    probe costs are charged by the engine's ``_fetch_aux``, not by the
    in-memory table object), so both sides count the same things.
    """
    return [
        aux_from_blob(unseal(raw), metric_labels={"rank": str(rank)})
        for rank, raw in enumerate(raw_blobs)
    ]


def _mount_mirror(p: dict) -> dict:
    ent = _WORKER_MIRRORS.get(p["store_key"])
    if ent is not None and ent["mirror_id"] == p["mirror_id"]:
        return ent
    if ent is not None:
        ent["blobmap"].release()
    cfg = p["cfg"]
    # Mirror the parent's registry arrangement: the engine registry and the
    # device registry may be one object (SimCluster-style) or two (a store
    # device with its own registry) — worker deltas must land in the same
    # parent registries the serial path charges.
    metrics = MetricsRegistry("pool-worker") if cfg["metrics_on"] else None
    if cfg["shared_metrics"]:
        dev_metrics = metrics
    else:
        dev_metrics = (
            MetricsRegistry("pool-worker-dev") if cfg["dev_metrics_on"] else None
        )
    device = MirrorDevice(cfg["profile"], metrics=dev_metrics)
    bm: BlobMap = p["extents"]
    for name in bm.names():
        device.map_extent(name, bm.get(name))
    ent = {
        "mirror_id": p["mirror_id"],
        "device": device,
        "blobmap": bm,
        "metrics": metrics,
        "dev_metrics": dev_metrics,
        "aux": {},
    }
    _WORKER_MIRRORS[p["store_key"]] = ent
    return ent


def _mirror_aux(ent: dict, cfg: dict, epoch: int):
    aux = ent["aux"].get(epoch)
    if aux is None and cfg["fmt"] == "filterkv":
        device: MirrorDevice = ent["device"]
        raw = [
            bytes(device._snapshot[aux_table_name(epoch, rank)])
            for rank in range(cfg["nranks"])
        ]
        aux = _load_aux_tables(raw, cfg["nranks"])
        ent["aux"][epoch] = aux
    return aux


def _probe_task(p: dict) -> dict:
    """Pool task: run one key chunk through a fresh engine on the mirror."""
    ent = _mount_mirror(p)
    cfg = p["cfg"]
    device: MirrorDevice = ent["device"]
    metrics = ent["metrics"]
    dev_metrics = ent["dev_metrics"]
    marks = metrics.checkpoint() if metrics is not None else None
    dev_marks = (
        dev_metrics.checkpoint()
        if dev_metrics is not None and dev_metrics is not metrics
        else None
    )
    before = device.counters.snapshot()
    engine = QueryEngine(
        device=device,
        fmt=FORMATS[cfg["fmt"]],
        nranks=cfg["nranks"],
        partitioner=HashPartitioner(cfg["nranks"]),
        aux_tables=_mirror_aux(ent, cfg, p["epoch"]),
        epoch=p["epoch"],
        metrics=metrics,
    )
    keys = np.frombuffer(p["keys"].view(), dtype=np.uint64)
    values, stats = engine.get_many(keys)
    out = {
        "values": values,
        "stats": stats,
        "io": device.counters.delta(before),
        "metrics": metrics.delta(marks) if metrics is not None else None,
        "dev_metrics": (
            dev_metrics.delta(dev_marks) if dev_marks is not None else None
        ),
    }
    p["keys"].release()
    return out


class PooledReads:
    """Sharded `get_many` for one `MultiEpochStore` over a `WorkerPool`."""

    def __init__(self, store, pool, min_keys: int = 256,
                 metrics: MetricsRegistry | None = None):
        if min_keys < 1:
            raise ValueError("min_keys must be >= 1")
        self.store = store
        self.pool = pool
        self.min_keys = min_keys
        self.metrics = active(metrics)
        self._store_key = f"{os.getpid()}.{id(store)}"
        self._token = None
        self._mirror_id = None
        self._extents: BlobMap | None = None
        self._oracle_aux: dict[int, list] = {}

    # -- snapshot management ----------------------------------------------

    def _current_token(self):
        return (self.store.compactions, tuple(self.store.epochs))

    def _snapshot(self) -> BlobMap:
        """The live-extent blob, refreshed when the store's state changed."""
        token = self._current_token()
        if self._extents is None or token != self._token:
            if self._extents is not None:
                if self._extents.blob.shared:
                    self.pool.drop_shm_bytes(self._extents.nbytes)
                self._extents.release(unlink=True)
            device = self.store.device
            items = {
                name: device._require(name).getbuffer()
                for name in device.list_files()
                if name.startswith(("part.", "aux.", "vlog."))
            }
            self._extents = BlobMap.pack(items)
            if self._extents.blob.shared:
                self.pool.note_shm_bytes(self._extents.nbytes)
            self._token = token
            self._mirror_id = next(_mirror_ids)
            self._oracle_aux.clear()
        return self._extents

    def release(self) -> None:
        """Drop the current snapshot (workers evict on next task)."""
        if self._extents is not None:
            if self._extents.blob.shared:
                self.pool.drop_shm_bytes(self._extents.nbytes)
            self._extents.release(unlink=True)
            self._extents = None
            self._token = None

    # -- planning ----------------------------------------------------------

    def _chunks(self, n: int) -> list[tuple[int, int]]:
        """Deterministic contiguous shard plan: one chunk per worker."""
        nshards = min(self.pool.workers, n)
        size = -(-n // nshards)
        return [(lo, min(lo + size, n)) for lo in range(0, n, size)]

    def _payloads(self, arr: np.ndarray, epoch: int) -> list[dict]:
        extents = self._snapshot()
        device = self.store.device
        cfg = {
            "fmt": self.store.fmt.name,
            "nranks": self.store.nranks,
            "profile": device.profile,
            "metrics_on": self.metrics is not NULL_REGISTRY,
            "dev_metrics_on": device.metrics is not NULL_REGISTRY,
            "shared_metrics": self.metrics is device.metrics,
        }
        return [
            {
                "store_key": self._store_key,
                "mirror_id": self._mirror_id,
                "extents": extents,
                "cfg": cfg,
                "epoch": epoch,
                "keys": ShmBlob.pack([np.ascontiguousarray(arr[lo:hi])]),
            }
            for lo, hi in self._chunks(arr.size)
        ]

    def _fold(self, results: list[dict]):
        values, stats = [], []
        for res in results:
            self.store.device.absorb_counters(res["io"])
            if res["metrics"] is not None:
                self.metrics.merge(res["metrics"])
            if res["dev_metrics"] is not None:
                self.store.device.metrics.merge(res["dev_metrics"])
            values.extend(res["values"])
            stats.extend(res["stats"])
        return values, stats

    # -- entry points ------------------------------------------------------

    def get_many(self, keys, epoch: int):
        """Pooled bulk point queries at one (resolved) epoch."""
        epoch = self.store.resolve_epoch(epoch)
        arr = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64).ravel())
        if arr.size == 0:
            return [], []
        payloads = self._payloads(arr, epoch)
        return self._fold(self.pool.run(_probe_task, payloads))

    async def get_many_async(self, keys, epoch: int):
        """`get_many` awaitable from an event loop (the serving tier):
        chunks run on the pool while the loop keeps dispatching."""
        import asyncio

        epoch = self.store.resolve_epoch(epoch)
        arr = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64).ravel())
        if arr.size == 0:
            return [], []
        payloads = self._payloads(arr, epoch)
        futures = [
            asyncio.wrap_future(self.pool.submit(_probe_task, p)) for p in payloads
        ]
        return self._fold(list(await asyncio.gather(*futures)))

    def serial_get_many(self, keys, epoch: int):
        """The correctness oracle: the *identical* chunk plan, executed
        in-process against the parent device with the same fresh-engine
        construction.  ``parallel`` and this path must agree exactly —
        values, per-key stats, device counters, and counter sums."""
        epoch = self.store.resolve_epoch(epoch)
        arr = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64).ravel())
        if arr.size == 0:
            return [], []
        self._snapshot()  # same token bookkeeping as the pooled path
        aux = self._oracle_aux.get(epoch)
        if aux is None and self.store.fmt.name == "filterkv":
            raw = [
                self.store.device._require(aux_table_name(epoch, rank)).getvalue()
                for rank in range(self.store.nranks)
            ]
            aux = _load_aux_tables(raw, self.store.nranks)
            self._oracle_aux[epoch] = aux
        metrics = self.metrics if self.metrics is not NULL_REGISTRY else None
        values, stats = [], []
        for lo, hi in self._chunks(arr.size):
            engine = QueryEngine(
                device=self.store.device,
                fmt=self.store.fmt,
                nranks=self.store.nranks,
                partitioner=HashPartitioner(self.store.nranks),
                aux_tables=aux,
                epoch=epoch,
                metrics=metrics,
            )
            vals, st = engine.get_many(arr[lo:hi])
            values.extend(vals)
            stats.extend(st)
        return values, stats
