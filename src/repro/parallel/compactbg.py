"""Background compaction: the k-way merge in a pool worker.

Foreground `MultiEpochStore.compact` blocks its thread for the whole
merge — on an asyncio serving loop (`repro.serve`) that stalls every
in-flight query for the duration.  `compact_in_background` splits the
Compactor's phases across the process boundary instead:

* **prepare** (parent, instant) — pin the source set, copy the manifest,
  build the picklable `MergeSpec`;
* **produce** (worker) — a `MirrorDevice` maps the source partition
  tables straight out of one shared-memory `BlobMap` and runs the exact
  `produce_merged_epoch` the foreground path runs, charging I/O and
  metrics to worker-local accounting;
* **publish** (parent, instant) — adopt the merged extents, fold the
  worker's counters and registry back in, then run the same manifest
  swap + sweep as the foreground path.

The store keeps serving the pre-merge manifest while the worker crunches;
only `publish` (microseconds of parent work) touches shared state.  The
produced dataset, the compaction report, and the merged counter sums are
identical to a foreground `compact` of the same epochs — pinned by the
tier-1 parallel suite.

The store must stay quiescent *structurally* while the merge is out:
reads are fine, but a concurrent `write_epoch`/`compact` would invalidate
the pinned manifest copy, so publishing raises rather than swapping in a
stale view.
"""

from __future__ import annotations

import asyncio

from ..core.compact import CompactionReport, Compactor, produce_merged_epoch
from ..obs import NULL_REGISTRY, MetricsRegistry
from .shm import BlobMap, MirrorDevice

__all__ = ["compact_in_background"]


def _merge_task(p: dict) -> dict:
    """Pool task: run the k-way merge over mirrored source tables."""
    cfg = p["cfg"]
    metrics = MetricsRegistry("pool-worker") if cfg["metrics_on"] else None
    device = MirrorDevice(cfg["profile"], metrics=metrics)
    tables = p["tables"]
    for name in tables.names():
        device.map_extent(name, tables.get(name))
    produced = produce_merged_epoch(p["spec"], device, metrics)
    out = {
        "records_out": produced["records_out"],
        "aux_backends": produced["aux_backends"],
        "extents": BlobMap.pack(device.local_extents()),
        "io": device.counters,
        "metrics": metrics,
    }
    tables.release()  # detach before GC tears the mapping down
    return out


async def compact_in_background(
    store, pool, epochs: list[int] | None = None
) -> CompactionReport | None:
    """Merge ``epochs`` of ``store`` in a pool worker; await the swap.

    Drop-in async equivalent of `MultiEpochStore.compact`: same epoch
    selection (policy pick, else all live), same None-when-nothing-to-do
    contract, same report.  The event loop stays free while the merge
    runs — only prepare/publish execute here.
    """
    if epochs is None:
        if store.compaction_policy is not None:
            epochs = store.compaction_policy.select(store.manifest)
        else:
            epochs = store.epochs if len(store.epochs) >= 2 else None
    if not epochs or len(epochs) < 2:
        return None

    compactor = Compactor(store)
    picked = compactor.validate(list(epochs))
    working, spec = compactor.prepare(picked)
    pinned = (store.compactions, tuple(store.epochs))

    device = store.device
    tables = BlobMap.pack(
        {name: device._require(name).getbuffer() for name in spec.source_tables()}
    )
    if tables.blob.shared:
        pool.note_shm_bytes(tables.nbytes)
    try:
        cfg = {
            "profile": device.profile,
            "metrics_on": device.metrics is not NULL_REGISTRY,
        }
        res = await asyncio.wrap_future(
            pool.submit(_merge_task, {"cfg": cfg, "spec": spec, "tables": tables})
        )
    finally:
        if tables.blob.shared:
            pool.drop_shm_bytes(tables.nbytes)
        tables.release(unlink=True)

    if (store.compactions, tuple(store.epochs)) != pinned:
        res["extents"].release(unlink=True)
        raise RuntimeError(
            "store changed shape during background compaction; merged output discarded"
        )

    # Land the worker's output exactly as the foreground path would have
    # written it: bytes_written is the storage delta from the merged
    # extents, charged I/O travels via the worker's counters.
    bytes_before = device.total_bytes_stored()
    ext = res["extents"]
    for name in ext.names():
        device.adopt_extent(name, ext.get(name))
    ext.release(unlink=True)
    bytes_written = device.total_bytes_stored() - bytes_before
    device.absorb_counters(res["io"])
    if res["metrics"] is not None:
        device.metrics.merge(res["metrics"])

    produced = {
        "records_out": res["records_out"],
        "aux_backends": res["aux_backends"],
    }
    manifest, report = compactor.publish(working, spec, produced, bytes_written)
    store._apply_compaction(manifest, report)
    return report
