"""Zero-copy transport primitives and the worker-side device mirror.

`ShmBlob` is one immutable byte payload crossing the process boundary:
large payloads land in a ``multiprocessing.shared_memory`` segment and
pickle as just the segment name; small ones inline into the task pickle
(a segment per tiny payload would cost more in syscalls than it saves in
copies).  `BlobMap` packs many named payloads — extents, envelope
streams, array columns — into a single blob with an offset index.

Ownership is deliberately simple: whoever consumes a blob last calls
`release(unlink=True)`; the spawn children share the parent's resource
tracker, so a segment orphaned by a crashed worker is reclaimed at
process exit rather than leaking past it.

`MirrorDevice` is what pipeline code runs against inside a worker: a
normal charged `StorageDevice` for everything the task writes, plus

* read-only *snapshot* extents mapped straight onto shared memory (the
  parent's sealed tables, served zero-copy), and
* *based* extents — a local tail whose offsets start at a base carried
  over from the parent (a value log continuing past prior epochs without
  shipping them).
"""

from __future__ import annotations

import io
import os
from multiprocessing import shared_memory

import numpy as np

from ..storage.blockio import ExtentLostError, StorageDevice

__all__ = [
    "ShmBlob",
    "BlobMap",
    "MirrorDevice",
    "pack_arrays",
    "unpack_arrays",
    "DEFAULT_SHM_MIN_BYTES",
]

# Below this, a payload inlines into the task pickle; at or above it, a
# shared-memory segment is worth its two syscalls.
DEFAULT_SHM_MIN_BYTES = 256 * 1024


class ShmBlob:
    """One immutable byte payload, transportable to pool workers."""

    def __init__(self, inline: bytes | None, shm_name: str | None, nbytes: int):
        self._inline = inline
        self._shm_name = shm_name
        self.nbytes = nbytes
        self._shm: shared_memory.SharedMemory | None = None
        self._buf: memoryview | None = None

    @staticmethod
    def _disarm(seg: shared_memory.SharedMemory) -> memoryview:
        """Take the segment's buffer and defuse its finalizer.

        ``SharedMemory.__del__`` calls ``close``, which raises — noisily,
        at interpreter shutdown, in arbitrary GC order — while exported
        NumPy views are still alive.  Handing the mapping's lifetime to
        the buffer itself sidesteps that: the fd closes now, the memory
        unmaps when the last view dies, and the dead handle has nothing
        left to finalize.
        """
        buf = seg._buf  # 3.11-private attrs; the view keeps the mmap alive
        seg._buf = None
        seg._mmap = None
        if getattr(seg, "_fd", -1) >= 0:
            os.close(seg._fd)
            seg._fd = -1
        return buf

    @classmethod
    def pack(cls, chunks, min_shm_bytes: int = DEFAULT_SHM_MIN_BYTES) -> "ShmBlob":
        """Concatenate buffer-like ``chunks`` into one blob.

        Chunks are written straight into the segment (one copy total);
        shared-memory creation failure (no ``/dev/shm``) degrades to the
        inline pickled form rather than erroring.
        """
        views = [memoryview(c).cast("B") for c in chunks]
        total = sum(v.nbytes for v in views)
        if total >= min_shm_bytes:
            try:
                seg = shared_memory.SharedMemory(create=True, size=max(1, total))
            except OSError:
                seg = None
            if seg is not None:
                off = 0
                for v in views:
                    seg.buf[off : off + v.nbytes] = v
                    off += v.nbytes
                blob = cls(None, seg.name, total)
                blob._shm = seg
                blob._buf = cls._disarm(seg)
                return blob
        return cls(b"".join(views), None, total)

    @property
    def shared(self) -> bool:
        return self._shm_name is not None

    def view(self) -> memoryview:
        """The payload bytes; attaches the segment on first use."""
        if self._inline is not None:
            return memoryview(self._inline)
        if self._buf is None:
            self._shm = shared_memory.SharedMemory(name=self._shm_name)
            self._buf = self._disarm(self._shm)
        return self._buf[: self.nbytes]

    def release(self, unlink: bool = False) -> None:
        """Drop this consumer's handle (and optionally remove the name).

        The name goes away on unlink; the memory itself goes away when
        the last view over the mapping dies, so consumers still holding
        NumPy views over it stay valid.
        """
        if self._shm_name is None:
            return
        seg = self._shm
        if seg is None:
            if not unlink:
                return
            try:
                seg = shared_memory.SharedMemory(name=self._shm_name)
            except FileNotFoundError:
                return
            self._disarm(seg)
        if unlink:
            try:
                seg.unlink()
            except FileNotFoundError:
                pass  # already unlinked (e.g. by the resource tracker)
        self._shm = None
        self._buf = None

    # Segments are attached by name on the far side; never pickle the
    # local mapping (it is process-private and holds an open fd).
    def __getstate__(self):
        return {"inline": self._inline, "name": self._shm_name, "nbytes": self.nbytes}

    def __setstate__(self, state):
        self._inline = state["inline"]
        self._shm_name = state["name"]
        self.nbytes = state["nbytes"]
        self._shm = None
        self._buf = None


class BlobMap:
    """Named byte payloads multiplexed over one `ShmBlob`."""

    def __init__(self, blob: ShmBlob, index: dict[str, tuple[int, int]]):
        self.blob = blob
        self.index = index

    @classmethod
    def pack(cls, items: dict, min_shm_bytes: int = DEFAULT_SHM_MIN_BYTES) -> "BlobMap":
        index: dict[str, tuple[int, int]] = {}
        chunks = []
        off = 0
        for name, data in items.items():
            v = memoryview(data).cast("B")
            index[name] = (off, v.nbytes)
            chunks.append(v)
            off += v.nbytes
        return cls(ShmBlob.pack(chunks, min_shm_bytes), index)

    @property
    def nbytes(self) -> int:
        return self.blob.nbytes

    def __contains__(self, name: str) -> bool:
        return name in self.index

    def names(self) -> list[str]:
        return sorted(self.index)

    def get(self, name: str) -> memoryview:
        off, length = self.index[name]
        return self.blob.view()[off : off + length]

    def release(self, unlink: bool = False) -> None:
        self.blob.release(unlink=unlink)


def pack_arrays(arrays) -> tuple[list[tuple[str, tuple, int, int]], list]:
    """Flatten NumPy arrays to ``(metas, chunks)`` for `ShmBlob.pack`.

    ``metas`` records ``(dtype, shape, offset, nbytes)`` per array, in
    order; `unpack_arrays` rebuilds zero-copy views from the blob.
    """
    metas: list[tuple[str, tuple, int, int]] = []
    chunks = []
    off = 0
    for a in arrays:
        a = np.ascontiguousarray(a)
        metas.append((str(a.dtype), tuple(a.shape), off, a.nbytes))
        if a.nbytes:
            chunks.append(a.reshape(-1).view(np.uint8))
        off += a.nbytes
    return metas, chunks


def unpack_arrays(view: memoryview, metas) -> list[np.ndarray]:
    """Rebuild the arrays `pack_arrays` described, as views over ``view``."""
    out = []
    for dtype, shape, off, nbytes in metas:
        if nbytes:
            arr = np.frombuffer(view[off : off + nbytes], dtype=np.dtype(dtype))
        else:
            arr = np.zeros(0, dtype=np.dtype(dtype))
        out.append(arr.reshape(shape))
    return out


class MirrorDevice(StorageDevice):
    """Worker-side `StorageDevice`: charged local writes over a read-only
    shared-memory snapshot of parent extents, plus base-offset extents
    for logs that continue past data the worker never sees."""

    def __init__(self, profile=None, metrics=None):
        super().__init__(profile, metrics)
        self._snapshot: dict[str, memoryview] = {}
        self._base: dict[str, int] = {}

    # -- mirror construction ----------------------------------------------

    def map_extent(self, name: str, view: memoryview) -> None:
        """Serve ``name`` read-only, zero-copy, from ``view``."""
        if name in self._files:
            raise FileExistsError(f"extent {name!r} already exists locally")
        self._snapshot[name] = view

    def set_base(self, name: str, base: int) -> None:
        """Create a local extent whose offsets start at ``base``.

        Models appending to a parent extent of ``base`` bytes the worker
        does not have: sizes and append offsets match the parent's view,
        reads below the base raise (those bytes were never shipped).
        """
        if name in self._files or name in self._snapshot:
            raise FileExistsError(f"extent {name!r} already exists")
        self._files[name] = io.BytesIO()
        self._base[name] = int(base)

    def local_extents(self) -> dict[str, bytes]:
        """Every locally written extent's bytes (based extents export only
        the tail the worker appended), for adoption by the parent."""
        return {name: buf.getvalue() for name, buf in self._files.items()}

    # -- StorageDevice surface over the overlay ---------------------------

    def exists(self, name: str) -> bool:
        return name in self._files or name in self._snapshot

    def open(self, name: str, create: bool = False):
        if name in self._snapshot:
            self.open_handles += 1
            from ..storage.blockio import StorageFile  # local: avoid cycle at import

            return StorageFile(self, name)
        return super().open(name, create)

    def file_size(self, name: str) -> int:
        if name in self._snapshot:
            return self._snapshot[name].nbytes
        return super().file_size(name) + self._base.get(name, 0)

    def list_files(self) -> list[str]:
        return sorted(set(self._files) | set(self._snapshot))

    def total_bytes_stored(self) -> int:
        return (
            super().total_bytes_stored()
            + sum(v.nbytes for v in self._snapshot.values())
            + sum(self._base.values())
        )

    def _read(self, name: str, offset: int, size: int) -> bytes:
        view = self._snapshot.get(name)
        if view is not None:
            if offset > view.nbytes:
                raise ExtentLostError(
                    f"read at offset {offset} beyond mirrored extent {name!r} "
                    f"({view.nbytes} B)"
                )
            data = bytes(view[offset : offset + size])
            self._charge_read(len(data))
            return data
        base = self._base.get(name, 0)
        if base:
            if offset < base:
                raise ExtentLostError(
                    f"offset {offset} is below the mirrored base ({base} B) of {name!r}"
                )
            offset -= base
        return super()._read(name, offset, size)

    def _append(self, name: str, data: bytes) -> int:
        if name in self._snapshot:
            raise ValueError(f"extent {name!r} is a read-only snapshot mirror")
        return super()._append(name, data) + self._base.get(name, 0)
