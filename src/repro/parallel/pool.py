"""Persistent spawn-based worker pool with in-process crash fallback.

`WorkerPool` wraps a ``ProcessPoolExecutor`` built on the *spawn* start
method — workers boot a fresh interpreter and import task functions by
name, so they can never inherit the parent's open reader or vlog handles
(fork would hand every child the whole handle table).  Pools are meant to
live for a whole run: worker startup is paid once and amortized across
every ingest epoch, bulk read, and serve window dispatched through it.

Tasks are plain module-level functions referenced by ``module:qualname``
spec; payloads are picklable objects whose bulk data rides in
`repro.parallel.shm` blobs.  `run` preserves payload order in its result
list.

Fault model: a worker process dying (OOM kill, hard crash) breaks the
executor and fails *every* pending future.  `run` treats that as a
degraded mode, not an error — each lost task re-executes in-process on
the parent (payload blobs keep a local buffer precisely so this path is
zero-cost), ``parallel.worker_failures`` counts each retried task, and
the broken executor is discarded and lazily respawned.  Faults therefore
never change answers, only wall-clock.
"""

from __future__ import annotations

import importlib
import os
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context

from ..obs import MetricsRegistry, active

__all__ = ["WorkerPool", "PoolFaultPlan", "default_workers"]


def default_workers() -> int:
    """Pool size when unspecified: every core, capped at 8 (the paper's
    scaling study tops out there and bigger pools just burn memory)."""
    return max(1, min(8, os.cpu_count() or 1))


@dataclass(frozen=True)
class PoolFaultPlan:
    """Deterministic worker-crash injection for robustness tests.

    The parent numbers tasks globally in submission order; the worker
    executing task ``kill_task`` dies via ``os._exit`` before touching the
    payload — indistinguishable from an OOM kill as far as the executor
    is concerned.  Fires once.
    """

    kill_task: int
    exit_code: int = 17


def _run_remote(spec: str, payload, kill: int):
    """Executed inside a pool worker: resolve the task by name and run it.

    ``kill`` is a nonzero exit code when a `PoolFaultPlan` chose this task:
    the worker dies before touching the payload, exactly like an OOM kill.
    """
    if kill:
        os._exit(kill)
    mod, _, qual = spec.partition(":")
    fn = importlib.import_module(mod)
    for part in qual.split("."):
        fn = getattr(fn, part)
    return fn(payload)


class WorkerPool:
    """A persistent pool of spawn-context worker processes.

    Parameters
    ----------
    workers:
        Process count; defaults to `default_workers()`.
    metrics:
        Registry for ``parallel.*`` telemetry (tasks, batches, failures,
        pool/busy gauges, shared-memory bytes in flight).
    fault_plan:
        Optional `PoolFaultPlan` arming a one-shot worker crash.
    """

    def __init__(
        self,
        workers: int | None = None,
        metrics: MetricsRegistry | None = None,
        fault_plan: PoolFaultPlan | None = None,
    ):
        self.workers = int(workers) if workers else default_workers()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.metrics = active(metrics)
        self.fault_plan = fault_plan
        self._executor: ProcessPoolExecutor | None = None
        self._seq = 0  # global task number, for fault-plan arming
        self._fault_fired = False
        m = self.metrics
        self._m_tasks = m.counter("parallel.tasks")
        self._m_batches = m.counter("parallel.batches")
        self._m_failures = m.counter("parallel.worker_failures")
        self._g_pool = m.gauge("parallel.pool_size")
        self._g_busy = m.gauge("parallel.busy_workers")
        self._g_inflight = m.gauge("parallel.tasks_inflight")
        self._g_shm = m.gauge("parallel.shm_bytes")
        self._g_pool.set(0)

    # -- lifecycle ---------------------------------------------------------

    def _ensure(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, mp_context=get_context("spawn")
            )
            self._g_pool.set(self.workers)
        return self._executor

    def warm(self) -> None:
        """Spawn the workers now (tests amortize startup explicitly)."""
        ex = self._ensure()
        list(ex.map(_noop, range(self.workers)))

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
            self._g_pool.set(0)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch ----------------------------------------------------------

    def submit(self, fn, payload) -> Future:
        """Submit one task; the future resolves to ``fn(payload)``.

        Worker death is absorbed here too: the returned future is a
        parent-side wrapper that falls back to running ``fn`` in-process
        when the pool future breaks.
        """
        out: Future = Future()
        self._m_tasks.inc()
        self._g_inflight.inc()
        self._g_busy.set(min(self.workers, int(self._g_inflight.value)))
        inner = self._submit_raw(fn, payload)

        def _done(f: Future):
            self._g_inflight.dec()
            self._g_busy.set(min(self.workers, max(0, int(self._g_inflight.value))))
            try:
                out.set_result(f.result())
            except BrokenProcessPool:
                self._discard_broken()
                self._m_failures.inc()
                try:
                    out.set_result(fn(payload))
                except BaseException as e:  # pragma: no cover - surfaced to caller
                    out.set_exception(e)
            except BaseException as e:
                out.set_exception(e)

        inner.add_done_callback(_done)
        return out

    def run(self, fn, payloads) -> list:
        """Run ``fn`` over every payload on the pool; results in order.

        One call = one *batch* in the telemetry.  Lost tasks (worker
        crash) re-run in-process and are counted per task in
        ``parallel.worker_failures``.
        """
        payloads = list(payloads)
        if not payloads:
            return []
        self._m_batches.inc()
        self._m_tasks.inc(len(payloads))
        self._g_inflight.set(len(payloads))
        self._g_busy.set(min(self.workers, len(payloads)))
        futures = [self._submit_raw(fn, p) for p in payloads]
        results = []
        broken = False
        for fut, payload in zip(futures, payloads):
            try:
                results.append(fut.result())
                self._g_inflight.dec()
            except BrokenProcessPool:
                broken = True
                self._m_failures.inc()
                results.append(fn(payload))
                self._g_inflight.dec()
        if broken:
            self._discard_broken()
        self._g_inflight.set(0)
        self._g_busy.set(0)
        return results

    def _submit_raw(self, fn, payload) -> Future:
        spec = f"{fn.__module__}:{fn.__qualname__}"
        kill = 0
        if (
            self.fault_plan is not None
            and not self._fault_fired
            and self._seq == self.fault_plan.kill_task
        ):
            kill = self.fault_plan.exit_code
            self._fault_fired = True
        self._seq += 1
        try:
            return self._ensure().submit(_run_remote, spec, payload, kill)
        except BrokenProcessPool:
            # Executor died between batches; rebuild once and retry.
            self._discard_broken()
            return self._ensure().submit(_run_remote, spec, payload, kill)

    def _discard_broken(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._g_pool.set(0)

    # -- introspection -----------------------------------------------------

    def note_shm_bytes(self, nbytes: int) -> None:
        """Record shared-memory bytes currently in flight (transport layers
        call this as blobs are packed and released)."""
        self._g_shm.inc(nbytes)

    def drop_shm_bytes(self, nbytes: int) -> None:
        self._g_shm.dec(nbytes)

    def stats(self) -> dict:
        """Live snapshot for ``repro top``'s workers panel."""
        return {
            "pool_size": self.workers if self._executor is not None else 0,
            "configured_workers": self.workers,
            "busy_workers": int(self._g_busy.value),
            "tasks": int(self._m_tasks.value),
            "batches": int(self._m_batches.value),
            "worker_failures": int(self._m_failures.value),
            "shm_bytes": int(self._g_shm.value),
        }


def _noop(_x):
    return None
