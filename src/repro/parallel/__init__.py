"""True multi-core execution: process-pool pipelines over shared memory.

Every hot path in the reproduction is NumPy-vectorized but still executes
on one Python thread; this package breaks that ceiling.  A persistent
`WorkerPool` (spawn-based ``ProcessPoolExecutor``) receives columnar
batches through zero-copy `multiprocessing.shared_memory` segments
(small payloads inline into the task pickle instead), runs the *same*
pipeline code on a worker-local `MirrorDevice`, and ships extents,
I/O counters, and a per-worker `MetricsRegistry` back for an exact merge
— ``parallel="process"`` is byte-identical to the in-process path,
including counter sums.

Layers wired in:

* ingest — `SimCluster(parallel="process", pool=...)` fans writer and
  receiver rank pipelines across the pool (`repro.parallel.ingest`);
* bulk reads — `PooledReads` shards `get_many` key ranges across workers
  holding shared-memory snapshots of the store (`repro.parallel.reads`);
* serve — `QueryService(pool=...)` routes dispatch windows through the
  pooled bulk path, and `compact_in_background` runs compaction's k-way
  merge off the event loop (`repro.parallel.compactbg`).

Worker crashes never change answers: the pool re-runs lost tasks
in-process and counts them in ``parallel.worker_failures``.
"""

from .compactbg import compact_in_background
from .pool import PoolFaultPlan, WorkerPool
from .shm import MirrorDevice, ShmBlob, BlobMap

__all__ = [
    "WorkerPool",
    "PoolFaultPlan",
    "ShmBlob",
    "BlobMap",
    "MirrorDevice",
    "compact_in_background",
]
