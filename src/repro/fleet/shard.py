"""One fleet shard: a recovered `MultiEpochStore` behind a `QueryService`.

A `ShardNode` is the unit the ring places keys on.  Each node owns its
own storage device — always a `FaultyStorageDevice`, so every shard can
be crashed and recovered on schedule — its own store, its own service
(with its own ``serve.*`` registry, merged fleet-wide by `Fleet`), and
optionally its own TCP front end.  In-proc and TCP nodes expose the same
client surface, so the router never knows which it is talking to.

Crash/recover is the storage-truth discipline the faults suite
established: `crash` downs the device (every probe raises `CrashPoint`,
which the service surfaces as typed ``error`` responses — exactly what a
router's circuit breaker feeds on), and `recover` revives the device and
re-attaches a *fresh* store from the manifest alone — nothing the dead
service held in memory survives, so recovery exercises the real
crash-consistency path, not a warm restart.
"""

from __future__ import annotations

import numpy as np

from ..core.formats import FMT_FILTERKV, FormatSpec
from ..core.kv import KVBatch
from ..core.multiepoch import MultiEpochStore
from ..faults import FaultPlan, FaultyStorageDevice
from ..serve import InprocClient, QueryService, ServeServer, TCPClient
from ..storage.manifest import RecoveryReport

__all__ = ["ShardNode"]


class ShardNode:
    """One shard: device + store + service (+ optional TCP server).

    Parameters
    ----------
    shard_id:
        The ring identity.  Also seeds this shard's store (offset from the
        fleet seed) so shards ingest independently.
    nranks:
        Writer ranks *within* the shard — each shard is a full in-situ
        dataset with its own partitions and aux tables.
    service_kwargs:
        Passed through to `QueryService` (cache sizes, admission control,
        deadlines); the fleet bench pins caches tiny through this.
    """

    def __init__(
        self,
        shard_id: int,
        nranks: int = 4,
        fmt: FormatSpec = FMT_FILTERKV,
        value_bytes: int = 24,
        seed: int = 0,
        aux_policy=None,
        fault_plan: FaultPlan | None = None,
        service_kwargs: dict | None = None,
    ):
        self.shard_id = int(shard_id)
        self.nranks = int(nranks)
        self.fmt = fmt
        self.value_bytes = int(value_bytes)
        self.seed = int(seed)
        self.aux_policy = aux_policy
        self.service_kwargs = dict(service_kwargs or {})
        self.device = FaultyStorageDevice(plan=fault_plan or FaultPlan(seed=seed))
        self.store = MultiEpochStore(
            nranks=self.nranks,
            fmt=fmt,
            value_bytes=self.value_bytes,
            device=self.device,
            seed=self.seed,
            aux_policy=aux_policy,
        )
        self.service: QueryService | None = None
        self.server: ServeServer | None = None
        self.client: TCPClient | InprocClient | None = None
        self.last_recovery: RecoveryReport | None = None

    # -- ingest ------------------------------------------------------------

    def write_epoch(self, batch: KVBatch) -> int:
        """Commit one epoch holding this shard's slice of a fleet dump.

        The slice is split across the shard's writer ranks round-robin —
        each rank plays one simulated writer process — so the key→rank
        mapping is uncorrelated with the hash partitioner and the aux
        tables face their real workload.  Returns the epoch id.
        """
        per_rank: list[KVBatch] = []
        writer = np.arange(len(batch)) % self.nranks
        for rank in range(self.nranks):
            sel = writer == rank
            per_rank.append(KVBatch(batch.keys[sel], batch.values[sel]))
        epoch = self.store.manifest.next_epoch
        self.store.write_epoch(per_rank)
        return epoch

    # -- lifecycle ---------------------------------------------------------

    async def start(self, tcp: bool = False) -> "ShardNode":
        """Mount the service (and, in TCP mode, the wire front end) and
        connect this node's client."""
        if self.service is None:
            self.service = QueryService(self.store, **self.service_kwargs)
        await self.service.start()
        if tcp:
            self.server = ServeServer(self.service)
            await self.server.start()
            self.client = await TCPClient("127.0.0.1", self.server.port).connect()
        else:
            self.client = await InprocClient(self.service).connect()
        return self

    async def stop(self) -> None:
        if isinstance(self.client, TCPClient):
            await self.client.close()
        self.client = None
        if self.server is not None:
            await self.server.close()
            self.server = None
        elif self.service is not None:
            await self.service.close()
        self.service = None

    # -- failure and recovery ----------------------------------------------

    def crash(self) -> None:
        """Down the device.  The service object survives but every store
        probe now raises `CrashPoint`, surfacing as typed ``error``
        responses — what the router's breaker and failover act on.
        Idempotent."""
        self.device.crashed = True

    async def recover(self, tcp: bool | None = None) -> "ShardNode":
        """Revive the device and re-attach everything *from storage*.

        The old service and its caches are discarded; `MultiEpochStore.
        recover` replays the manifest against the surviving bytes, so the
        node comes back exactly as crash consistency guarantees — and the
        `RecoveryReport` is kept for tests to assert on.  The client is
        reconnected (same transport as before unless ``tcp`` overrides).
        """
        was_tcp = self.server is not None if tcp is None else tcp
        await self.stop()
        store, report = MultiEpochStore.recover(
            self.device, aux_policy=self.aux_policy
        )
        if store is None:
            raise RuntimeError(
                f"shard {self.shard_id}: no manifest survived the crash"
            )
        self.store = store
        self.last_recovery = report
        self.service = QueryService(self.store, **self.service_kwargs)
        return await self.start(tcp=was_tcp)

    @property
    def crashed(self) -> bool:
        return self.device.crashed
