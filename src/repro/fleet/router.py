"""The fleet router: aux-table routing over shard clients, with failover.

The router is FilterKV's thesis applied one tier up.  Just as a reader
holds a compact aux table instead of the data it indexes, the router
holds — per shard, per epoch — only the shard's *sealed aux blobs*
(rebuilt into probing tables via `aux_from_blob`), never values, never
SSTables.  That bounds router memory at a few bytes per key while still
letting it send each query to the shard most likely to answer it:

* **Planning** — a key's ring owners (`HashRing.owners`, primary first)
  are reordered by what each owner's aux view *claims*: owners whose
  tables claim the key (newest claiming epoch first) are tried before
  owners whose tables deny it.  Aux tables have false positives but no
  false negatives, so a fresh claim is a strong hint and a fresh denial
  means "only ask me as a last resort".
* **Correctness invariant** — the router never answers a data query from
  its aux state alone.  Every ``get`` reaches at least one shard, an
  ``ok`` is terminal from anyone, and a ``not_found`` is terminal *only
  from a ring owner* (owners hold the key's full replica, so their
  answer is authoritative; an aux false positive on a non-owner is not).
  Aux staleness therefore costs ordering quality, never answers.
* **Staleness** — every shard answer piggybacks its `state_token`
  (compaction generation, newest epoch).  A token that differs from the
  one the view was built at marks the view stale: planning falls back to
  ring-hash order (the *scatter* path) for that shard and a background
  refresh re-pulls `aux_state`.  Commit and compaction generation bumps
  are both visible in the token, so either triggers the refresh.
* **Failover** — per-shard circuit breaker (consecutive typed failures
  open it; a cooldown half-opens it), bounded retry-with-backoff on
  retryable errors and transport faults, and a hedged second probe when
  a deadline-carrying request's first shard sits on the deadline.  A
  crashed shard's errors open its breaker within a few requests, after
  which its replicas serve every key it owned — replica promotion is
  emergent from breaker + candidate ordering, no leader election needed.

The router exposes the same surface as `QueryService` (``get`` /
``stats`` / ``live_stats`` / ``recent_traces`` / ``state_token`` /
``aux_state`` / ``start`` / ``close``), so `ServeServer` can mount it
unchanged: clients speak one protocol whether they face a shard or the
fleet.
"""

from __future__ import annotations

import asyncio
import time

from ..core.auxtable import aux_from_blob
from ..core.partitioning import HashPartitioner
from ..obs import MetricsRegistry, TimeseriesHub
from ..serve import ERROR, NOT_FOUND, OK, ServeResponse
from ..serve.proto import ERR_CLOSED, ERR_INTERNAL, ERR_UNKNOWN_EPOCH, ProtocolError
from ..serve.service import DEADLINE_EXCEEDED, OVERLOADED, STATUSES
from ..storage.envelope import unseal
from .ring import HashRing

__all__ = ["FleetRouter", "ShardAuxView", "CircuitBreaker"]

# Error codes that say "this shard, right now" — they feed the breaker
# and justify trying a replica.  Anything else says "this request".
# "" is the pre-v2 untyped error (and the in-proc probe-failure path).
_SHARD_FAULT_CODES = {"", ERR_INTERNAL, ERR_CLOSED}

# Transport-level failures a retry may heal (the TCP pump surfaces broken
# framing as ProtocolError).
_TRANSPORT_ERRORS = (ConnectionError, OSError, ProtocolError)


class ShardAuxView:
    """One shard's routing state: rebuilt aux tables per live epoch.

    Built from the ``aux_state`` verb's export.  ``blob_bytes`` is the
    sealed wire size (the honest floor: what the shard shipped);
    ``resident_bytes`` is what the rebuilt tables claim via
    ``size_bytes`` — the fleet bench gates their ratio.  Formats that
    persist no aux tables export ``None`` rows; the view is then
    *blind*: fresh, but claiming nothing, so planning degrades to ring
    order exactly as `MultiEpochStore.aux_blobs` promises.
    """

    def __init__(self, shard_id: int, state: dict):
        self.shard_id = shard_id
        self.format = state.get("format", "")
        self.nranks = int(state.get("nranks", 1))
        self.state = tuple(state.get("state", (0, -1)))
        self.stale = False
        self.blob_bytes = 0
        self._partitioner = HashPartitioner(self.nranks)
        self.epochs: dict[int, list | None] = {}
        for epoch_str, rows in (state.get("epochs") or {}).items():
            if rows is None:
                self.epochs[int(epoch_str)] = None
                continue
            tables = []
            for hexblob in rows:
                raw = bytes.fromhex(hexblob)
                self.blob_bytes += len(raw)
                # unseal() is the integrity check: the same envelope that
                # guards the extent at rest guards it on the wire.
                tables.append(aux_from_blob(unseal(raw)))
            self.epochs[int(epoch_str)] = tables

    @property
    def blind(self) -> bool:
        return all(rows is None for rows in self.epochs.values())

    @property
    def resident_bytes(self) -> int:
        return sum(
            aux.size_bytes
            for rows in self.epochs.values()
            if rows is not None
            for aux in rows
        )

    def claim(self, key: int, epoch: int | None = None) -> int:
        """Newest epoch whose aux tables claim ``key`` (-1: no claim).

        With ``epoch`` given, only that epoch is consulted.  A claim is
        the key's owner partition answering a non-empty candidate set —
        no false negatives, so -1 from a *fresh, non-blind* view means
        the shard genuinely lacks the key in the consulted epochs.
        """
        epochs = (
            [epoch] if epoch is not None and epoch in self.epochs
            else sorted(self.epochs, reverse=True)
        )
        for e in epochs:
            rows = self.epochs.get(e)
            if rows is None:
                continue
            owner = self._partitioner.partition_of_one(int(key))
            if owner < len(rows) and len(rows[owner].candidate_ranks(int(key))):
                return e
        return -1


class CircuitBreaker:
    """Per-shard failure gate: closed → open → half-open → closed.

    ``threshold`` consecutive shard faults open it for ``cooldown_s``;
    after the cooldown one probe is let through (half-open) and its
    outcome decides — success closes, failure re-opens immediately.
    """

    def __init__(self, threshold: int = 3, cooldown_s: float = 0.25, clock=time.monotonic):
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.clock = clock
        self.failures = 0
        self.open_until: float | None = None
        self._half_open = False
        self.trips = 0

    @property
    def state(self) -> str:
        if self.open_until is None:
            return "closed"
        if self.clock() >= self.open_until:
            return "half_open"
        return "open"

    def allow(self) -> bool:
        if self.open_until is None:
            return True
        if self.clock() >= self.open_until:
            self._half_open = True
            return True
        return False

    def record(self, ok: bool) -> None:
        if ok:
            self.failures = 0
            self.open_until = None
            self._half_open = False
            return
        self.failures += 1
        if self._half_open or self.failures >= self.threshold:
            self.open_until = self.clock() + self.cooldown_s
            self._half_open = False
            self.failures = 0
            self.trips += 1


class FleetRouter:
    """Route point queries across shard clients by aux-table candidacy.

    Parameters
    ----------
    clients:
        ``shard id → client`` (TCP or in-proc — anything with the
        `TCPClient` surface).  The mapping is read live on every call, so
        a `Fleet` swapping a recovered shard's client in place just works.
    ring / rf:
        Placement: a key may live only on its ``rf`` ring owners.
    retries / backoff_s:
        Per-shard attempts on transport faults and retryable errors, with
        exponential backoff between attempts.
    hedge_fraction:
        With a request deadline, if the first shard hasn't answered after
        this fraction of it, a hedge fires to the next candidate and the
        first terminal answer wins.  0 disables hedging.
    breaker_threshold / breaker_cooldown_s:
        Per-shard `CircuitBreaker` tuning.
    """

    def __init__(
        self,
        clients: dict[int, object],
        ring: HashRing,
        rf: int = 2,
        retries: int = 1,
        backoff_s: float = 0.005,
        hedge_fraction: float = 0.5,
        breaker_threshold: int = 3,
        breaker_cooldown_s: float = 0.25,
        metrics: MetricsRegistry | None = None,
        stats_window_s: float = 10.0,
    ):
        self.clients = clients
        self.ring = ring
        self.rf = max(1, int(rf))
        self.retries = max(0, int(retries))
        self.backoff_s = backoff_s
        self.hedge_fraction = hedge_fraction
        self.views: dict[int, ShardAuxView] = {}
        self.breakers = {
            sid: CircuitBreaker(breaker_threshold, breaker_cooldown_s)
            for sid in clients
        }
        self.metrics = metrics if metrics is not None else MetricsRegistry("fleet")
        self.timeseries = TimeseriesHub(
            STATUSES,
            answered=(OK, NOT_FOUND),
            shed=(OVERLOADED, DEADLINE_EXCEEDED),
            window_s=stats_window_s,
        )
        self._refreshing: set[int] = set()
        self._closed = False
        m = self.metrics
        self._m_requests = {s: m.counter("fleet.router.requests", status=s) for s in STATUSES}
        self._m_latency = m.histogram("fleet.router.latency_seconds")
        self._m_forwards = m.counter("fleet.router.forwards")
        self._m_aux_routed = m.counter("fleet.router.aux_routed")
        self._m_scatter = m.counter("fleet.router.scatter")
        self._m_failovers = m.counter("fleet.router.failovers")
        self._m_retries = m.counter("fleet.router.retries")
        self._m_hedges = m.counter("fleet.router.hedges")
        self._m_stale = m.counter("fleet.router.stale_detected")
        self._m_refreshes = m.counter("fleet.router.aux_refreshes")
        self._m_breaker_skips = m.counter("fleet.router.breaker_skips")

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "FleetRouter":
        """Pull every shard's aux state (best-effort: a down shard just
        starts with no view, i.e. ring-order planning)."""
        for sid in list(self.clients):
            try:
                await self.refresh(sid)
            except Exception:
                self.views.pop(sid, None)
        return self

    async def close(self) -> None:
        self._closed = True

    async def refresh(self, shard_id: int) -> ShardAuxView:
        """Re-pull one shard's `aux_state` and rebuild its view."""
        state = await self.clients[shard_id].aux_state()
        view = ShardAuxView(shard_id, state)
        self.views[shard_id] = view
        self._m_refreshes.inc()
        self._observe_memory()
        return view

    def _schedule_refresh(self, shard_id: int) -> None:
        if shard_id in self._refreshing:
            return
        self._refreshing.add(shard_id)

        async def _go():
            try:
                await self.refresh(shard_id)
            except Exception:
                pass  # shard down: the stale mark stands, planning scatters
            finally:
                self._refreshing.discard(shard_id)

        asyncio.get_running_loop().create_task(_go())

    def _observe_memory(self) -> None:
        self.metrics.gauge("fleet.router.aux_blob_bytes").set(self.aux_blob_bytes)
        self.metrics.gauge("fleet.router.aux_resident_bytes").set(self.aux_resident_bytes)

    @property
    def aux_blob_bytes(self) -> int:
        """Summed sealed-blob bytes across every shard view (wire size)."""
        return sum(v.blob_bytes for v in self.views.values())

    @property
    def aux_resident_bytes(self) -> int:
        """What the rebuilt tables hold resident — the router's data-plane
        memory, gated against ``aux_blob_bytes`` by the fleet bench."""
        return sum(v.resident_bytes for v in self.views.values())

    # -- planning ----------------------------------------------------------

    def plan(self, key: int, epoch: int | None = None) -> tuple[list[int], bool]:
        """Candidate shards for ``key``, best-first, and whether aux state
        shaped the order.

        Only ring owners are candidates (non-owners never hold the key).
        Owners with a fresh claim sort first, newest claiming epoch first;
        stale or blind views contribute nothing, and when *no* owner has a
        fresh view the plan is pure ring order — the scatter fallback.
        """
        owners = self.ring.owners(int(key), self.rf)
        scored = []
        used_aux = False
        for pos, sid in enumerate(owners):
            view = self.views.get(sid)
            if view is None or view.stale or view.blind:
                scored.append((1, 0, pos, sid))
                continue
            used_aux = True
            claimed = view.claim(int(key), epoch)
            if claimed >= 0:
                scored.append((0, -claimed, pos, sid))
            else:
                # Fresh denial: no false negatives, so ask this owner last.
                scored.append((2, 0, pos, sid))
        scored.sort()
        return [sid for *_, sid in scored], used_aux

    # -- the request path --------------------------------------------------

    async def get(
        self,
        key: int,
        epoch: int | None = None,
        deadline_s: float | None = None,
        trace=None,
    ) -> ServeResponse:
        """Point lookup across the fleet.  Same contract as
        `QueryService.get`: always a `ServeResponse`, never an exception
        for data-plane conditions."""
        t0 = time.perf_counter()
        key = int(key)
        if self._closed:
            return self._done(
                t0, ServeResponse(ERROR, key, epoch, detail="router closed", code="closed")
            )
        order, used_aux = self.plan(key, epoch)
        (self._m_aux_routed if used_aux else self._m_scatter).inc()
        response = await self._walk(order, key, epoch, deadline_s, trace)
        return self._done(t0, response)

    def _done(self, t0: float, response: ServeResponse) -> ServeResponse:
        dt = time.perf_counter() - t0
        self._m_requests[response.status].inc()
        self._m_latency.observe(dt)
        self.timeseries.record(response.status, dt)
        return response

    async def _walk(
        self, order: list[int], key: int, epoch, deadline_s, trace
    ) -> ServeResponse:
        """Try candidates in order; hedge the first hop under deadline
        pressure.  Returns the first terminal answer, or the best
        non-terminal one when every candidate fails."""
        fallback: ServeResponse | None = None
        start = 0
        if (
            deadline_s is not None
            and self.hedge_fraction > 0
            and len(order) > 1
            and self.breakers[order[0]].allow()
        ):
            hedged = await self._hedged_first_hop(order, key, epoch, deadline_s, trace)
            final, response = hedged
            if final:
                return response
            if response is not None:
                fallback = response
            start = 2  # both hedge legs are spent
        for i, sid in enumerate(order[start:], start=start):
            if i > 0:
                self._m_failovers.inc()
            final, response = await self._try_shard(sid, key, epoch, deadline_s, trace)
            if final:
                return response
            if response is not None and fallback is None:
                fallback = response
        if fallback is not None:
            return fallback
        return ServeResponse(
            ERROR,
            key,
            epoch,
            detail=f"no shard available (tried {order})",
            code=ERR_INTERNAL,
        )

    async def _hedged_first_hop(
        self, order: list[int], key: int, epoch, deadline_s, trace
    ) -> tuple[bool, ServeResponse | None]:
        """Primary attempt with a hedge to the next candidate if the
        primary sits on ``hedge_fraction`` of the deadline.  First
        terminal answer wins; the loser is cancelled."""
        loop = asyncio.get_running_loop()
        first = loop.create_task(
            self._try_shard(order[0], key, epoch, deadline_s, trace)
        )
        done, _ = await asyncio.wait(
            {first}, timeout=max(0.0, deadline_s * self.hedge_fraction)
        )
        if done:
            final, response = first.result()
            if final:
                return True, response
            # Primary definitively failed/deferred: the caller continues
            # down the order, starting past the would-be hedge target —
            # try it now, synchronously, as the second leg.
            final, response2 = await self._try_shard(
                order[1], key, epoch, deadline_s, trace
            )
            return (True, response2) if final else (False, response or response2)
        self._m_hedges.inc()
        second = loop.create_task(
            self._try_shard(order[1], key, epoch, deadline_s, trace)
        )
        pending = {first, second}
        fallback: ServeResponse | None = None
        while pending:
            done, pending = await asyncio.wait(
                pending, return_when=asyncio.FIRST_COMPLETED
            )
            for task in done:
                final, response = task.result()
                if final:
                    for p in pending:
                        p.cancel()
                    if pending:
                        await asyncio.gather(*pending, return_exceptions=True)
                    return True, response
                if response is not None and fallback is None:
                    fallback = response
        return False, fallback

    async def _try_shard(
        self, sid: int, key: int, epoch, deadline_s, trace
    ) -> tuple[bool, ServeResponse | None]:
        """One shard's full attempt: breaker gate, bounded retries.

        Returns ``(final, response)``; ``final`` means the walk stops
        here.  ``(False, resp)`` keeps ``resp`` as a fallback answer if
        every other candidate also fails; ``(False, None)`` means the
        shard was skipped or unreachable.
        """
        breaker = self.breakers.get(sid)
        if breaker is not None and not breaker.allow():
            self._m_breaker_skips.inc()
            return False, None
        client = self.clients.get(sid)
        if client is None:
            return False, None
        last: ServeResponse | None = None
        for attempt in range(self.retries + 1):
            if attempt > 0:
                self._m_retries.inc()
                await asyncio.sleep(self.backoff_s * (2 ** (attempt - 1)))
            try:
                response = await client.get(
                    key, epoch=epoch, deadline_s=deadline_s, trace=trace
                )
            except _TRANSPORT_ERRORS:
                if breaker is not None:
                    breaker.record(False)
                last = None
                continue
            self._note_state(sid, response)
            if response.status in (OK, NOT_FOUND):
                if breaker is not None:
                    breaker.record(True)
                # ok from anyone; not_found only from an authoritative
                # replica holder — which every planned candidate is.
                return True, response
            if response.status == DEADLINE_EXCEEDED:
                if breaker is not None:
                    breaker.record(True)  # alive, just slow
                return True, response
            if response.status == OVERLOADED:
                # An explicit refusal: the shard is alive.  Fail over to
                # a replica but keep this as the answer of last resort.
                if breaker is not None:
                    breaker.record(True)
                return False, response
            # status == ERROR
            if response.code == ERR_UNKNOWN_EPOCH:
                # Our view of this shard is behind its compactions; its
                # replicas may already resolve the epoch.
                self._mark_stale(sid)
                if breaker is not None:
                    breaker.record(True)
                return False, response
            if response.code in _SHARD_FAULT_CODES:
                if breaker is not None:
                    breaker.record(False)
                last = response
                continue  # retryable shard fault
            # Typed non-retryable error (bad_request, unsupported_version…)
            if breaker is not None:
                breaker.record(True)
            return True, response
        return False, last

    def _note_state(self, sid: int, response: ServeResponse) -> None:
        """Compare the piggybacked state token against the view it was
        planned with; any drift (commit or compaction) marks the view
        stale and schedules a refresh."""
        if response.shard_state is None:
            return
        view = self.views.get(sid)
        if view is not None and not view.stale and tuple(response.shard_state) != view.state:
            self._mark_stale(sid)

    def _mark_stale(self, sid: int) -> None:
        view = self.views.get(sid)
        if view is not None and not view.stale:
            view.stale = True
            self._m_stale.inc()
        self._schedule_refresh(sid)

    # -- QueryService-compatible introspection ------------------------------

    def state_token(self) -> list:
        """Fleet-level epoch-set version: the per-shard tokens folded so
        any shard's commit or compaction moves it."""
        gens = sum(v.state[0] for v in self.views.values())
        newest = max((v.state[1] for v in self.views.values()), default=-1)
        return [gens, newest]

    def aux_state(self) -> dict:
        """The router holds no blobs of its own to export — it is the
        consumer of `aux_state`, not a producer — but the verb stays
        mountable so a fleet front end answers instead of erroring."""
        return {
            "format": "fleet",
            "nranks": 0,
            "state": self.state_token(),
            "epochs": {},
        }

    def stats(self) -> dict:
        """Cumulative fleet counters (JSON-safe), shaped like
        `QueryService.stats` where the concepts line up."""
        m = self.metrics
        lat = self._m_latency
        return {
            "shards": sorted(self.clients),
            "rf": self.rf,
            "requests": {
                s: int(m.total("fleet.router.requests", status=s)) for s in STATUSES
            },
            "latency_ms": {
                "p50": round(lat.quantile(0.5) * 1e3, 3),
                "p95": round(lat.quantile(0.95) * 1e3, 3),
                "p99": round(lat.quantile(0.99) * 1e3, 3),
                "count": lat.count,
            },
            "aux_routed": int(m.total("fleet.router.aux_routed")),
            "scatter": int(m.total("fleet.router.scatter")),
            "failovers": int(m.total("fleet.router.failovers")),
            "retries": int(m.total("fleet.router.retries")),
            "hedges": int(m.total("fleet.router.hedges")),
            "stale_detected": int(m.total("fleet.router.stale_detected")),
            "aux_refreshes": int(m.total("fleet.router.aux_refreshes")),
            "breaker_skips": int(m.total("fleet.router.breaker_skips")),
            "breakers": {
                str(sid): b.state for sid, b in sorted(self.breakers.items())
            },
            "aux_blob_bytes": self.aux_blob_bytes,
            "aux_resident_bytes": self.aux_resident_bytes,
        }

    def live_stats(self, window_s: float | None = None) -> dict:
        """Trailing-window fleet view: the router's own request stream
        plus each shard's breaker/view state — the ``repro top --fleet``
        payload."""
        out = self.timeseries.snapshot(window_s=window_s)
        out["format"] = "fleet"
        out["shards"] = {
            str(sid): {
                "breaker": self.breakers[sid].state,
                "stale": bool(self.views[sid].stale) if sid in self.views else None,
                "epochs": sorted(self.views[sid].epochs) if sid in self.views else [],
            }
            for sid in sorted(self.clients)
        }
        out["aux_blob_bytes"] = self.aux_blob_bytes
        out["aux_resident_bytes"] = self.aux_resident_bytes
        return out

    def recent_traces(self, n: int = 8) -> list[list[dict]]:
        return []  # request tracing lives on the shards; see their verbs
