"""`repro.fleet` — sharded multi-node serving with aux-table routing.

The paper's compact filters, applied one tier up (ROADMAP item 1): a
consistent-hash ring places keys on `ShardNode`s (each a recovered
`MultiEpochStore` behind its own `QueryService`, with R-way replication),
and a `FleetRouter` holds *only the shards' sealed aux blobs* — rebuilt
into probing tables, never values or SSTables — to forward each query to
the shard most likely to answer it, with circuit breaking, retry,
hedging, and replica failover when shards crash.  `Fleet` assembles the
whole thing from a `FleetSpec` and rolls per-shard telemetry up into
``fleet.*`` series.  See each module's docstring for the design detail.
"""

from .fleet import Fleet, FleetSpec
from .ring import HashRing
from .router import CircuitBreaker, FleetRouter, ShardAuxView
from .shard import ShardNode

__all__ = [
    "Fleet",
    "FleetSpec",
    "HashRing",
    "FleetRouter",
    "ShardAuxView",
    "CircuitBreaker",
    "ShardNode",
]
