"""Consistent-hash ring: stable key → shard placement with replication.

The fleet's shard plane is keyed by a classic consistent-hash ring with
virtual nodes: every shard owns ``vnodes`` points on a 64-bit circle
(`hash_pair(shard, vnode)` via the package's splitmix64 mixer), and a key
belongs to the first point clockwise of ``hash64(key)``.  Walking the
circle past that point yields the key's *replica set* — the first
``rf`` **distinct** shards encountered — so every key has one primary and
``rf-1`` read replicas, and removing a shard only moves the keys whose
walk crossed its points (the usual 1/N movement bound, checked in
`tests/fleet/test_ring.py`).

Placement is pure arithmetic on the key: the router, the ingest path, and
the tests all recompute it independently and must agree, which is why
`owners_many` (the vectorized form used to split a fleet dump into
per-shard batches) is pinned byte-for-byte to the scalar `owners` walk.
"""

from __future__ import annotations

import numpy as np

from ..filters.hashing import hash64, hash_pair

__all__ = ["HashRing"]


class HashRing:
    """Seeded consistent-hash ring over integer shard ids.

    Parameters
    ----------
    shards:
        Shard ids to place on the ring (need not be contiguous).
    vnodes:
        Ring points per shard.  More points smooth the load split at the
        cost of a wider sorted array; 64 keeps the max/mean key imbalance
        under ~1.3 at fleet sizes this repo runs.
    seed:
        Perturbs every point position, so two rings with the same shard
        ids but different seeds place keys independently.
    """

    def __init__(self, shards: list[int], vnodes: int = 64, seed: int = 0):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        if len(set(shards)) != len(shards):
            raise ValueError(f"duplicate shard ids in {shards}")
        self.vnodes = int(vnodes)
        self.seed = int(seed)
        self._points = np.empty(0, dtype=np.uint64)
        self._owners = np.empty(0, dtype=np.int64)
        self.shards: list[int] = []
        for s in shards:
            self.add_shard(int(s))

    # -- membership --------------------------------------------------------

    def add_shard(self, shard: int) -> None:
        if shard in self.shards:
            raise ValueError(f"shard {shard} already on the ring")
        vn = np.arange(self.vnodes, dtype=np.uint64)
        pts = hash_pair(np.full(self.vnodes, shard, dtype=np.uint64), vn, seed=self.seed)
        points = np.concatenate([self._points, pts])
        owners = np.concatenate(
            [self._owners, np.full(self.vnodes, shard, dtype=np.int64)]
        )
        order = np.argsort(points, kind="stable")
        self._points = points[order]
        self._owners = owners[order]
        self.shards.append(shard)
        self.shards.sort()

    def remove_shard(self, shard: int) -> None:
        if shard not in self.shards:
            raise ValueError(f"shard {shard} not on the ring")
        keep = self._owners != shard
        self._points = self._points[keep]
        self._owners = self._owners[keep]
        self.shards.remove(shard)

    def __len__(self) -> int:
        return len(self.shards)

    # -- placement ---------------------------------------------------------

    def _start_index(self, key: int | np.ndarray) -> np.ndarray:
        """Index of the first ring point clockwise of each key's hash."""
        h = hash64(np.asarray(key, dtype=np.uint64))
        return np.searchsorted(self._points, h, side="left") % self._points.size

    def owners(self, key: int, rf: int = 1) -> list[int]:
        """The key's replica set: first ``rf`` distinct shards clockwise.

        Element 0 is the primary.  ``rf`` is clamped to the fleet size, so
        a 2-replica config on a 1-shard ring degrades to ``[shard]``
        rather than failing.
        """
        if not self.shards:
            raise ValueError("ring is empty")
        rf = min(max(1, int(rf)), len(self.shards))
        i = int(self._start_index(int(key)))
        out: list[int] = []
        n = self._points.size
        for step in range(n):
            s = int(self._owners[(i + step) % n])
            if s not in out:
                out.append(s)
                if len(out) == rf:
                    break
        return out

    def owners_many(self, keys: np.ndarray, rf: int = 1) -> np.ndarray:
        """Vectorized `owners`: ``(len(keys), rf)`` shard ids, column 0 the
        primary.  Must (and does — see the parity test) agree with the
        scalar walk for every key."""
        if not self.shards:
            raise ValueError("ring is empty")
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        rf = min(max(1, int(rf)), len(self.shards))
        start = self._start_index(keys)
        out = np.empty((keys.size, rf), dtype=np.int64)
        n = self._points.size
        # The primary is a straight gather; deeper replicas walk until the
        # next *distinct* shard.  The walk vectorizes per replica slot:
        # rows that already found slot j stop advancing.
        idx = start.copy()
        out[:, 0] = self._owners[idx % n]
        for j in range(1, rf):
            found = np.zeros(keys.size, dtype=bool)
            while not found.all():
                idx[~found] += 1
                cand = self._owners[idx % n]
                # A candidate is new if it differs from every shard already
                # chosen for this row.
                new = ~found
                for jj in range(j):
                    new &= cand != out[:, jj]
                out[new, j] = cand[new]
                found |= new
        return out

    def primary_of(self, keys: np.ndarray) -> np.ndarray:
        """Primary shard per key (the ``rf=1`` column of `owners_many`)."""
        return self.owners_many(keys, rf=1)[:, 0]
