"""Fleet assembly: spec → shard nodes + ring + router, plus rollups.

`Fleet` wires the pieces into the ROADMAP item-1 shape: ``nshards``
`ShardNode`s placed on a `HashRing`, an ingest path that splits each
fleet dump into per-shard epochs by ring ownership (every key lands on
its primary *and* its ``rf - 1`` replicas, so any owner can serve it),
and a `FleetRouter` over the shard clients.  Observability rolls up the
other way: each shard keeps its own ``serve.*`` registry, and the fleet
merges them under a ``shard`` label, re-exporting the totals as
``fleet.*`` series next to the router's own ``fleet.router.*`` counters.

Everything runs in one process — in-proc clients by default, real TCP
servers with ``tcp=True`` — because the repo simulates at function-call
granularity; the wire format, the routing state, and the failure
handling are exactly what a multi-process deployment would use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.formats import FMT_FILTERKV, FormatSpec
from ..core.kv import KVBatch
from ..obs import MetricsRegistry
from .ring import HashRing
from .router import FleetRouter
from .shard import ShardNode

__all__ = ["Fleet", "FleetSpec"]


@dataclass(frozen=True)
class FleetSpec:
    """Shape of one fleet.

    ``nranks`` is writer ranks *per shard* (each shard is a complete
    in-situ dataset); ``rf`` is the replication factor — how many ring
    owners hold each key.  ``service_kwargs`` / ``router_kwargs`` pass
    through to `QueryService` and `FleetRouter` untouched.
    """

    nshards: int = 4
    rf: int = 2
    nranks: int = 4
    fmt: FormatSpec = FMT_FILTERKV
    value_bytes: int = 24
    seed: int = 0
    vnodes: int = 64
    tcp: bool = False
    aux_policy: object | None = None
    service_kwargs: dict = field(default_factory=dict)
    router_kwargs: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.nshards < 1:
            raise ValueError(f"nshards must be >= 1, got {self.nshards}")
        if not 1 <= self.rf:
            raise ValueError(f"rf must be >= 1, got {self.rf}")


class Fleet:
    """A running (or about-to-run) sharded serving fleet."""

    def __init__(self, spec: FleetSpec):
        self.spec = spec
        self.ring = HashRing(
            list(range(spec.nshards)), vnodes=spec.vnodes, seed=spec.seed
        )
        self.shards: dict[int, ShardNode] = {
            sid: ShardNode(
                sid,
                nranks=spec.nranks,
                fmt=spec.fmt,
                value_bytes=spec.value_bytes,
                # Offset per shard so sibling stores ingest independently.
                seed=spec.seed + 1000 * (sid + 1),
                aux_policy=spec.aux_policy,
                service_kwargs=spec.service_kwargs,
            )
            for sid in range(spec.nshards)
        }
        # The router reads this mapping live; recovery swaps entries in
        # place rather than rebuilding the router.
        self.clients: dict[int, object] = {}
        self.router: FleetRouter | None = None

    @property
    def rf(self) -> int:
        return min(self.spec.rf, self.spec.nshards)

    # -- ingest ------------------------------------------------------------

    def ingest(self, batch: KVBatch) -> int:
        """Commit one fleet dump: every shard gets an epoch holding the
        keys it owns (as primary or replica).  All shards commit every
        epoch — possibly empty — so epoch ids stay in lockstep across the
        fleet.  Returns the epoch id."""
        owners = self.ring.owners_many(batch.keys, rf=self.rf)
        epochs = set()
        for sid, node in self.shards.items():
            mask = (owners == sid).any(axis=1)
            epochs.add(node.write_epoch(batch.select(mask)))
        if len(epochs) != 1:
            raise RuntimeError(f"shard epochs diverged: {sorted(epochs)}")
        return epochs.pop()

    def owners_of(self, keys) -> np.ndarray:
        """Replica sets per key — what tests assert placement against."""
        return self.ring.owners_many(np.asarray(keys, dtype=np.uint64), rf=self.rf)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> FleetRouter:
        """Start every shard (+ TCP front ends when configured) and the
        router over them; the router's aux views are pulled eagerly."""
        for node in self.shards.values():
            await node.start(tcp=self.spec.tcp)
            self.clients[node.shard_id] = node.client
        self.router = FleetRouter(
            self.clients, self.ring, rf=self.rf, **self.spec.router_kwargs
        )
        await self.router.start()
        return self.router

    async def close(self) -> None:
        if self.router is not None:
            await self.router.close()
        for node in self.shards.values():
            await node.stop()

    async def __aenter__(self) -> "Fleet":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- failure/recovery --------------------------------------------------

    def crash_shard(self, shard_id: int) -> None:
        self.shards[shard_id].crash()

    async def recover_shard(self, shard_id: int) -> None:
        """Crash-recover one shard and splice it back into the fleet:
        fresh store from the manifest, fresh service, client swapped into
        the live mapping, breaker given its half-open trial immediately,
        and the router's view of the shard re-pulled."""
        node = self.shards[shard_id]
        await node.recover(tcp=self.spec.tcp)
        self.clients[shard_id] = node.client
        if self.router is not None:
            breaker = self.router.breakers.get(shard_id)
            if breaker is not None:
                breaker.record(True)
            await self.router.refresh(shard_id)

    # -- observability -----------------------------------------------------

    def merged_metrics(self) -> MetricsRegistry:
        """Every registry in the fleet, in one place: the router's
        ``fleet.router.*`` series unlabeled, each shard's ``serve.*`` (and
        ``reader.*``/``aux.*``) series under ``shard=<id>``."""
        out = MetricsRegistry("fleet")
        if self.router is not None:
            out.merge(self.router.metrics)
        for sid, node in self.shards.items():
            if node.service is not None:
                out.merge(node.service.metrics, shard=sid)
        return out

    def rollup(self) -> MetricsRegistry:
        """Fleet-wide totals: the merged registry with the ``shard`` label
        dropped, and every ``serve.*`` series re-exported as ``fleet.*``
        (``fleet.requests``, ``fleet.sheds``, …) so dashboards read one
        namespace for the whole tier."""
        rolled = self.merged_metrics().rollup("shard")
        for name, labels, inst in list(rolled.series()):
            if not name.startswith("serve."):
                continue
            fleet_name = "fleet." + name[len("serve."):]
            kw = dict(labels)
            if inst.kind == "counter":
                rolled.counter(fleet_name, **kw).inc(inst.value)
            elif inst.kind == "gauge":
                rolled.gauge(fleet_name, **kw).set(inst.value)
            else:
                for v in inst._values:
                    rolled.histogram(fleet_name, **kw).observe(v)
        return rolled

    def live_stats(self, window_s: float | None = None) -> dict:
        """Windowed fleet view: the router's trailing-window snapshot plus
        each shard's own `live_stats`, with shard QPS summed so the
        dashboard shows both the fleet rate and its split."""
        shards = {}
        total_qps = 0.0
        for sid, node in sorted(self.shards.items()):
            if node.service is None:
                continue
            snap = node.service.live_stats(window_s=window_s)
            snap["crashed"] = node.crashed
            total_qps += snap.get("qps", 0.0)
            shards[str(sid)] = snap
        out = {
            "router": self.router.live_stats(window_s=window_s)
            if self.router is not None
            else None,
            "shards": shards,
            "shard_qps_total": round(total_qps, 2),
        }
        return out
