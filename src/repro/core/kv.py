"""Key-value model shared by every partitioning scheme.

The paper's workloads use fixed 8-byte integer keys (random in the
microbenchmarks, particle IDs in VPIC) and values from a few bytes up to a
couple hundred.  Batches are represented as a `KVBatch` — a keys array plus
equal-width value payload — because fixed-width vectors keep the write
pipeline NumPy-friendly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["KEY_BYTES", "KVBatch", "random_kv_batch"]

KEY_BYTES = 8  # the paper fixes keys at 8 bytes (§V-A)


@dataclass(frozen=True)
class KVBatch:
    """A batch of fixed-width KV pairs.

    Attributes
    ----------
    keys:
        ``uint64`` array of keys.
    values:
        ``uint8`` array of shape ``(len(keys), value_bytes)``.
    """

    keys: np.ndarray
    values: np.ndarray

    def __post_init__(self):
        keys = np.asarray(self.keys, dtype=np.uint64)
        values = np.asarray(self.values, dtype=np.uint8)
        if values.ndim != 2 or values.shape[0] != keys.shape[0]:
            raise ValueError(
                f"values must be (nkeys, value_bytes); got {values.shape} for {keys.shape[0]} keys"
            )
        object.__setattr__(self, "keys", keys)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    @property
    def value_bytes(self) -> int:
        return int(self.values.shape[1])

    @property
    def record_bytes(self) -> int:
        """Full KV pair size: key + value."""
        return KEY_BYTES + self.value_bytes

    @property
    def total_bytes(self) -> int:
        return len(self) * self.record_bytes

    def select(self, mask_or_index: np.ndarray) -> "KVBatch":
        """Sub-batch by boolean mask or index array."""
        return KVBatch(self.keys[mask_or_index], self.values[mask_or_index])

    def value_of(self, i: int) -> bytes:
        return self.values[i].tobytes()

    @staticmethod
    def concat(batches: list["KVBatch"]) -> "KVBatch":
        if not batches:
            raise ValueError("cannot concat zero batches")
        widths = {b.value_bytes for b in batches}
        if len(widths) != 1:
            raise ValueError(f"mixed value widths: {sorted(widths)}")
        return KVBatch(
            np.concatenate([b.keys for b in batches]),
            np.concatenate([b.values for b in batches], axis=0),
        )


def random_kv_batch(
    nkeys: int, value_bytes: int, rng: np.random.Generator | int = 0
) -> KVBatch:
    """Random batch matching the paper's microbenchmark generator:
    uniformly random 8-byte keys (extreme entropy, §I) and opaque values."""
    if nkeys < 0 or value_bytes < 0:
        raise ValueError("nkeys and value_bytes must be non-negative")
    if not isinstance(rng, np.random.Generator):
        rng = np.random.default_rng(rng)
    keys = rng.integers(0, 2**63, size=nkeys, dtype=np.uint64)
    values = rng.integers(0, 256, size=(nkeys, value_bytes), dtype=np.uint8)
    return KVBatch(keys, values)
