"""FilterKV core: formats, partitioning, aux tables, pipelines, read path,
and the write-phase cost model."""

from .auxtable import (
    AuxTable,
    BloomAuxTable,
    CuckooAuxTable,
    ExactAuxTable,
    QuotientAuxTable,
    XorAuxTable,
    bloom_bits_per_key,
    make_aux_table,
    rank_bits,
)
from .advisor import Advice, recommend_format
from .compact import CompactionPolicy, CompactionReport, Compactor
from .costmodel import WritePhaseResult, WriteRunConfig, model_write_phase
from .multiepoch import MultiEpochStore
from .formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV, FORMATS, FormatSpec
from .kv import KEY_BYTES, KVBatch, random_kv_batch
from .partitioning import HashPartitioner
from .pipeline import Envelope, ReceiverState, WriterState, aux_table_name, main_table_name
from .imd import IndexedDirectory
from .reader import CachedQueryEngine, QueryEngine, QueryStats
from .routing import DirectRouter, ThreeHopRouter

__all__ = [
    "AuxTable",
    "BloomAuxTable",
    "CuckooAuxTable",
    "ExactAuxTable",
    "QuotientAuxTable",
    "XorAuxTable",
    "bloom_bits_per_key",
    "make_aux_table",
    "rank_bits",
    "Advice",
    "recommend_format",
    "CompactionPolicy",
    "CompactionReport",
    "Compactor",
    "MultiEpochStore",
    "WritePhaseResult",
    "WriteRunConfig",
    "model_write_phase",
    "FMT_BASE",
    "FMT_DATAPTR",
    "FMT_FILTERKV",
    "FORMATS",
    "FormatSpec",
    "KEY_BYTES",
    "KVBatch",
    "random_kv_batch",
    "HashPartitioner",
    "Envelope",
    "ReceiverState",
    "WriterState",
    "aux_table_name",
    "main_table_name",
    "QueryEngine",
    "CachedQueryEngine",
    "IndexedDirectory",
    "DirectRouter",
    "ThreeHopRouter",
    "QueryStats",
]
