"""The executing write pipeline: what each rank actually does per record.

`WriterState` implements the producer side of Fig. 3 for all three formats
— local writes, payload encoding, destination batching — and `ReceiverState`
the partition-owner side — decoding, partition tables, aux-table builds.
`repro.cluster.simcluster.SimCluster` wires one of each per rank over an
in-memory transport with exact message/byte accounting.

Payload wire formats (little-endian, fixed-width; the sender's rank rides
in the batch envelope):

* base:      ``key u64 ‖ value[value_bytes]`` per record
* dataptr:   ``key u64 ‖ offset u64``         per record
* filterkv:  ``key u64``                      per record
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..obs import MetricsRegistry, active
from ..storage.blockio import StorageDevice
from ..storage.envelope import seal
from ..storage.log import DataPointer, ValueLog
from ..storage.memtable import MemTable, RunWriter, flatten_runs
from ..storage.sstable import SSTableWriter, TableStats
from .auxtable import AuxBackendPolicy, AuxTable, aux_to_blob, build_sealed_aux, make_aux_table
from .formats import FormatSpec
from .kv import KEY_BYTES, KVBatch
from .partitioning import HashPartitioner

__all__ = ["Envelope", "WriterState", "ReceiverState", "main_table_name", "aux_table_name"]

SendFn = Callable[["Envelope"], None]


def main_table_name(epoch: int, rank: int) -> str:
    """Partition / main-table extent name for one rank and epoch."""
    return f"part.{epoch:03d}.{rank:06d}"


def aux_table_name(epoch: int, rank: int) -> str:
    return f"aux.{epoch:03d}.{rank:06d}"


@dataclass(frozen=True)
class Envelope:
    """One RPC batch on the (simulated) wire."""

    src: int
    dest: int
    payload: bytes
    nrecords: int


class WriterState:
    """Producer-side pipeline for one rank."""

    def __init__(
        self,
        rank: int,
        fmt: FormatSpec,
        partitioner: HashPartitioner,
        device: StorageDevice,
        value_bytes: int,
        send: SendFn,
        batch_bytes: int = 16384,
        epoch: int = 0,
        block_size: int = 1 << 20,
        spill_budget_bytes: int | None = None,
        bulk: bool = True,
        metrics: MetricsRegistry | None = None,
    ):
        self.rank = rank
        self.fmt = fmt
        self.partitioner = partitioner
        self.device = device
        self.value_bytes = value_bytes
        self.send = send
        self.batch_bytes = batch_bytes
        self.epoch = epoch
        self.bulk = bulk
        self._buffers: dict[int, bytearray] = {}
        self._buffer_counts: dict[int, int] = {}
        self.records_written = 0
        self.metrics = active(metrics)
        self._m_records = self.metrics.counter(
            "pipeline.records_encoded", format=fmt.name, rank=rank
        )
        self._m_wire_bytes = self.metrics.counter(
            "pipeline.wire_bytes", format=fmt.name, rank=rank
        )
        self._m_batches = self.metrics.counter(
            "pipeline.batches_shipped", format=fmt.name, rank=rank
        )
        self._vlog: ValueLog | None = None
        self._main: SSTableWriter | None = None
        self._memtable: MemTable | None = None
        self._runs: RunWriter | None = None
        if fmt.name == "dataptr":
            self._vlog = ValueLog(device, rank)
        elif fmt.name == "filterkv":
            self._main = SSTableWriter(
                device, main_table_name(epoch, rank), block_size=block_size,
                vectorized=bulk,
            )
            if spill_budget_bytes is not None:
                # The paper's driver buffers at most 16 MB before writing
                # (§V-A): bound memory with a memtable that spills sorted
                # runs, merged into the final table at epoch end.
                self._memtable = MemTable(spill_budget_bytes)
                self._runs = RunWriter(
                    device, f"runs.{epoch:03d}.{rank:06d}", metrics=self.metrics
                )

    # -- producing --------------------------------------------------------

    def put_batch(self, batch: KVBatch) -> None:
        """Process one batch of generated KV pairs.

        The default path is columnar: local writes (value log, main table,
        memtable spills) and payload encoding all happen as array
        operations with no per-record Python work.  ``bulk=False`` keeps
        the scalar per-record loops (same bytes, used as the equivalence
        reference and by variable-width callers).
        """
        if batch.value_bytes != self.value_bytes:
            raise ValueError(
                f"batch value width {batch.value_bytes} != pipeline width {self.value_bytes}"
            )
        offsets = None
        if self.fmt.name == "dataptr":
            offsets = self._write_vlog(batch)
        elif self.fmt.name == "filterkv":
            self._write_local(batch)
        for dest, idx in enumerate(self.partitioner.split(batch.keys)):
            if idx.size == 0:
                continue
            payload = self._encode(batch, idx, offsets)
            self._append_to_buffer(dest, payload, idx.size)
        self.records_written += len(batch)
        self._m_records.inc(len(batch))

    def _write_vlog(self, batch: KVBatch) -> np.ndarray:
        """Append every value to the local log; returns their offsets."""
        if self.bulk:
            return self._vlog.append_many(batch.values)
        offsets = np.empty(len(batch), dtype=np.uint64)
        for i in range(len(batch)):
            offsets[i] = self._vlog.append(batch.value_of(i)).offset
        return offsets

    def _write_local(self, batch: KVBatch) -> None:
        """FilterKV local KV write: main table, or bounded memtable."""
        if self._memtable is None:
            if self.bulk:
                self._main.add_many(batch.keys, batch.values)
            else:
                for i in range(len(batch)):
                    self._main.add(int(batch.keys[i]), batch.value_of(i))
            return
        if self.bulk:
            taken = 0
            n = len(batch)
            while taken < n:
                took = self._memtable.add_many(
                    batch.keys[taken:], batch.values[taken:]
                )
                taken += took
                if self._memtable.full or took == 0:
                    self._runs.spill(self._memtable)
        else:
            for i in range(len(batch)):
                if not self._memtable.add(int(batch.keys[i]), batch.value_of(i)):
                    self._runs.spill(self._memtable, vectorized=False)

    def _encode(self, batch: KVBatch, idx: np.ndarray, offsets: np.ndarray | None) -> bytes:
        keys_le = batch.keys[idx].astype("<u8")
        if self.fmt.name == "base":
            out = np.zeros((idx.size, KEY_BYTES + self.value_bytes), dtype=np.uint8)
            out[:, :KEY_BYTES] = keys_le.view(np.uint8).reshape(-1, KEY_BYTES)
            out[:, KEY_BYTES:] = batch.values[idx]
            return out.tobytes()
        if self.fmt.name == "dataptr":
            out = np.zeros((idx.size, KEY_BYTES + 8), dtype=np.uint8)
            out[:, :KEY_BYTES] = keys_le.view(np.uint8).reshape(-1, KEY_BYTES)
            out[:, KEY_BYTES:] = offsets[idx].astype("<u8").view(np.uint8).reshape(-1, 8)
            return out.tobytes()
        return keys_le.tobytes()

    def _append_to_buffer(self, dest: int, payload: bytes, nrecords: int) -> None:
        buf = self._buffers.setdefault(dest, bytearray())
        buf += payload
        self._buffer_counts[dest] = self._buffer_counts.get(dest, 0) + nrecords
        record_bytes = len(payload) // nrecords
        # Ship whole records only: trim the cut to a record boundary.  A
        # record wider than batch_bytes would trim to zero; such records
        # ship as single-record envelopes instead of looping forever.
        cut = max(record_bytes, (self.batch_bytes // record_bytes) * record_bytes)
        while len(buf) >= self.batch_bytes and len(buf) >= record_bytes:
            take = min(cut, (len(buf) // record_bytes) * record_bytes)
            self._ship(dest, bytes(buf[:take]), take // record_bytes)
            del buf[:take]
            self._buffer_counts[dest] -= take // record_bytes

    def _ship(self, dest: int, payload: bytes, nrecords: int) -> None:
        if nrecords:
            self._m_wire_bytes.inc(len(payload))
            self._m_batches.inc()
            self.send(Envelope(self.rank, dest, payload, nrecords))

    def flush(self) -> None:
        """Ship every partial batch (end of the I/O burst)."""
        for dest, buf in self._buffers.items():
            if buf:
                self._ship(dest, bytes(buf), self._buffer_counts[dest])
        self._buffers.clear()
        self._buffer_counts.clear()

    def finish(self) -> TableStats | None:
        """Flush and finalize local structures; returns main-table stats."""
        self.flush()
        if self._memtable is not None:
            self._runs.spill(self._memtable, vectorized=self.bulk)
            return flatten_runs(self._runs, self._main, bulk=self.bulk)
        if self._main is not None:
            return self._main.finish()
        return None

    @property
    def local_storage_bytes(self) -> int:
        if self._vlog is not None:
            return self._vlog.size_bytes
        if self._main is not None:
            total = self.device.file_size(main_table_name(self.epoch, self.rank))
            if self._runs is not None:
                # During the burst the spilled data lives in the run extent,
                # not the (unfinished) main table — and the runs stay on the
                # device after the flatten, so they always count as local.
                total += self._runs.size_bytes
            return total
        return 0


class ReceiverState:
    """Partition-owner pipeline for one rank."""

    def __init__(
        self,
        rank: int,
        nranks: int,
        fmt: FormatSpec,
        device: StorageDevice,
        value_bytes: int,
        epoch: int = 0,
        block_size: int = 1 << 20,
        capacity_hint: int | None = None,
        aux_seed: int = 0,
        bulk: bool = True,
        defer_aux: bool = False,
        aux_policy: AuxBackendPolicy | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.rank = rank
        self.nranks = nranks
        self.fmt = fmt
        self.device = device
        self.value_bytes = value_bytes
        self.epoch = epoch
        self.bulk = bulk
        self.defer_aux = defer_aux
        self.aux_policy = aux_policy
        self._aux_seed = aux_seed
        self._capacity_hint = capacity_hint
        self.records_received = 0
        self.metrics = active(metrics)
        self._m_records = self.metrics.counter(
            "pipeline.records_decoded", format=fmt.name, rank=rank
        )
        self._m_batches = self.metrics.counter(
            "pipeline.batches_received", format=fmt.name, rank=rank
        )
        self.aux: AuxTable | None = None
        self._table: SSTableWriter | None = None
        # ``defer_aux`` buffers key→source-rank mappings during the burst
        # and builds the aux table in one insert at finish.  The mappings
        # are immutable once the epoch ends (static-filter regime), and the
        # chained cuckoo sizes overflow tables from the pending batch, so
        # one table-sized insert chains fewer, larger tables than streaming
        # envelope-sized inserts — faster to build and to probe, but a
        # different (equal-content) layout than the paper's online,
        # arrival-order build.  Off by default: the streaming build is the
        # faithful one, and it keeps bulk and scalar byte-identical.
        self._aux_pending: list[tuple[np.ndarray, int]] = []
        if fmt.name in ("base", "dataptr"):
            self._table = SSTableWriter(
                device, main_table_name(epoch, rank), block_size=block_size,
                vectorized=bulk,
            )
        elif aux_policy is None:
            self.aux = make_aux_table(
                fmt.aux_backend or "cuckoo",
                nparts=nranks,
                capacity_hint=capacity_hint,
                seed=aux_seed + rank,
                metrics=self.metrics,
                metric_labels={"rank": str(rank)},
            )
        # With an `aux_policy` the backend is chosen at flush time from the
        # sealed mapping set (the tournament), so the burst only buffers —
        # `self.aux` materializes in `finish`.

    def deliver(self, env: Envelope) -> None:
        """Decode one batch into the partition's tables.

        Decoding is columnar: wire payloads reshape into record matrices
        and land in the tables via ``add_many`` with no per-record Python
        work (``bulk=False`` keeps the scalar reference loops).
        """
        if env.dest != self.rank:
            raise ValueError(f"envelope for rank {env.dest} delivered to {self.rank}")
        raw = np.frombuffer(env.payload, dtype=np.uint8)
        if self.fmt.name == "base":
            rec = KEY_BYTES + self.value_bytes
            rows = raw.reshape(env.nrecords, rec)
            keys = rows[:, :KEY_BYTES].copy().view("<u8").ravel()
            if self.bulk:
                self._table.add_many(keys, rows[:, KEY_BYTES:])
            else:
                for i in range(env.nrecords):
                    self._table.add(int(keys[i]), rows[i, KEY_BYTES:].tobytes())
        elif self.fmt.name == "dataptr":
            rows = raw.reshape(env.nrecords, KEY_BYTES + 8)
            keys = rows[:, :KEY_BYTES].copy().view("<u8").ravel()
            if self.bulk:
                # Stored value is the packed 12-byte DataPointer: the
                # sender's rank (u32, from the envelope) + wire offset.
                ptrs = np.empty((env.nrecords, 12), dtype=np.uint8)
                ptrs[:, :4] = np.frombuffer(
                    np.uint32(env.src).astype("<u4").tobytes(), dtype=np.uint8
                )
                ptrs[:, 4:] = rows[:, KEY_BYTES:]
                self._table.add_many(keys, ptrs)
            else:
                offsets = rows[:, KEY_BYTES:].copy().view("<u8").ravel()
                for i in range(env.nrecords):
                    ptr = DataPointer(env.src, int(offsets[i]))
                    self._table.add(int(keys[i]), ptr.pack())
        else:
            keys = raw.reshape(env.nrecords, KEY_BYTES).copy().view("<u8").ravel()
            if self.defer_aux or self.aux_policy is not None:
                self._aux_pending.append((keys.astype(np.uint64), env.src))
            else:
                # Per-envelope streaming insert — identical in bulk and
                # scalar modes, matching the paper's online filter build.
                self.aux.insert_many(keys.astype(np.uint64), env.src)
        self.records_received += env.nrecords
        self._m_records.inc(env.nrecords)
        self._m_batches.inc()

    def _build_aux(self) -> None:
        """One-shot insert of every buffered key→rank mapping (arrival order)."""
        if not self._aux_pending:
            return
        keys = np.concatenate([k for k, _ in self._aux_pending])
        srcs = np.concatenate(
            [np.full(k.size, s, dtype=np.uint64) for k, s in self._aux_pending]
        )
        self._aux_pending.clear()
        self.aux.insert_many(keys, srcs)

    def _build_aux_by_policy(self) -> None:
        """Flush-time tournament: rank backends on the sealed mapping set
        and build the cheapest one that fits (`build_sealed_aux` falls back
        when a static construction refuses)."""
        if self._aux_pending:
            keys = np.concatenate([k for k, _ in self._aux_pending])
            srcs = np.concatenate(
                [np.full(k.size, s, dtype=np.uint64) for k, s in self._aux_pending]
            )
            self._aux_pending.clear()
        else:
            keys = np.zeros(0, dtype=np.uint64)
            srcs = np.zeros(0, dtype=np.uint64)
        backends = self.aux_policy.rank_backends(keys.size, self.nranks, epoch=self.epoch)
        self.aux = build_sealed_aux(
            keys,
            srcs,
            nparts=self.nranks,
            backends=backends,
            capacity_hint=self._capacity_hint,
            seed=self._aux_seed + self.rank,
            metrics=self.metrics,
            metric_labels={"rank": str(self.rank)},
        )

    def finish(self) -> TableStats | None:
        """Persist the partition's table (or aux blob) to storage."""
        if self._table is not None:
            return self._table.finish()
        if self.aux_policy is not None:
            self._build_aux_by_policy()
        else:
            self._build_aux()
        self.aux.finalize()
        self.aux.record_structure_metrics()
        # Sealed self-describing blob: a crash mid-append leaves a torn seal
        # that recovery detects, and a complete one reloads the table exactly.
        blob = seal(aux_to_blob(self.aux))
        self.device.open(aux_table_name(self.epoch, self.rank), create=True).append(blob)
        return None
