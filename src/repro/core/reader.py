"""The read path: point queries over a persisted, partitioned dataset.

Implements the three query flows whose costs Fig. 11 compares:

* **base** — hash the key to its partition, open that partition's table
  (footer + index + filter reads), read the candidate data block(s).
* **dataptr** — same, but the stored value is a 12-byte pointer, so one
  extra read recovers the value from the writer's log (the paper's
  "one extra read operation per query").
* **filterkv** — read the partition's *auxiliary table* first, then probe
  the candidate source partitions' main tables until the key is found;
  false positives cost extra partition probes (1.88 partitions/query in
  the paper's runs).

Every read is charged to the `StorageDevice`, and `QueryStats` breaks the
cost down by the same categories as Fig. 11b/c: footer, index, aux table,
data blocks, and value log.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..obs import MetricsRegistry, active, child_span, current_span
from ..storage.blockio import StorageDevice
from ..storage.log import DataPointer, ValueLog
from ..storage.sstable import FOOTER_BYTES, SSTableReader
from .auxtable import AuxTable
from .formats import FormatSpec
from .partitioning import HashPartitioner
from .pipeline import aux_table_name, main_table_name

__all__ = ["QueryEngine", "CachedQueryEngine", "QueryStats"]


@dataclass
class QueryStats:
    """Cost accounting for one point query (Fig. 11's three panels)."""

    found: bool = False
    latency: float = 0.0
    reads: int = 0
    bytes_read: int = 0
    partitions_searched: int = 0
    breakdown_reads: dict = field(default_factory=dict)
    breakdown_bytes: dict = field(default_factory=dict)

    def _charge(self, category: str, reads: int, nbytes: int) -> None:
        self.reads += reads
        self.bytes_read += nbytes
        self.breakdown_reads[category] = self.breakdown_reads.get(category, 0) + reads
        self.breakdown_bytes[category] = self.breakdown_bytes.get(category, 0) + nbytes


class QueryEngine:
    """Point-query executor over one epoch's persisted output."""

    def __init__(
        self,
        device: StorageDevice,
        fmt: FormatSpec,
        nranks: int,
        partitioner: HashPartitioner,
        aux_tables: list[AuxTable | None] | None = None,
        epoch: int = 0,
        parallel_probe: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        self.device = device
        self.fmt = fmt
        self.nranks = nranks
        self.partitioner = partitioner
        self.aux_tables = aux_tables or [None] * nranks
        self.epoch = epoch
        self.parallel_probe = parallel_probe
        self.metrics = active(metrics)
        fmtl = {"format": fmt.name}
        self._m_queries = self.metrics.counter("reader.queries", **fmtl)
        self._m_hits = self.metrics.counter("reader.hits", **fmtl)
        self._m_partitions = self.metrics.counter("reader.partitions_probed", **fmtl)
        self._m_candidates = self.metrics.counter("reader.candidates", **fmtl)
        self._m_amp = self.metrics.histogram("reader.read_amplification", **fmtl)
        self._m_batch_keys = self.metrics.counter("reader.batch_keys", **fmtl)
        self._m_batch_blocks = self.metrics.histogram("reader.batch_blocks_decoded", **fmtl)
        self._m_batch_coalesce = self.metrics.histogram(
            "reader.batch_coalescing_ratio", **fmtl
        )

    # -- helpers -----------------------------------------------------------

    def _charged(self, stats: QueryStats, category: str):
        """Context manager charging device I/O deltas to one category."""

        class _Span:
            def __enter__(inner):
                inner.before = self.device.counters.snapshot()
                return inner

            def __exit__(inner, *exc):
                d = self.device.counters.delta(inner.before)
                stats._charge(category, d.reads, d.bytes_read)
                stats.latency += d.read_time

        return _Span()

    def _open_table(self, rank: int, stats: QueryStats) -> SSTableReader:
        """Open a partition table, splitting footer vs index charges."""
        name = main_table_name(self.epoch, rank)
        before = self.device.counters.snapshot()
        reader = SSTableReader(self.device, name)
        d = self.device.counters.delta(before)
        stats._charge("footer", 1, FOOTER_BYTES)
        stats._charge("index", d.reads - 1, d.bytes_read - FOOTER_BYTES)
        stats.latency += d.read_time
        return reader

    def _release_table(self, reader: SSTableReader) -> None:
        """Give back a reader obtained from `_open_table`.

        The uncached engine opens per query, so it must close per query —
        otherwise every lookup leaks an extent handle (audited through
        `StorageDevice.open_handles`).  The cached engine overrides this
        to a no-op because its cache owns the handle.
        """
        reader.close()

    def _open_vlog(self, rank: int) -> ValueLog:
        return ValueLog.open(self.device, rank)

    def _release_vlog(self, log: ValueLog) -> None:
        log.close()

    def _charge_aux(self, owner: int, stats: QueryStats) -> None:
        """Fetch the owner partition's auxiliary table bytes.

        The reader fetches the partition's entire aux table (the paper
        reads ~18 MB per query), then resolves candidates in memory.
        """
        if current_span() is None:  # untraced: skip span-argument setup
            self._fetch_aux(stats, owner)
            return
        with child_span("aux.fetch", partition=owner):
            self._fetch_aux(stats, owner)

    def _fetch_aux(self, stats: QueryStats, owner: int) -> None:
        aux_file = self.device.open(aux_table_name(self.epoch, owner))
        try:
            with self._charged(stats, "aux"):
                aux_file.read(0, aux_file.size)
        finally:
            aux_file.close()

    def close(self) -> None:
        """Release held handles (no-op here: this engine holds none
        between queries).  The cached subclass closes its caches."""

    def __enter__(self) -> "QueryEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- query flows ---------------------------------------------------------

    def get(self, key: int) -> tuple[bytes | None, QueryStats]:
        """Point lookup; returns (value-or-None, cost accounting)."""
        if current_span() is None:  # untraced: skip span-argument setup
            value, stats = self._get_dispatch(key)
            self._observe(stats)
            return value, stats
        with child_span(
            "engine.get",
            counters=self.metrics,
            prefixes=("reader.",),
            format=self.fmt.name,
        ) as span:
            value, stats = self._get_dispatch(key)
            self._observe(stats)
            if span is not None:
                span.annotate(found=stats.found, partitions=stats.partitions_searched)
        return value, stats

    def _get_dispatch(self, key: int) -> tuple[bytes | None, QueryStats]:
        if self.fmt.name == "base":
            return self._get_base(key)
        if self.fmt.name == "dataptr":
            return self._get_dataptr(key)
        return self._get_filterkv(key)

    def _observe(self, stats: QueryStats) -> None:
        """Mirror one query's cost accounting into the registry."""
        self._m_queries.inc()
        if stats.found:
            self._m_hits.inc()
        self._m_partitions.inc(stats.partitions_searched)
        self._m_amp.observe(stats.partitions_searched)
        for cat, n in stats.breakdown_reads.items():
            self.metrics.counter(
                "reader.storage_reads", format=self.fmt.name, category=cat
            ).inc(n)
        for cat, nbytes in stats.breakdown_bytes.items():
            self.metrics.counter(
                "reader.bytes_read", format=self.fmt.name, category=cat
            ).inc(nbytes)

    def _get_base(self, key: int) -> tuple[bytes | None, QueryStats]:
        stats = QueryStats()
        owner = self.partitioner.partition_of_one(key)
        reader = self._open_table(owner, stats)
        try:
            with self._charged(stats, "data"):
                value = reader.get(key)
        finally:
            self._release_table(reader)
        stats.partitions_searched = 1
        stats.found = value is not None
        return value, stats

    def _get_dataptr(self, key: int) -> tuple[bytes | None, QueryStats]:
        stats = QueryStats()
        owner = self.partitioner.partition_of_one(key)
        reader = self._open_table(owner, stats)
        try:
            with self._charged(stats, "data"):
                ptr_blob = reader.get(key)
        finally:
            self._release_table(reader)
        stats.partitions_searched = 1
        if ptr_blob is None:
            return None, stats
        ptr = DataPointer.unpack(ptr_blob)
        log = self._open_vlog(ptr.rank)
        try:
            with self._charged(stats, "vlog"):
                value = log.read(ptr)
        finally:
            self._release_vlog(log)
        stats.found = True
        return value, stats

    def _get_filterkv(self, key: int) -> tuple[bytes | None, QueryStats]:
        stats = QueryStats()
        owner = self.partitioner.partition_of_one(key)
        aux = self.aux_tables[owner]
        if aux is None:
            raise ValueError(f"no auxiliary table for partition {owner}")
        self._charge_aux(owner, stats)
        candidates = aux.candidate_ranks(key)
        self._m_candidates.inc(len(candidates))
        if self.parallel_probe:
            return self._probe_parallel(key, candidates, stats)
        value = None
        for rank in candidates:
            stats.partitions_searched += 1
            reader = self._open_table(int(rank), stats)
            try:
                with self._charged(stats, "data"):
                    value = reader.get(key)
            finally:
                self._release_table(reader)
            if value is not None:
                break
        stats.found = value is not None
        return value, stats

    def _probe_parallel(
        self, key: int, candidates, stats: QueryStats
    ) -> tuple[bytes | None, QueryStats]:
        """Probe every candidate partition concurrently (paper §III-C:
        readers search candidate locations "potentially concurrently").

        All probes issue: reads and bytes accumulate for each, but latency
        is the *maximum* single-probe latency rather than the sum — the
        overlap a parallel reader buys.
        """
        probe_latencies = []
        value = None
        for rank in candidates:
            before = stats.latency
            stats.partitions_searched += 1
            reader = self._open_table(int(rank), stats)
            try:
                with self._charged(stats, "data"):
                    hit = reader.get(key)
            finally:
                self._release_table(reader)
            probe_latencies.append(stats.latency - before)
            if hit is not None and value is None:
                value = hit
        if probe_latencies:
            stats.latency -= sum(probe_latencies) - max(probe_latencies)
        stats.found = value is not None
        return value, stats

    # -- bulk query flow -----------------------------------------------------

    @staticmethod
    def _groups(sortkeys: np.ndarray):
        """Yield ``(value, positions)`` groups of equal sort keys, ascending.

        ``positions`` preserves the original relative order within each
        group (stable sort), so "first key of a group" is deterministic.
        """
        if sortkeys.size == 0:
            return
        order = np.argsort(sortkeys, kind="stable")
        sk = sortkeys[order]
        starts = np.flatnonzero(np.r_[True, sk[1:] != sk[:-1]])
        ends = np.r_[starts[1:], sk.size]
        for s, e in zip(starts, ends):
            yield int(sk[s]), order[s:e]

    def get_many(self, keys) -> tuple[list[bytes | None], list[QueryStats]]:
        """Bulk point lookups: value-equivalent to ``[self.get(k) for k in keys]``.

        The batch walks the same probe schedule as the scalar loop —
        candidate ranks ascending per key, stopping at the first hit — so
        ``found``, per-key ``partitions_searched``, and the aux-table
        probe/candidate counters all match the scalar walk exactly.  What
        changes is the physical plan: each partition table (and value log)
        is opened once per batch, keys destined for the same data block are
        resolved with a single block read, and vlog reads sweep each log in
        offset order.  Shared I/O is charged to the *first* key of the group
        that needed it, so per-key breakdowns are an attribution (aggregate
        reads/bytes remain exact, and are <= the scalar loop's — that
        reduction is the point).  Under ``parallel_probe`` every candidate
        is probed (no early stop) and the lowest-rank hit wins, matching
        the scalar parallel walk's value and probe counts; the scalar
        max-latency overlap adjustment is not replicated.
        """
        arr = np.ascontiguousarray(np.asarray(keys, dtype=np.uint64).ravel())
        n = int(arr.size)
        values: list[bytes | None] = [None] * n
        stats = [QueryStats() for _ in range(n)]
        if n == 0:
            return values, stats
        if current_span() is None:  # untraced: skip span-argument setup
            self._get_many_dispatch(arr, values, stats, n)
            return values, stats
        with child_span(
            "engine.get_many",
            counters=self.metrics,
            prefixes=("reader.",),
            format=self.fmt.name,
            keys=n,
        ) as span:
            blocks, probes = self._get_many_dispatch(arr, values, stats, n)
            if span is not None:
                span.annotate(blocks=blocks, probes=probes)
        return values, stats

    def _get_many_dispatch(
        self,
        arr: np.ndarray,
        values: list[bytes | None],
        stats: list["QueryStats"],
        n: int,
    ) -> tuple[int, int]:
        if self.fmt.name == "base":
            blocks, probes = self._get_many_direct(arr, values, stats, deref=False)
        elif self.fmt.name == "dataptr":
            blocks, probes = self._get_many_direct(arr, values, stats, deref=True)
        else:
            blocks, probes = self._get_many_filterkv(arr, values, stats)
        for s in stats:
            self._observe(s)
        self._m_batch_keys.inc(n)
        self._m_batch_blocks.observe(blocks)
        if blocks:
            self._m_batch_coalesce.observe(probes / blocks)
        return blocks, probes

    def _get_many_direct(
        self,
        keys: np.ndarray,
        values: list[bytes | None],
        stats: list[QueryStats],
        deref: bool,
    ) -> tuple[int, int]:
        """Bulk base/dataptr flow: one table open per owner partition."""
        owners = self.partitioner.partition_of(keys)
        blocks_touched = 0
        probes = 0
        ptrs: list[tuple[int, DataPointer]] = []
        for rank, pos in self._groups(owners):
            lead = stats[int(pos[0])]
            reader = self._open_table(rank, lead)
            try:
                with self._charged(lead, "data"):
                    vals, nblocks = reader.get_many(keys[pos])
            finally:
                self._release_table(reader)
            blocks_touched += nblocks
            probes += len(pos)
            for p, v in zip(pos.tolist(), vals):
                stats[p].partitions_searched = 1
                if not deref:
                    values[p] = v
                    stats[p].found = v is not None
                elif v is not None:
                    ptrs.append((p, DataPointer.unpack(v)))
        if deref and ptrs:
            vranks = np.asarray([pt.rank for _, pt in ptrs], dtype=np.int64)
            for rank, gi in self._groups(vranks):
                group = [ptrs[int(i)] for i in gi]
                lead = stats[group[0][0]]
                log = self._open_vlog(rank)
                try:
                    with self._charged(lead, "vlog"):
                        vals = log.read_many([pt for _, pt in group])
                finally:
                    self._release_vlog(log)
                for (p, _), v in zip(group, vals):
                    values[p] = v
                    stats[p].found = True
        return blocks_touched, probes

    def _get_many_filterkv(
        self,
        keys: np.ndarray,
        values: list[bytes | None],
        stats: list[QueryStats],
    ) -> tuple[int, int]:
        """Bulk filterkv flow: aux once per owner, probes grouped by rank.

        Processing candidate ranks in ascending order with a per-key
        "found" mask is probe-equivalent to each key walking its own
        candidate list (which is ascending) and stopping at the first hit.
        """
        owners = self.partitioner.partition_of(keys)
        cand_pos: list[np.ndarray] = []
        cand_rank: list[np.ndarray] = []
        for owner, pos in self._groups(owners):
            aux = self.aux_tables[owner]
            if aux is None:
                raise ValueError(f"no auxiliary table for partition {owner}")
            self._charge_aux(owner, stats[int(pos[0])])
            counts, flat = aux.candidates_many(keys[pos])
            self._m_candidates.inc(int(counts.sum()))
            cand_pos.append(np.repeat(pos, counts))
            cand_rank.append(flat)
        flat_pos = np.concatenate(cand_pos) if cand_pos else np.zeros(0, dtype=np.int64)
        flat_rank = (
            np.concatenate(cand_rank) if cand_rank else np.zeros(0, dtype=np.int64)
        )
        found = np.zeros(len(values), dtype=bool)
        blocks_touched = 0
        probes = 0
        for rank, gi in self._groups(flat_rank):
            pos = flat_pos[gi]
            if not self.parallel_probe:
                pos = pos[~found[pos]]
            if pos.size == 0:
                continue
            lead = stats[int(pos[0])]
            reader = self._open_table(int(rank), lead)
            try:
                with self._charged(lead, "data"):
                    vals, nblocks = reader.get_many(keys[pos])
            finally:
                self._release_table(reader)
            blocks_touched += nblocks
            probes += len(pos)
            for p, v in zip(pos.tolist(), vals):
                stats[p].partitions_searched += 1
                if v is not None and values[p] is None:
                    values[p] = v
                    found[p] = True
        for p, v in enumerate(values):
            stats[p].found = v is not None
        return blocks_touched, probes


class CachedQueryEngine(QueryEngine):
    """Query engine with a warm, bounded reader cache.

    The paper's readers open each partition per query (footer + index
    loads every time); a long-running analysis session would keep tables
    open and aux tables resident instead.  This engine caches table
    readers (bounded LRU — a multi-epoch session can't end up holding
    every rank of every epoch open), value-log attachments, and the
    once-per-partition aux fetch, so only the *first* query against a
    partition pays the open cost — the reader-caching ablation quantifies
    the difference.  Hits and misses per cache are reported as
    ``reader.cache.hits`` / ``reader.cache.misses`` with a ``cache``
    label (``table`` | ``aux`` | ``vlog``).
    """

    def __init__(self, *args, table_cache_entries: int = 64, **kwargs):
        super().__init__(*args, **kwargs)
        if table_cache_entries < 1:
            raise ValueError(f"table_cache_entries must be >= 1, got {table_cache_entries}")
        self.table_cache_entries = table_cache_entries
        self._table_cache: OrderedDict[int, SSTableReader] = OrderedDict()
        self._vlog_cache: dict[int, ValueLog] = {}
        self._aux_read: set[int] = set()
        fmtl = {"format": self.fmt.name}
        self._m_cache_hits = {
            c: self.metrics.counter("reader.cache.hits", cache=c, **fmtl)
            for c in ("table", "aux", "vlog")
        }
        self._m_cache_misses = {
            c: self.metrics.counter("reader.cache.misses", cache=c, **fmtl)
            for c in ("table", "aux", "vlog")
        }
        self._m_cache_evictions = self.metrics.counter(
            "reader.cache.evictions", cache="table", **fmtl
        )

    def _open_table(self, rank: int, stats: QueryStats) -> SSTableReader:
        reader = self._table_cache.get(rank)
        if reader is not None:
            self._table_cache.move_to_end(rank)
            self._m_cache_hits["table"].inc()
            return reader
        self._m_cache_misses["table"].inc()
        reader = super()._open_table(rank, stats)
        self._table_cache[rank] = reader
        if len(self._table_cache) > self.table_cache_entries:
            _, evicted = self._table_cache.popitem(last=False)
            evicted.close()
            self._m_cache_evictions.inc()
        return reader

    def _release_table(self, reader: SSTableReader) -> None:
        pass  # the cache owns the handle; eviction or close() releases it

    def _open_vlog(self, rank: int) -> ValueLog:
        log = self._vlog_cache.get(rank)
        if log is not None:
            self._m_cache_hits["vlog"].inc()
            return log
        self._m_cache_misses["vlog"].inc()
        log = super()._open_vlog(rank)
        self._vlog_cache[rank] = log
        return log

    def _release_vlog(self, log: ValueLog) -> None:
        pass  # cached per rank for the engine's lifetime

    def _charge_aux(self, owner: int, stats: QueryStats) -> None:
        if owner in self._aux_read:  # one aux fetch per partition
            self._m_cache_hits["aux"].inc()
            return
        self._m_cache_misses["aux"].inc()
        super()._charge_aux(owner, stats)
        self._aux_read.add(owner)

    def close(self) -> None:
        """Close every cached reader/log and forget the warm state."""
        for reader in self._table_cache.values():
            reader.close()
        for log in self._vlog_cache.values():
            log.close()
        self._table_cache.clear()
        self._vlog_cache.clear()
        self._aux_read.clear()
