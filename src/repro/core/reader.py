"""The read path: point queries over a persisted, partitioned dataset.

Implements the three query flows whose costs Fig. 11 compares:

* **base** — hash the key to its partition, open that partition's table
  (footer + index + filter reads), read the candidate data block(s).
* **dataptr** — same, but the stored value is a 12-byte pointer, so one
  extra read recovers the value from the writer's log (the paper's
  "one extra read operation per query").
* **filterkv** — read the partition's *auxiliary table* first, then probe
  the candidate source partitions' main tables until the key is found;
  false positives cost extra partition probes (1.88 partitions/query in
  the paper's runs).

Every read is charged to the `StorageDevice`, and `QueryStats` breaks the
cost down by the same categories as Fig. 11b/c: footer, index, aux table,
data blocks, and value log.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs import MetricsRegistry, active
from ..storage.blockio import StorageDevice
from ..storage.log import DataPointer, ValueLog
from ..storage.sstable import FOOTER_BYTES, SSTableReader
from .auxtable import AuxTable
from .formats import FormatSpec
from .partitioning import HashPartitioner
from .pipeline import aux_table_name, main_table_name

__all__ = ["QueryEngine", "CachedQueryEngine", "QueryStats"]


@dataclass
class QueryStats:
    """Cost accounting for one point query (Fig. 11's three panels)."""

    found: bool = False
    latency: float = 0.0
    reads: int = 0
    bytes_read: int = 0
    partitions_searched: int = 0
    breakdown_reads: dict = field(default_factory=dict)
    breakdown_bytes: dict = field(default_factory=dict)

    def _charge(self, category: str, reads: int, nbytes: int) -> None:
        self.reads += reads
        self.bytes_read += nbytes
        self.breakdown_reads[category] = self.breakdown_reads.get(category, 0) + reads
        self.breakdown_bytes[category] = self.breakdown_bytes.get(category, 0) + nbytes


class QueryEngine:
    """Point-query executor over one epoch's persisted output."""

    def __init__(
        self,
        device: StorageDevice,
        fmt: FormatSpec,
        nranks: int,
        partitioner: HashPartitioner,
        aux_tables: list[AuxTable | None] | None = None,
        epoch: int = 0,
        parallel_probe: bool = False,
        metrics: MetricsRegistry | None = None,
    ):
        self.device = device
        self.fmt = fmt
        self.nranks = nranks
        self.partitioner = partitioner
        self.aux_tables = aux_tables or [None] * nranks
        self.epoch = epoch
        self.parallel_probe = parallel_probe
        self.metrics = active(metrics)
        fmtl = {"format": fmt.name}
        self._m_queries = self.metrics.counter("reader.queries", **fmtl)
        self._m_hits = self.metrics.counter("reader.hits", **fmtl)
        self._m_partitions = self.metrics.counter("reader.partitions_probed", **fmtl)
        self._m_candidates = self.metrics.counter("reader.candidates", **fmtl)
        self._m_amp = self.metrics.histogram("reader.read_amplification", **fmtl)

    # -- helpers -----------------------------------------------------------

    def _charged(self, stats: QueryStats, category: str):
        """Context manager charging device I/O deltas to one category."""

        class _Span:
            def __enter__(inner):
                inner.before = self.device.counters.snapshot()
                return inner

            def __exit__(inner, *exc):
                d = self.device.counters.delta(inner.before)
                stats._charge(category, d.reads, d.bytes_read)
                stats.latency += d.read_time

        return _Span()

    def _open_table(self, rank: int, stats: QueryStats) -> SSTableReader:
        """Open a partition table, splitting footer vs index charges."""
        name = main_table_name(self.epoch, rank)
        before = self.device.counters.snapshot()
        reader = SSTableReader(self.device, name)
        d = self.device.counters.delta(before)
        stats._charge("footer", 1, FOOTER_BYTES)
        stats._charge("index", d.reads - 1, d.bytes_read - FOOTER_BYTES)
        stats.latency += d.read_time
        return reader

    # -- query flows ---------------------------------------------------------

    def get(self, key: int) -> tuple[bytes | None, QueryStats]:
        """Point lookup; returns (value-or-None, cost accounting)."""
        if self.fmt.name == "base":
            value, stats = self._get_base(key)
        elif self.fmt.name == "dataptr":
            value, stats = self._get_dataptr(key)
        else:
            value, stats = self._get_filterkv(key)
        self._observe(stats)
        return value, stats

    def _observe(self, stats: QueryStats) -> None:
        """Mirror one query's cost accounting into the registry."""
        self._m_queries.inc()
        if stats.found:
            self._m_hits.inc()
        self._m_partitions.inc(stats.partitions_searched)
        self._m_amp.observe(stats.partitions_searched)
        for cat, n in stats.breakdown_reads.items():
            self.metrics.counter(
                "reader.storage_reads", format=self.fmt.name, category=cat
            ).inc(n)
        for cat, nbytes in stats.breakdown_bytes.items():
            self.metrics.counter(
                "reader.bytes_read", format=self.fmt.name, category=cat
            ).inc(nbytes)

    def _get_base(self, key: int) -> tuple[bytes | None, QueryStats]:
        stats = QueryStats()
        owner = self.partitioner.partition_of_one(key)
        reader = self._open_table(owner, stats)
        with self._charged(stats, "data"):
            value = reader.get(key)
        stats.partitions_searched = 1
        stats.found = value is not None
        return value, stats

    def _get_dataptr(self, key: int) -> tuple[bytes | None, QueryStats]:
        stats = QueryStats()
        owner = self.partitioner.partition_of_one(key)
        reader = self._open_table(owner, stats)
        with self._charged(stats, "data"):
            ptr_blob = reader.get(key)
        stats.partitions_searched = 1
        if ptr_blob is None:
            return None, stats
        ptr = DataPointer.unpack(ptr_blob)
        log = ValueLog.open(self.device, ptr.rank)
        with self._charged(stats, "vlog"):
            value = log.read(ptr)
        stats.found = True
        return value, stats

    def _get_filterkv(self, key: int) -> tuple[bytes | None, QueryStats]:
        stats = QueryStats()
        owner = self.partitioner.partition_of_one(key)
        aux = self.aux_tables[owner]
        if aux is None:
            raise ValueError(f"no auxiliary table for partition {owner}")
        # The reader fetches the partition's entire aux table (the paper
        # reads ~18 MB per query), then resolves candidates in memory.
        aux_file = self.device.open(aux_table_name(self.epoch, owner))
        with self._charged(stats, "aux"):
            aux_file.read(0, aux_file.size)
        candidates = aux.candidate_ranks(key)
        self._m_candidates.inc(len(candidates))
        if self.parallel_probe:
            return self._probe_parallel(key, candidates, stats)
        value = None
        for rank in candidates:
            stats.partitions_searched += 1
            reader = self._open_table(int(rank), stats)
            with self._charged(stats, "data"):
                value = reader.get(key)
            if value is not None:
                break
        stats.found = value is not None
        return value, stats

    def _probe_parallel(
        self, key: int, candidates, stats: QueryStats
    ) -> tuple[bytes | None, QueryStats]:
        """Probe every candidate partition concurrently (paper §III-C:
        readers search candidate locations "potentially concurrently").

        All probes issue: reads and bytes accumulate for each, but latency
        is the *maximum* single-probe latency rather than the sum — the
        overlap a parallel reader buys.
        """
        probe_latencies = []
        value = None
        for rank in candidates:
            before = stats.latency
            stats.partitions_searched += 1
            reader = self._open_table(int(rank), stats)
            with self._charged(stats, "data"):
                hit = reader.get(key)
            probe_latencies.append(stats.latency - before)
            if hit is not None and value is None:
                value = hit
        if probe_latencies:
            stats.latency -= sum(probe_latencies) - max(probe_latencies)
        stats.found = value is not None
        return value, stats


class CachedQueryEngine(QueryEngine):
    """Query engine with a warm reader cache.

    The paper's readers open each partition per query (footer + index
    loads every time); a long-running analysis session would keep tables
    open and aux tables resident instead.  This engine caches both, so
    only the *first* query against a partition pays the open cost — the
    reader-caching ablation quantifies the difference.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._table_cache: dict[int, SSTableReader] = {}
        self._aux_read: set[int] = set()

    def _open_table(self, rank: int, stats: QueryStats) -> SSTableReader:
        if rank not in self._table_cache:
            self._table_cache[rank] = super()._open_table(rank, stats)
        return self._table_cache[rank]

    def _get_filterkv(self, key: int) -> tuple[bytes | None, QueryStats]:
        stats = QueryStats()
        owner = self.partitioner.partition_of_one(key)
        aux = self.aux_tables[owner]
        if aux is None:
            raise ValueError(f"no auxiliary table for partition {owner}")
        if owner not in self._aux_read:  # one aux fetch per partition
            aux_file = self.device.open(aux_table_name(self.epoch, owner))
            with self._charged(stats, "aux"):
                aux_file.read(0, aux_file.size)
            self._aux_read.add(owner)
        candidates = aux.candidate_ranks(key)
        self._m_candidates.inc(len(candidates))
        if self.parallel_probe:
            # Same concurrent-probe flow as the base engine (cached tables
            # just make each probe's open cost zero after the first query).
            return self._probe_parallel(key, candidates, stats)
        value = None
        for rank in candidates:
            stats.partitions_searched += 1
            reader = self._open_table(int(rank), stats)
            with self._charged(stats, "data"):
                value = reader.get(key)
            if value is not None:
                break
        stats.found = value is not None
        return value, stats
