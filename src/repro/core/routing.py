"""Shuffle routing: direct all-to-all vs DeltaFS-style 3-hop aggregation.

The DeltaFS shuffler the paper builds on does not open P² connections; it
routes each payload sender → local node representative → remote node
representative → destination process.  Node-local hops ride shared memory
(cheap, not RPCs); only representative-to-representative traffic crosses
the wire, and it is *aggregated across every process pair on the two
nodes* — collapsing up to ppn² partially-filled batches into one.

`DirectRouter` forwards envelopes as-is.  `ThreeHopRouter` buffers
per-node-pair, re-ships when the aggregate reaches the batch size, and
tracks wire vs local message counts so the routing ablation can quantify
the trade: fewer, fuller wire messages at the cost of an extra local copy.
"""

from __future__ import annotations

from typing import Callable

from .pipeline import Envelope

__all__ = ["DirectRouter", "ThreeHopRouter"]

DeliverFn = Callable[[Envelope], None]


class DirectRouter:
    """One hop: every envelope is one wire message (unless local)."""

    def __init__(self, deliver: DeliverFn, ppn: int = 1):
        self.deliver = deliver
        self.ppn = max(1, ppn)
        self.wire_messages = 0
        self.wire_bytes = 0
        self.local_messages = 0

    def node_of(self, rank: int) -> int:
        return rank // self.ppn

    def send(self, env: Envelope) -> None:
        if env.src == env.dest:
            self.deliver(env)
            return
        if self.node_of(env.src) == self.node_of(env.dest):
            self.local_messages += 1
        else:
            self.wire_messages += 1
            self.wire_bytes += len(env.payload)
        self.deliver(env)

    def flush(self) -> None:  # nothing buffered
        pass


class ThreeHopRouter(DirectRouter):
    """Aggregate per node pair; ship when the aggregate fills a batch."""

    def __init__(self, deliver: DeliverFn, ppn: int, batch_bytes: int = 16384):
        super().__init__(deliver, ppn)
        if batch_bytes < 64:
            raise ValueError("batch_bytes too small")
        self.batch_bytes = batch_bytes
        # (src_node, dest_node) -> buffered envelopes + byte count
        self._agg: dict[tuple[int, int], tuple[list[Envelope], int]] = {}

    def send(self, env: Envelope) -> None:
        if env.src == env.dest:
            self.deliver(env)
            return
        src_node, dest_node = self.node_of(env.src), self.node_of(env.dest)
        if src_node == dest_node:
            self.local_messages += 1  # stays on the node: shared memory
            self.deliver(env)
            return
        # Hop 1: sender → local representative (shared memory).
        self.local_messages += 1
        key = (src_node, dest_node)
        envs, nbytes = self._agg.get(key, ([], 0))
        envs.append(env)
        nbytes += len(env.payload)
        if nbytes >= self.batch_bytes:
            self._ship(key, envs, nbytes)
        else:
            self._agg[key] = (envs, nbytes)

    def _ship(self, key: tuple[int, int], envs: list[Envelope], nbytes: int) -> None:
        # Hop 2: one aggregated wire message between representatives.
        self.wire_messages += 1
        self.wire_bytes += nbytes
        self._agg.pop(key, None)
        for env in envs:
            # Hop 3: representative → destination process (shared memory).
            self.local_messages += 1
            self.deliver(env)

    def flush(self) -> None:
        """Ship every partial aggregate (end of the burst)."""
        for key in list(self._agg):
            envs, nbytes = self._agg[key]
            self._ship(key, envs, nbytes)

    @property
    def pending_bytes(self) -> int:
        return sum(n for _, n in self._agg.values())
