"""Format advisor: which partitioning scheme fits a given deployment?

The paper's conclusion sketches the decision surface — FilterKV "works
best when a job consists of a large number of parallel processes and when
the effective network-storage ratio of a job is relatively low", base wins
when storage is the bottleneck, DataPtr when values are huge and reads
must stay exact.  This module turns that prose into a function: evaluate
the write-phase model for all three formats, fold in a read-cost proxy,
and recommend.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.machines import Machine
from .auxtable import rank_bits
from .costmodel import WriteRunConfig, model_write_phase
from .formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV, FormatSpec

__all__ = ["Advice", "recommend_format"]

# Read-cost proxy: relative point-query cost per format (Fig. 11's reads
# per query: base 3.1, dataptr 4.1, filterkv ~6.5).
_READ_COST = {"base": 3.1, "dataptr": 4.1, "filterkv": 6.5}


@dataclass(frozen=True)
class Advice:
    """Recommendation with the evidence behind it."""

    recommended: str
    write_slowdowns: dict[str, float]
    read_costs: dict[str, float]
    scores: dict[str, float]
    read_weight: float

    def explain(self) -> str:
        lines = [f"recommended format: {self.recommended}  (read_weight={self.read_weight})"]
        for name in sorted(self.scores, key=self.scores.get):
            lines.append(
                f"  {name:9s} score={self.scores[name]:7.3f} "
                f"write_slowdown={self.write_slowdowns[name] * 100:7.1f}% "
                f"relative_read_cost={self.read_costs[name]:.1f}"
            )
        return "\n".join(lines)


def recommend_format(
    machine: Machine,
    nprocs: int,
    kv_bytes: int,
    data_per_proc: float,
    residual_fraction: float | None = None,
    read_weight: float = 0.1,
    formats: tuple[FormatSpec, ...] = (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV),
) -> Advice:
    """Pick the format minimizing ``write_slowdown + read_weight·read_cost``.

    ``read_weight`` expresses how query-heavy the workload is: 0 = pure
    write burst (the paper's in-situ regime), 1 = every record will be
    read back individually.  Read cost is normalized to the base format.
    """
    if not 0 <= read_weight <= 1:
        raise ValueError("read_weight must be in [0, 1]")
    slowdowns: dict[str, float] = {}
    read_costs: dict[str, float] = {}
    scores: dict[str, float] = {}
    for fmt in formats:
        r = model_write_phase(
            WriteRunConfig(
                fmt=fmt,
                machine=machine,
                nprocs=nprocs,
                kv_bytes=kv_bytes,
                data_per_proc=data_per_proc,
                residual_fraction=residual_fraction,
            )
        )
        slowdowns[fmt.name] = r.slowdown
        rc = _READ_COST[fmt.name] / _READ_COST["base"]
        if fmt.name == "filterkv":
            # Deeper partition counts mean slightly more candidate probes.
            rc *= 1.0 + 0.01 * rank_bits(nprocs)
        read_costs[fmt.name] = rc
        scores[fmt.name] = r.slowdown + read_weight * (rc - 1.0)
    best = min(scores, key=scores.get)
    return Advice(
        recommended=best,
        write_slowdowns=slowdowns,
        read_costs=read_costs,
        scores=scores,
        read_weight=read_weight,
    )
