"""The three online data-partitioning formats and their cost accounting.

Fig. 3 of the paper defines the competitors; this module captures, for each
format, exactly how many bytes one record pushes onto the network and onto
storage, plus the calibrated per-record CPU cost of the in-situ pipeline.
Both the analytic write-phase model (`repro.core.costmodel`) and the real
executing pipeline (`repro.core.pipeline`) derive their behaviour from
these specs, so the two agree by construction.

Per-record byte accounting (K = key bytes, V = value bytes, N partitions):

===============  ==================  =============  ==========================
format           shuffled            local storage  remote storage
===============  ==================  =============  ==========================
``Fmt-Base``     K + V               —              K + V
``Fmt-DataPtr``  K + 8 (offset)      V              K + 12 (4 B rank+8 B off)
``Fmt-FilterKV`` K                   K + V          (4 + ⌈log2 N⌉)/8 ÷ util
===============  ==================  =============  ==========================

The sender's rank rides in the batch envelope (one per ~16 KB RPC), which
is why DataPtr ships only the 8-byte offset but must *store* the full
12-byte pointer, and why FilterKV ships keys alone — "no data offsets need
to be sent" (§V-A).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..storage.log import POINTER_BYTES
from .auxtable import rank_bits
from .kv import KEY_BYTES

__all__ = ["FormatSpec", "FMT_BASE", "FMT_DATAPTR", "FMT_FILTERKV", "FORMATS"]

_OFFSET_BYTES = 8
_CUCKOO_UTILIZATION = 0.95  # chained tables reach ~95 % occupancy (§IV-B)


@dataclass(frozen=True)
class FormatSpec:
    """Static description of one partitioning scheme.

    ``per_record_cpu_us`` is the calibrated single-thread CPU time (at
    Haswell speed) the in-situ pipeline spends per record across both the
    send and receive sides — serialization, hashing, local writes, and
    index maintenance.  DataPtr pays the most (two write streams plus
    pointer bookkeeping); FilterKV the least (key-only payloads).
    """

    name: str
    aux_backend: str | None
    cuckoo_fp_bits: int = 4
    per_record_cpu_us: float = 0.30

    def shuffle_bytes_per_record(self, value_bytes: int, nparts: int) -> float:
        """Bytes of RPC payload one record contributes."""
        if self.name == "base":
            return KEY_BYTES + value_bytes
        if self.name == "dataptr":
            return KEY_BYTES + _OFFSET_BYTES
        return float(KEY_BYTES)

    def local_bytes_per_record(self, value_bytes: int, nparts: int) -> float:
        """Bytes the producing process writes to its own storage."""
        if self.name == "base":
            return 0.0
        if self.name == "dataptr":
            return float(value_bytes)
        return float(KEY_BYTES + value_bytes)

    def remote_bytes_per_record(self, value_bytes: int, nparts: int) -> float:
        """Bytes the partition owner writes for one received record."""
        if self.name == "base":
            return KEY_BYTES + value_bytes
        if self.name == "dataptr":
            return KEY_BYTES + POINTER_BYTES
        return self.index_bytes_per_key(nparts)

    def storage_bytes_per_record(self, value_bytes: int, nparts: int) -> float:
        """Total bytes landing on storage per record (local + remote)."""
        return self.local_bytes_per_record(value_bytes, nparts) + self.remote_bytes_per_record(
            value_bytes, nparts
        )

    def index_bytes_per_key(self, nparts: int) -> float:
        """Index-only overhead per key — the paper's Fig. 7b metric."""
        if self.name == "base":
            return 0.0
        if self.name == "dataptr":
            return float(POINTER_BYTES)
        slot_bits = self.cuckoo_fp_bits + rank_bits(nparts)
        return slot_bits / 8.0 / _CUCKOO_UTILIZATION

    def storage_blowup(self, value_bytes: int, nparts: int) -> float:
        """Storage bytes relative to the raw data (1.0 = no overhead)."""
        raw = KEY_BYTES + value_bytes
        return self.storage_bytes_per_record(value_bytes, nparts) / raw

    def shuffle_fraction(self, value_bytes: int, nparts: int) -> float:
        """Shuffled payload bytes relative to the raw data."""
        raw = KEY_BYTES + value_bytes
        return self.shuffle_bytes_per_record(value_bytes, nparts) / raw


FMT_BASE = FormatSpec("base", aux_backend=None, per_record_cpu_us=0.30)
FMT_DATAPTR = FormatSpec("dataptr", aux_backend="exact", per_record_cpu_us=0.40)
FMT_FILTERKV = FormatSpec("filterkv", aux_backend="cuckoo", per_record_cpu_us=0.25)

FORMATS: dict[str, FormatSpec] = {
    f.name: f for f in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV)
}
