"""Indexed massive directory: the DeltaFS-style application facade.

The paper's system is packaged as *DeltaFS Indexed Massive Directories*:
an application process simply appends ``(key, value)`` records to what
looks like a directory; epochs delimit dumps; readers ask for a key's
value at an epoch.  All the machinery in this repository — partitioning
format, shuffle, aux tables, SSTables — hides behind that call surface.

`IndexedDirectory` provides exactly that API over `MultiEpochStore`,
buffering appends per rank (values must share one width per directory, as
in the paper's fixed-size particle records) and cutting an epoch on
`end_epoch()`.
"""

from __future__ import annotations

import numpy as np

from ..storage.blockio import DeviceProfile
from .formats import FMT_FILTERKV, FormatSpec
from .kv import KVBatch
from .multiepoch import MultiEpochStore
from .reader import QueryStats

__all__ = ["IndexedDirectory"]


class IndexedDirectory:
    """Append-only KV directory with in-situ partitioning and epochs."""

    def __init__(
        self,
        nranks: int,
        value_bytes: int,
        fmt: FormatSpec = FMT_FILTERKV,
        device_profile: DeviceProfile | None = None,
        seed: int = 0,
    ):
        if value_bytes < 0:
            raise ValueError("value_bytes must be non-negative")
        self.nranks = nranks
        self.value_bytes = value_bytes
        self._store = MultiEpochStore(
            nranks=nranks,
            fmt=fmt,
            value_bytes=value_bytes,
            device_profile=device_profile,
            seed=seed,
        )
        self._pending_keys: list[list[int]] = [[] for _ in range(nranks)]
        self._pending_values: list[list[bytes]] = [[] for _ in range(nranks)]
        self._appends = 0

    # -- write surface -------------------------------------------------------

    def append(self, rank: int, key: int, value: bytes) -> None:
        """Buffer one record written by ``rank`` in the current epoch."""
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} out of range [0, {self.nranks})")
        value = bytes(value)
        if len(value) != self.value_bytes:
            raise ValueError(
                f"directory records are {self.value_bytes} B values; got {len(value)}"
            )
        self._pending_keys[rank].append(int(key))
        self._pending_values[rank].append(value)
        self._appends += 1

    def append_batch(self, rank: int, batch: KVBatch) -> None:
        """Buffer a whole batch from one rank (the fast path)."""
        if batch.value_bytes != self.value_bytes:
            raise ValueError("batch value width mismatch")
        self._pending_keys[rank].extend(int(k) for k in batch.keys)
        self._pending_values[rank].extend(
            batch.values[i].tobytes() for i in range(len(batch))
        )
        self._appends += len(batch)

    @property
    def pending_records(self) -> int:
        return sum(len(k) for k in self._pending_keys)

    def end_epoch(self):
        """Cut the epoch: partition, shuffle, and persist everything
        buffered since the last cut.  Returns the epoch's ClusterStats."""
        if self.pending_records == 0:
            raise ValueError("nothing appended this epoch")
        batches = []
        for rank in range(self.nranks):
            keys = np.asarray(self._pending_keys[rank], dtype=np.uint64)
            if keys.size:
                vals = np.frombuffer(
                    b"".join(self._pending_values[rank]), dtype=np.uint8
                ).reshape(keys.size, self.value_bytes)
            else:
                vals = np.zeros((0, self.value_bytes), dtype=np.uint8)
            batches.append(KVBatch(keys, vals))
            self._pending_keys[rank] = []
            self._pending_values[rank] = []
        return self._store.write_epoch(batches)

    # -- read surface ----------------------------------------------------------

    @property
    def epochs(self) -> list[int]:
        return self._store.epochs

    def read(self, key: int, epoch: int) -> tuple[bytes | None, QueryStats]:
        """Value of ``key`` at one epoch."""
        return self._store.get(key, epoch)

    def read_all_epochs(self, key: int) -> list[tuple[int, bytes | None, QueryStats]]:
        return self._store.trajectory(key)

    def describe(self) -> str:
        return self._store.describe()

    @property
    def device(self):
        return self._store.device
