"""Multi-epoch datasets: the full in-situ simulation workflow.

The paper's macrobenchmark dumps particle state every few timesteps;
scientists then ask for one particle's state *at individual timesteps*
(§V-B).  `MultiEpochStore` runs one `SimCluster` epoch per dump against a
shared storage device, maintains the dataset `Manifest`, and serves both
single-epoch point queries and cross-epoch trajectory queries.

Example::

    store = MultiEpochStore(nranks=8, fmt=FMT_FILTERKV, value_bytes=56)
    for _ in range(4):
        sim.step(5)
        store.write_epoch(sim.dump())
    trajectory = store.trajectory(particle_id)   # [(epoch, value, stats)]
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..obs import MetricsRegistry
from ..storage.blockio import DeviceProfile, StorageDevice
from ..storage.envelope import unseal
from ..storage.tiering import TierConfig, TieredStorage

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..cluster.simcluster import ClusterStats

    from .reader import CachedQueryEngine
from ..storage.manifest import EpochInfo, Manifest, RecoveryReport
from .auxtable import AuxBackendPolicy, AuxTable, aux_from_blob
from .compact import CompactionPolicy, CompactionReport, Compactor
from .formats import FMT_FILTERKV, FORMATS, FormatSpec
from .kv import KVBatch
from .partitioning import HashPartitioner
from .pipeline import aux_table_name, main_table_name
from .reader import QueryEngine, QueryStats

__all__ = ["MultiEpochStore"]


def _merge_stats(dst: QueryStats, src: QueryStats) -> None:
    """Fold one epoch probe's costs into a cross-epoch aggregate."""
    dst.found = dst.found or src.found
    dst.latency += src.latency
    dst.reads += src.reads
    dst.bytes_read += src.bytes_read
    dst.partitions_searched += src.partitions_searched
    for k, v in src.breakdown_reads.items():
        dst.breakdown_reads[k] = dst.breakdown_reads.get(k, 0) + v
    for k, v in src.breakdown_bytes.items():
        dst.breakdown_bytes[k] = dst.breakdown_bytes.get(k, 0) + v


class MultiEpochStore:
    """A persisted dataset spanning many dump epochs."""

    def __init__(
        self,
        nranks: int,
        fmt: FormatSpec = FMT_FILTERKV,
        value_bytes: int = 56,
        device_profile: DeviceProfile | None = None,
        batch_bytes: int = 16384,
        block_size: int = 1 << 20,
        seed: int = 0,
        device: StorageDevice | None = None,
        compaction: CompactionPolicy | None = None,
        tiering: TieredStorage | TierConfig | None = None,
        aux_policy: AuxBackendPolicy | None = None,
        parallel: str = "off",
        pool=None,
    ):
        if parallel not in ("off", "process"):
            raise ValueError(f"parallel must be 'off' or 'process', got {parallel!r}")
        if parallel == "process" and pool is None:
            raise ValueError("parallel='process' needs a WorkerPool (pool=)")
        self.nranks = nranks
        self.fmt = fmt
        self.value_bytes = value_bytes
        self.batch_bytes = batch_bytes
        self.block_size = block_size
        self.seed = seed
        self.device = device if device is not None else StorageDevice(device_profile)
        self.manifest = Manifest(fmt=fmt.name, nranks=nranks, value_bytes=value_bytes)
        self._engines: dict[int, QueryEngine] = {}
        # Warm per-epoch engines for the store's own repeated read paths
        # (trajectory/lookup); built lazily, closed deterministically.
        self._cached: dict[int, CachedQueryEngine] = {}
        # Compaction: optional size-tiered policy checked after every
        # commit, and a generation counter serving tiers watch to learn
        # that the epoch set changed under them.
        self.compaction_policy = compaction
        # Flush-time aux backend selection (the tournament): when set, each
        # epoch's sealed key→rank set picks its own backend; the winner is
        # recorded in the manifest's EpochInfo.aux_backend.
        self.aux_policy = aux_policy
        # Process-parallel execution (repro.parallel): `parallel`/`pool`
        # route every write_epoch's rank pipelines through the worker pool;
        # `attach_pool` additionally shards large get_many calls across it.
        self.parallel = parallel
        self.pool = pool
        self._pooled_reads = None
        self.compactions = 0
        self.last_compaction: CompactionReport | None = None
        # Optional burst-buffer/PFS model: dumps land on the burst buffer;
        # compaction output is drained, PFS-resident data.
        if isinstance(tiering, TierConfig):
            tiering = TieredStorage(tiering)
        self.tiering = tiering

    # -- attach / recover ----------------------------------------------------

    @classmethod
    def attach(cls, device: StorageDevice, **kwargs) -> "MultiEpochStore":
        """Reopen a persisted dataset from its manifest alone.

        Rebuilds a query engine for every committed epoch, reloading each
        partition's auxiliary table from its sealed extent — the read side
        of crash consistency: nothing about the dataset lives only in the
        memory of the process that wrote it.
        """
        manifest = Manifest.load(device)
        fmt = FORMATS.get(manifest.fmt)
        if fmt is None:
            raise ValueError(f"manifest names unknown format {manifest.fmt!r}")
        store = cls(
            nranks=manifest.nranks,
            fmt=fmt,
            value_bytes=manifest.value_bytes,
            device=device,
            **kwargs,
        )
        store.manifest = manifest
        for epoch in manifest.epoch_ids:
            store._engines[epoch] = store._attach_engine(epoch)
        return store

    @classmethod
    def recover(
        cls,
        device: StorageDevice,
        deep: bool = False,
        metrics: MetricsRegistry | None = None,
        **kwargs,
    ) -> "tuple[MultiEpochStore | None, RecoveryReport]":
        """Crash-recover the device, then attach to what survived.

        Returns ``(store-or-None, report)`` — None when no valid manifest
        survived (nothing was ever committed).
        """
        from ..faults import FaultyStorageDevice  # local: optional layer

        if isinstance(device, FaultyStorageDevice):
            device.revive()
        manifest, report = Manifest.recover(device, deep=deep, metrics=metrics)
        store = cls.attach(device, **kwargs) if manifest is not None else None
        return store, report

    def _attach_engine(self, epoch: int) -> QueryEngine:
        """Query engine over one committed epoch, aux tables reloaded
        from their sealed extents."""
        aux_tables: list[AuxTable | None] = [None] * self.nranks
        if self.fmt.name == "filterkv":
            for rank in range(self.nranks):
                with self.device.open(aux_table_name(epoch, rank)) as f:
                    aux_tables[rank] = aux_from_blob(
                        unseal(f.read(0, f.size)), metric_labels={"rank": str(rank)}
                    )
        return QueryEngine(
            device=self.device,
            fmt=self.fmt,
            nranks=self.nranks,
            partitioner=HashPartitioner(self.nranks),
            aux_tables=aux_tables,
            epoch=epoch,
        )

    def aux_blobs(self, epoch: int) -> list[bytes] | None:
        """One committed epoch's sealed aux extents, verbatim (rank order).

        This is the router-tier export surface (ROADMAP item 1): a fleet
        router holds *only* these blobs' rebuilt tables — never values or
        SSTables — so what this returns bounds a router's resident memory.
        The bytes are returned still sealed: the same envelope that
        protects the extent at rest rides the wire, and the consumer's
        ``unseal`` is its integrity check.  Returns None for formats that
        persist no aux tables (base/dataptr) — a router then has nothing
        to route with and falls back to ring placement alone.
        """
        if self.fmt.name != "filterkv":
            return None
        epoch = self.resolve_epoch(epoch)
        out: list[bytes] = []
        for rank in range(self.nranks):
            with self.device.open(aux_table_name(epoch, rank)) as f:
                out.append(f.read(0, f.size))
        return out

    # -- writing -----------------------------------------------------------

    @property
    def _next_epoch(self) -> int:
        """Monotone epoch-id watermark, persisted with the manifest.

        Never decreases — not across attach, recover, or compaction — so a
        retired epoch id can never be handed out again and alias stale
        ``(epoch, key)`` cache entries elsewhere in the system.
        """
        return self.manifest.next_epoch

    def write_epoch(self, batches: list[KVBatch]) -> "ClusterStats":
        """Partition and persist one dump (one KVBatch per rank)."""
        from ..cluster.simcluster import SimCluster  # local: avoid cycle

        if len(batches) != self.nranks:
            raise ValueError(f"need {self.nranks} batches, got {len(batches)}")
        epoch = self._next_epoch
        records = sum(len(b) for b in batches)
        cluster = SimCluster(
            nranks=self.nranks,
            fmt=self.fmt,
            value_bytes=self.value_bytes,
            batch_bytes=self.batch_bytes,
            device=self.device,
            records_hint=max(1, records),
            block_size=self.block_size,
            epoch=epoch,
            seed=self.seed + epoch,
            aux_policy=self.aux_policy,
            parallel=self.parallel,
            pool=self.pool,
        )
        before = self.device.total_bytes_stored()
        for rank, batch in enumerate(batches):
            cluster.put(rank, batch)
        cluster.finish_epoch()
        self._engines[epoch] = cluster.query_engine()
        files = tuple(
            n
            for n in self.device.list_files()
            if n.startswith((f"part.{epoch:03d}.", f"aux.{epoch:03d}.")) or n.startswith("vlog.")
        )
        epoch_bytes = self.device.total_bytes_stored() - before
        self.manifest.add_epoch(
            EpochInfo(
                epoch=epoch,
                records=records,
                files=files,
                bytes=epoch_bytes,
                aux_backend=cluster.aux_backends(),
            )
        )
        self.manifest.save(self.device)
        if self.tiering is not None and epoch_bytes > 0:
            # Each dump lands as a burst on the burst buffer.
            self.tiering.write_burst(epoch_bytes)
            self._observe_tiers()
        # Materialize the (lazily computed) stats before the policy hook:
        # compaction may retire this very epoch and sweep its extents.
        stats = cluster.stats
        if self.compaction_policy is not None:
            picked = self.compaction_policy.select(self.manifest)
            if picked:
                self.compact(picked)
        return stats

    # -- reading -----------------------------------------------------------

    @property
    def epochs(self) -> list[int]:
        return self.manifest.epoch_ids

    def resolve_epoch(self, epoch: int) -> int:
        """Live epoch serving ``epoch``'s data.

        Identity for live epochs; epochs retired by compaction forward to
        the merged epoch that absorbed them (which serves the newest-wins
        union of its sources).  Raises KeyError for ids never committed.
        """
        return self.manifest.resolve_epoch(int(epoch))

    def engine(self, epoch: int) -> QueryEngine:
        epoch = self.resolve_epoch(epoch)
        if epoch not in self._engines:
            raise KeyError(f"no such epoch {epoch} (have {self.epochs})")
        return self._engines[epoch]

    def cached_engine(
        self,
        epoch: int,
        metrics: MetricsRegistry | None = None,
        table_cache_entries: int | None = None,
        parallel_probe: bool = False,
    ) -> "CachedQueryEngine":
        """A warm-cache engine over one committed epoch.

        This is what a long-running serving tier (`repro.serve`) mounts:
        same device/format/aux tables as `engine`, but with the bounded
        reader cache and cache telemetry of `CachedQueryEngine`.
        """
        from .reader import CachedQueryEngine  # local: keep import surface small

        base = self.engine(epoch)
        kwargs = {}
        if table_cache_entries is not None:
            kwargs["table_cache_entries"] = table_cache_entries
        return CachedQueryEngine(
            device=self.device,
            fmt=self.fmt,
            nranks=self.nranks,
            partitioner=base.partitioner,
            aux_tables=base.aux_tables,
            epoch=base.epoch,
            parallel_probe=parallel_probe,
            metrics=metrics,
            **kwargs,
        )

    def _pooled_engine(self, epoch: int) -> "CachedQueryEngine":
        """The store's own warm engine for one live epoch.

        Built on first use and reused by every subsequent `trajectory` /
        `lookup` call, so repeated cross-epoch reads don't churn reader
        handles; `close` (or compaction retiring the epoch) releases them.
        """
        resolved = self.resolve_epoch(epoch)
        engine = self._cached.get(resolved)
        if engine is None:
            engine = self.cached_engine(resolved)
            self._cached[resolved] = engine
        return engine

    def get(self, key: int, epoch: int) -> tuple[bytes | None, QueryStats]:
        """Point query at one timestep (the paper's Fig. 11 query)."""
        return self.engine(epoch).get(key)

    def attach_pool(self, pool, min_keys: int = 256, metrics=None):
        """Route large `get_many` calls through a `WorkerPool`.

        Returns the `PooledReads` instance (exposing the async path and the
        serial oracle).  Calls below ``min_keys`` keys — where shipping
        costs beat the parallelism — keep using the in-process engine.
        """
        from ..parallel.reads import PooledReads  # local: avoid cycle

        self._pooled_reads = PooledReads(self, pool, min_keys=min_keys, metrics=metrics)
        return self._pooled_reads

    def get_many(
        self, keys, epoch: int, parallel: str | None = None
    ) -> tuple[list[bytes | None], list[QueryStats]]:
        """Bulk point queries at one timestep (block-coalesced read path).

        ``parallel`` picks the execution path: ``"process"`` forces the
        pooled path (requires `attach_pool`), ``"off"`` forces in-process,
        and None (default) auto-routes — pooled when a pool is attached
        and the call is at least ``min_keys`` keys.
        """
        pooled = self._pooled_reads
        if parallel == "process" and pooled is None:
            raise ValueError("parallel='process' requires attach_pool() first")
        n = np.asarray(keys).size
        if pooled is not None and parallel != "off" and (
            parallel == "process" or n >= pooled.min_keys
        ):
            return pooled.get_many(keys, epoch)
        return self.engine(epoch).get_many(keys)

    def trajectory(self, key: int) -> list[tuple[int, bytes | None, QueryStats]]:
        """The key's value at every epoch — a particle's trajectory.

        Served from the store's pooled warm engines: repeated trajectory
        calls reuse open readers and loaded aux tables instead of opening
        and closing every partition's handles on each call.
        """
        return [(e, *self._pooled_engine(e).get(key)) for e in self.epochs]

    def lookup(
        self, key: int, cached: bool = True
    ) -> tuple[bytes | None, int | None, QueryStats]:
        """Newest value of ``key`` across all live epochs.

        Walks epochs newest-first with early stop — the read whose cost
        grows linearly with live epoch count, and exactly the view
        compaction preserves (first-write-wins, newest epoch first).
        Returns ``(value, epoch_found, aggregate_stats)``.  With
        ``cached=False`` every probe opens partitions afresh (the paper's
        cold reader), which is what `benchmarks/bench_compact.py` measures.
        """
        agg = QueryStats()
        for epoch in reversed(self.epochs):
            probe = self._pooled_engine(epoch) if cached else self._engines[epoch]
            value, stats = probe.get(key)
            _merge_stats(agg, stats)
            if value is not None:
                return value, epoch, agg
        return None, None, agg

    def lookup_many(
        self, keys, cached: bool = True
    ) -> tuple[list[bytes | None], list[int | None], list[QueryStats]]:
        """Bulk `lookup`: each epoch is probed once with the still-missing
        keys (block-coalesced), newest first."""
        arr = np.asarray(keys, dtype=np.uint64).ravel()
        values: list[bytes | None] = [None] * arr.size
        found: list[int | None] = [None] * arr.size
        agg = [QueryStats() for _ in range(arr.size)]
        remaining = list(range(arr.size))
        for epoch in reversed(self.epochs):
            if not remaining:
                break
            probe = self._pooled_engine(epoch) if cached else self._engines[epoch]
            vals, stats = probe.get_many(arr[remaining])
            still: list[int] = []
            for i, value, st in zip(remaining, vals, stats):
                _merge_stats(agg[i], st)
                if value is not None:
                    values[i] = value
                    found[i] = epoch
                else:
                    still.append(i)
            remaining = still
        return values, found, agg

    # -- compaction ---------------------------------------------------------

    def compact(self, epochs: list[int] | None = None) -> CompactionReport | None:
        """Merge sealed epochs into one and atomically swap the manifest.

        ``epochs`` defaults to what the policy picks (or every live epoch
        when no policy is configured).  Returns None when there is nothing
        to merge.  The store keeps serving throughout: its in-memory state
        flips to the merged manifest only after the on-device swap lands.
        """
        if epochs is None:
            if self.compaction_policy is not None:
                epochs = self.compaction_policy.select(self.manifest)
            else:
                epochs = self.epochs if len(self.epochs) >= 2 else None
        if not epochs or len(epochs) < 2:
            return None
        manifest, report = Compactor(self).run(list(epochs))
        self._apply_compaction(manifest, report)
        return report

    def _apply_compaction(self, manifest: Manifest, report: CompactionReport) -> None:
        """Flip the in-memory view to a swapped-in merged manifest.

        The on-device swap already landed (foreground `compact` or a
        background merge publishing through `repro.parallel.compactbg`).
        Engines over retired epochs hold handles on extents the sweep
        deleted — close them before anything probes through them.
        """
        self.manifest = manifest
        for epoch in report.source_epochs:
            self._engines.pop(epoch, None)
            stale = self._cached.pop(epoch, None)
            if stale is not None:
                stale.close()
        self._engines[report.merged_epoch] = self._attach_engine(report.merged_epoch)
        self.compactions += 1
        self.last_compaction = report
        if self.tiering is not None:
            # Merged output is drained, PFS-resident data: let the model
            # finish draining what the retired bursts left on the BB.
            self.tiering.idle(
                self.tiering.bb_occupancy / self.tiering.config.drain_bandwidth
            )
            self._observe_tiers()

    def _observe_tiers(self) -> None:
        reg = self.device.metrics
        reg.gauge("tiering.bb_bytes").set(self.tiering.bb_occupancy)
        reg.gauge("tiering.pfs_bytes").set(self.tiering.drained_total)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release every pooled reader handle (idempotent)."""
        for engine in self._cached.values():
            engine.close()
        self._cached.clear()
        if self._pooled_reads is not None:
            self._pooled_reads.release()

    def __enter__(self) -> "MultiEpochStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- inventory ---------------------------------------------------------

    def describe(self) -> str:
        """Human-readable dataset summary from the manifest."""
        lines = [
            f"dataset: fmt={self.manifest.fmt} ranks={self.manifest.nranks} "
            f"value_bytes={self.manifest.value_bytes}",
            f"epochs: {len(self.manifest.epochs)}, records: {self.manifest.total_records:,}, "
            f"bytes: {self.device.total_bytes_stored():,}",
        ]
        for e in self.manifest.epochs:
            lines.append(
                f"  epoch {e.epoch}: {e.records:,} records, "
                f"{len(e.files)} files, {e.bytes:,} B"
            )
        if self.manifest.compacted:
            mapping = ", ".join(
                f"{old}->{new}" for old, new in sorted(self.manifest.compacted.items())
            )
            lines.append(f"compacted: {mapping} (next epoch id {self.manifest.next_epoch})")
        if self.tiering is not None:
            lines.append(
                f"tiers: burst buffer {self.tiering.bb_occupancy:,.0f} B, "
                f"PFS {self.tiering.drained_total:,.0f} B drained "
                f"(queryable at t={self.tiering.queryable_after():.2f}s)"
            )
        return "\n".join(lines)
