"""Multi-epoch datasets: the full in-situ simulation workflow.

The paper's macrobenchmark dumps particle state every few timesteps;
scientists then ask for one particle's state *at individual timesteps*
(§V-B).  `MultiEpochStore` runs one `SimCluster` epoch per dump against a
shared storage device, maintains the dataset `Manifest`, and serves both
single-epoch point queries and cross-epoch trajectory queries.

Example::

    store = MultiEpochStore(nranks=8, fmt=FMT_FILTERKV, value_bytes=56)
    for _ in range(4):
        sim.step(5)
        store.write_epoch(sim.dump())
    trajectory = store.trajectory(particle_id)   # [(epoch, value, stats)]
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..obs import MetricsRegistry
from ..storage.blockio import DeviceProfile, StorageDevice
from ..storage.envelope import unseal

if TYPE_CHECKING:  # imported lazily at runtime to avoid a package cycle
    from ..cluster.simcluster import ClusterStats
from ..storage.manifest import EpochInfo, Manifest, RecoveryReport
from .auxtable import AuxTable, aux_from_blob
from .formats import FMT_FILTERKV, FORMATS, FormatSpec
from .kv import KVBatch
from .partitioning import HashPartitioner
from .pipeline import aux_table_name, main_table_name
from .reader import QueryEngine, QueryStats

__all__ = ["MultiEpochStore"]


class MultiEpochStore:
    """A persisted dataset spanning many dump epochs."""

    def __init__(
        self,
        nranks: int,
        fmt: FormatSpec = FMT_FILTERKV,
        value_bytes: int = 56,
        device_profile: DeviceProfile | None = None,
        batch_bytes: int = 16384,
        block_size: int = 1 << 20,
        seed: int = 0,
        device: StorageDevice | None = None,
    ):
        self.nranks = nranks
        self.fmt = fmt
        self.value_bytes = value_bytes
        self.batch_bytes = batch_bytes
        self.block_size = block_size
        self.seed = seed
        self.device = device if device is not None else StorageDevice(device_profile)
        self.manifest = Manifest(fmt=fmt.name, nranks=nranks, value_bytes=value_bytes)
        self._engines: dict[int, QueryEngine] = {}
        self._next_epoch = 0

    # -- attach / recover ----------------------------------------------------

    @classmethod
    def attach(cls, device: StorageDevice, **kwargs) -> "MultiEpochStore":
        """Reopen a persisted dataset from its manifest alone.

        Rebuilds a query engine for every committed epoch, reloading each
        partition's auxiliary table from its sealed extent — the read side
        of crash consistency: nothing about the dataset lives only in the
        memory of the process that wrote it.
        """
        manifest = Manifest.load(device)
        fmt = FORMATS.get(manifest.fmt)
        if fmt is None:
            raise ValueError(f"manifest names unknown format {manifest.fmt!r}")
        store = cls(
            nranks=manifest.nranks,
            fmt=fmt,
            value_bytes=manifest.value_bytes,
            device=device,
            **kwargs,
        )
        store.manifest = manifest
        store._next_epoch = (max(manifest.epoch_ids) + 1) if manifest.epochs else 0
        for epoch in manifest.epoch_ids:
            store._engines[epoch] = store._attach_engine(epoch)
        return store

    @classmethod
    def recover(
        cls,
        device: StorageDevice,
        deep: bool = False,
        metrics: MetricsRegistry | None = None,
        **kwargs,
    ) -> "tuple[MultiEpochStore | None, RecoveryReport]":
        """Crash-recover the device, then attach to what survived.

        Returns ``(store-or-None, report)`` — None when no valid manifest
        survived (nothing was ever committed).
        """
        from ..faults import FaultyStorageDevice  # local: optional layer

        if isinstance(device, FaultyStorageDevice):
            device.revive()
        manifest, report = Manifest.recover(device, deep=deep, metrics=metrics)
        store = cls.attach(device, **kwargs) if manifest is not None else None
        return store, report

    def _attach_engine(self, epoch: int) -> QueryEngine:
        """Query engine over one committed epoch, aux tables reloaded
        from their sealed extents."""
        aux_tables: list[AuxTable | None] = [None] * self.nranks
        if self.fmt.name == "filterkv":
            for rank in range(self.nranks):
                with self.device.open(aux_table_name(epoch, rank)) as f:
                    aux_tables[rank] = aux_from_blob(
                        unseal(f.read(0, f.size)), metric_labels={"rank": str(rank)}
                    )
        return QueryEngine(
            device=self.device,
            fmt=self.fmt,
            nranks=self.nranks,
            partitioner=HashPartitioner(self.nranks),
            aux_tables=aux_tables,
            epoch=epoch,
        )

    # -- writing -----------------------------------------------------------

    def write_epoch(self, batches: list[KVBatch]) -> "ClusterStats":
        """Partition and persist one dump (one KVBatch per rank)."""
        from ..cluster.simcluster import SimCluster  # local: avoid cycle

        if len(batches) != self.nranks:
            raise ValueError(f"need {self.nranks} batches, got {len(batches)}")
        epoch = self._next_epoch
        records = sum(len(b) for b in batches)
        cluster = SimCluster(
            nranks=self.nranks,
            fmt=self.fmt,
            value_bytes=self.value_bytes,
            batch_bytes=self.batch_bytes,
            device=self.device,
            records_hint=max(1, records),
            block_size=self.block_size,
            epoch=epoch,
            seed=self.seed + epoch,
        )
        before = self.device.total_bytes_stored()
        for rank, batch in enumerate(batches):
            cluster.put(rank, batch)
        cluster.finish_epoch()
        self._engines[epoch] = cluster.query_engine()
        files = tuple(
            n
            for n in self.device.list_files()
            if n.startswith((f"part.{epoch:03d}.", f"aux.{epoch:03d}.")) or n.startswith("vlog.")
        )
        self.manifest.add_epoch(
            EpochInfo(
                epoch=epoch,
                records=records,
                files=files,
                bytes=self.device.total_bytes_stored() - before,
            )
        )
        self.manifest.save(self.device)
        self._next_epoch += 1
        return cluster.stats

    # -- reading -----------------------------------------------------------

    @property
    def epochs(self) -> list[int]:
        return self.manifest.epoch_ids

    def engine(self, epoch: int) -> QueryEngine:
        if epoch not in self._engines:
            raise KeyError(f"no such epoch {epoch} (have {self.epochs})")
        return self._engines[epoch]

    def cached_engine(
        self,
        epoch: int,
        metrics: MetricsRegistry | None = None,
        table_cache_entries: int | None = None,
        parallel_probe: bool = False,
    ) -> "CachedQueryEngine":
        """A warm-cache engine over one committed epoch.

        This is what a long-running serving tier (`repro.serve`) mounts:
        same device/format/aux tables as `engine`, but with the bounded
        reader cache and cache telemetry of `CachedQueryEngine`.
        """
        from .reader import CachedQueryEngine  # local: keep import surface small

        base = self.engine(epoch)
        kwargs = {}
        if table_cache_entries is not None:
            kwargs["table_cache_entries"] = table_cache_entries
        return CachedQueryEngine(
            device=self.device,
            fmt=self.fmt,
            nranks=self.nranks,
            partitioner=base.partitioner,
            aux_tables=base.aux_tables,
            epoch=epoch,
            parallel_probe=parallel_probe,
            metrics=metrics,
            **kwargs,
        )

    def get(self, key: int, epoch: int) -> tuple[bytes | None, QueryStats]:
        """Point query at one timestep (the paper's Fig. 11 query)."""
        return self.engine(epoch).get(key)

    def get_many(
        self, keys, epoch: int
    ) -> tuple[list[bytes | None], list[QueryStats]]:
        """Bulk point queries at one timestep (block-coalesced read path)."""
        return self.engine(epoch).get_many(keys)

    def trajectory(self, key: int) -> list[tuple[int, bytes | None, QueryStats]]:
        """The key's value at every epoch — a particle's trajectory."""
        return [(e, *self.get(key, e)) for e in self.epochs]

    # -- inventory ---------------------------------------------------------

    def describe(self) -> str:
        """Human-readable dataset summary from the manifest."""
        lines = [
            f"dataset: fmt={self.manifest.fmt} ranks={self.manifest.nranks} "
            f"value_bytes={self.manifest.value_bytes}",
            f"epochs: {len(self.manifest.epochs)}, records: {self.manifest.total_records:,}, "
            f"bytes: {self.device.total_bytes_stored():,}",
        ]
        for e in self.manifest.epochs:
            lines.append(
                f"  epoch {e.epoch}: {e.records:,} records, "
                f"{len(e.files)} files, {e.bytes:,} B"
            )
        return "\n".join(lines)
