"""The data-partitioning function: key → owning rank.

Every process owns one data partition, i.e. a disjoint subset of the key
space (paper §III-A).  The paper's workloads exhibit extreme key entropy
and make no assumption about generation order, so a hash partitioner is
the canonical choice — it also load-balances the partitions, one of the
stated uses of online partitioning.
"""

from __future__ import annotations

import numpy as np

from ..filters.hashing import MASK64, hash64, hash64_int

__all__ = ["HashPartitioner"]


class HashPartitioner:
    """Maps 64-bit keys onto ``nparts`` partitions by seeded hashing."""

    def __init__(self, nparts: int, seed: int = 0x9A27):
        if nparts < 1:
            raise ValueError(f"nparts must be >= 1, got {nparts}")
        self.nparts = int(nparts)
        self.seed = int(seed)

    def partition_of(self, keys: np.ndarray | int) -> np.ndarray:
        """Owning rank for each key (vectorized)."""
        h = hash64(np.asarray(keys, dtype=np.uint64), self.seed)
        return (h % np.uint64(self.nparts)).astype(np.int64)

    def partition_of_one(self, key: int) -> int:
        # Scalar arithmetic, not a one-element array: the router consults
        # this per request, where array dispatch dominates the hash.
        return hash64_int(int(key) & MASK64, self.seed) % self.nparts

    def split(self, keys: np.ndarray) -> list[np.ndarray]:
        """Index arrays grouping ``keys`` by destination partition.

        Returns a list of ``nparts`` int64 index arrays — the shuffle's
        scatter plan.  Built with one sort rather than ``nparts`` scans.
        """
        dest = self.partition_of(keys)
        # Stable argsort on a narrow integer dtype takes numpy's radix
        # path — same order, several times faster than comparison sort.
        narrow = dest.astype(np.uint16) if self.nparts <= 0xFFFF else dest
        order = np.argsort(narrow, kind="stable")
        sorted_dest = dest[order]
        boundaries = np.searchsorted(sorted_dest, np.arange(self.nparts + 1))
        return [order[boundaries[p] : boundaries[p + 1]] for p in range(self.nparts)]

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, HashPartitioner)
            and other.nparts == self.nparts
            and other.seed == self.seed
        )

    def __repr__(self) -> str:
        return f"HashPartitioner(nparts={self.nparts}, seed={self.seed:#x})"
