"""Online epoch compaction: k-way merge plus atomic manifest swap.

`MultiEpochStore` accumulates one sealed epoch per dump, and the
cross-epoch read path fans out over all of them — read amplification
grows linearly with epoch count (the scalability bug this module fixes;
PAPER.md §IV bounds per-query cost *within* an epoch, not across them).
`Compactor` merges k sealed epochs into one:

1. **Merge.**  Each source partition table streams out through
   `SSTableReader.scan_arrays`; chunks concatenate newest-epoch-first and
   `first_occurrence` keeps exactly the record the pre-compaction walk
   (newest epoch first, first hit wins) would have served.  FilterKV
   winners stay on the rank that originally wrote them, and a fresh aux
   table per owner partition is rebuilt from the surviving key→rank pairs
   and sealed.  Value logs are shared across epochs and are never
   rewritten — `dataptr` pointers in merged tables stay valid as-is.
2. **Swap.**  A single `Manifest.commit` publishes the merged epoch,
   retires the sources, and records the id mapping — one sealed
   generation append, atomic by construction.  Until it lands, every new
   extent is an orphan and the source epochs are untouched; a crash at
   any step reverts to the pre-compaction dataset and `Manifest.recover`
   sweeps the partial merge output.
3. **Sweep.**  Source extents no surviving epoch references are deleted;
   a crash before the sweep finishes leaves orphans for recovery.

Retired epoch ids remain addressable: the manifest's ``compacted``
mapping forwards them to the merged epoch (which serves the newest-wins
union view), and the ``next_epoch`` watermark guarantees ids are never
reused, so epoch-versioned caches can never alias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..obs import active
from ..obs.trace import child_span, current_span
from ..storage.compact import (
    concat_values,
    first_occurrence,
    read_table_arrays,
    take_values,
    write_merged_table,
)
from ..storage.envelope import seal
from ..storage.manifest import EpochInfo, Manifest
from .auxtable import AuxBackendPolicy, aux_to_blob, build_sealed_aux
from .pipeline import aux_table_name, main_table_name

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .multiepoch import MultiEpochStore

__all__ = [
    "CompactionPolicy",
    "CompactionReport",
    "Compactor",
    "MergeSpec",
    "produce_merged_epoch",
]


@dataclass(frozen=True)
class CompactionPolicy:
    """Size-tiered trigger: when too many epochs are live, merge the
    smallest ones first (they cost a walk step each but hold the least
    data, so merging them buys the biggest read-amplification cut per
    byte rewritten).
    """

    max_live_epochs: int = 4
    merge_factor: int = 8

    def __post_init__(self) -> None:
        if self.max_live_epochs < 2:
            raise ValueError(f"max_live_epochs must be >= 2, got {self.max_live_epochs}")
        if self.merge_factor < 2:
            raise ValueError(f"merge_factor must be >= 2, got {self.merge_factor}")

    def select(self, manifest: Manifest) -> list[int] | None:
        """Epoch ids to merge now, or None when the store is within bounds.

        Candidates are *adjacent in data-recency order* — first-write-wins
        merging is only sound for a contiguous run (skipping over a live
        epoch would fold older data on top of it).  Among the contiguous
        windows, the one holding the fewest bytes wins.
        """
        live = manifest.epochs  # already sorted oldest data first
        if len(live) < self.max_live_epochs:
            return None
        width = min(self.merge_factor, len(live))
        best = min(
            (live[i : i + width] for i in range(len(live) - width + 1)),
            key=lambda w: sum(e.bytes for e in w),
        )
        return sorted(e.epoch for e in best)


@dataclass
class CompactionReport:
    """What one compaction run merged, wrote, and reclaimed."""

    merged_epoch: int
    source_epochs: list[int]
    records_in: int
    records_out: int
    bytes_written: int
    bytes_reclaimed: int
    extents_removed: int
    generation: int

    def summary(self) -> str:
        return (
            f"compacted epochs {self.source_epochs} -> {self.merged_epoch} "
            f"(manifest generation {self.generation})\n"
            f"records: {self.records_in:,} in, {self.records_out:,} distinct out\n"
            f"bytes:   {self.bytes_written:,} written, "
            f"{self.bytes_reclaimed:,} reclaimed "
            f"({self.extents_removed} source extent(s) swept)"
        )


@dataclass(frozen=True)
class MergeSpec:
    """Everything the pure merge step needs, picklable.

    The k-way merge is a deterministic function of the source partition
    tables plus these parameters, so it can run in-process (foreground
    `Compactor.run`) or inside a pool worker over a shared-memory mirror
    of the source tables (`repro.parallel.compactbg`) and produce
    byte-identical merged extents either way.
    """

    fmt: str
    nranks: int
    block_size: int
    seed: int
    merged: int
    newest_first: tuple[int, ...]
    aux_policy: AuxBackendPolicy | None = None

    def source_tables(self) -> list[str]:
        """Extent names the merge reads (per-rank source partition tables)."""
        return [
            main_table_name(epoch, rank)
            for epoch in self.newest_first
            for rank in range(self.nranks)
        ]


def produce_merged_epoch(spec: MergeSpec, device, metrics=None) -> dict:
    """Run the merge described by ``spec`` against ``device``.

    Pure with respect to the manifest: reads the source partition tables,
    writes the merged epoch's ``part.*`` (and, for filterkv, ``aux.*``)
    extents, and returns ``{"records_out", "aux_backends"}``.  Publishing
    the result — manifest swap, sweep, compaction counters — stays with
    `Compactor.publish` on the caller's side.
    """
    metrics = active(metrics)
    if spec.fmt == "filterkv":
        records_out, aux_backends = _merge_filterkv(spec, device, metrics)
    else:
        records_out, aux_backends = _merge_direct(spec, device), set()
    return {"records_out": records_out, "aux_backends": aux_backends}


def _merge_direct(spec: MergeSpec, device) -> int:
    """base/dataptr: partitions are hash-assigned, so each rank's
    merged table depends only on that rank's source tables."""
    records_out = 0
    for rank in range(spec.nranks):
        if current_span() is None:
            records_out += _merge_one_rank(spec, device, rank)
        else:
            with child_span("compact.merge", rank=rank):
                records_out += _merge_one_rank(spec, device, rank)
    return records_out


def _merge_one_rank(spec: MergeSpec, device, rank: int) -> int:
    key_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray | list[bytes]] = []
    for epoch in spec.newest_first:
        keys, values = read_table_arrays(device, main_table_name(epoch, rank))
        key_chunks.append(keys)
        val_chunks.append(values)
    keys = np.concatenate(key_chunks)
    winners = first_occurrence(keys)
    write_merged_table(
        device,
        main_table_name(spec.merged, rank),
        keys[winners],
        take_values(concat_values(val_chunks), winners),
        spec.block_size,
    )
    return int(winners.size)


def _merge_filterkv(spec: MergeSpec, device, metrics) -> tuple[int, set[str]]:
    """filterkv: data stays on the rank that wrote it, so winners are
    chosen globally — first occurrence in (recency desc, rank asc)
    order, the same precedence as the pre-compaction probe walk — then
    scattered back to their source ranks and indexed by fresh aux
    tables on the hash owners."""
    merged = spec.merged
    key_chunks: list[np.ndarray] = []
    val_chunks: list[np.ndarray | list[bytes]] = []
    rank_chunks: list[np.ndarray] = []
    for epoch in spec.newest_first:
        for rank in range(spec.nranks):
            keys, values = read_table_arrays(device, main_table_name(epoch, rank))
            key_chunks.append(keys)
            val_chunks.append(values)
            rank_chunks.append(np.full(keys.size, rank, dtype=np.int64))
    keys = np.concatenate(key_chunks)
    ranks = np.concatenate(rank_chunks)
    winners = first_occurrence(keys)
    wkeys = keys[winners]
    wranks = ranks[winners]
    wvalues = take_values(concat_values(val_chunks), winners)

    for rank in range(spec.nranks):
        sel = np.flatnonzero(wranks == rank)
        if current_span() is None:
            _write_filterkv_rank(spec, device, rank, wkeys, wvalues, sel)
        else:
            with child_span("compact.merge", rank=rank):
                _write_filterkv_rank(spec, device, rank, wkeys, wvalues, sel)

    # Fresh aux tables on the hash owners, seeded exactly as an
    # ingest-time epoch would be (store seed + epoch + rank), then
    # sealed — torn blobs are detected at recovery like any other.
    # With a flush-time aux policy the merged epoch re-runs the backend
    # tournament on its (merged, deduplicated) key set; mixed-backend
    # source epochs thus converge on one winner after compaction.
    from .formats import FORMATS
    from .partitioning import HashPartitioner

    aux_backends_used: set[str] = set()
    owners = HashPartitioner(spec.nranks).partition_of(wkeys)
    for part in range(spec.nranks):
        sel = np.flatnonzero(owners == part)
        if spec.aux_policy is not None:
            backends = spec.aux_policy.rank_backends(
                int(sel.size), spec.nranks, epoch=merged
            )
        else:
            backends = [FORMATS[spec.fmt].aux_backend or "cuckoo"]
        aux = build_sealed_aux(
            wkeys[sel],
            wranks[sel].astype(np.uint64),
            nparts=spec.nranks,
            backends=backends,
            capacity_hint=max(1, int(sel.size)),
            seed=spec.seed + merged + part,
            metrics=metrics,
            metric_labels={"rank": str(part)},
        )
        aux_backends_used.add(aux.backend)
        aux.record_structure_metrics()
        blob = seal(aux_to_blob(aux))
        with device.open(aux_table_name(merged, part), create=True) as f:
            f.append(blob)
    return int(wkeys.size), aux_backends_used


def _write_filterkv_rank(
    spec: MergeSpec,
    device,
    rank: int,
    wkeys: np.ndarray,
    wvalues: np.ndarray | list[bytes],
    sel: np.ndarray,
) -> None:
    write_merged_table(
        device,
        main_table_name(spec.merged, rank),
        wkeys[sel],
        take_values(wvalues, sel),
        spec.block_size,
    )


class Compactor:
    """Merges sealed epochs of one store's dataset.

    Operates on the device and a *copy* of the manifest; the store's
    in-memory state is untouched until `run` returns, so a crash (or
    exception) mid-merge leaves the caller exactly where it started.

    `run` is the foreground path: validate → produce (in-process) →
    publish.  A background caller uses the same pieces but ships the
    produce step to a pool worker: `validate` + `prepare` first, then
    `publish` once the worker's merged extents are adopted.
    """

    def __init__(self, store: "MultiEpochStore"):
        self.store = store
        self.device = store.device
        self.metrics = active(store.device.metrics)

    def validate(self, epochs: list[int]) -> list[int]:
        """Normalize and sanity-check the source epoch set."""
        epochs = sorted(set(int(e) for e in epochs))
        if len(epochs) < 2:
            raise ValueError(f"compaction needs >= 2 source epochs, got {epochs}")
        live = set(self.store.manifest.epoch_ids)
        missing = [e for e in epochs if e not in live]
        if missing:
            raise KeyError(f"cannot compact non-live epochs {missing} (have {sorted(live)})")
        # First-write-wins merging is only sound for a run that is
        # contiguous in data-recency order: a live epoch sitting *between*
        # two sources would be shadowed by older data folded above it.
        ordered = [e.epoch for e in self.store.manifest.epochs]
        picked = [i for i, e in enumerate(ordered) if e in set(epochs)]
        if picked[-1] - picked[0] + 1 != len(picked):
            skipped = [ordered[i] for i in range(picked[0], picked[-1]) if ordered[i] not in set(epochs)]
            raise ValueError(
                f"source epochs {epochs} are not adjacent in recency order "
                f"(live epoch(s) {skipped} sit between them)"
            )
        return epochs

    def prepare(self, epochs: list[int]) -> tuple[Manifest, MergeSpec]:
        """A private manifest copy (the live one keeps serving and must
        stay pristine if anything later raises) plus the merge spec."""
        store = self.store
        working = Manifest.from_bytes(store.manifest.to_bytes())
        order_of = {e.epoch: e.order for e in working.epochs}
        spec = MergeSpec(
            fmt=store.fmt.name,
            nranks=store.nranks,
            block_size=store.block_size,
            seed=store.seed,
            merged=working.next_epoch,
            newest_first=tuple(
                sorted(epochs, key=lambda e: order_of[e], reverse=True)
            ),
            aux_policy=getattr(store, "aux_policy", None),
        )
        return working, spec

    def run(self, epochs: list[int]) -> tuple[Manifest, CompactionReport]:
        """Merge ``epochs``; returns the swapped-in manifest and a report."""
        epochs = self.validate(epochs)
        if current_span() is None:  # untraced: skip span-argument setup
            return self._run(epochs)
        with child_span("compact.run", epochs=len(epochs)):
            return self._run(epochs)

    def _run(self, epochs: list[int]) -> tuple[Manifest, CompactionReport]:
        working, spec = self.prepare(epochs)
        bytes_before = self.device.total_bytes_stored()
        produced = produce_merged_epoch(spec, self.device, self.metrics)
        bytes_written = self.device.total_bytes_stored() - bytes_before
        return self.publish(working, spec, produced, bytes_written)

    def publish(
        self,
        working: Manifest,
        spec: MergeSpec,
        produced: dict,
        bytes_written: int,
    ) -> tuple[Manifest, CompactionReport]:
        """Commit a produced merge: manifest swap, source sweep, counters.

        ``working``/``spec`` come from `prepare`; ``produced`` from
        `produce_merged_epoch` (run here or in a worker whose extents the
        caller has already adopted onto the device).
        """
        store = self.store
        merged = spec.merged
        epochs = sorted(spec.newest_first)
        records_out = produced["records_out"]
        order_of = {e.epoch: e.order for e in working.epochs}

        files = [
            n
            for n in self.device.list_files()
            if n.startswith((f"part.{merged:03d}.", f"aux.{merged:03d}."))
        ]
        if store.fmt.name == "dataptr":
            # Merged pointers still dereference into the shared value logs;
            # the merged epoch must reference them or the recovery sweep
            # would reclaim them once the source epochs retire.
            files.extend(n for n in self.device.list_files() if n.startswith("vlog."))

        retired_infos = [working.remove_epoch(e) for e in epochs]
        records_in = sum(info.records for info in retired_infos)
        working.add_epoch(
            EpochInfo(
                epoch=merged,
                records=records_out,
                files=tuple(sorted(files)),
                bytes=bytes_written,
                # The merged data is only as recent as its newest source:
                # it must sit where that source sat in the read walk, not
                # at the front where its fresh id would put it.
                order=max(order_of[e] for e in epochs),
                aux_backend=",".join(sorted(produced["aux_backends"])) or None,
            )
        )
        working.note_compaction(epochs, merged)

        # The swap: one sealed generation append.  Crash before it lands ->
        # the old manifest wins and the merge output above is orphaned.
        if current_span() is None:
            generation = working.commit(self.device)
        else:
            with child_span("compact.swap", merged=merged):
                generation = working.commit(self.device)

        # Source extents nothing live references any more.  A crash in this
        # loop leaves orphans that `Manifest.recover` sweeps.
        keep: set[str] = set()
        for info in working.epochs:
            keep.update(info.files)
        dead = sorted(
            name
            for info in retired_infos
            for name in info.files
            if name not in keep
        )
        bytes_reclaimed = 0
        removed = 0
        for name in set(dead):
            if self.device.exists(name):
                bytes_reclaimed += self.device.file_size(name)
                self.device.delete(name)
                removed += 1

        self.metrics.counter("compaction.runs").inc()
        self.metrics.counter("compaction.epochs_retired").inc(len(epochs))
        self.metrics.counter("compaction.records_in").inc(records_in)
        self.metrics.counter("compaction.records_out").inc(records_out)
        self.metrics.counter("compaction.bytes_written").inc(bytes_written)
        self.metrics.counter("compaction.bytes_reclaimed").inc(bytes_reclaimed)
        self.metrics.histogram("compaction.fan_in").observe(len(epochs))

        report = CompactionReport(
            merged_epoch=merged,
            source_epochs=epochs,
            records_in=records_in,
            records_out=records_out,
            bytes_written=bytes_written,
            bytes_reclaimed=bytes_reclaimed,
            extents_removed=removed,
            generation=generation,
        )
        return working, report
