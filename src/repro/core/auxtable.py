"""Auxiliary tables: key → candidate source ranks (paper §III-C, §IV).

An auxiliary table lives at each data partition and records, for every key
the partition owns, *which process wrote the key's data*.  FilterKV makes
this mapping lossy to make it small.  Four interchangeable backends:

`ExactAuxTable`
    The state of the art (Fmt-DataPtr): exact 12-byte pointers
    (4 B rank + 8 B offset).  Amplification is always 1.
`BloomAuxTable`
    §IV-A: opaque ``key‖rank`` mappings in a Bloom filter; queries test
    every candidate rank, so amplification grows with the partition count.
`CuckooAuxTable`
    §IV-B: the filter–index hybrid on partial-key cuckoo hash tables;
    one lookup returns all candidate ranks, amplification bounded by the
    fingerprint width.
`QuotientAuxTable`
    Related-work alternative (§VI): quotient filter probed per rank like
    the Bloom design.  Scalar; used by the backend ablation.

All byte accounting counts only the *index* data (the paper's Fig. 7b
"per-key space overhead"), not the keys or values themselves.
"""

from __future__ import annotations

import json
import math
import struct
from abc import ABC, abstractmethod

import numpy as np

from ..filters.bloom import BloomFilter
from ..filters.cuckoo import ChainedCuckooTable, PartialKeyCuckooTable
from ..filters.hashing import hash_pair
from ..filters.quotient import QuotientFilter
from ..filters.xorfilter import XorFilter
from ..obs import MetricsRegistry, active

__all__ = [
    "AuxTable",
    "ExactAuxTable",
    "BloomAuxTable",
    "CuckooAuxTable",
    "QuotientAuxTable",
    "XorAuxTable",
    "make_aux_table",
    "aux_to_blob",
    "aux_from_blob",
    "bloom_bits_per_key",
    "rank_bits",
]


def rank_bits(nparts: int) -> int:
    """Bits needed to name one of ``nparts`` partitions (≥1)."""
    return max(1, math.ceil(math.log2(max(2, nparts))))


def bloom_bits_per_key(nparts: int) -> float:
    """The paper's Fig. 7 Bloom budget: ``4 + log2(N)`` bits per key,
    chosen to equal the cuckoo table's per-slot width."""
    return 4.0 + math.log2(max(2, nparts))


def _pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack each value's low ``bits`` bits into a dense bitstream (the
    on-storage representation used for size and compressibility)."""
    if bits == 0 or values.size == 0:
        return b""
    v = np.asarray(values, dtype=np.uint64)
    bitmat = ((v[:, None] >> np.arange(bits, dtype=np.uint64)) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bitmat, axis=None).tobytes()


def _unpack_bits(data: bytes, count: int, bits: int) -> np.ndarray:
    """Inverse of `_pack_bits`: recover ``count`` values of ``bits`` bits."""
    if bits == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    flat = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=count * bits)
    bitmat = flat.reshape(count, bits).astype(np.uint64)
    return (bitmat << np.arange(bits, dtype=np.uint64)).sum(axis=1, dtype=np.uint64)


class AuxTable(ABC):
    """Common interface over the four backends.

    Probe accounting lives here: the public `candidate_ranks` /
    `candidate_counts` wrap backend-specific ``_candidate_*`` hooks and
    report probes, candidates returned, and false candidates (everything
    beyond the one true rank) into the optional metrics registry, so
    every backend is measured identically.
    """

    backend = "abstract"

    def __init__(
        self,
        nparts: int,
        metrics: MetricsRegistry | None = None,
        metric_labels: dict | None = None,
    ):
        if nparts < 1:
            raise ValueError(f"nparts must be >= 1, got {nparts}")
        self.nparts = int(nparts)
        self._nkeys = 0
        self.metrics = active(metrics)
        self._labels = {k: str(v) for k, v in (metric_labels or {}).items()}
        labels = dict(backend=self.backend, **self._labels)
        self._m_inserts = self.metrics.counter("aux.inserts", **labels)
        self._m_probes = self.metrics.counter("aux.probes", **labels)
        self._m_candidates = self.metrics.counter("aux.candidates", **labels)
        self._m_false = self.metrics.counter("aux.false_candidates", **labels)

    @abstractmethod
    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        """Record that each key's data lives at the given source rank."""

    @abstractmethod
    def _candidate_ranks(self, key: int) -> np.ndarray:
        """Backend lookup for `candidate_ranks` (uninstrumented)."""

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Serialized index payload (what lands on storage)."""

    @property
    @abstractmethod
    def size_bytes(self) -> int:
        """On-storage index size in bytes."""

    def candidate_ranks(self, key: int) -> np.ndarray:
        """Sorted distinct ranks that *may* hold the key (must include the
        true one — no false negatives)."""
        ranks = self._candidate_ranks(int(key))
        self._m_probes.inc()
        n = len(ranks)
        self._m_candidates.inc(n)
        if n > 1:
            self._m_false.inc(n - 1)
        return ranks

    def candidate_counts(self, keys: np.ndarray, **kwargs) -> np.ndarray:
        """Query amplification per key (Fig. 7a's metric)."""
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        counts = self._candidate_counts(keys, **kwargs)
        self._m_probes.inc(keys.size)
        self._m_candidates.inc(int(counts.sum()))
        extra = int(np.maximum(counts - 1, 0).sum())
        if extra:
            self._m_false.inc(extra)
        return counts

    def candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Candidate sets for a whole key array — the bulk read path's form.

        Returns ``(counts, flat)`` where ``flat`` concatenates each key's
        sorted distinct candidate ranks and ``counts[i]`` is how many belong
        to key *i* (``flat[counts[:i].sum() : counts[:i+1].sum()]``).  Probe
        accounting is identical to ``keys.size`` `candidate_ranks` calls, so
        counter invariants hold whichever surface a reader uses.
        """
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        counts, flat = self._candidates_many(keys)
        self._m_probes.inc(keys.size)
        self._m_candidates.inc(int(counts.sum()))
        extra = int(np.maximum(counts - 1, 0).sum())
        if extra:
            self._m_false.inc(extra)
        return counts, flat

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Backend hook for `candidates_many`; the default walks per key."""
        parts = [self._candidate_ranks(int(k)) for k in keys]
        counts = np.asarray([len(p) for p in parts], dtype=np.int64)
        flat = (
            np.concatenate(parts).astype(np.int64)
            if parts
            else np.zeros(0, dtype=np.int64)
        )
        return counts, flat

    def _candidate_counts(self, keys: np.ndarray) -> np.ndarray:
        return np.asarray([len(self._candidate_ranks(int(k))) for k in keys], dtype=np.int64)

    def record_structure_metrics(self) -> None:
        """Snapshot structural gauges (called once, when the table is
        persisted).  Subclasses add backend-specific gauges."""
        labels = dict(backend=self.backend, **self._labels)
        self.metrics.gauge("aux.keys", **labels).set(self._nkeys)
        self.metrics.gauge("aux.size_bytes", **labels).set(self.size_bytes)

    def __len__(self) -> int:
        return self._nkeys

    @property
    def bytes_per_key(self) -> float:
        return self.size_bytes / self._nkeys if self._nkeys else 0.0

    def _check_insert(self, keys: np.ndarray, src_ranks) -> tuple[np.ndarray, np.ndarray]:
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        ranks = np.broadcast_to(np.asarray(src_ranks, dtype=np.uint64), keys.shape)
        if ranks.size and int(ranks.max()) >= self.nparts:
            raise ValueError(f"rank {int(ranks.max())} out of range for {self.nparts} partitions")
        self._m_inserts.inc(keys.size)
        return keys, ranks


class ExactAuxTable(AuxTable):
    """Exact pointers (the current state of the art, Fmt-DataPtr).

    Stores 12 bytes per key: a 4-byte rank and an 8-byte offset.  Offsets
    default to each key's running byte position in its source log.
    """

    POINTER_BYTES = 12
    backend = "exact"

    def __init__(self, nparts: int, **obs_kwargs):
        super().__init__(nparts, **obs_kwargs)
        self._key_chunks: list[np.ndarray] = []
        self._rank_chunks: list[np.ndarray] = []
        self._offset_chunks: list[np.ndarray] = []
        self._sorted: tuple[np.ndarray, np.ndarray] | None = None

    def insert_many(
        self,
        keys: np.ndarray,
        src_ranks: np.ndarray | int,
        offsets: np.ndarray | None = None,
    ) -> None:
        keys, ranks = self._check_insert(keys, src_ranks)
        if offsets is None:
            offsets = np.arange(self._nkeys, self._nkeys + keys.size, dtype=np.uint64)
        else:
            offsets = np.asarray(offsets, dtype=np.uint64).ravel()
            if offsets.shape != keys.shape:
                raise ValueError("offsets must match keys")
        self._key_chunks.append(keys.copy())
        self._rank_chunks.append(ranks.astype(np.uint32))
        self._offset_chunks.append(offsets)
        self._nkeys += keys.size
        self._sorted = None

    def _ensure_sorted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._sorted is None:
            keys = (
                np.concatenate(self._key_chunks)
                if self._key_chunks
                else np.zeros(0, dtype=np.uint64)
            )
            ranks = (
                np.concatenate(self._rank_chunks)
                if self._rank_chunks
                else np.zeros(0, dtype=np.uint32)
            )
            order = np.argsort(keys, kind="stable")
            self._sorted = (keys[order], ranks[order])
        return self._sorted

    def _candidate_ranks(self, key: int) -> np.ndarray:
        keys, ranks = self._ensure_sorted()
        lo = np.searchsorted(keys, np.uint64(key), side="left")
        hi = np.searchsorted(keys, np.uint64(key), side="right")
        return np.unique(ranks[lo:hi]).astype(np.int64)

    def _candidate_counts(self, keys: np.ndarray) -> np.ndarray:
        skeys, _ = self._ensure_sorted()
        lo = np.searchsorted(skeys, keys, side="left")
        hi = np.searchsorted(skeys, keys, side="right")
        # Exact pointers: every stored occurrence is a distinct precise hit;
        # duplicated keys are rare in the paper's workloads, so hi-lo ≈ 1.
        return np.maximum(hi - lo, 0).astype(np.int64)

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        skeys, ranks = self._ensure_sorted()
        lo = np.searchsorted(skeys, keys, side="left")
        hi = np.searchsorted(skeys, keys, side="right")
        span = (hi - lo).astype(np.int64)
        if (span <= 1).all():  # no duplicated keys: one rank slice suffices
            return span, ranks[lo[span == 1]].astype(np.int64)
        parts = [np.unique(ranks[l:h]).astype(np.int64) for l, h in zip(lo, hi)]
        counts = np.asarray([len(p) for p in parts], dtype=np.int64)
        flat = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        return counts, flat

    def to_bytes(self) -> bytes:
        ranks = (
            np.concatenate(self._rank_chunks) if self._rank_chunks else np.zeros(0, np.uint32)
        )
        offsets = (
            np.concatenate(self._offset_chunks)
            if self._offset_chunks
            else np.zeros(0, np.uint64)
        )
        out = np.zeros(ranks.size * self.POINTER_BYTES, dtype=np.uint8)
        view = out.reshape(-1, self.POINTER_BYTES)
        view[:, :4] = ranks.astype("<u4").view(np.uint8).reshape(-1, 4)
        view[:, 4:] = offsets.astype("<u8").view(np.uint8).reshape(-1, 8)
        return out.tobytes()

    @property
    def size_bytes(self) -> int:
        return self._nkeys * self.POINTER_BYTES


class BloomAuxTable(AuxTable):
    """Bloom-filter aux table: insert key‖rank, probe every rank (§IV-A)."""

    backend = "bloom"

    def __init__(
        self,
        nparts: int,
        capacity_hint: int,
        bits_per_key: float | None = None,
        seed: int = 0,
        **obs_kwargs,
    ):
        super().__init__(nparts, **obs_kwargs)
        if capacity_hint <= 0:
            raise ValueError("capacity_hint must be positive")
        self.bits_per_key = bloom_bits_per_key(nparts) if bits_per_key is None else bits_per_key
        self._filter = BloomFilter.from_bits_per_key(capacity_hint, self.bits_per_key, seed=seed)

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        keys, ranks = self._check_insert(keys, src_ranks)
        self._filter.add_many(hash_pair(keys, ranks))
        self._nkeys += keys.size

    def _hits_matrix(self, keys: np.ndarray, rank_lo: int, rank_hi: int) -> np.ndarray:
        """Membership of every ``key‖rank`` digest for ranks in
        ``[rank_lo, rank_hi)`` — one vectorized pass, shape
        ``(len(keys), rank_hi - rank_lo)``."""
        ranks = np.arange(rank_lo, rank_hi, dtype=np.uint64)
        digests = hash_pair(np.repeat(keys, ranks.size), np.tile(ranks, keys.size))
        return self._filter.contains_many(digests).reshape(keys.size, ranks.size)

    def _candidate_ranks(self, key: int) -> np.ndarray:
        hits = self._hits_matrix(np.asarray([key], dtype=np.uint64), 0, self.nparts)
        return np.nonzero(hits[0])[0].astype(np.int64)

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All N ``key‖rank`` digests per batch tested in one vectorized
        membership pass (chunked over keys to bound the digest matrix)."""
        counts = np.zeros(keys.size, dtype=np.int64)
        flats: list[np.ndarray] = []
        chunk = max(1, (1 << 22) // max(1, self.nparts))
        for start in range(0, keys.size, chunk):
            sub = keys[start : start + chunk]
            hits = self._hits_matrix(sub, 0, self.nparts)
            rows, ranks = np.nonzero(hits)  # row-major: ranks ascend per key
            counts[start : start + sub.size] = np.bincount(rows, minlength=sub.size)
            flats.append(ranks.astype(np.int64))
        flat = np.concatenate(flats) if flats else np.zeros(0, dtype=np.int64)
        return counts, flat

    def _candidate_counts(
        self, keys: np.ndarray, exhaustive_limit: int = 1 << 16, sample_ranks: int = 4096
    ) -> np.ndarray:
        """Amplification per key.

        For up to ``exhaustive_limit`` partitions every rank is tested
        (exactly the paper's Fig. 4 procedure).  Beyond that, testing
        N ranks per key is infeasible, so the false-positive tail is
        *estimated* from a random sample of non-true ranks and scaled —
        unbiased, and documented in EXPERIMENTS.md.
        """
        if self.nparts <= exhaustive_limit:
            counts = np.zeros(keys.size, dtype=np.int64)
            chunk = max(1, (1 << 22) // max(1, self.nparts))
            for start in range(0, keys.size, chunk):
                sub = keys[start : start + chunk]
                counts[start : start + sub.size] = self._hits_matrix(
                    sub, 0, self.nparts
                ).sum(axis=1)
            return counts
        rng = np.random.default_rng(0xA137)
        sample = rng.integers(0, self.nparts, size=sample_ranks, dtype=np.uint64)
        digests = hash_pair(np.repeat(keys, sample.size), np.tile(sample, keys.size))
        hit_rate = (
            self._filter.contains_many(digests).reshape(keys.size, sample.size).mean(axis=1)
        )
        # ~1 true mapping plus fpr-scaled false candidates.
        return np.rint(1.0 + hit_rate * (self.nparts - 1)).astype(np.int64)

    def to_bytes(self) -> bytes:
        return self._filter.to_bytes()

    @property
    def size_bytes(self) -> int:
        return self._filter.size_bytes


class CuckooAuxTable(AuxTable):
    """Filter–index hybrid on partial-key cuckoo hash tables (§IV-B)."""

    backend = "cuckoo"

    def __init__(
        self,
        nparts: int,
        capacity_hint: int | None = None,
        fp_bits: int = 4,
        seed: int = 0,
        slots_per_bucket: int = 4,
        **obs_kwargs,
    ):
        super().__init__(nparts, **obs_kwargs)
        self.fp_bits = fp_bits
        self._table = ChainedCuckooTable(
            fp_bits=fp_bits,
            value_bits=rank_bits(nparts),
            slots_per_bucket=slots_per_bucket,
            seed=seed,
            capacity_hint=capacity_hint,
        )

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        keys, ranks = self._check_insert(keys, src_ranks)
        self._table.insert_many(keys, ranks.astype(np.uint32))
        self._nkeys += keys.size

    def _candidate_ranks(self, key: int) -> np.ndarray:
        return self._table.candidate_values(int(key)).astype(np.int64)

    def _candidate_counts(self, keys: np.ndarray) -> np.ndarray:
        return self._table.candidate_counts(keys)

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fingerprints and buckets for the whole key array resolve with one
        `lookup_many` sweep per chained table."""
        return self._table.candidates_many(keys)

    def record_structure_metrics(self) -> None:
        super().record_structure_metrics()
        labels = dict(backend=self.backend, **self._labels)
        st = self._table.stats
        self.metrics.gauge("aux.cuckoo.kicks", **labels).set(self._table.total_kicks)
        self.metrics.gauge("aux.cuckoo.chain_growths", **labels).set(st.ntables - 1)
        self.metrics.gauge("aux.cuckoo.utilization", **labels).set(st.utilization)

    def to_bytes(self) -> bytes:
        parts: list[bytes] = []
        width = self.fp_bits + self._table.value_bits
        for t in self._table.tables:
            fps, vals = t.to_arrays()
            slots = (fps.astype(np.uint64) << np.uint64(self._table.value_bits)) | vals.astype(
                np.uint64
            )
            parts.append(_pack_bits(slots.ravel(), width))
        return b"".join(parts)

    @property
    def size_bytes(self) -> int:
        return self._table.size_bytes

    @property
    def utilization(self) -> float:
        return self._table.stats.utilization


class QuotientAuxTable(AuxTable):
    """Quotient-filter aux table probed per rank (related work, §VI)."""

    backend = "quotient"

    def __init__(
        self,
        nparts: int,
        capacity_hint: int,
        rbits: int | None = None,
        seed: int = 0,
        **obs_kwargs,
    ):
        super().__init__(nparts, **obs_kwargs)
        if capacity_hint <= 0:
            raise ValueError("capacity_hint must be positive")
        qbits = max(4, math.ceil(math.log2(capacity_hint / 0.75)))
        self.rbits = rbits if rbits is not None else max(4, rank_bits(nparts))
        self._filter = QuotientFilter(qbits=qbits, rbits=self.rbits, seed=seed)

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        keys, ranks = self._check_insert(keys, src_ranks)
        digests = hash_pair(keys, ranks)
        for d in digests:
            self._filter.add(int(d))
        self._nkeys += keys.size

    def _candidate_ranks(self, key: int) -> np.ndarray:
        ranks = np.arange(self.nparts, dtype=np.uint64)
        digests = hash_pair(np.full(self.nparts, key, dtype=np.uint64), ranks)
        hits = self._filter.contains_many(digests)
        return np.nonzero(hits)[0].astype(np.int64)

    def to_bytes(self) -> bytes:
        meta = (
            self._filter._occ.astype(np.uint64)
            | (self._filter._cont.astype(np.uint64) << np.uint64(1))
            | (self._filter._shift.astype(np.uint64) << np.uint64(2))
        )
        slots = (self._filter._rem.astype(np.uint64) << np.uint64(3)) | meta
        return _pack_bits(slots, self.rbits + 3)

    @property
    def size_bytes(self) -> int:
        return self._filter.size_bytes


class XorAuxTable(AuxTable):
    """Static xor-filter aux table (extension beyond the paper).

    An in-situ epoch's key→rank mappings are immutable once the burst
    ends, which is exactly the regime xor filters excel at: ~1.23·fp_bits
    bits per mapping with fpr ``2^-fp_bits``.  Mappings are buffered during
    the shuffle and the filter is built lazily at the first query (or an
    explicit `finalize()`); like the Bloom design, a query exhaustively
    probes every candidate rank.
    """

    backend = "xor"

    def __init__(self, nparts: int, fp_bits: int = 8, seed: int = 0, **obs_kwargs):
        super().__init__(nparts, **obs_kwargs)
        self.fp_bits = fp_bits
        self.seed = seed
        self._pending: list[np.ndarray] = []
        self._filter: XorFilter | None = None

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        if self._filter is not None:
            raise ValueError("xor aux table already finalized (static filter)")
        keys, ranks = self._check_insert(keys, src_ranks)
        self._pending.append(hash_pair(keys, ranks))
        self._nkeys += keys.size

    def finalize(self) -> None:
        """Build the static filter from every buffered mapping."""
        if self._filter is None:
            if not self._pending:
                raise ValueError("nothing inserted")
            digests = np.concatenate(self._pending)
            self._filter = XorFilter(digests, fp_bits=self.fp_bits, seed=self.seed)
            self._pending.clear()

    def _candidate_ranks(self, key: int) -> np.ndarray:
        self.finalize()
        ranks = np.arange(self.nparts, dtype=np.uint64)
        digests = hash_pair(np.full(self.nparts, key, dtype=np.uint64), ranks)
        return np.nonzero(self._filter.contains_many(digests))[0].astype(np.int64)

    def to_bytes(self) -> bytes:
        self.finalize()
        return self._filter._slots.astype("<u4").tobytes()[: self.size_bytes]

    @property
    def size_bytes(self) -> int:
        self.finalize()
        return self._filter.size_bytes


_BLOB_HDR = struct.Struct("<I")  # length of the JSON header that follows


def aux_to_blob(aux: AuxTable) -> bytes:
    """Self-describing serialization: JSON geometry header + index payload.

    This is what lands in an ``aux.<epoch>.<rank>`` extent (sealed by the
    pipeline), and what `aux_from_blob` reloads after a restart.  The
    payload bytes are exactly `AuxTable.to_bytes` — the header adds the
    construction parameters needed to rebuild the probing structure.
    """
    header: dict = {"backend": aux.backend, "nparts": aux.nparts, "nkeys": len(aux)}
    if isinstance(aux, CuckooAuxTable):
        t = aux._table
        header.update(
            fp_bits=t.fp_bits,
            value_bits=t.value_bits,
            slots_per_bucket=t.slots_per_bucket,
            max_kicks=t.max_kicks,
            seed=t.seed,
            nbuckets=[pt.nbuckets for pt in t.tables],
        )
    elif isinstance(aux, BloomAuxTable):
        f = aux._filter
        header.update(
            nbits=f.nbits, nhashes=f.nhashes, seed=f.seed, bits_per_key=aux.bits_per_key
        )
    hdr = json.dumps(header, sort_keys=True).encode()
    return _BLOB_HDR.pack(len(hdr)) + hdr + aux.to_bytes()


def aux_from_blob(
    blob: bytes,
    metrics: MetricsRegistry | None = None,
    metric_labels: dict | None = None,
) -> AuxTable:
    """Rebuild an aux table from an `aux_to_blob` serialization.

    Cuckoo and Bloom backends — the two the paper evaluates at scale —
    reload exactly (same candidate sets for every key); the remaining
    backends raise `NotImplementedError` (their blobs are sized-and-stored
    but not yet reloadable).
    """
    if len(blob) < _BLOB_HDR.size:
        raise ValueError(f"aux blob too short ({len(blob)} B)")
    (hdr_len,) = _BLOB_HDR.unpack_from(blob)
    if len(blob) < _BLOB_HDR.size + hdr_len:
        raise ValueError("aux blob truncated inside header")
    try:
        header = json.loads(blob[_BLOB_HDR.size : _BLOB_HDR.size + hdr_len])
    except json.JSONDecodeError as e:
        raise ValueError(f"malformed aux blob header: {e}") from e
    payload = blob[_BLOB_HDR.size + hdr_len :]
    backend = header.get("backend")
    obs_kwargs = dict(metrics=metrics, metric_labels=metric_labels)
    if backend == "cuckoo":
        return _cuckoo_from_blob(header, payload, obs_kwargs)
    if backend == "bloom":
        return _bloom_from_blob(header, payload, obs_kwargs)
    raise NotImplementedError(f"aux backend {backend!r} is not reloadable")


def _cuckoo_from_blob(header: dict, payload: bytes, obs_kwargs: dict) -> "CuckooAuxTable":
    fp_bits = int(header["fp_bits"])
    value_bits = int(header["value_bits"])
    spb = int(header["slots_per_bucket"])
    seed = int(header["seed"])
    aux = CuckooAuxTable(
        int(header["nparts"]),
        fp_bits=fp_bits,
        seed=seed,
        slots_per_bucket=spb,
        **obs_kwargs,
    )
    chained = aux._table
    chained.max_kicks = int(header["max_kicks"])
    chained.tables = []
    width = fp_bits + value_bits
    vmask = np.uint64((1 << value_bits) - 1)
    off = 0
    for i, nb in enumerate(header["nbuckets"]):
        pt = PartialKeyCuckooTable(
            int(nb),
            fp_bits=fp_bits,
            value_bits=value_bits,
            slots_per_bucket=spb,
            max_kicks=chained.max_kicks,
            seed=seed + i,
        )
        nslots = pt.capacity_slots
        nbytes = math.ceil(nslots * width / 8)
        if off + nbytes > len(payload):
            raise ValueError(f"aux blob payload truncated at table {i}")
        slots = _unpack_bits(payload[off : off + nbytes], nslots, width)
        off += nbytes
        fps = (slots >> np.uint64(value_bits)).astype(np.uint32).reshape(pt.nbuckets, spb)
        vals = (slots & vmask).astype(np.uint32).reshape(pt.nbuckets, spb)
        pt._fps = fps
        pt._vals = vals
        # Occupied slots are packed from slot 0 in every bucket, so the
        # occupancy vector is recomputable from the stored fingerprints.
        pt._occ = (fps != 0).sum(axis=1).astype(np.int64)
        pt._nkeys = int(pt._occ.sum())
        chained.tables.append(pt)
    if off != len(payload):
        raise ValueError(
            f"aux blob has {len(payload) - off} trailing payload byte(s)"
        )
    aux._nkeys = int(header["nkeys"])
    return aux


def _bloom_from_blob(header: dict, payload: bytes, obs_kwargs: dict) -> "BloomAuxTable":
    nkeys = int(header["nkeys"])
    aux = BloomAuxTable(
        int(header["nparts"]),
        capacity_hint=max(1, nkeys),
        bits_per_key=float(header["bits_per_key"]),
        seed=int(header["seed"]),
        **obs_kwargs,
    )
    if len(payload) != int(header["nbits"]) // 8:
        raise ValueError(
            f"bloom payload is {len(payload)} B, expected {int(header['nbits']) // 8}"
        )
    f = BloomFilter.from_bytes(payload, int(header["nhashes"]), seed=int(header["seed"]))
    f._count = nkeys
    aux._filter = f
    aux._nkeys = nkeys
    return aux


def make_aux_table(
    backend: str,
    nparts: int,
    capacity_hint: int | None = None,
    seed: int = 0,
    metrics: MetricsRegistry | None = None,
    metric_labels: dict | None = None,
    **kwargs,
) -> AuxTable:
    """Factory: exact | bloom | cuckoo | quotient | xor."""
    obs_kwargs = dict(metrics=metrics, metric_labels=metric_labels)
    if backend == "exact":
        return ExactAuxTable(nparts, **obs_kwargs)
    if backend == "bloom":
        return BloomAuxTable(nparts, capacity_hint or 1024, seed=seed, **obs_kwargs, **kwargs)
    if backend == "cuckoo":
        return CuckooAuxTable(nparts, capacity_hint, seed=seed, **obs_kwargs, **kwargs)
    if backend == "quotient":
        return QuotientAuxTable(nparts, capacity_hint or 1024, seed=seed, **obs_kwargs, **kwargs)
    if backend == "xor":
        return XorAuxTable(nparts, seed=seed, **obs_kwargs, **kwargs)
    raise ValueError(f"unknown aux-table backend {backend!r}")
