"""Auxiliary tables: key → candidate source ranks (paper §III-C, §IV).

An auxiliary table lives at each data partition and records, for every key
the partition owns, *which process wrote the key's data*.  FilterKV makes
this mapping lossy to make it small.  The interchangeable backends
(`AUX_BACKENDS` is the registry):

`ExactAuxTable`
    The state of the art (Fmt-DataPtr): exact 12-byte pointers
    (4 B rank + 8 B offset).  Amplification is always 1.
`BloomAuxTable`
    §IV-A: opaque ``key‖rank`` mappings in a Bloom filter; queries test
    every candidate rank, so amplification grows with the partition count.
`CuckooAuxTable`
    §IV-B: the filter–index hybrid on partial-key cuckoo hash tables;
    one lookup returns all candidate ranks, amplification bounded by the
    fingerprint width.
`QuotientAuxTable`
    Related-work alternative (§VI): quotient filter probed per rank like
    the Bloom design.  Scalar; used by the backend ablation.
`XorAuxTable`
    Static xor filter over ``key‖rank`` digests, probed per rank.
`CsfAuxTable`
    The maplet view: a compressed static function stores each key's rank
    *directly* (guarded by a fused fingerprint), so present keys resolve
    to exactly one partition — amplification 1.0 at ~1.23·(fp+rank) bits.
`RankXorAuxTable`
    Rank-partitioned compact maplet: one xor-filter bank per rank; a key
    is a member of its owner's bank only.

The last three are *sealed* backends: mappings buffer during the shuffle
and the structure builds at `finalize()` (or first query), matching the
immutable key set an epoch commits.  `AuxBackendPolicy` +
`build_sealed_aux` pick the cheapest backend that builds at flush time.

All byte accounting counts only the *index* data (the paper's Fig. 7b
"per-key space overhead"), not the keys or values themselves.
"""

from __future__ import annotations

import json
import math
import struct
from abc import ABC, abstractmethod

import numpy as np

from ..filters.bloom import BloomFilter
from ..filters.csf import CsfConstructionError, XorMaplet
from ..filters.cuckoo import ChainedCuckooTable, PartialKeyCuckooTable
from ..filters.hashing import hash_pair
from ..filters.quotient import QuotientFilter
from ..filters.xorfilter import XorConstructionError, XorFilter
from ..obs import MetricsRegistry, active

__all__ = [
    "AuxTable",
    "ExactAuxTable",
    "BloomAuxTable",
    "CuckooAuxTable",
    "QuotientAuxTable",
    "XorAuxTable",
    "CsfAuxTable",
    "RankXorAuxTable",
    "AUX_BACKENDS",
    "AuxBackendPolicy",
    "build_sealed_aux",
    "estimate_backend",
    "make_aux_table",
    "aux_to_blob",
    "aux_from_blob",
    "bloom_bits_per_key",
    "csf_fp_bits",
    "rank_bits",
]


def rank_bits(nparts: int) -> int:
    """Bits needed to name one of ``nparts`` partitions (≥1)."""
    return max(1, math.ceil(math.log2(max(2, nparts))))


def bloom_bits_per_key(nparts: int) -> float:
    """The paper's Fig. 7 Bloom budget: ``4 + log2(N)`` bits per key,
    chosen to equal the cuckoo table's per-slot width."""
    return 4.0 + math.log2(max(2, nparts))


def csf_fp_bits(nparts: int) -> int:
    """Default CSF fingerprint width: the widest guard that still undercuts
    the Bloom budget after the xor construction's ~1.23× slot overhead
    (``1.23 · (fp + rank) < bloom_bits_per_key``), floored at 1 bit.  The
    guard only matters for out-of-set keys — present keys always resolve
    to exactly their one true rank."""
    return max(1, int(bloom_bits_per_key(nparts) / 1.23) - rank_bits(nparts))


def _pack_bits(values: np.ndarray, bits: int) -> bytes:
    """Pack each value's low ``bits`` bits into a dense bitstream (the
    on-storage representation used for size and compressibility)."""
    if bits == 0 or values.size == 0:
        return b""
    v = np.asarray(values, dtype=np.uint64)
    bitmat = ((v[:, None] >> np.arange(bits, dtype=np.uint64)) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bitmat, axis=None).tobytes()


def _unpack_bits(data: bytes, count: int, bits: int) -> np.ndarray:
    """Inverse of `_pack_bits`: recover ``count`` values of ``bits`` bits."""
    if bits == 0 or count == 0:
        return np.zeros(count, dtype=np.uint64)
    flat = np.unpackbits(np.frombuffer(data, dtype=np.uint8), count=count * bits)
    bitmat = flat.reshape(count, bits).astype(np.uint64)
    return (bitmat << np.arange(bits, dtype=np.uint64)).sum(axis=1, dtype=np.uint64)


class AuxTable(ABC):
    """Common interface over the four backends.

    Probe accounting lives here: the public `candidate_ranks` /
    `candidate_counts` wrap backend-specific ``_candidate_*`` hooks and
    report probes, candidates returned, and false candidates (everything
    beyond the one true rank) into the optional metrics registry, so
    every backend is measured identically.
    """

    backend = "abstract"

    def __init__(
        self,
        nparts: int,
        metrics: MetricsRegistry | None = None,
        metric_labels: dict | None = None,
    ):
        if nparts < 1:
            raise ValueError(f"nparts must be >= 1, got {nparts}")
        self.nparts = int(nparts)
        self._nkeys = 0
        self.metrics = active(metrics)
        self._labels = {k: str(v) for k, v in (metric_labels or {}).items()}
        labels = dict(backend=self.backend, **self._labels)
        self._m_inserts = self.metrics.counter("aux.inserts", **labels)
        self._m_probes = self.metrics.counter("aux.probes", **labels)
        self._m_candidates = self.metrics.counter("aux.candidates", **labels)
        self._m_false = self.metrics.counter("aux.false_candidates", **labels)

    @abstractmethod
    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        """Record that each key's data lives at the given source rank."""

    @abstractmethod
    def _candidate_ranks(self, key: int) -> np.ndarray:
        """Backend lookup for `candidate_ranks` (uninstrumented)."""

    @abstractmethod
    def to_bytes(self) -> bytes:
        """Serialized index payload (what lands on storage)."""

    @property
    @abstractmethod
    def size_bytes(self) -> int:
        """On-storage index size in bytes."""

    def finalize(self) -> None:
        """Freeze the table for sealing.  Dynamic backends are built
        incrementally and need nothing here; static backends (xor, csf,
        rankxor) construct their structure from the buffered mappings and
        reject further inserts.  Construction failures (peeling, conflicting
        duplicates) surface here, *before* the blob is sealed — which is what
        lets `build_sealed_aux` fall back to another backend."""

    def _blob_payload(self) -> bytes:
        """Payload bytes for `aux_to_blob`.  Defaults to the on-storage
        index (`to_bytes`); backends whose probing structure needs more than
        the index to rebuild (exact: the keys) override this.  Space
        accounting always uses `size_bytes`, never the blob length."""
        return self.to_bytes()

    def candidate_ranks(self, key: int) -> np.ndarray:
        """Sorted distinct ranks that *may* hold the key (must include the
        true one — no false negatives)."""
        ranks = self._candidate_ranks(int(key))
        self._m_probes.inc()
        n = len(ranks)
        self._m_candidates.inc(n)
        if n > 1:
            self._m_false.inc(n - 1)
        return ranks

    def candidate_counts(self, keys: np.ndarray, **kwargs) -> np.ndarray:
        """Query amplification per key (Fig. 7a's metric)."""
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        counts = self._candidate_counts(keys, **kwargs)
        self._m_probes.inc(keys.size)
        self._m_candidates.inc(int(counts.sum()))
        extra = int(np.maximum(counts - 1, 0).sum())
        if extra:
            self._m_false.inc(extra)
        return counts

    def candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Candidate sets for a whole key array — the bulk read path's form.

        Returns ``(counts, flat)`` where ``flat`` concatenates each key's
        sorted distinct candidate ranks and ``counts[i]`` is how many belong
        to key *i* (``flat[counts[:i].sum() : counts[:i+1].sum()]``).  Probe
        accounting is identical to ``keys.size`` `candidate_ranks` calls, so
        counter invariants hold whichever surface a reader uses.
        """
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        counts, flat = self._candidates_many(keys)
        self._m_probes.inc(keys.size)
        self._m_candidates.inc(int(counts.sum()))
        extra = int(np.maximum(counts - 1, 0).sum())
        if extra:
            self._m_false.inc(extra)
        return counts, flat

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Backend hook for `candidates_many`; the default walks per key."""
        parts = [self._candidate_ranks(int(k)) for k in keys]
        counts = np.asarray([len(p) for p in parts], dtype=np.int64)
        flat = (
            np.concatenate(parts).astype(np.int64)
            if parts
            else np.zeros(0, dtype=np.int64)
        )
        return counts, flat

    def _candidate_counts(self, keys: np.ndarray) -> np.ndarray:
        return np.asarray([len(self._candidate_ranks(int(k))) for k in keys], dtype=np.int64)

    def record_structure_metrics(self) -> None:
        """Snapshot structural gauges (called once, when the table is
        persisted).  Subclasses add backend-specific gauges."""
        labels = dict(backend=self.backend, **self._labels)
        self.metrics.gauge("aux.keys", **labels).set(self._nkeys)
        self.metrics.gauge("aux.size_bytes", **labels).set(self.size_bytes)

    def __len__(self) -> int:
        return self._nkeys

    @property
    def bytes_per_key(self) -> float:
        return self.size_bytes / self._nkeys if self._nkeys else 0.0

    def _check_insert(self, keys: np.ndarray, src_ranks) -> tuple[np.ndarray, np.ndarray]:
        keys = np.asarray(keys, dtype=np.uint64).ravel()
        ranks = np.broadcast_to(np.asarray(src_ranks, dtype=np.uint64), keys.shape)
        if ranks.size and int(ranks.max()) >= self.nparts:
            raise ValueError(f"rank {int(ranks.max())} out of range for {self.nparts} partitions")
        self._m_inserts.inc(keys.size)
        return keys, ranks


class ExactAuxTable(AuxTable):
    """Exact pointers (the current state of the art, Fmt-DataPtr).

    Stores 12 bytes per key: a 4-byte rank and an 8-byte offset.  Offsets
    default to each key's running byte position in its source log.
    """

    POINTER_BYTES = 12
    backend = "exact"

    def __init__(self, nparts: int, **obs_kwargs):
        super().__init__(nparts, **obs_kwargs)
        self._key_chunks: list[np.ndarray] = []
        self._rank_chunks: list[np.ndarray] = []
        self._offset_chunks: list[np.ndarray] = []
        self._sorted: tuple[np.ndarray, np.ndarray] | None = None

    def insert_many(
        self,
        keys: np.ndarray,
        src_ranks: np.ndarray | int,
        offsets: np.ndarray | None = None,
    ) -> None:
        keys, ranks = self._check_insert(keys, src_ranks)
        if offsets is None:
            offsets = np.arange(self._nkeys, self._nkeys + keys.size, dtype=np.uint64)
        else:
            offsets = np.asarray(offsets, dtype=np.uint64).ravel()
            if offsets.shape != keys.shape:
                raise ValueError("offsets must match keys")
        self._key_chunks.append(keys.copy())
        self._rank_chunks.append(ranks.astype(np.uint32))
        self._offset_chunks.append(offsets)
        self._nkeys += keys.size
        self._sorted = None

    def _ensure_sorted(self) -> tuple[np.ndarray, np.ndarray]:
        if self._sorted is None:
            keys = (
                np.concatenate(self._key_chunks)
                if self._key_chunks
                else np.zeros(0, dtype=np.uint64)
            )
            ranks = (
                np.concatenate(self._rank_chunks)
                if self._rank_chunks
                else np.zeros(0, dtype=np.uint32)
            )
            order = np.argsort(keys, kind="stable")
            self._sorted = (keys[order], ranks[order])
        return self._sorted

    def _candidate_ranks(self, key: int) -> np.ndarray:
        keys, ranks = self._ensure_sorted()
        lo = np.searchsorted(keys, np.uint64(key), side="left")
        hi = np.searchsorted(keys, np.uint64(key), side="right")
        return np.unique(ranks[lo:hi]).astype(np.int64)

    def _candidate_counts(self, keys: np.ndarray) -> np.ndarray:
        skeys, _ = self._ensure_sorted()
        lo = np.searchsorted(skeys, keys, side="left")
        hi = np.searchsorted(skeys, keys, side="right")
        # Exact pointers: every stored occurrence is a distinct precise hit;
        # duplicated keys are rare in the paper's workloads, so hi-lo ≈ 1.
        return np.maximum(hi - lo, 0).astype(np.int64)

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        skeys, ranks = self._ensure_sorted()
        lo = np.searchsorted(skeys, keys, side="left")
        hi = np.searchsorted(skeys, keys, side="right")
        span = (hi - lo).astype(np.int64)
        if (span <= 1).all():  # no duplicated keys: one rank slice suffices
            return span, ranks[lo[span == 1]].astype(np.int64)
        parts = [np.unique(ranks[l:h]).astype(np.int64) for l, h in zip(lo, hi)]
        counts = np.asarray([len(p) for p in parts], dtype=np.int64)
        flat = np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)
        return counts, flat

    def to_bytes(self) -> bytes:
        ranks = (
            np.concatenate(self._rank_chunks) if self._rank_chunks else np.zeros(0, np.uint32)
        )
        offsets = (
            np.concatenate(self._offset_chunks)
            if self._offset_chunks
            else np.zeros(0, np.uint64)
        )
        out = np.zeros(ranks.size * self.POINTER_BYTES, dtype=np.uint8)
        view = out.reshape(-1, self.POINTER_BYTES)
        view[:, :4] = ranks.astype("<u4").view(np.uint8).reshape(-1, 4)
        view[:, 4:] = offsets.astype("<u8").view(np.uint8).reshape(-1, 8)
        return out.tobytes()

    def _blob_payload(self) -> bytes:
        # The 12-byte pointers alone can't answer candidate_ranks after a
        # reload (probing needs the keys), so the blob carries the keys in
        # insertion order ahead of the index.  size_bytes still counts only
        # the pointers — the keys live in the data extents regardless.
        keys = (
            np.concatenate(self._key_chunks) if self._key_chunks else np.zeros(0, np.uint64)
        )
        return keys.astype("<u8").tobytes() + self.to_bytes()

    @property
    def size_bytes(self) -> int:
        return self._nkeys * self.POINTER_BYTES


class BloomAuxTable(AuxTable):
    """Bloom-filter aux table: insert key‖rank, probe every rank (§IV-A)."""

    backend = "bloom"

    def __init__(
        self,
        nparts: int,
        capacity_hint: int,
        bits_per_key: float | None = None,
        seed: int = 0,
        **obs_kwargs,
    ):
        super().__init__(nparts, **obs_kwargs)
        if capacity_hint <= 0:
            raise ValueError("capacity_hint must be positive")
        self.bits_per_key = bloom_bits_per_key(nparts) if bits_per_key is None else bits_per_key
        self._filter = BloomFilter.from_bits_per_key(capacity_hint, self.bits_per_key, seed=seed)

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        keys, ranks = self._check_insert(keys, src_ranks)
        self._filter.add_many(hash_pair(keys, ranks))
        self._nkeys += keys.size

    def _hits_matrix(self, keys: np.ndarray, rank_lo: int, rank_hi: int) -> np.ndarray:
        """Membership of every ``key‖rank`` digest for ranks in
        ``[rank_lo, rank_hi)`` — one vectorized pass, shape
        ``(len(keys), rank_hi - rank_lo)``."""
        ranks = np.arange(rank_lo, rank_hi, dtype=np.uint64)
        digests = hash_pair(np.repeat(keys, ranks.size), np.tile(ranks, keys.size))
        return self._filter.contains_many(digests).reshape(keys.size, ranks.size)

    def _candidate_ranks(self, key: int) -> np.ndarray:
        hits = self._hits_matrix(np.asarray([key], dtype=np.uint64), 0, self.nparts)
        return np.nonzero(hits[0])[0].astype(np.int64)

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """All N ``key‖rank`` digests per batch tested in one vectorized
        membership pass (chunked over keys to bound the digest matrix)."""
        counts = np.zeros(keys.size, dtype=np.int64)
        flats: list[np.ndarray] = []
        chunk = max(1, (1 << 22) // max(1, self.nparts))
        for start in range(0, keys.size, chunk):
            sub = keys[start : start + chunk]
            hits = self._hits_matrix(sub, 0, self.nparts)
            rows, ranks = np.nonzero(hits)  # row-major: ranks ascend per key
            counts[start : start + sub.size] = np.bincount(rows, minlength=sub.size)
            flats.append(ranks.astype(np.int64))
        flat = np.concatenate(flats) if flats else np.zeros(0, dtype=np.int64)
        return counts, flat

    def _candidate_counts(
        self, keys: np.ndarray, exhaustive_limit: int = 1 << 16, sample_ranks: int = 4096
    ) -> np.ndarray:
        """Amplification per key.

        For up to ``exhaustive_limit`` partitions every rank is tested
        (exactly the paper's Fig. 4 procedure).  Beyond that, testing
        N ranks per key is infeasible, so the false-positive tail is
        *estimated* from a random sample of non-true ranks and scaled —
        unbiased, and documented in EXPERIMENTS.md.
        """
        if self.nparts <= exhaustive_limit:
            counts = np.zeros(keys.size, dtype=np.int64)
            chunk = max(1, (1 << 22) // max(1, self.nparts))
            for start in range(0, keys.size, chunk):
                sub = keys[start : start + chunk]
                counts[start : start + sub.size] = self._hits_matrix(
                    sub, 0, self.nparts
                ).sum(axis=1)
            return counts
        rng = np.random.default_rng(0xA137)
        sample = rng.integers(0, self.nparts, size=sample_ranks, dtype=np.uint64)
        digests = hash_pair(np.repeat(keys, sample.size), np.tile(sample, keys.size))
        hit_rate = (
            self._filter.contains_many(digests).reshape(keys.size, sample.size).mean(axis=1)
        )
        # ~1 true mapping plus fpr-scaled false candidates.
        return np.rint(1.0 + hit_rate * (self.nparts - 1)).astype(np.int64)

    def to_bytes(self) -> bytes:
        return self._filter.to_bytes()

    @property
    def size_bytes(self) -> int:
        return self._filter.size_bytes


class CuckooAuxTable(AuxTable):
    """Filter–index hybrid on partial-key cuckoo hash tables (§IV-B)."""

    backend = "cuckoo"

    def __init__(
        self,
        nparts: int,
        capacity_hint: int | None = None,
        fp_bits: int = 4,
        seed: int = 0,
        slots_per_bucket: int = 4,
        **obs_kwargs,
    ):
        super().__init__(nparts, **obs_kwargs)
        self.fp_bits = fp_bits
        self._table = ChainedCuckooTable(
            fp_bits=fp_bits,
            value_bits=rank_bits(nparts),
            slots_per_bucket=slots_per_bucket,
            seed=seed,
            capacity_hint=capacity_hint,
        )

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        keys, ranks = self._check_insert(keys, src_ranks)
        self._table.insert_many(keys, ranks.astype(np.uint32))
        self._nkeys += keys.size

    def _candidate_ranks(self, key: int) -> np.ndarray:
        return self._table.candidate_values(int(key)).astype(np.int64)

    def _candidate_counts(self, keys: np.ndarray) -> np.ndarray:
        return self._table.candidate_counts(keys)

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fingerprints and buckets for the whole key array resolve with one
        `lookup_many` sweep per chained table."""
        return self._table.candidates_many(keys)

    def record_structure_metrics(self) -> None:
        super().record_structure_metrics()
        labels = dict(backend=self.backend, **self._labels)
        st = self._table.stats
        self.metrics.gauge("aux.cuckoo.kicks", **labels).set(self._table.total_kicks)
        self.metrics.gauge("aux.cuckoo.chain_growths", **labels).set(st.ntables - 1)
        self.metrics.gauge("aux.cuckoo.utilization", **labels).set(st.utilization)

    def to_bytes(self) -> bytes:
        parts: list[bytes] = []
        width = self.fp_bits + self._table.value_bits
        for t in self._table.tables:
            fps, vals = t.to_arrays()
            slots = (fps.astype(np.uint64) << np.uint64(self._table.value_bits)) | vals.astype(
                np.uint64
            )
            parts.append(_pack_bits(slots.ravel(), width))
        return b"".join(parts)

    @property
    def size_bytes(self) -> int:
        return self._table.size_bytes

    @property
    def utilization(self) -> float:
        return self._table.stats.utilization


class QuotientAuxTable(AuxTable):
    """Quotient-filter aux table probed per rank (related work, §VI)."""

    backend = "quotient"

    def __init__(
        self,
        nparts: int,
        capacity_hint: int,
        rbits: int | None = None,
        seed: int = 0,
        **obs_kwargs,
    ):
        super().__init__(nparts, **obs_kwargs)
        if capacity_hint <= 0:
            raise ValueError("capacity_hint must be positive")
        qbits = max(4, math.ceil(math.log2(capacity_hint / 0.75)))
        self.rbits = rbits if rbits is not None else max(4, rank_bits(nparts))
        self._filter = QuotientFilter(qbits=qbits, rbits=self.rbits, seed=seed)

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        keys, ranks = self._check_insert(keys, src_ranks)
        digests = hash_pair(keys, ranks)
        for d in digests:
            self._filter.add(int(d))
        self._nkeys += keys.size

    def _candidate_ranks(self, key: int) -> np.ndarray:
        ranks = np.arange(self.nparts, dtype=np.uint64)
        digests = hash_pair(np.full(self.nparts, key, dtype=np.uint64), ranks)
        hits = self._filter.contains_many(digests)
        return np.nonzero(hits)[0].astype(np.int64)

    def to_bytes(self) -> bytes:
        meta = (
            self._filter._occ.astype(np.uint64)
            | (self._filter._cont.astype(np.uint64) << np.uint64(1))
            | (self._filter._shift.astype(np.uint64) << np.uint64(2))
        )
        slots = (self._filter._rem.astype(np.uint64) << np.uint64(3)) | meta
        return _pack_bits(slots, self.rbits + 3)

    @property
    def size_bytes(self) -> int:
        return self._filter.size_bytes


class XorAuxTable(AuxTable):
    """Static xor-filter aux table (extension beyond the paper).

    An in-situ epoch's key→rank mappings are immutable once the burst
    ends, which is exactly the regime xor filters excel at: ~1.23·fp_bits
    bits per mapping with fpr ``2^-fp_bits``.  Mappings are buffered during
    the shuffle and the filter is built lazily at the first query (or an
    explicit `finalize()`); like the Bloom design, a query exhaustively
    probes every candidate rank.
    """

    backend = "xor"

    def __init__(self, nparts: int, fp_bits: int = 8, seed: int = 0, **obs_kwargs):
        super().__init__(nparts, **obs_kwargs)
        self.fp_bits = fp_bits
        self.seed = seed
        self._pending: list[np.ndarray] = []
        self._filter: XorFilter | None = None
        self._finalized = False

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        if self._finalized:
            raise ValueError("xor aux table already finalized (static filter)")
        keys, ranks = self._check_insert(keys, src_ranks)
        self._pending.append(hash_pair(keys, ranks))
        self._nkeys += keys.size

    def finalize(self) -> None:
        """Build the static filter from every buffered mapping.  An empty
        table (compaction seals aux blobs for keyless partitions) stays
        filterless and answers no candidates."""
        if self._finalized:
            return
        if self._pending:
            digests = np.concatenate(self._pending)
            self._filter = XorFilter(digests, fp_bits=self.fp_bits, seed=self.seed)
            self._pending.clear()
        self._finalized = True

    def _candidate_ranks(self, key: int) -> np.ndarray:
        self.finalize()
        if self._filter is None:
            return np.zeros(0, dtype=np.int64)
        ranks = np.arange(self.nparts, dtype=np.uint64)
        digests = hash_pair(np.full(self.nparts, key, dtype=np.uint64), ranks)
        return np.nonzero(self._filter.contains_many(digests))[0].astype(np.int64)

    def to_bytes(self) -> bytes:
        self.finalize()
        if self._filter is None:
            return b""
        # Dense fp_bits-wide packing: exactly size_bytes, and decodable —
        # `aux_from_blob` reloads the slot array from this.
        return _pack_bits(self._filter._slots, self.fp_bits)

    @property
    def size_bytes(self) -> int:
        self.finalize()
        return self._filter.size_bytes if self._filter is not None else 0


class CsfAuxTable(AuxTable):
    """Compressed-static-function aux table: the maplet view.

    Every other lossy backend stores *memberships* and reconstructs the
    mapping by probing; the CSF stores the mapping itself.  A sealed
    epoch's key→rank pairs build an `XorMaplet` whose lookup returns the
    owner rank directly, guarded by a fused fingerprint: present keys
    resolve to exactly one partition (amplification 1.0 — no dynamic
    filter can match that), out-of-set keys leak a false candidate with
    probability ``≈2^-fp_bits``.  Cost: ~1.23·(fp_bits + rank_bits(N))
    bits per key, below the Bloom budget at every partition count with the
    default `csf_fp_bits` width.

    A static function holds one value per key, so conflicting duplicate
    mappings (same key, different ranks) are rejected at `finalize()`;
    `build_sealed_aux` treats that as "this backend doesn't fit" and falls
    back.  Consistent duplicates dedupe silently.
    """

    backend = "csf"

    def __init__(
        self,
        nparts: int,
        fp_bits: int | None = None,
        seed: int = 0,
        **obs_kwargs,
    ):
        super().__init__(nparts, **obs_kwargs)
        self.fp_bits = csf_fp_bits(nparts) if fp_bits is None else int(fp_bits)
        self.value_bits = rank_bits(nparts)
        self.seed = seed
        self._pending_keys: list[np.ndarray] = []
        self._pending_ranks: list[np.ndarray] = []
        self._maplet: XorMaplet | None = None
        self._finalized = False

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        if self._finalized:
            raise ValueError("csf aux table already finalized (static function)")
        keys, ranks = self._check_insert(keys, src_ranks)
        self._pending_keys.append(keys.copy())
        self._pending_ranks.append(ranks.astype(np.uint64))
        self._nkeys += keys.size

    def finalize(self) -> None:
        if self._finalized:
            return
        if self._pending_keys:
            keys = np.concatenate(self._pending_keys)
            ranks = np.concatenate(self._pending_ranks)
            order = np.argsort(keys, kind="stable")
            skeys, sranks = keys[order], ranks[order]
            ukeys, first, counts = np.unique(skeys, return_index=True, return_counts=True)
            uranks = sranks[first]
            if (np.repeat(uranks, counts) != sranks).any():
                raise ValueError(
                    "conflicting duplicate mappings: a static function stores one rank per key"
                )
            self._maplet = XorMaplet(
                ukeys,
                uranks,
                value_bits=self.value_bits,
                fp_bits=self.fp_bits,
                seed=self.seed,
            )
            self._pending_keys.clear()
            self._pending_ranks.clear()
        self._finalized = True

    def _lookup(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(valid, values): guard hit AND decoded rank is a real partition
        (rank_bits can name ranks ≥ nparts; those are guard escapes)."""
        self.finalize()
        if self._maplet is None:
            z = np.zeros(keys.size, dtype=bool)
            return z, np.zeros(keys.size, dtype=np.uint64)
        hits, values = self._maplet.lookup_many(keys)
        return hits & (values < np.uint64(self.nparts)), values

    def _candidate_ranks(self, key: int) -> np.ndarray:
        valid, values = self._lookup(np.asarray([key], dtype=np.uint64))
        if valid[0]:
            return values[:1].astype(np.int64)
        return np.zeros(0, dtype=np.int64)

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        valid, values = self._lookup(keys)
        return valid.astype(np.int64), values[valid].astype(np.int64)

    def _candidate_counts(self, keys: np.ndarray) -> np.ndarray:
        valid, _ = self._lookup(keys)
        return valid.astype(np.int64)

    def record_structure_metrics(self) -> None:
        super().record_structure_metrics()
        if self._maplet is not None:
            labels = dict(backend=self.backend, **self._labels)
            self.metrics.gauge("aux.csf.tries", **labels).set(self._maplet.tries)
            self.metrics.gauge("aux.csf.slot_bits", **labels).set(self._maplet.slot_bits)

    def to_bytes(self) -> bytes:
        self.finalize()
        if self._maplet is None:
            return b""
        return _pack_bits(self._maplet._slots, self._maplet.slot_bits)

    @property
    def size_bytes(self) -> int:
        self.finalize()
        return self._maplet.size_bytes if self._maplet is not None else 0


class RankXorAuxTable(AuxTable):
    """Rank-partitioned compact maplet: one xor-filter bank per rank.

    Instead of one structure over ``key‖rank`` digests, each rank gets its
    own static xor filter holding exactly the keys it owns; a query tests
    the key against every bank.  Same exhaustive-probe shape as the Bloom
    design, but at ~1.23·fp_bits bits per key (each key occupies one bank)
    with per-bank fpr ``2^-fp_bits``.  Unlike the CSF this is a *multi*
    maplet — a key written by several ranks is simply a member of several
    banks — so it is the static fallback when CSF's one-rank-per-key
    invariant doesn't hold.
    """

    backend = "rankxor"

    def __init__(self, nparts: int, fp_bits: int = 8, seed: int = 0, **obs_kwargs):
        super().__init__(nparts, **obs_kwargs)
        self.fp_bits = int(fp_bits)
        self.seed = seed
        self._pending_keys: list[np.ndarray] = []
        self._pending_ranks: list[np.ndarray] = []
        self._banks: list[XorFilter | None] | None = None

    def insert_many(self, keys: np.ndarray, src_ranks: np.ndarray | int) -> None:
        if self._banks is not None:
            raise ValueError("rankxor aux table already finalized (static banks)")
        keys, ranks = self._check_insert(keys, src_ranks)
        self._pending_keys.append(keys.copy())
        self._pending_ranks.append(ranks.astype(np.uint64))
        self._nkeys += keys.size

    def finalize(self) -> None:
        if self._banks is not None:
            return
        banks: list[XorFilter | None] = [None] * self.nparts
        if self._pending_keys:
            keys = np.concatenate(self._pending_keys)
            ranks = np.concatenate(self._pending_ranks)
            for r in np.unique(ranks):
                owned = keys[ranks == r]
                # Per-bank seed: banks must hash independently or one
                # unlucky key set would collide identically everywhere.
                banks[int(r)] = XorFilter(
                    owned, fp_bits=self.fp_bits, seed=self.seed + int(r)
                )
            self._pending_keys.clear()
            self._pending_ranks.clear()
        self._banks = banks

    def _hits_matrix(self, keys: np.ndarray) -> np.ndarray:
        self.finalize()
        hits = np.zeros((keys.size, self.nparts), dtype=bool)
        for r, bank in enumerate(self._banks):
            if bank is not None:
                hits[:, r] = bank.contains_many(keys)
        return hits

    def _candidate_ranks(self, key: int) -> np.ndarray:
        hits = self._hits_matrix(np.asarray([key], dtype=np.uint64))
        return np.nonzero(hits[0])[0].astype(np.int64)

    def _candidates_many(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        hits = self._hits_matrix(keys)
        rows, ranks = np.nonzero(hits)  # row-major: ranks ascend per key
        counts = np.bincount(rows, minlength=keys.size).astype(np.int64)
        return counts, ranks.astype(np.int64)

    def _candidate_counts(self, keys: np.ndarray) -> np.ndarray:
        return self._hits_matrix(keys).sum(axis=1).astype(np.int64)

    def record_structure_metrics(self) -> None:
        super().record_structure_metrics()
        self.finalize()
        labels = dict(backend=self.backend, **self._labels)
        nbanks = sum(1 for b in self._banks if b is not None)
        self.metrics.gauge("aux.rankxor.banks", **labels).set(nbanks)

    def to_bytes(self) -> bytes:
        self.finalize()
        return b"".join(
            _pack_bits(b._slots, self.fp_bits) for b in self._banks if b is not None
        )

    @property
    def size_bytes(self) -> int:
        self.finalize()
        return sum(b.size_bytes for b in self._banks if b is not None)


_BLOB_HDR = struct.Struct("<I")  # length of the JSON header that follows


# Blob format versions.  v1 (no "v" key): cuckoo and bloom only.  v2 adds
# the explicit tag plus reload geometry for exact/quotient/xor/csf/rankxor.
# Readers accept any version ≤ _BLOB_VERSION; v1 blobs load unchanged.
_BLOB_VERSION = 2


def aux_to_blob(aux: AuxTable) -> bytes:
    """Self-describing serialization: JSON geometry header + index payload.

    This is what lands in an ``aux.<epoch>.<rank>`` extent (sealed by the
    pipeline), and what `aux_from_blob` reloads after a restart.  The
    payload bytes are `AuxTable._blob_payload` — `to_bytes` for every
    backend except exact, which prefixes its keys — and the header adds
    the construction parameters needed to rebuild the probing structure.
    Serialization finalizes static backends as a side effect.
    """
    aux.finalize()
    header: dict = {
        "v": _BLOB_VERSION,
        "backend": aux.backend,
        "nparts": aux.nparts,
        "nkeys": len(aux),
    }
    if isinstance(aux, CuckooAuxTable):
        t = aux._table
        header.update(
            fp_bits=t.fp_bits,
            value_bits=t.value_bits,
            slots_per_bucket=t.slots_per_bucket,
            max_kicks=t.max_kicks,
            seed=t.seed,
            nbuckets=[pt.nbuckets for pt in t.tables],
        )
    elif isinstance(aux, BloomAuxTable):
        f = aux._filter
        header.update(
            nbits=f.nbits, nhashes=f.nhashes, seed=f.seed, bits_per_key=aux.bits_per_key
        )
    elif isinstance(aux, QuotientAuxTable):
        f = aux._filter
        header.update(qbits=f.qbits, rbits=f.rbits, seed=f.seed, count=f._count)
    elif isinstance(aux, XorAuxTable):
        f = aux._filter
        # seed is the *final* seed construction settled on, so the reload
        # recomputes the same slot positions without re-peeling.
        header.update(
            fp_bits=aux.fp_bits,
            seed=f.seed if f is not None else aux.seed,
            segment=f._segment if f is not None else 0,
            fnkeys=f.nkeys if f is not None else 0,
        )
    elif isinstance(aux, CsfAuxTable):
        m = aux._maplet
        header.update(
            fp_bits=aux.fp_bits,
            value_bits=aux.value_bits,
            seed=m.seed if m is not None else aux.seed,
            segment=m._segment if m is not None else 0,
            fnkeys=m.nkeys if m is not None else 0,
        )
    elif isinstance(aux, RankXorAuxTable):
        header.update(
            fp_bits=aux.fp_bits,
            base_seed=aux.seed,
            banks=[
                [r, b.seed, b._segment, b.nkeys]
                for r, b in enumerate(aux._banks)
                if b is not None
            ],
        )
    hdr = json.dumps(header, sort_keys=True).encode()
    return _BLOB_HDR.pack(len(hdr)) + hdr + aux._blob_payload()


def aux_from_blob(
    blob: bytes,
    metrics: MetricsRegistry | None = None,
    metric_labels: dict | None = None,
) -> AuxTable:
    """Rebuild an aux table from an `aux_to_blob` serialization.

    Every registered backend reloads exactly: the reloaded table answers
    the same candidate sets for every key, and re-serializing it
    reproduces the blob bit-for-bit (the parity harness asserts both).
    Blobs from a future format version are rejected up front rather than
    misread.
    """
    if len(blob) < _BLOB_HDR.size:
        raise ValueError(f"aux blob too short ({len(blob)} B)")
    (hdr_len,) = _BLOB_HDR.unpack_from(blob)
    if len(blob) < _BLOB_HDR.size + hdr_len:
        raise ValueError("aux blob truncated inside header")
    try:
        header = json.loads(blob[_BLOB_HDR.size : _BLOB_HDR.size + hdr_len])
    except json.JSONDecodeError as e:
        raise ValueError(f"malformed aux blob header: {e}") from e
    version = int(header.get("v", 1))
    if version > _BLOB_VERSION:
        raise ValueError(
            f"aux blob format v{version} is newer than supported v{_BLOB_VERSION}"
        )
    payload = blob[_BLOB_HDR.size + hdr_len :]
    backend = header.get("backend")
    obs_kwargs = dict(metrics=metrics, metric_labels=metric_labels)
    loader = _BLOB_LOADERS.get(backend)
    if loader is None:
        raise NotImplementedError(f"aux backend {backend!r} is not reloadable")
    return loader(header, payload, obs_kwargs)


def _cuckoo_from_blob(header: dict, payload: bytes, obs_kwargs: dict) -> "CuckooAuxTable":
    fp_bits = int(header["fp_bits"])
    value_bits = int(header["value_bits"])
    spb = int(header["slots_per_bucket"])
    seed = int(header["seed"])
    aux = CuckooAuxTable(
        int(header["nparts"]),
        fp_bits=fp_bits,
        seed=seed,
        slots_per_bucket=spb,
        **obs_kwargs,
    )
    chained = aux._table
    chained.max_kicks = int(header["max_kicks"])
    chained.tables = []
    width = fp_bits + value_bits
    vmask = np.uint64((1 << value_bits) - 1)
    off = 0
    for i, nb in enumerate(header["nbuckets"]):
        pt = PartialKeyCuckooTable(
            int(nb),
            fp_bits=fp_bits,
            value_bits=value_bits,
            slots_per_bucket=spb,
            max_kicks=chained.max_kicks,
            seed=seed + i,
        )
        nslots = pt.capacity_slots
        nbytes = math.ceil(nslots * width / 8)
        if off + nbytes > len(payload):
            raise ValueError(f"aux blob payload truncated at table {i}")
        slots = _unpack_bits(payload[off : off + nbytes], nslots, width)
        off += nbytes
        fps = (slots >> np.uint64(value_bits)).astype(np.uint32).reshape(pt.nbuckets, spb)
        vals = (slots & vmask).astype(np.uint32).reshape(pt.nbuckets, spb)
        pt._fps = fps
        pt._vals = vals
        # Occupied slots are packed from slot 0 in every bucket, so the
        # occupancy vector is recomputable from the stored fingerprints.
        pt._occ = (fps != 0).sum(axis=1).astype(np.int64)
        pt._nkeys = int(pt._occ.sum())
        chained.tables.append(pt)
    if off != len(payload):
        raise ValueError(
            f"aux blob has {len(payload) - off} trailing payload byte(s)"
        )
    aux._nkeys = int(header["nkeys"])
    return aux


def _bloom_from_blob(header: dict, payload: bytes, obs_kwargs: dict) -> "BloomAuxTable":
    nkeys = int(header["nkeys"])
    aux = BloomAuxTable(
        int(header["nparts"]),
        capacity_hint=max(1, nkeys),
        bits_per_key=float(header["bits_per_key"]),
        seed=int(header["seed"]),
        **obs_kwargs,
    )
    if len(payload) != int(header["nbits"]) // 8:
        raise ValueError(
            f"bloom payload is {len(payload)} B, expected {int(header['nbits']) // 8}"
        )
    f = BloomFilter.from_bytes(payload, int(header["nhashes"]), seed=int(header["seed"]))
    f._count = nkeys
    aux._filter = f
    aux._nkeys = nkeys
    return aux


def _exact_from_blob(header: dict, payload: bytes, obs_kwargs: dict) -> "ExactAuxTable":
    nkeys = int(header["nkeys"])
    want = nkeys * (8 + ExactAuxTable.POINTER_BYTES)
    if len(payload) != want:
        raise ValueError(f"exact payload is {len(payload)} B, expected {want}")
    aux = ExactAuxTable(int(header["nparts"]), **obs_kwargs)
    keys = np.frombuffer(payload[: nkeys * 8], dtype="<u8").astype(np.uint64)
    ptrs = np.frombuffer(payload[nkeys * 8 :], dtype=np.uint8).reshape(
        nkeys, ExactAuxTable.POINTER_BYTES
    )
    ranks = ptrs[:, :4].copy().view("<u4").ravel().astype(np.uint64)
    offsets = ptrs[:, 4:].copy().view("<u8").ravel().astype(np.uint64)
    if nkeys:
        aux.insert_many(keys, ranks, offsets=offsets)
    return aux


def _quotient_from_blob(header: dict, payload: bytes, obs_kwargs: dict) -> "QuotientAuxTable":
    qbits, rbits = int(header["qbits"]), int(header["rbits"])
    aux = QuotientAuxTable(
        int(header["nparts"]), capacity_hint=1, rbits=rbits, seed=int(header["seed"]), **obs_kwargs
    )
    f = QuotientFilter(qbits=qbits, rbits=rbits, seed=int(header["seed"]))
    nbytes = -(-f.nslots * (rbits + 3) // 8)
    if len(payload) != nbytes:
        raise ValueError(f"quotient payload is {len(payload)} B, expected {nbytes}")
    slots = _unpack_bits(payload, f.nslots, rbits + 3)
    f._occ = (slots & np.uint64(1)).astype(bool)
    f._cont = ((slots >> np.uint64(1)) & np.uint64(1)).astype(bool)
    f._shift = ((slots >> np.uint64(2)) & np.uint64(1)).astype(bool)
    f._rem = (slots >> np.uint64(3)).astype(np.uint32)
    f._count = int(header["count"])
    aux._filter = f
    aux._nkeys = int(header["nkeys"])
    return aux


def _xor_from_blob(header: dict, payload: bytes, obs_kwargs: dict) -> "XorAuxTable":
    fp_bits = int(header["fp_bits"])
    aux = XorAuxTable(
        int(header["nparts"]), fp_bits=fp_bits, seed=int(header["seed"]), **obs_kwargs
    )
    segment = int(header["segment"])
    if segment:
        nslots = 3 * segment
        nbytes = -(-nslots * fp_bits // 8)
        if len(payload) != nbytes:
            raise ValueError(f"xor payload is {len(payload)} B, expected {nbytes}")
        slots = _unpack_bits(payload, nslots, fp_bits).astype(np.uint32)
        aux._filter = XorFilter.from_state(
            slots, int(header["fnkeys"]), fp_bits, int(header["seed"])
        )
    elif payload:
        raise ValueError(f"empty xor table has {len(payload)} trailing payload byte(s)")
    aux._finalized = True
    aux._nkeys = int(header["nkeys"])
    return aux


def _csf_from_blob(header: dict, payload: bytes, obs_kwargs: dict) -> "CsfAuxTable":
    fp_bits = int(header["fp_bits"])
    value_bits = int(header["value_bits"])
    aux = CsfAuxTable(
        int(header["nparts"]), fp_bits=fp_bits, seed=int(header["seed"]), **obs_kwargs
    )
    if aux.value_bits != value_bits:
        raise ValueError(
            f"csf blob stores {value_bits}-bit ranks but {header['nparts']} "
            f"partitions need {aux.value_bits}"
        )
    segment = int(header["segment"])
    if segment:
        nslots = 3 * segment
        width = fp_bits + value_bits
        nbytes = -(-nslots * width // 8)
        if len(payload) != nbytes:
            raise ValueError(f"csf payload is {len(payload)} B, expected {nbytes}")
        slots = _unpack_bits(payload, nslots, width)
        aux._maplet = XorMaplet.from_state(
            slots, int(header["fnkeys"]), value_bits, fp_bits, int(header["seed"])
        )
    elif payload:
        raise ValueError(f"empty csf table has {len(payload)} trailing payload byte(s)")
    aux._finalized = True
    aux._nkeys = int(header["nkeys"])
    return aux


def _rankxor_from_blob(header: dict, payload: bytes, obs_kwargs: dict) -> "RankXorAuxTable":
    fp_bits = int(header["fp_bits"])
    aux = RankXorAuxTable(
        int(header["nparts"]), fp_bits=fp_bits, seed=int(header["base_seed"]), **obs_kwargs
    )
    banks: list[XorFilter | None] = [None] * aux.nparts
    off = 0
    for r, seed, segment, fnkeys in header["banks"]:
        nslots = 3 * int(segment)
        nbytes = -(-nslots * fp_bits // 8)
        if off + nbytes > len(payload):
            raise ValueError(f"rankxor blob payload truncated at bank {r}")
        slots = _unpack_bits(payload[off : off + nbytes], nslots, fp_bits).astype(np.uint32)
        banks[int(r)] = XorFilter.from_state(slots, int(fnkeys), fp_bits, int(seed))
        off += nbytes
    if off != len(payload):
        raise ValueError(f"rankxor blob has {len(payload) - off} trailing payload byte(s)")
    aux._banks = banks
    aux._nkeys = int(header["nkeys"])
    return aux


_BLOB_LOADERS = {
    "exact": _exact_from_blob,
    "bloom": _bloom_from_blob,
    "cuckoo": _cuckoo_from_blob,
    "quotient": _quotient_from_blob,
    "xor": _xor_from_blob,
    "csf": _csf_from_blob,
    "rankxor": _rankxor_from_blob,
}


# Backend registry: name → constructor taking (nparts, capacity_hint, seed,
# obs_kwargs, **kwargs).  The differential parity harness parametrizes over
# this dict, so registering a backend here is the one line that opts it into
# the factory, the CLI choices, AND the cross-backend oracle tests.
AUX_BACKENDS = {
    "exact": lambda nparts, cap, seed, obs, **kw: ExactAuxTable(nparts, **obs),
    "bloom": lambda nparts, cap, seed, obs, **kw: BloomAuxTable(
        nparts, cap or 1024, seed=seed, **obs, **kw
    ),
    "cuckoo": lambda nparts, cap, seed, obs, **kw: CuckooAuxTable(
        nparts, cap, seed=seed, **obs, **kw
    ),
    "quotient": lambda nparts, cap, seed, obs, **kw: QuotientAuxTable(
        nparts, cap or 1024, seed=seed, **obs, **kw
    ),
    "xor": lambda nparts, cap, seed, obs, **kw: XorAuxTable(nparts, seed=seed, **obs, **kw),
    "csf": lambda nparts, cap, seed, obs, **kw: CsfAuxTable(nparts, seed=seed, **obs, **kw),
    "rankxor": lambda nparts, cap, seed, obs, **kw: RankXorAuxTable(
        nparts, seed=seed, **obs, **kw
    ),
}


def make_aux_table(
    backend: str,
    nparts: int,
    capacity_hint: int | None = None,
    seed: int = 0,
    metrics: MetricsRegistry | None = None,
    metric_labels: dict | None = None,
    **kwargs,
) -> AuxTable:
    """Factory over `AUX_BACKENDS`: exact | bloom | cuckoo | quotient |
    xor | csf | rankxor."""
    ctor = AUX_BACKENDS.get(backend)
    if ctor is None:
        raise ValueError(f"unknown aux-table backend {backend!r}")
    obs_kwargs = dict(metrics=metrics, metric_labels=metric_labels)
    return ctor(nparts, capacity_hint, seed, obs_kwargs, **kwargs)


def estimate_backend(backend: str, nkeys: int, nparts: int) -> tuple[float, float]:
    """Analytic ``(bits_per_key, amplification)`` estimate for one backend.

    These are closed-form predictions — what the tournament bench measures
    empirically — used by `AuxBackendPolicy` to rank backends without
    building anything.  Amplification is candidates per present-key query.
    """
    rb = rank_bits(nparts)
    if backend == "exact":
        return 8.0 * ExactAuxTable.POINTER_BYTES, 1.0
    if backend == "bloom":
        bpk = bloom_bits_per_key(nparts)
        fpr = 0.6185**bpk  # optimal-k Bloom fpr at this budget
        return bpk, 1.0 + (nparts - 1) * fpr
    if backend == "cuckoo":
        # 4-bit fingerprints, ~0.95 utilization; a query scans two buckets
        # of four slots against a 4-bit fingerprint.
        return (4 + rb) / 0.95, 1.0 + 8 * 2.0**-4
    if backend == "quotient":
        rbits = max(4, rb)
        return (rbits + 3) / 0.75, 1.0 + (nparts - 1) * 0.75 * 2.0**-rbits
    if backend == "xor":
        return 1.23 * 8, 1.0 + (nparts - 1) * 2.0**-8
    if backend == "rankxor":
        return 1.23 * 8, 1.0 + (nparts - 1) * 2.0**-8
    if backend == "csf":
        # Present keys decode to exactly their stored rank: amp is 1.0 by
        # construction, and space rides the fused-slot width.
        return 1.23 * (csf_fp_bits(nparts) + rb), 1.0
    raise ValueError(f"unknown aux-table backend {backend!r}")


class AuxBackendPolicy:
    """Flush-time backend selection: the tournament, applied per epoch.

    Ranks candidate backends by predicted cost (`estimate_backend`) and
    `build_sealed_aux` walks the ranking, falling back when a static
    construction legitimately refuses (conflicting duplicates for the CSF,
    peeling failure).  The default candidate list ends in backends that
    always build, so selection never fails.

    ``amp_weight`` prices one extra partition probed per query in bits of
    per-key space — it trades the router tier's memory (ROADMAP item 1)
    against wasted partition reads.
    """

    DEFAULT_CANDIDATES = ("csf", "rankxor", "cuckoo", "bloom")

    def __init__(
        self,
        candidates: tuple[str, ...] = DEFAULT_CANDIDATES,
        amp_weight: float = 2.0,
    ):
        unknown = [c for c in candidates if c not in AUX_BACKENDS]
        if unknown:
            raise ValueError(f"unknown aux backends in policy: {unknown}")
        if not candidates:
            raise ValueError("policy needs at least one candidate backend")
        self.candidates = tuple(candidates)
        self.amp_weight = float(amp_weight)

    def score(self, backend: str, nkeys: int, nparts: int) -> float:
        bits, amp = estimate_backend(backend, nkeys, nparts)
        return bits + self.amp_weight * (amp - 1.0)

    def rank_backends(self, nkeys: int, nparts: int, epoch: int = 0) -> list[str]:
        """Candidates ordered best-first for this epoch's key set.  Dynamic
        backends (safe fallbacks — they always build) keep their relative
        order after every static backend of equal score."""
        return sorted(self.candidates, key=lambda b: self.score(b, nkeys, nparts))


def build_sealed_aux(
    keys: np.ndarray,
    ranks: np.ndarray | int,
    nparts: int,
    backends: list[str] | tuple[str, ...],
    capacity_hint: int | None = None,
    seed: int = 0,
    metrics: MetricsRegistry | None = None,
    metric_labels: dict | None = None,
) -> AuxTable:
    """Build and finalize an aux table, walking ``backends`` best-first.

    A backend that cannot represent this key set — the CSF's
    one-rank-per-key invariant violated, or (vanishingly rare) peeling
    exhaustion — is skipped and the next candidate tried.  The winner is
    recorded in the ``aux.backend.selected`` counter so telemetry shows
    which backend each sealed epoch actually carries.
    """
    keys = np.asarray(keys, dtype=np.uint64).ravel()
    registry = active(metrics)
    last_err: Exception | None = None
    for backend in backends:
        aux = make_aux_table(
            backend,
            nparts,
            capacity_hint=capacity_hint if capacity_hint is not None else max(1, keys.size),
            seed=seed,
            metrics=metrics,
            metric_labels=metric_labels,
        )
        try:
            if keys.size:
                aux.insert_many(keys, ranks)
            aux.finalize()
        except (ValueError, CsfConstructionError, XorConstructionError) as e:
            last_err = e
            continue
        registry.counter(
            "aux.backend.selected",
            backend=backend,
            **{k: str(v) for k, v in (metric_labels or {}).items()},
        ).inc()
        return aux
    raise RuntimeError(f"no aux backend in {list(backends)} could build") from last_err
