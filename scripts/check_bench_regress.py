#!/usr/bin/env python
"""CI perf-regression gate over ``repro.bench/v1`` artifacts.

Compares a directory of freshly produced benchmark JSON documents against
a committed baseline directory and **fails (exit 1)** when any throughput
metric regresses by more than ``--threshold`` (default 20 %).

Metric discovery is structural, not per-bench: the checker walks every
JSON value recursively and treats a numeric field as throughput when its
key matches ``qps|_per_s|_per_sec|per_s$|speedup`` (higher is better) or
as a cost when it matches ``amplification``, ``bits_per_key``, or
``partitions_per_query`` (lower is better — growth beyond the threshold
fails the gate, shrinkage is an improvement).
Latency-style fields are deliberately ignored — quantiles at smoke scale
are too noisy to gate on, and throughput regressions drag latency along
anyway.

Each metric gets a stable identity so rows can be matched across runs
even when list order changes: the JSON path, with list elements keyed by
their identifying fields (``format``, ``arm``, ``config``, ``mode``)
when present, e.g.::

    serve.json :: rows_detailed[format=filterkv,arm=served].qps

Baselines committed to the repo were produced on one machine; CI runs on
another.  ``--relative-only`` restricts the comparison to dimensionless
metrics (``speedup``/``reduction``/``ratio``/``amplification`` keys),
which are machine-independent — that is the mode the CI job uses.
Absolute-throughput mode is for like-for-like machines (e.g. a local
before/after run).

Usage::

    python scripts/check_bench_regress.py \
        --baseline benchmarks/results/baseline_smoke \
        --current  /tmp/bench_now \
        --relative-only
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

THROUGHPUT_RE = re.compile(r"(qps|_per_s(ec)?$|per_s$|per_sec$|speedup)", re.IGNORECASE)
RELATIVE_RE = re.compile(
    r"(speedup|reduction|ratio|amplification|bits_per_key|partitions_per_query)",
    re.IGNORECASE,
)
# Cost-style metrics where growth is the regression (read amplification
# after compaction, aux-table space and query fan-out, the fleet
# router's resident-vs-blob aux memory, etc.).  Per-key / per-query /
# dimensionless, so machine-independent and always relative-safe.
LOWER_BETTER_RE = re.compile(
    r"(amplification|bits_per_key|partitions_per_query|aux_bytes_ratio)",
    re.IGNORECASE,
)
# Fields that identify a row within a list, in precedence order.
IDENTITY_FIELDS = ("format", "arm", "config", "mode", "name", "machine")


def _row_key(item) -> str | None:
    """A stable identity for one list element, or None if unidentifiable."""
    if not isinstance(item, dict):
        return None
    parts = [f"{f}={item[f]}" for f in IDENTITY_FIELDS if item.get(f) is not None]
    return ",".join(parts) if parts else None


def extract_metrics(doc, path: str = "") -> dict[str, float]:
    """Flatten one bench document to ``{metric_path: value}``.

    Only numeric leaves with throughput-looking keys survive.  Lists of
    dicts are keyed by identity fields; anonymous lists by index (their
    order is assumed stable, which holds for the repo's artifacts).
    """
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for k, v in sorted(doc.items()):
            sub = f"{path}.{k}" if path else k
            if isinstance(v, (dict, list)):
                out.update(extract_metrics(v, sub))
            elif isinstance(v, (int, float)) and not isinstance(v, bool):
                if THROUGHPUT_RE.search(k) or LOWER_BETTER_RE.search(k):
                    out[sub] = float(v)
    elif isinstance(doc, list):
        for i, item in enumerate(doc):
            key = _row_key(item)
            sub = f"{path}[{key if key is not None else i}]"
            out.update(extract_metrics(item, sub))
    return out


def load_dir(d: pathlib.Path) -> dict[str, dict[str, float]]:
    """``{file_stem: metrics}`` for every ``*.json`` bench doc in ``d``."""
    out = {}
    for f in sorted(d.glob("*.json")):
        try:
            doc = json.loads(f.read_text())
        except json.JSONDecodeError as e:
            print(f"warning: {f} is not valid JSON ({e}); skipped", file=sys.stderr)
            continue
        out[f.stem] = extract_metrics(doc)
    return out


def compare(
    baseline: dict[str, dict[str, float]],
    current: dict[str, dict[str, float]],
    threshold: float,
    relative_only: bool,
) -> tuple[list[tuple], list[tuple], int]:
    """Returns ``(regressions, improvements, compared_count)``.

    A throughput metric regresses when ``current < baseline * (1 -
    threshold)``; a lower-is-better metric (``amplification``) regresses
    when ``current > baseline * (1 + threshold)``.  Metrics present on
    only one side are reported as warnings by the caller, not failures —
    benches come and go across PRs.
    """
    regressions, improvements = [], []
    compared = 0
    for bench in sorted(set(baseline) & set(current)):
        base_m, cur_m = baseline[bench], current[bench]
        for key in sorted(set(base_m) & set(cur_m)):
            leaf = key.rsplit(".", 1)[-1]
            if relative_only and not RELATIVE_RE.search(leaf):
                continue
            b, c = base_m[key], cur_m[key]
            if b <= 0:
                continue
            compared += 1
            ratio = c / b
            if LOWER_BETTER_RE.search(leaf):
                ratio = b / c if c > 0 else 0.0  # invert: growth regresses
            if ratio < 1.0 - threshold:
                regressions.append((bench, key, b, c, ratio))
            elif ratio > 1.0 + threshold:
                improvements.append((bench, key, b, c, ratio))
    return regressions, improvements, compared


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline", required=True, type=pathlib.Path)
    ap.add_argument("--current", required=True, type=pathlib.Path)
    ap.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="fractional drop that fails the gate (default 0.20 = 20%%)",
    )
    ap.add_argument(
        "--relative-only",
        action="store_true",
        help="compare only dimensionless metrics (speedups/ratios) — "
        "use when baseline and current ran on different machines",
    )
    args = ap.parse_args(argv)

    for d in (args.baseline, args.current):
        if not d.is_dir():
            print(f"error: {d} is not a directory", file=sys.stderr)
            return 2
    base = load_dir(args.baseline)
    cur = load_dir(args.current)
    if not base:
        print(f"error: no bench JSON found under {args.baseline}", file=sys.stderr)
        return 2

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))
    for b in only_base:
        print(f"warning: {b}.json in baseline but not in current run", file=sys.stderr)
    for b in only_cur:
        print(f"note: {b}.json is new (no baseline); not gated", file=sys.stderr)

    regressions, improvements, compared = compare(
        base, cur, args.threshold, args.relative_only
    )
    mode = "relative metrics only" if args.relative_only else "all throughput metrics"
    print(
        f"compared {compared} metrics across {len(set(base) & set(cur))} benches "
        f"({mode}, threshold {args.threshold:.0%})"
    )
    for bench, key, b, c, ratio in improvements:
        print(f"  improved  {bench} :: {key}: {b:g} -> {c:g} ({ratio - 1:+.1%})")
    for bench, key, b, c, ratio in regressions:
        print(f"  REGRESSED {bench} :: {key}: {b:g} -> {c:g} ({ratio - 1:+.1%})")
    if regressions:
        print(f"FAIL: {len(regressions)} metric(s) regressed beyond {args.threshold:.0%}")
        return 1
    if compared == 0:
        print("warning: nothing compared — check directories/flags", file=sys.stderr)
    print("OK: no throughput regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
