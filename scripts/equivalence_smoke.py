"""Bulk-vs-scalar pipeline *and read-path* equivalence smoke (run by CI).

Write side: runs one epoch per format with the vectorized pipeline
(``bulk=True``) and the per-record reference (``bulk=False``) from the
same seed and asserts they are indistinguishable:

* identical ClusterStats (records, messages, shuffled/stored bytes),
* byte-identical persisted extents — tables, value logs, spilled runs,
  and aux-table blobs alike,
* identical wire-byte counters, matching the formats' exact per-record
  wire widths (base 8+V, dataptr 16, filterkv 8 bytes/record).

Read side: over the bulk-written epoch, answers a mixed present/absent
query set with the scalar loop (``engine.get`` per key) and the batch
path (``engine.get_many``) and asserts byte-identical values, identical
per-key found/partitions_searched, identical probe counters, and batch
device reads no higher than the scalar loop's.

Exit code 0 = equivalent; any assertion failure = a bulk path drifted.
"""

import dataclasses
import sys

import numpy as np

from repro.cluster.simcluster import SimCluster
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import KEY_BYTES
from repro.core.reader import CachedQueryEngine
from repro.obs import MetricsRegistry

NRANKS = 8
RECORDS_PER_RANK = 2000
VALUE_BYTES = 56
SEED = 7


def extents(device):
    out = {}
    for name in sorted(device._files):
        f = device.open(name)
        out[name] = f.read(0, f.size)
    return out


def run(fmt, spill, bulk):
    cluster = SimCluster(
        nranks=NRANKS,
        fmt=fmt,
        value_bytes=VALUE_BYTES,
        records_hint=NRANKS * RECORDS_PER_RANK,
        seed=SEED,
        spill_budget_bytes=spill,
        bulk=bulk,
        metrics=MetricsRegistry(),
    )
    stats = cluster.run_epoch(RECORDS_PER_RANK)
    return cluster, stats


def wire_bytes_per_record(fmt):
    if fmt.name == "base":
        return KEY_BYTES + VALUE_BYTES
    if fmt.name == "dataptr":
        return KEY_BYTES + 8
    return KEY_BYTES


READ_COUNTERS = (
    "reader.queries",
    "reader.hits",
    "reader.partitions_probed",
    "reader.candidates",
    "aux.probes",
    "aux.candidates",
)


def reader_engine(cluster, cached, metrics):
    cold = cluster.query_engine()
    cls = CachedQueryEngine if cached else type(cold)
    return cls(
        device=cold.device,
        fmt=cold.fmt,
        nranks=cold.nranks,
        partitioner=cold.partitioner,
        aux_tables=cold.aux_tables,
        epoch=cold.epoch,
        metrics=metrics,
    )


def check_read_path(fmt, cluster):
    """Scalar get loop vs get_many over the same mixed query set."""
    rng = np.random.default_rng(SEED + 1)
    stored = np.concatenate(
        [np.asarray(kv, dtype=np.uint64) for kv in _stored_keys(cluster)]
    )
    present = rng.choice(stored, size=600, replace=True)
    absent = rng.integers(1 << 48, 1 << 49, size=80, dtype=np.uint64)
    keys = np.concatenate([present, absent])
    rng.shuffle(keys)
    for cached in (False, True):
        m_s, m_b = MetricsRegistry(), MetricsRegistry()
        scalar = reader_engine(cluster, cached, m_s)
        bulk = reader_engine(cluster, cached, m_b)
        dev = cluster.device
        before = dev.counters.snapshot()
        s_out = [scalar.get(int(k)) for k in keys]
        s_io = dev.counters.delta(before)
        before = dev.counters.snapshot()
        b_vals, b_stats = bulk.get_many(keys)
        b_io = dev.counters.delta(before)
        scalar.close()
        bulk.close()
        assert b_vals == [v for v, _ in s_out], (fmt.name, cached, "values")
        assert [s.found for s in b_stats] == [s.found for _, s in s_out]
        assert [s.partitions_searched for s in b_stats] == [
            s.partitions_searched for _, s in s_out
        ], (fmt.name, cached)
        for name in READ_COUNTERS:
            assert m_b.total(name) == m_s.total(name), (fmt.name, cached, name)
        assert b_io.reads <= s_io.reads, (fmt.name, cached, b_io.reads, s_io.reads)
        label = "cached" if cached else "cold"
        print(
            f"{fmt.name:10s} read/{label}: OK ({len(keys)} queries, "
            f"reads {s_io.reads} -> {b_io.reads})"
        )


def _stored_keys(cluster):
    for rank in range(cluster.nranks):
        from repro.core.pipeline import main_table_name
        from repro.storage.sstable import SSTableReader

        with SSTableReader(cluster.device, main_table_name(0, rank)) as r:
            yield [k for k, _ in r.scan()]


def main():
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        for spill in (None, 4096):
            if spill is not None and fmt.name != "filterkv":
                continue  # only the filterkv writer buffers KVs locally
            (cb, sb), (cs, ss) = run(fmt, spill, True), run(fmt, spill, False)

            db, ds = dataclasses.asdict(sb), dataclasses.asdict(ss)
            for k in db:
                assert db[k] == ds[k], (fmt.name, spill, k, db[k], ds[k])

            eb, es = extents(cb.device), extents(cs.device)
            assert eb.keys() == es.keys(), (fmt.name, spill)
            bad = [n for n in eb if eb[n] != es[n]]
            assert not bad, (fmt.name, spill, bad)

            expected = sb.records * wire_bytes_per_record(fmt)
            wb = cb.metrics.total("pipeline.wire_bytes")
            ws = cs.metrics.total("pipeline.wire_bytes")
            assert wb == ws == expected, (fmt.name, spill, wb, ws, expected)

            print(f"{fmt.name:10s} spill={spill}: OK "
                  f"({sb.records} records, {int(wb)} wire bytes)")
            if spill is None:
                check_read_path(fmt, cb)
    print("bulk-vs-scalar equivalence: ALL OK")


if __name__ == "__main__":
    sys.exit(main())
