"""Bulk-vs-scalar pipeline equivalence smoke (run by CI).

Runs one epoch per format with the vectorized pipeline (``bulk=True``)
and the per-record reference (``bulk=False``) from the same seed and
asserts they are indistinguishable:

* identical ClusterStats (records, messages, shuffled/stored bytes),
* byte-identical persisted extents — tables, value logs, spilled runs,
  and aux-table blobs alike,
* identical wire-byte counters, matching the formats' exact per-record
  wire widths (base 8+V, dataptr 16, filterkv 8 bytes/record).

Exit code 0 = equivalent; any assertion failure = the bulk path drifted.
"""

import dataclasses
import sys

from repro.cluster.simcluster import SimCluster
from repro.core.formats import FMT_BASE, FMT_DATAPTR, FMT_FILTERKV
from repro.core.kv import KEY_BYTES
from repro.obs import MetricsRegistry

NRANKS = 8
RECORDS_PER_RANK = 2000
VALUE_BYTES = 56
SEED = 7


def extents(device):
    out = {}
    for name in sorted(device._files):
        f = device.open(name)
        out[name] = f.read(0, f.size)
    return out


def run(fmt, spill, bulk):
    cluster = SimCluster(
        nranks=NRANKS,
        fmt=fmt,
        value_bytes=VALUE_BYTES,
        records_hint=NRANKS * RECORDS_PER_RANK,
        seed=SEED,
        spill_budget_bytes=spill,
        bulk=bulk,
        metrics=MetricsRegistry(),
    )
    stats = cluster.run_epoch(RECORDS_PER_RANK)
    return cluster, stats


def wire_bytes_per_record(fmt):
    if fmt.name == "base":
        return KEY_BYTES + VALUE_BYTES
    if fmt.name == "dataptr":
        return KEY_BYTES + 8
    return KEY_BYTES


def main():
    for fmt in (FMT_BASE, FMT_DATAPTR, FMT_FILTERKV):
        for spill in (None, 4096):
            if spill is not None and fmt.name != "filterkv":
                continue  # only the filterkv writer buffers KVs locally
            (cb, sb), (cs, ss) = run(fmt, spill, True), run(fmt, spill, False)

            db, ds = dataclasses.asdict(sb), dataclasses.asdict(ss)
            for k in db:
                assert db[k] == ds[k], (fmt.name, spill, k, db[k], ds[k])

            eb, es = extents(cb.device), extents(cs.device)
            assert eb.keys() == es.keys(), (fmt.name, spill)
            bad = [n for n in eb if eb[n] != es[n]]
            assert not bad, (fmt.name, spill, bad)

            expected = sb.records * wire_bytes_per_record(fmt)
            wb = cb.metrics.total("pipeline.wire_bytes")
            ws = cs.metrics.total("pipeline.wire_bytes")
            assert wb == ws == expected, (fmt.name, spill, wb, ws, expected)

            print(f"{fmt.name:10s} spill={spill}: OK "
                  f"({sb.records} records, {int(wb)} wire bytes)")
    print("bulk-vs-scalar equivalence: ALL OK")


if __name__ == "__main__":
    sys.exit(main())
