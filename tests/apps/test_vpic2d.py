"""Unit tests for the 2-D VPIC decomposition."""

import numpy as np
import pytest

from repro.apps.vpic import VPICSimulation, VPICSimulation2D
from repro.cluster import SimCluster
from repro.core import FMT_FILTERKV


def test_grid_and_record_shape():
    sim = VPICSimulation2D(px=4, py=3, particles_per_rank=100, seed=1)
    assert sim.nranks == 12
    dumps = sim.dump()
    assert len(dumps) == 12
    assert all(b.record_bytes == 64 for b in dumps)
    assert sum(len(b) for b in dumps) == sim.nparticles


def test_owners_cover_grid():
    sim = VPICSimulation2D(px=3, py=3, particles_per_rank=500, seed=2)
    sim.step(10)
    owners = sim.owner_of()
    assert owners.min() >= 0 and owners.max() < 9
    assert len(np.unique(owners)) == 9  # all domains populated


def test_2d_migration_faster_than_1d():
    """Two migration axes: more owner churn per step at equal drift."""
    one = VPICSimulation(nranks=16, particles_per_rank=800, drift=0.08, seed=3)
    two = VPICSimulation2D(px=4, py=4, particles_per_rank=800, drift=0.08, seed=3)
    b1, b2 = one.owner_of(), two.owner_of()
    one.step(4)
    two.step(4)
    assert two.migration_fraction(b2) > one.migration_fraction(b1)


def test_rotation_conserves_population():
    sim = VPICSimulation2D(px=2, py=2, particles_per_rank=300, drift=0.3, seed=4)
    n = sim.nparticles
    sim.step(30)
    assert sim.nparticles == n
    assert np.isfinite(sim.x).all() and np.isfinite(sim.vy).all()
    assert (0 <= sim.x).all() and (sim.x < 2).all()
    assert (0 <= sim.y).all() and (sim.y < 2).all()


def test_determinism():
    a = VPICSimulation2D(2, 3, 50, seed=5)
    b = VPICSimulation2D(2, 3, 50, seed=5)
    a.step(3)
    b.step(3)
    for x, y in zip(a.dump(), b.dump()):
        assert np.array_equal(x.keys, y.keys)
        assert np.array_equal(x.values, y.values)


def test_feeds_simcluster():
    sim = VPICSimulation2D(px=2, py=2, particles_per_rank=500, seed=6)
    sim.step(2)
    cluster = SimCluster(nranks=4, fmt=FMT_FILTERKV, value_bytes=56, records_hint=2000)
    for rank, batch in enumerate(sim.dump()):
        cluster.put(rank, batch)
    cluster.finish_epoch()
    target = int(sim.ids[7])
    value, qs = cluster.query_engine().get(target)
    assert qs.found
    state = np.frombuffer(value, dtype="<f4")
    assert state[4] == sim.timestep  # timestep field round-trips


def test_validation():
    with pytest.raises(ValueError):
        VPICSimulation2D(1, 1, 10)
    with pytest.raises(ValueError):
        VPICSimulation2D(2, 2, 0)
    with pytest.raises(ValueError):
        VPICSimulation2D(2, 2, 1, drift=-0.1)
