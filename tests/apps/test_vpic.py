"""Unit tests for the reduced VPIC workload."""

import numpy as np
import pytest

from repro.apps.vpic import PARTICLE_BYTES, PARTICLE_VALUE_BYTES, VPICSimulation


def test_particle_record_is_64_bytes():
    sim = VPICSimulation(nranks=4, particles_per_rank=100, seed=1)
    dumps = sim.dump()
    assert all(b.record_bytes == PARTICLE_BYTES == 64 for b in dumps)
    assert PARTICLE_VALUE_BYTES == 56


def test_dump_covers_every_particle_exactly_once():
    sim = VPICSimulation(nranks=8, particles_per_rank=500, seed=2)
    sim.step(3)
    dumps = sim.dump()
    total = sum(len(b) for b in dumps)
    assert total == sim.nparticles
    all_ids = np.concatenate([b.keys for b in dumps])
    assert len(np.unique(all_ids)) == sim.nparticles


def test_particles_migrate_between_dumps():
    """The paper's core premise: per-particle state ends up in multiple
    processes' output files over time."""
    sim = VPICSimulation(nranks=8, particles_per_rank=1000, drift=0.1, seed=3)
    before = sim.owner_of()
    sim.step(5)
    frac = sim.migration_fraction(before)
    assert 0.02 < frac < 0.9


def test_zero_drift_means_no_migration():
    sim = VPICSimulation(nranks=4, particles_per_rank=100, drift=0.0, seed=4)
    before = sim.owner_of()
    sim.step(10)
    assert sim.migration_fraction(before) == 0.0


def test_deterministic_given_seed():
    a = VPICSimulation(nranks=4, particles_per_rank=50, seed=5)
    b = VPICSimulation(nranks=4, particles_per_rank=50, seed=5)
    a.step(4)
    b.step(4)
    da, db = a.dump(), b.dump()
    for x, y in zip(da, db):
        assert np.array_equal(x.keys, y.keys)
        assert np.array_equal(x.values, y.values)


def test_ids_have_high_entropy():
    sim = VPICSimulation(nranks=2, particles_per_rank=1000, seed=6)
    assert len(np.unique(sim.ids)) == sim.nparticles
    # Scrambled IDs: consecutive particles are far apart in key space.
    assert np.abs(np.diff(sim.ids.astype(np.float64))).min() > 1


def test_owner_in_range_after_many_steps():
    sim = VPICSimulation(nranks=6, particles_per_rank=100, drift=0.5, seed=7)
    sim.step(50)
    owners = sim.owner_of()
    assert owners.min() >= 0 and owners.max() < 6


def test_find_particle():
    sim = VPICSimulation(nranks=2, particles_per_rank=10, seed=8)
    idx = sim.find_particle(int(sim.ids[7]))
    assert idx == 7
    with pytest.raises(KeyError):
        sim.find_particle(1)


def test_validation():
    with pytest.raises(ValueError):
        VPICSimulation(nranks=1, particles_per_rank=10)
    with pytest.raises(ValueError):
        VPICSimulation(nranks=2, particles_per_rank=0)
    with pytest.raises(ValueError):
        VPICSimulation(nranks=2, particles_per_rank=1, drift=-1)


def test_timestep_counter():
    sim = VPICSimulation(nranks=2, particles_per_rank=1)
    sim.step(7)
    assert sim.timestep == 7
