"""Unit tests for synthetic workload generators."""

import numpy as np
import pytest

from repro.apps.workloads import (
    microbench_stream,
    sequential_batches,
    uniform_batches,
    zipf_batches,
)


def test_uniform_batches_shapes_and_determinism():
    a = list(uniform_batches(3, 100, 24, seed=1))
    b = list(uniform_batches(3, 100, 24, seed=1))
    assert len(a) == 3
    for x, y in zip(a, b):
        assert len(x) == 100 and x.value_bytes == 24
        assert np.array_equal(x.keys, y.keys)


def test_uniform_batches_differ_across_stream():
    a, b, c = uniform_batches(3, 50, 8, seed=2)
    assert not np.array_equal(a.keys, b.keys)
    assert not np.array_equal(b.keys, c.keys)


def test_zipf_skew_creates_duplicates():
    (batch,) = zipf_batches(1, 20_000, 8, a=1.2, seed=3)
    nunique = len(np.unique(batch.keys))
    assert nunique < 0.7 * len(batch)  # heavy repetition


def test_zipf_validates_exponent():
    with pytest.raises(ValueError):
        list(zipf_batches(1, 10, 8, a=1.0))


def test_sequential_batches_are_monotone():
    batches = list(sequential_batches(3, 100, 8, start=1000))
    keys = np.concatenate([b.keys for b in batches])
    assert np.array_equal(keys, np.arange(1000, 1300, dtype=np.uint64))


def test_microbench_stream_total_records():
    batches = list(microbench_stream(rank=2, records=10_000, value_bytes=56, batch_records=4096))
    assert sum(len(b) for b in batches) == 10_000
    assert [len(b) for b in batches] == [4096, 4096, 1808]


def test_microbench_stream_rank_independence():
    a = next(iter(microbench_stream(0, 100, 8, seed=1)))
    b = next(iter(microbench_stream(1, 100, 8, seed=1)))
    assert not np.array_equal(a.keys, b.keys)
