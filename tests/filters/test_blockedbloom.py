"""Unit tests for the blocked Bloom filter."""

import numpy as np
import pytest

from repro.filters.blockedbloom import BlockedBloomFilter
from repro.filters.bloom import BloomFilter


def _rand(n, seed=0, lo=0, hi=2**62):
    return np.random.default_rng(seed).integers(lo, hi, size=n, dtype=np.uint64)


def test_no_false_negatives():
    keys = _rand(50_000, seed=1)
    f = BlockedBloomFilter.from_bits_per_key(keys.size, 10)
    f.add_many(keys)
    assert f.contains_many(keys).all()


def test_fpr_worse_than_standard_but_same_ballpark():
    """Blocking costs some fpr (uneven block loading) at equal bits/key."""
    keys = _rand(100_000, seed=2)
    probes = _rand(200_000, seed=3, lo=2**62, hi=2**63)
    blocked = BlockedBloomFilter.from_bits_per_key(keys.size, 10, seed=5)
    plain = BloomFilter.from_bits_per_key(keys.size, 10, seed=5)
    blocked.add_many(keys)
    plain.add_many(keys)
    fpr_blocked = blocked.contains_many(probes).mean()
    fpr_plain = plain.contains_many(probes).mean()
    assert fpr_plain < fpr_blocked < 8 * fpr_plain
    assert fpr_blocked < 0.02


def test_single_item_api():
    f = BlockedBloomFilter(16, 6)
    assert 42 not in f
    f.add(42)
    assert 42 in f
    assert len(f) == 1


def test_empty_batches():
    f = BlockedBloomFilter(4, 3)
    f.add_many(np.zeros(0, dtype=np.uint64))
    assert f.contains_many(np.zeros(0, dtype=np.uint64)).shape == (0,)


def test_size_accounting():
    f = BlockedBloomFilter(10, 4)
    assert f.size_bytes == 10 * 64
    assert f.cache_lines_per_query == 1


def test_validation():
    with pytest.raises(ValueError):
        BlockedBloomFilter(0, 3)
    with pytest.raises(ValueError):
        BlockedBloomFilter(4, 0)
    with pytest.raises(ValueError):
        BlockedBloomFilter.from_bits_per_key(0, 8)


def test_probes_confined_to_one_block():
    f = BlockedBloomFilter(64, 8, seed=9)
    keys = _rand(1000, seed=4)
    words, _ = f._positions(keys)
    blocks = words // 8
    assert (blocks == blocks[:, :1]).all()  # every probe in the key's block
