"""Property-based tests (hypothesis) for the XorMaplet compressed static
function.

Invariants:

* every inserted key recovers its exact value (a CSF has no false
  negatives *and* no wrong answers for present keys), across seeds,
  sizes, and value widths;
* construction retries deterministically until a peelable seed is found,
  and `from_state` with the settled seed reproduces lookups bit-for-bit;
* duplicate keys are rejected (a static function maps each key once);
* the out-of-set false-candidate (guard escape) rate stays within 2x the
  analytic bound 2^-fp_bits — quick check inline, a tighter large-sample
  measurement under ``-m slow``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.csf import CsfConstructionError, XorMaplet

unique_keys = st.lists(
    st.integers(min_value=0, max_value=2**63 - 1),
    min_size=1,
    max_size=300,
    unique=True,
)


@given(
    keys=unique_keys,
    value_bits=st.integers(min_value=1, max_value=16),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=40, deadline=None)
def test_exact_value_recovery(keys, value_bits, seed):
    arr = np.asarray(keys, dtype=np.uint64)
    vals = (arr % np.uint64(1 << value_bits)).astype(np.uint64)
    m = XorMaplet(arr, vals, value_bits=value_bits, fp_bits=6, seed=seed)
    hits, out = m.lookup_many(arr)
    assert hits.all(), "present key missed the fingerprint guard"
    np.testing.assert_array_equal(out, vals)
    for k, v in zip(arr[:20], vals[:20]):
        assert m.get(int(k)) == int(v)
        assert int(k) in m


@given(keys=unique_keys, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=30, deadline=None)
def test_from_state_round_trip(keys, seed):
    arr = np.asarray(keys, dtype=np.uint64)
    vals = (arr % np.uint64(8)).astype(np.uint64)
    m = XorMaplet(arr, vals, value_bits=3, fp_bits=5, seed=seed)
    # m.seed is the *settled* seed after any retries — from_state must not
    # replay the retry loop.
    n = XorMaplet.from_state(
        m._slots.copy(), len(m), value_bits=3, fp_bits=5, seed=m.seed
    )
    probes = np.concatenate([arr, np.arange(2**40, 2**40 + 200, dtype=np.uint64)])
    h1, v1 = m.lookup_many(probes)
    h2, v2 = n.lookup_many(probes)
    np.testing.assert_array_equal(h1, h2)
    np.testing.assert_array_equal(v1, v2)
    assert n.size_bytes == m.size_bytes


@given(seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=25, deadline=None)
def test_construction_deterministic(seed):
    rng = np.random.default_rng(seed % 1000)
    keys = rng.choice(np.arange(10_000, dtype=np.uint64), size=500, replace=False)
    vals = (keys % np.uint64(16)).astype(np.uint64)
    a = XorMaplet(keys, vals, value_bits=4, fp_bits=4, seed=seed)
    b = XorMaplet(keys, vals, value_bits=4, fp_bits=4, seed=seed)
    assert a.seed == b.seed and a.tries == b.tries
    np.testing.assert_array_equal(a._slots, b._slots)


def test_duplicate_keys_rejected():
    keys = np.asarray([1, 2, 3, 2], dtype=np.uint64)
    vals = np.asarray([0, 1, 2, 1], dtype=np.uint64)
    with pytest.raises(ValueError, match="duplicate"):
        XorMaplet(keys, vals, value_bits=2, fp_bits=4)


def test_value_too_wide_rejected():
    keys = np.asarray([1, 2, 3], dtype=np.uint64)
    with pytest.raises(ValueError):
        XorMaplet(keys, np.asarray([0, 1, 4], dtype=np.uint64), value_bits=2, fp_bits=4)


def test_empty_rejected():
    with pytest.raises(ValueError):
        XorMaplet(
            np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.uint64), value_bits=2
        )


def test_retry_exhaustion_raises():
    keys = np.arange(1, 200, dtype=np.uint64)
    vals = keys % np.uint64(4)
    with pytest.raises(CsfConstructionError):
        XorMaplet(keys, vals, value_bits=2, fp_bits=4, max_tries=0)


def test_retry_seed_stride():
    # With max_tries > 1 some seed must settle; the settled seed is always
    # seed + k * stride for the k-th attempt, so tries and seed agree.
    keys = np.arange(1, 400, dtype=np.uint64)
    vals = keys % np.uint64(8)
    m = XorMaplet(keys, vals, value_bits=3, fp_bits=4, seed=123, max_tries=32)
    assert m.tries >= 1
    assert m.seed == 123 + (m.tries - 1) * 0x9E37


def _guard_escape_rate(nkeys, nprobes, fp_bits, seed):
    rng = np.random.default_rng(seed)
    keys = rng.choice(
        np.arange(1, 10 * nkeys, dtype=np.uint64), size=nkeys, replace=False
    )
    vals = (keys % np.uint64(4)).astype(np.uint64)
    m = XorMaplet(keys, vals, value_bits=2, fp_bits=fp_bits, seed=seed)
    absent = np.setdiff1d(
        rng.integers(10 * nkeys, 100 * nkeys, size=nprobes, dtype=np.uint64), keys
    )
    hits, _ = m.lookup_many(absent)
    return hits.mean(), absent.size


@pytest.mark.parametrize("fp_bits", [4, 6])
def test_false_candidate_rate_quick(fp_bits):
    rate, n = _guard_escape_rate(2_000, 30_000, fp_bits, seed=5)
    bound = 2.0**-fp_bits
    # 2x the analytic bound, with a small-sample allowance of 3 sigma.
    sigma = (bound / n) ** 0.5
    assert rate <= 2 * bound + 3 * sigma, (rate, bound)


@pytest.mark.slow
@pytest.mark.parametrize("fp_bits", [2, 4, 8])
def test_false_candidate_rate_full(fp_bits):
    rates = [
        _guard_escape_rate(20_000, 200_000, fp_bits, seed=s)[0] for s in range(3)
    ]
    bound = 2.0**-fp_bits
    assert max(rates) <= 2 * bound, (rates, bound)
