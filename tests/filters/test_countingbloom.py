"""Unit tests for the counting Bloom filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.filters.countingbloom import CountingBloomFilter


def _rand(n, seed=0, lo=0, hi=2**62):
    return np.random.default_rng(seed).integers(lo, hi, size=n, dtype=np.uint64)


def test_no_false_negatives():
    keys = _rand(20_000, seed=1)
    f = CountingBloomFilter.from_slots_per_key(keys.size, 10)
    f.add_many(keys)
    assert f.contains_many(keys).all()


def test_remove_restores_absence():
    f = CountingBloomFilter(1024, 4)
    f.add(42)
    assert 42 in f
    assert f.remove(42)
    assert 42 not in f
    assert len(f) == 0


def test_remove_absent_is_noop():
    f = CountingBloomFilter(1024, 4)
    f.add(1)
    before = f._counts.copy()
    assert not f.remove(999_999)
    assert np.array_equal(f._counts, before)


def test_duplicates_counted():
    f = CountingBloomFilter(1024, 4)
    f.add(7)
    f.add(7)
    assert f.remove(7)
    assert 7 in f  # one copy remains
    assert f.remove(7)
    assert 7 not in f


def test_removal_does_not_hurt_other_keys():
    keys = _rand(5_000, seed=2)
    f = CountingBloomFilter.from_slots_per_key(keys.size, 12)
    f.add_many(keys)
    for k in keys[:500]:
        f.remove(int(k))
    assert f.contains_many(keys[500:]).all()  # survivors intact


def test_fpr_comparable_to_plain_bloom():
    keys = _rand(30_000, seed=3)
    probes = _rand(100_000, seed=4, lo=2**62, hi=2**63)
    f = CountingBloomFilter.from_slots_per_key(keys.size, 10)
    f.add_many(keys)
    assert f.contains_many(probes).mean() < 0.02


def test_bulk_add_matches_scalar():
    keys = _rand(300, seed=5)
    a = CountingBloomFilter(4096, 5, seed=1)
    b = CountingBloomFilter(4096, 5, seed=1)
    a.add_many(keys)
    for k in keys:
        b.add(int(k))
    assert np.array_equal(a._counts, b._counts)


def test_size_is_4x_bloom():
    # One byte per slot vs one bit: the cost of deletion.
    f = CountingBloomFilter(8000, 4)
    assert f.size_bytes == 8000


def test_validation():
    with pytest.raises(ValueError):
        CountingBloomFilter(0, 4)
    with pytest.raises(ValueError):
        CountingBloomFilter(8, 0)
    with pytest.raises(ValueError):
        CountingBloomFilter.from_slots_per_key(0)


@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=30)),
        min_size=1,
        max_size=120,
    )
)
@settings(max_examples=40, deadline=None)
def test_multiset_reference_property(ops):
    f = CountingBloomFilter(2048, 4)
    ref: dict[int, int] = {}
    for is_add, key in ops:
        if is_add:
            f.add(key)
            ref[key] = ref.get(key, 0) + 1
        elif ref.get(key, 0) > 0:
            assert f.remove(key)
            ref[key] -= 1
    for key, count in ref.items():
        if count > 0:
            assert key in f
