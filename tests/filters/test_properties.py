"""Property-based tests (hypothesis) for the filter substrate.

Invariants:

* no filter ever produces a false negative;
* cuckoo tables preserve multiset semantics under insert/delete;
* the chained table finds every inserted (key, value) pair regardless of
  insertion order, chunking, or duplicate keys;
* serialization round-trips preserve query behaviour.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.auxtable import bloom_bits_per_key
from repro.filters.bloom import BloomFilter, false_positive_rate
from repro.filters.cuckoo import ChainedCuckooTable, PartialKeyCuckooTable
from repro.filters.cuckoofilter import CuckooFilter
from repro.filters.quotient import QuotientFilter

keys_strategy = st.lists(
    st.integers(min_value=0, max_value=2**63 - 1), min_size=1, max_size=300
)


@given(keys=keys_strategy, bpk=st.integers(min_value=4, max_value=20))
@settings(max_examples=40, deadline=None)
def test_bloom_never_false_negative(keys, bpk):
    arr = np.asarray(keys, dtype=np.uint64)
    f = BloomFilter.from_bits_per_key(len(keys), bpk)
    f.add_many(arr)
    assert f.contains_many(arr).all()


@given(keys=keys_strategy, seed=st.integers(min_value=0, max_value=2**31))
@settings(max_examples=40, deadline=None)
def test_bloom_serialization_preserves_answers(keys, seed):
    arr = np.asarray(keys, dtype=np.uint64)
    f = BloomFilter.from_bits_per_key(len(keys), 12, seed=seed)
    f.add_many(arr)
    g = BloomFilter.from_bytes(f.to_bytes(), f.nhashes, seed=seed)
    probes = np.arange(500, dtype=np.uint64)
    assert np.array_equal(f.contains_many(probes), g.contains_many(probes))
    assert g.contains_many(arr).all()


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=2**63 - 1), min_size=1, max_size=200, unique=True
    ),
    fp_bits=st.integers(min_value=4, max_value=16),
)
@settings(max_examples=40, deadline=None)
def test_cuckoo_finds_all_inserted_values(keys, fp_bits):
    arr = np.asarray(keys, dtype=np.uint64)
    vals = (arr % np.uint64(251)).astype(np.uint32)
    t = ChainedCuckooTable(fp_bits=fp_bits, value_bits=8, min_buckets=4)
    t.insert_many(arr, vals)
    assert len(t) == len(keys)
    for k, v in zip(arr[:50], vals[:50]):
        assert int(v) in t.candidate_values(int(k))


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=2**63 - 1), min_size=2, max_size=120, unique=True
    ),
    split=st.integers(min_value=1, max_value=119),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_cuckoo_chunked_inserts_equivalent(keys, split, seed):
    """Feeding keys in two chunks answers the same as one bulk insert."""
    split = min(split, len(keys) - 1)
    arr = np.asarray(keys, dtype=np.uint64)
    a = ChainedCuckooTable(fp_bits=12, value_bits=8, min_buckets=4, seed=seed)
    a.insert_many(arr, 7)
    b = ChainedCuckooTable(fp_bits=12, value_bits=8, min_buckets=4, seed=seed)
    b.insert_many(arr[:split], 7)
    b.insert_many(arr[split:], 7)
    for k in arr:
        assert 7 in b.candidate_values(int(k))
        assert a.contains(int(k)) and b.contains(int(k))


@given(
    nkeys=st.integers(min_value=150, max_value=600),
    seed=st.integers(min_value=0, max_value=2**31),
    split=st.integers(min_value=1, max_value=149),
)
@settings(max_examples=25, deadline=None)
def test_chained_cuckoo_matches_dict_oracle_across_growth(nkeys, seed, split):
    """Insert/query equivalence against a plain dict oracle, with the first
    physical table deliberately undersized so every run crosses at least
    one growth boundary (keys straddle the table chain)."""
    rng = np.random.default_rng(seed)
    keys = rng.choice(np.uint64(1) << np.uint64(62), size=nkeys, replace=False)
    vals = rng.integers(0, 256, size=nkeys).astype(np.uint32)
    oracle = {int(k): int(v) for k, v in zip(keys, vals)}
    t = ChainedCuckooTable(fp_bits=12, value_bits=8, min_buckets=4, seed=seed)
    # Mixed ingestion: a bulk chunk, then scalar inserts for the rest.
    t.insert_many(keys[:split], vals[:split])
    for k, v in zip(keys[split:], vals[split:]):
        t.insert(int(k), int(v))
    assert len(t.tables) >= 2, "growth boundary never crossed"
    assert len(t) == nkeys
    for k, v in oracle.items():
        # The oracle's value must be among the candidates (partial-key
        # tables may return extra candidates, never miss the real one).
        assert v in t.candidate_values(k)
    counts = t.candidate_counts(keys)
    assert (counts >= 1).all()


@given(
    nparts=st.sampled_from([16, 64, 256]),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=10, deadline=None)
def test_bloom_fpr_within_2x_analytic_bound(nparts, seed):
    """At the paper's ``4 + log2(N)`` bits-per-key budget, the measured
    false-positive rate over disjoint probe keys stays within 2x of the
    analytic ``(1 - e^(-kn/m))^k`` rate."""
    bpk = bloom_bits_per_key(nparts)
    analytic = false_positive_rate(bpk)
    rng = np.random.default_rng(seed)
    universe = rng.choice(np.uint64(1) << np.uint64(62), size=12_000, replace=False)
    members, probes = universe[:4000], universe[4000:]
    f = BloomFilter.from_bits_per_key(len(members), bpk, seed=seed)
    f.add_many(members)
    measured = float(f.contains_many(probes).mean())
    assert measured <= 2.0 * analytic, (
        f"nparts={nparts}: measured FPR {measured:.4f} exceeds "
        f"2x analytic {analytic:.4f}"
    )
    assert f.contains_many(members).all()  # and still no false negatives


@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=0, max_value=50)),
        min_size=1,
        max_size=150,
    )
)
@settings(max_examples=40, deadline=None)
def test_cuckoofilter_matches_multiset_reference(ops):
    """Insert/delete against a reference multiset: anything still in the
    reference must be reported present (no false negatives, ever)."""
    f = CuckooFilter(512, fp_bits=16, seed=3)
    ref: dict[int, int] = {}
    for is_add, key in ops:
        if is_add:
            f.add(key)
            ref[key] = ref.get(key, 0) + 1
        elif ref.get(key, 0) > 0:
            assert f.delete(key)
            ref[key] -= 1
    for key, count in ref.items():
        if count > 0:
            assert key in f
    assert len(f) == sum(ref.values())


@given(
    keys=st.lists(
        st.integers(min_value=0, max_value=2**62), min_size=1, max_size=60, unique=True
    ),
    qbits=st.integers(min_value=7, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_quotient_never_false_negative(keys, qbits):
    f = QuotientFilter(qbits=qbits, rbits=12)
    for k in keys:
        f.add(k)
        # Invariant holds after *every* insert, not just at the end —
        # cluster shifting must never orphan an earlier remainder.
        for seen in keys[: keys.index(k) + 1]:
            assert seen in f


@given(
    nbuckets=st.integers(min_value=1, max_value=64),
    keys=st.lists(st.integers(min_value=0, max_value=2**63 - 1), min_size=1, max_size=80),
)
@settings(max_examples=40, deadline=None)
def test_single_table_count_matches_inserts(nbuckets, keys):
    t = PartialKeyCuckooTable(nbuckets, fp_bits=8, value_bits=8, max_kicks=50)
    ok = t.insert_many(np.asarray(keys, dtype=np.uint64), 1)
    assert len(t) == int(ok.sum())
    assert len(t) <= t.capacity_slots
