"""Unit tests for the vectorized hashing primitives."""

import numpy as np
import pytest

from repro.filters.hashing import (
    double_hash_probes,
    fingerprint,
    hash64,
    hash_pair,
    splitmix64,
)


def test_splitmix64_deterministic():
    x = np.arange(100, dtype=np.uint64)
    assert np.array_equal(splitmix64(x), splitmix64(x))


def test_splitmix64_is_injective_on_sample():
    x = np.arange(1 << 16, dtype=np.uint64)
    out = splitmix64(x)
    assert len(np.unique(out)) == x.size


def test_splitmix64_scalar_matches_array():
    arr = splitmix64(np.asarray([42], dtype=np.uint64))
    assert splitmix64(42) == arr[0]


def test_splitmix64_avalanche():
    # Flipping one input bit should flip ~half the output bits on average.
    rng = np.random.default_rng(0)
    x = rng.integers(0, 2**63, size=2000, dtype=np.uint64)
    flipped = x ^ np.uint64(1)
    diff = splitmix64(x) ^ splitmix64(flipped)
    mean_bits = np.bitwise_count(diff).mean()
    assert 28 < mean_bits < 36


def test_hash64_seed_independence():
    x = np.arange(1000, dtype=np.uint64)
    a = hash64(x, seed=1)
    b = hash64(x, seed=2)
    assert not np.array_equal(a, b)
    # Correlation between the two hash streams should be negligible.
    matches = (a == b).sum()
    assert matches == 0


def test_hash_pair_sensitive_to_both_parts():
    keys = np.arange(100, dtype=np.uint64)
    assert not np.array_equal(hash_pair(keys, 1), hash_pair(keys, 2))
    assert not np.array_equal(hash_pair(keys, 1), hash_pair(keys + np.uint64(1), 1))


def test_hash_pair_deterministic_across_shapes():
    one = hash_pair(5, 7)
    many = hash_pair(np.asarray([5], dtype=np.uint64), np.asarray([7], dtype=np.uint64))
    assert one[()] == many[0]


def test_fingerprint_range_and_nonzero():
    keys = np.arange(100_000, dtype=np.uint64)
    for bits in (1, 4, 8, 16, 32):
        fp = fingerprint(keys, bits)
        assert fp.min() >= 1
        assert fp.max() <= (1 << bits) - 1


def test_fingerprint_roughly_uniform():
    keys = np.arange(160_000, dtype=np.uint64)
    fp = fingerprint(keys, 4)
    counts = np.bincount(fp, minlength=16)[1:]  # values 1..15
    expected = keys.size / 15
    assert np.all(np.abs(counts - expected) < 0.05 * expected)


def test_fingerprint_rejects_bad_width():
    with pytest.raises(ValueError):
        fingerprint(np.asarray([1], dtype=np.uint64), 0)
    with pytest.raises(ValueError):
        fingerprint(np.asarray([1], dtype=np.uint64), 33)


def test_double_hash_probes_shape_and_range():
    keys = np.arange(500, dtype=np.uint64)
    probes = double_hash_probes(keys, nprobes=7, nbits=1024)
    assert probes.shape == (500, 7)
    assert probes.min() >= 0
    assert probes.max() < 1024


def test_double_hash_probes_distinct_seeds_differ():
    keys = np.arange(100, dtype=np.uint64)
    a = double_hash_probes(keys, 4, 4096, seed=0)
    b = double_hash_probes(keys, 4, 4096, seed=1)
    assert not np.array_equal(a, b)


def test_double_hash_probes_cover_bit_space():
    keys = np.arange(20_000, dtype=np.uint64)
    probes = double_hash_probes(keys, 8, 256)
    assert len(np.unique(probes)) == 256
