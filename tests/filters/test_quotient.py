"""Unit tests for the quotient filter, including a brute-force reference."""

import numpy as np
import pytest

from repro.filters.quotient import QuotientFilter, QuotientFilterFull


def test_basic_add_contains():
    f = QuotientFilter(qbits=8, rbits=8)
    f.add(42)
    assert 42 in f
    assert len(f) == 1


def test_no_false_negatives_random():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2**63, size=3000, dtype=np.uint64)
    f = QuotientFilter(qbits=13, rbits=10)
    for k in keys:
        f.add(int(k))
    assert f.contains_many(keys).all()


def test_no_false_negatives_adversarial_clusters():
    """Sequential keys hammer the same clusters and exercise shifting."""
    f = QuotientFilter(qbits=6, rbits=12, seed=3)
    keys = list(range(40))
    for k in keys:
        f.add(k)
    for k in keys:
        assert k in f


def test_fpr_reasonable():
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 2**62, size=4000, dtype=np.uint64)
    probes = rng.integers(2**62, 2**63, size=30_000, dtype=np.uint64)
    f = QuotientFilter(qbits=13, rbits=10)
    for k in keys:
        f.add(int(k))
    measured = f.contains_many(probes).mean()
    assert measured < 4 * f.expected_fpr() + 1e-3


def test_duplicate_digests_are_set_semantics():
    f = QuotientFilter(qbits=8, rbits=8)
    f.add(7)
    f.add(7)
    assert len(f) == 1


def test_full_filter_raises():
    f = QuotientFilter(qbits=3, rbits=16, seed=5)
    with pytest.raises(QuotientFilterFull):
        for i in range(100):
            f.add(i)
    assert len(f) == f.nslots


def test_wraparound_cluster():
    """Force elements to wrap past the end of the slot array."""
    f = QuotientFilter(qbits=4, rbits=16, seed=7)
    inserted = []
    for i in range(14):  # near-full: long clusters, likely wrapping
        f.add(i)
        inserted.append(i)
        for k in inserted:
            assert k in f


def test_size_bytes():
    f = QuotientFilter(qbits=10, rbits=13)
    assert f.size_bytes == (1024 * 16 + 7) // 8


def test_invalid_params():
    with pytest.raises(ValueError):
        QuotientFilter(qbits=0, rbits=8)
    with pytest.raises(ValueError):
        QuotientFilter(qbits=8, rbits=0)
    with pytest.raises(ValueError):
        QuotientFilter(qbits=32, rbits=8)


def test_load_factor():
    f = QuotientFilter(qbits=5, rbits=8)
    for i in range(16):
        f.add(i * 7919)
    assert f.load_factor == pytest.approx(len(f) / 32)
