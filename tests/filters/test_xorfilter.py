"""Unit tests for the xor filter."""

import numpy as np
import pytest

from repro.filters.xorfilter import XorFilter


def _rand(n, seed=0, lo=0, hi=2**62):
    return np.random.default_rng(seed).integers(lo, hi, size=n, dtype=np.uint64)


def test_no_false_negatives():
    keys = _rand(50_000, seed=1)
    f = XorFilter(keys, fp_bits=8)
    assert f.contains_many(keys).all()


def test_fpr_matches_fingerprint_width():
    keys = _rand(30_000, seed=2)
    probes = _rand(200_000, seed=3, lo=2**62, hi=2**63)
    for bits in (4, 8, 12):
        f = XorFilter(keys, fp_bits=bits, seed=bits)
        measured = f.contains_many(probes).mean()
        assert measured == pytest.approx(2.0**-bits, rel=0.5, abs=2e-4)


def test_space_is_about_1p23_fp_bits():
    keys = _rand(100_000, seed=4)
    f = XorFilter(keys, fp_bits=8)
    assert 1.2 * 8 < f.bits_per_key < 1.3 * 8


def test_tiny_key_sets():
    for n in (1, 2, 3, 7):
        keys = _rand(n, seed=n + 10)
        f = XorFilter(keys, fp_bits=16)
        assert f.contains_many(keys).all()
        assert len(f) == n


def test_duplicate_keys_deduped():
    keys = np.asarray([5, 5, 9, 9, 9], dtype=np.uint64)
    f = XorFilter(keys, fp_bits=8)
    assert len(f) == 2
    assert 5 in f and 9 in f


def test_scalar_api():
    keys = _rand(100, seed=5)
    f = XorFilter(keys, fp_bits=16)
    assert int(keys[0]) in f


def test_empty_batch_query():
    f = XorFilter(_rand(10, seed=6))
    assert f.contains_many(np.zeros(0, dtype=np.uint64)).shape == (0,)


def test_validation():
    with pytest.raises(ValueError):
        XorFilter(np.zeros(0, dtype=np.uint64))
    with pytest.raises(ValueError):
        XorFilter(_rand(5), fp_bits=0)


def test_static_semantics_reproducible():
    keys = _rand(1000, seed=7)
    a = XorFilter(keys, fp_bits=8, seed=1)
    b = XorFilter(keys, fp_bits=8, seed=1)
    probes = _rand(5000, seed=8)
    assert np.array_equal(a.contains_many(probes), b.contains_many(probes))
