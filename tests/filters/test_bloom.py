"""Unit tests for the Bloom filter."""

import numpy as np
import pytest

from repro.filters.bloom import BloomFilter, false_positive_rate, optimal_nhashes
from repro.filters.hashing import hash_pair


def test_no_false_negatives():
    rng = np.random.default_rng(1)
    keys = rng.integers(0, 2**63, size=50_000, dtype=np.uint64)
    f = BloomFilter.from_bits_per_key(keys.size, 10)
    f.add_many(keys)
    assert f.contains_many(keys).all()


def test_empirical_fpr_tracks_analytic():
    rng = np.random.default_rng(2)
    keys = rng.integers(0, 2**62, size=100_000, dtype=np.uint64)
    probes = rng.integers(2**62, 2**63, size=200_000, dtype=np.uint64)
    for bpk in (8, 12, 16):
        f = BloomFilter.from_bits_per_key(keys.size, bpk, seed=bpk)
        f.add_many(keys)
        measured = f.contains_many(probes).mean()
        analytic = false_positive_rate(bpk)
        assert measured == pytest.approx(analytic, rel=0.35, abs=1e-4)


def test_expected_fpr_from_fill():
    rng = np.random.default_rng(3)
    keys = rng.integers(0, 2**63, size=20_000, dtype=np.uint64)
    f = BloomFilter.from_bits_per_key(keys.size, 10)
    f.add_many(keys)
    probes = rng.integers(0, 2**63, size=100_000, dtype=np.uint64)
    assert f.expected_fpr() == pytest.approx(f.contains_many(probes).mean(), rel=0.3, abs=1e-3)


def test_single_item_api():
    f = BloomFilter(1024, 4)
    assert 123 not in f
    f.add(123)
    assert 123 in f
    assert len(f) == 1


def test_empty_batch_ops():
    f = BloomFilter(64, 1)
    f.add_many(np.zeros(0, dtype=np.uint64))
    assert f.contains_many(np.zeros(0, dtype=np.uint64)).shape == (0,)
    assert len(f) == 0


def test_serialization_roundtrip():
    rng = np.random.default_rng(4)
    keys = rng.integers(0, 2**63, size=5_000, dtype=np.uint64)
    f = BloomFilter.from_bits_per_key(keys.size, 12, seed=7)
    f.add_many(keys)
    g = BloomFilter.from_bytes(f.to_bytes(), f.nhashes, seed=7)
    assert g.contains_many(keys).all()
    assert g.nbits == f.nbits
    assert g.size_bytes == f.size_bytes


def test_from_bytes_rejects_ragged_input():
    with pytest.raises(ValueError):
        BloomFilter.from_bytes(b"abc", 3)


def test_size_accounting():
    f = BloomFilter(1000, 3)
    assert f.nbits == 1024  # rounded up to word multiple
    assert f.size_bytes == 128


def test_optimal_nhashes():
    assert optimal_nhashes(10) == 7
    assert optimal_nhashes(1) == 1
    assert optimal_nhashes(14) == 10


def test_false_positive_rate_monotone():
    rates = [false_positive_rate(b) for b in range(2, 30, 2)]
    assert all(a > b for a, b in zip(rates, rates[1:]))
    assert false_positive_rate(0) == 1.0


def test_invalid_construction():
    with pytest.raises(ValueError):
        BloomFilter(0, 3)
    with pytest.raises(ValueError):
        BloomFilter(64, 0)
    with pytest.raises(ValueError):
        BloomFilter.from_bits_per_key(0, 8)
    with pytest.raises(ValueError):
        BloomFilter.from_bits_per_key(10, 0)


def test_key_rank_mapping_usage():
    """The paper's aux-table pattern: insert key‖rank, probe all ranks."""
    nranks = 64
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 2**63, size=2_000, dtype=np.uint64)
    true_ranks = rng.integers(0, nranks, size=keys.size, dtype=np.uint64)
    f = BloomFilter.from_bits_per_key(keys.size, 12)
    f.add_many(hash_pair(keys, true_ranks))
    # Every true mapping must be found.
    assert f.contains_many(hash_pair(keys, true_ranks)).all()
    # Average candidates per key stays near 1 + (nranks-1)*fpr.
    sample = keys[:200]
    cands = np.zeros(sample.size)
    for r in range(nranks):
        cands += f.contains_many(hash_pair(sample, np.uint64(r)))
    expected = 1 + (nranks - 1) * false_positive_rate(12)
    assert cands.mean() == pytest.approx(expected, rel=0.5)
