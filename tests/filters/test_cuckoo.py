"""Unit tests for partial-key cuckoo hash tables and the chained scheme."""

import numpy as np
import pytest

from repro.filters.cuckoo import (
    ChainedCuckooTable,
    CuckooTableFull,
    PartialKeyCuckooTable,
)


def _rand_keys(n, seed=0):
    return np.random.default_rng(seed).integers(0, 2**63, size=n, dtype=np.uint64)


class TestPartialKeyCuckooTable:
    def test_insert_and_find(self):
        t = PartialKeyCuckooTable(64, fp_bits=8, value_bits=16)
        t.insert(42, 7)
        assert t.contains(42)
        assert 7 in t.candidate_values(42)

    def test_true_value_always_returned(self):
        keys = _rand_keys(1500, seed=1)
        vals = np.arange(keys.size, dtype=np.uint32) % 997
        t = PartialKeyCuckooTable(512, fp_bits=12, value_bits=10)
        ok = t.insert_many(keys, vals)
        assert ok.all()
        for i in range(0, keys.size, 97):
            assert vals[i] in t.candidate_values(int(keys[i]))

    def test_bulk_matches_scalar_inserts(self):
        keys = _rand_keys(300, seed=2)
        a = PartialKeyCuckooTable(256, fp_bits=8, value_bits=8, seed=3)
        b = PartialKeyCuckooTable(256, fp_bits=8, value_bits=8, seed=3)
        a.insert_many(keys, 5)
        for k in keys:
            b.insert(int(k), 5)
        for k in keys[:50]:
            assert np.array_equal(a.candidate_values(int(k)), b.candidate_values(int(k)))

    def test_high_load_reachable(self):
        # 4-way buckets should sustain ~95 % load before failing.
        t = PartialKeyCuckooTable(256, fp_bits=12, value_bits=8)
        keys = _rand_keys(t.capacity_slots, seed=4)
        ok = t.insert_many(keys, 0)
        assert ok.mean() > 0.93

    def test_failed_insert_leaves_table_intact(self):
        t = PartialKeyCuckooTable(16, fp_bits=8, value_bits=8, max_kicks=20, seed=5)
        keys = _rand_keys(t.capacity_slots * 2, seed=5)
        ok = t.insert_many(keys, 1)
        assert not ok.all()  # definitely over capacity
        inserted = keys[ok]
        # Every successfully inserted key must still be findable.
        for k in inserted:
            assert t.contains(int(k))
        assert len(t) == int(ok.sum())

    def test_scalar_insert_raises_when_full(self):
        t = PartialKeyCuckooTable(1, fp_bits=8, value_bits=8, slots_per_bucket=2, max_kicks=5)
        keys = _rand_keys(10, seed=6)
        placed = 0
        with pytest.raises(CuckooTableFull):
            for k in keys:
                t.insert(int(k), 0)
                placed += 1
        assert placed == len(t) == 2

    def test_delete(self):
        t = PartialKeyCuckooTable(64, fp_bits=16, value_bits=8)
        t.insert(99, 3)
        assert t.delete(99)
        assert not t.contains(99)
        assert not t.delete(99)
        assert len(t) == 0

    def test_lookup_many_shape(self):
        t = PartialKeyCuckooTable(32, fp_bits=4, value_bits=8, slots_per_bucket=4)
        vals, match = t.lookup_many(_rand_keys(10))
        assert vals.shape == (10, 8)
        assert match.shape == (10, 8)
        assert not match.any()  # empty table

    def test_size_bytes_formula(self):
        t = PartialKeyCuckooTable(1024, fp_bits=4, value_bits=10, slots_per_bucket=4)
        payload = 1024 * 4 * 14 / 8
        assert t.size_bytes == int(payload) + 32

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            PartialKeyCuckooTable(64, fp_bits=0)
        with pytest.raises(ValueError):
            PartialKeyCuckooTable(64, fp_bits=33)
        with pytest.raises(ValueError):
            PartialKeyCuckooTable(64, value_bits=-1)
        with pytest.raises(ValueError):
            PartialKeyCuckooTable(64, slots_per_bucket=0)

    def test_nbuckets_rounded_to_pow2(self):
        assert PartialKeyCuckooTable(100).nbuckets == 128

    def test_empty_bulk_insert(self):
        t = PartialKeyCuckooTable(16)
        assert t.insert_many(np.zeros(0, dtype=np.uint64)).shape == (0,)


class TestChainedCuckooTable:
    def test_chains_on_overflow(self):
        t = ChainedCuckooTable(fp_bits=8, value_bits=8, min_buckets=16)
        keys = _rand_keys(2000, seed=7)
        t.insert_many(keys, 1)
        assert len(t) == 2000
        assert len(t.tables) > 1

    def test_hinted_utilization_is_high(self):
        n = 40_000
        keys = _rand_keys(n, seed=8)
        t = ChainedCuckooTable(fp_bits=12, value_bits=8, capacity_hint=n)
        t.insert_many(keys, 0)
        assert t.stats.utilization > 0.9  # paper: "about 95 % in practice"

    def test_hinted_first_table_size_matches_paper_example(self):
        # 1.1 M keys → 1 M-slot first table plus small overflow tables
        # (§IV-B: "combines a 1-million-slot table with an 128K-slot
        # table"; our balanced policy picks the power of two that keeps the
        # overflow table itself well utilized).
        t = ChainedCuckooTable(capacity_hint=1_100_000, slots_per_bucket=4)
        assert t.tables[0].capacity_slots == 1 << 20
        overflow = t._make_table(first=False, expected=1_100_000 - (1 << 20) + 30_000)
        assert overflow.capacity_slots in (1 << 16, 1 << 17)

    def test_utilization_away_from_pow2_boundaries(self):
        # 200 K keys sit awkwardly between 2^17 and 2^18 slots; the
        # balanced chain must still reach high combined utilization.
        keys = _rand_keys(200_000, seed=13)
        t = ChainedCuckooTable(fp_bits=8, value_bits=12, capacity_hint=200_000)
        t.insert_many(keys, 3)
        assert t.stats.utilization > 0.9
        assert t.stats.ntables <= 5

    def test_all_keys_findable_across_chain(self):
        keys = _rand_keys(5000, seed=9)
        t = ChainedCuckooTable(fp_bits=16, value_bits=12, min_buckets=16)
        t.insert_many(keys, 42)
        for k in keys[::251]:
            assert 42 in t.candidate_values(int(k))

    def test_candidate_counts_match_candidate_values(self):
        keys = _rand_keys(3000, seed=10)
        vals = np.arange(keys.size, dtype=np.uint32) % 64
        t = ChainedCuckooTable(fp_bits=4, value_bits=6, capacity_hint=keys.size)
        t.insert_many(keys, vals)
        counts = t.candidate_counts(keys[:100])
        for i in range(100):
            assert counts[i] == len(t.candidate_values(int(keys[i])))

    def test_amplification_bounded_by_fp_bits(self):
        """Fig. 7a's key property: amplification ≈2 with 4-bit fingerprints,
        independent of table size."""
        keys = _rand_keys(60_000, seed=11)
        vals = np.arange(keys.size, dtype=np.uint32) % 1024
        t = ChainedCuckooTable(fp_bits=4, value_bits=10, capacity_hint=keys.size)
        t.insert_many(keys, vals)
        amp = t.candidate_counts(keys[:2000]).mean()
        assert 1.0 <= amp < 2.5

    def test_scalar_insert_path(self):
        t = ChainedCuckooTable(fp_bits=8, value_bits=8, min_buckets=4)
        for i in range(500):
            t.insert(i * 2654435761, i % 256)
        assert len(t) == 500

    def test_stats_bytes_per_key(self):
        keys = _rand_keys(10_000, seed=12)
        t = ChainedCuckooTable(fp_bits=4, value_bits=10, capacity_hint=keys.size)
        t.insert_many(keys, 0)
        # 14 bits/slot at >90 % utilization → < 2.1 bytes/key.
        assert t.stats.bytes_per_key < 2.1

    def test_rejects_bad_hint(self):
        with pytest.raises(ValueError):
            ChainedCuckooTable(capacity_hint=0)

    def test_contains(self):
        t = ChainedCuckooTable(min_buckets=4)
        t.insert(7, 1)
        assert t.contains(7)


class TestCandidatesMany:
    def test_matches_scalar_candidate_values(self):
        keys = _rand_keys(5000, seed=20)
        vals = np.arange(keys.size, dtype=np.uint32) % 64
        t = ChainedCuckooTable(fp_bits=4, value_bits=6, capacity_hint=keys.size)
        t.insert_many(keys, vals)
        probe = np.concatenate([keys[:300], _rand_keys(100, seed=21)])
        counts, flat = t.candidates_many(probe)
        assert counts.sum() == flat.size
        off = 0
        for i, k in enumerate(probe):
            got = flat[off : off + counts[i]]
            off += counts[i]
            want = t.candidate_values(int(k))
            assert np.array_equal(got, want), f"key {k}"
            assert np.all(np.diff(got) > 0)  # sorted distinct per key

    def test_spans_growth_boundary(self):
        """Keys inserted before and after chain growth resolve identically
        through the bulk and scalar surfaces (bulk must scan every table)."""
        keys = _rand_keys(4000, seed=22)
        t = ChainedCuckooTable(fp_bits=8, value_bits=6, min_buckets=4)
        for start in range(0, keys.size, 500):  # force incremental growth
            t.insert_many(keys[start : start + 500], (start // 500) % 64)
        assert len(t.tables) > 1
        counts, flat = t.candidates_many(keys)
        assert counts.min() >= 1  # no false negatives across the chain
        off = 0
        for i, k in enumerate(keys):
            got = flat[off : off + counts[i]]
            off += counts[i]
            assert np.array_equal(got, t.candidate_values(int(k)))

    def test_empty_batch(self):
        t = ChainedCuckooTable(min_buckets=4)
        t.insert(1, 2)
        counts, flat = t.candidates_many(np.zeros(0, dtype=np.uint64))
        assert counts.size == 0 and flat.size == 0

    def test_counts_delegate_to_bulk(self):
        keys = _rand_keys(2000, seed=23)
        t = ChainedCuckooTable(fp_bits=4, value_bits=6, capacity_hint=keys.size)
        t.insert_many(keys, 7)
        counts, flat = t.candidates_many(keys[:200])
        assert np.array_equal(counts, t.candidate_counts(keys[:200]))
