"""Unit tests for the standard (membership) cuckoo filter."""

import numpy as np
import pytest

from repro.filters.cuckoofilter import CuckooFilter


def _rand_keys(n, seed=0):
    return np.random.default_rng(seed).integers(0, 2**63, size=n, dtype=np.uint64)


def test_no_false_negatives():
    keys = _rand_keys(10_000, seed=1)
    f = CuckooFilter(int(keys.size * 1.1), fp_bits=12)
    ok = f.add_many(keys)
    assert ok.all()
    assert f.contains_many(keys).all()


def test_fpr_tracks_fingerprint_width():
    keys = _rand_keys(20_000, seed=2)
    probes = _rand_keys(50_000, seed=3)
    for bits in (8, 12, 16):
        f = CuckooFilter(int(keys.size * 1.1), fp_bits=bits, seed=bits)
        f.add_many(keys)
        measured = f.contains_many(probes).mean()
        assert measured == pytest.approx(f.expected_fpr(), rel=0.5, abs=2e-4)


def test_delete_then_absent():
    f = CuckooFilter(100, fp_bits=16)
    f.add(12345)
    assert 12345 in f
    assert f.delete(12345)
    assert 12345 not in f
    assert len(f) == 0


def test_load_factor_reaches_95_percent():
    f = CuckooFilter(4096, fp_bits=12, seed=4)
    keys = _rand_keys(4096, seed=4)
    ok = f.add_many(keys)
    assert ok.mean() > 0.9
    assert f.load_factor == pytest.approx(ok.mean(), abs=0.05)


def test_rejects_bad_capacity():
    with pytest.raises(ValueError):
        CuckooFilter(0)


def test_size_bytes_scales_with_fp_bits():
    small = CuckooFilter(1000, fp_bits=4).size_bytes
    large = CuckooFilter(1000, fp_bits=16).size_bytes
    assert large > small
