"""Pooled `get_many` equivalence: values, per-key stats, counters, and
exact registry sums against the in-process oracle running the identical
chunk plan."""

import numpy as np
import pytest

from repro.core.formats import FORMATS
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.obs import MetricsRegistry
from repro.parallel.reads import PooledReads
from repro.storage.blockio import StorageDevice

NRANKS = 4


def _build_store(fmt, dev_reg):
    store = MultiEpochStore(
        nranks=NRANKS,
        fmt=FORMATS[fmt],
        value_bytes=24,
        device=StorageDevice(metrics=dev_reg),
        seed=7,
    )
    rng = np.random.default_rng(42)
    written = []
    for _ in range(2):
        batches = [random_kv_batch(250, 24, rng) for _ in range(NRANKS)]
        written.append(np.concatenate([b.keys for b in batches]))
        store.write_epoch(batches)
    return store, written


def _series_map(reg):
    out = {}
    for name, labels, inst in reg.series():
        v = getattr(inst, "value", None)
        if v is None:
            v = (inst.count, inst.total)
        if v in (0, 0.0, (0, 0.0)):
            continue  # zero series: construction artifacts, deltas drop them
        out[(name, labels)] = v
    return out


def _probe_keys(written, epoch):
    rng = np.random.default_rng(1)
    miss = rng.integers(0, 2**63, 250, dtype=np.uint64)
    return np.concatenate([miss, written[epoch][:50]])


@pytest.mark.parametrize("fmt", ["base", "dataptr", "filterkv"])
def test_pooled_get_many_matches_serial_oracle(fmt, pool):
    dev_a, dev_b = MetricsRegistry("a-dev"), MetricsRegistry("b-dev")
    reg_a, reg_b = MetricsRegistry("a"), MetricsRegistry("b")
    A, written = _build_store(fmt, dev_a)
    B, _ = _build_store(fmt, dev_b)
    oracle = PooledReads(A, pool, min_keys=1, metrics=reg_a)
    pooled = B.attach_pool(pool, min_keys=1, metrics=reg_b)

    epoch = A.epochs[-1]
    keys = _probe_keys(written, len(written) - 1)
    base_a = A.device.counters.snapshot()
    base_b = B.device.counters.snapshot()
    va, sa = oracle.serial_get_many(keys, epoch)
    vb, sb = pooled.get_many(keys, epoch)

    assert va == vb
    assert any(v is not None for v in vb)  # the probe set includes hits
    for x, y in zip(sa, sb):
        assert (x.found, x.partitions_searched, x.reads, x.bytes_read) == (
            y.found,
            y.partitions_searched,
            y.reads,
            y.bytes_read,
        )
        assert abs(x.latency - y.latency) < 1e-12
        assert x.breakdown_reads == y.breakdown_reads
        assert x.breakdown_bytes == y.breakdown_bytes

    da = A.device.counters.delta(base_a)
    db = B.device.counters.delta(base_b)
    assert (da.reads, da.bytes_read) == (db.reads, db.bytes_read)
    assert _series_map(reg_a) == _series_map(reg_b)
    assert _series_map(dev_a) == _series_map(dev_b)

    oracle.release()
    pooled.release()
    A.close()
    B.close()


def test_pooled_matches_plain_engine_and_auto_routes(pool):
    dev_reg = MetricsRegistry("dev")
    store, written = _build_store("base", dev_reg)
    pooled = store.attach_pool(pool, min_keys=8)
    epoch = store.epochs[-1]
    keys = _probe_keys(written, 1)

    v_plain, s_plain = store.engine(epoch).get_many(keys)
    v_pool, s_pool = pooled.get_many(keys, epoch)
    assert v_plain == v_pool
    assert [s.found for s in s_plain] == [s.found for s in s_pool]

    # auto-routing: big calls go pooled, tiny ones stay in-process
    v_auto, _ = store.get_many(keys, epoch)
    assert v_auto == v_pool
    v_tiny, _ = store.get_many(keys[:2], epoch)
    assert v_tiny == v_pool[:2]
    with pytest.raises(ValueError):
        MultiEpochStore(nranks=2, fmt=FORMATS["base"], value_bytes=24).get_many(
            keys[:4], 0, parallel="process"
        )
    pooled.release()
    store.close()


def test_pooled_reads_refresh_after_compaction(pool):
    store, written = _build_store("filterkv", MetricsRegistry("dev"))
    pooled = store.attach_pool(pool, min_keys=1)
    keys = _probe_keys(written, 0)
    before, _ = pooled.get_many(keys, store.epochs[0])

    report = store.compact()
    assert report is not None
    merged = store.epochs[-1]
    v_pool, _ = pooled.get_many(keys, merged)
    v_serial, _ = pooled.serial_get_many(keys, merged)
    assert v_pool == v_serial
    # first-epoch hits survive the merge (first-write-wins union view)
    assert [v is not None for v in before] == [
        v is not None for v in pooled.get_many(keys, store.resolve_epoch(0))[0]
    ]
    pooled.release()
    store.close()
