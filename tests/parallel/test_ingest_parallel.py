"""`parallel="process"` ingest is byte-identical to `parallel="off"`.

The equivalence pinned here is total: extent bytes, cluster stats, device
I/O counters, and the *merged* metric registry (exact counter sums after
per-worker registries fold back in) — for every format, including the
filterkv spill path, and under an injected worker crash.
"""

import numpy as np
import pytest

from repro.cluster.simcluster import SimCluster
from repro.core.formats import FORMATS
from repro.core.kv import random_kv_batch
from repro.obs import MetricsRegistry
from repro.parallel import PoolFaultPlan, WorkerPool

NRANKS = 4


def _build(fmt, parallel, pool, **kw):
    reg = MetricsRegistry("run")
    cluster = SimCluster(
        nranks=NRANKS,
        fmt=FORMATS[fmt],
        value_bytes=24,
        seed=7,
        metrics=reg,
        parallel=parallel,
        pool=pool,
        **kw,
    )
    rng = np.random.default_rng(5)
    batches = [
        [random_kv_batch(250, 24, rng) for _ in range(2)] for _ in range(NRANKS)
    ]
    for i in range(2):
        for r in range(NRANKS):
            cluster.put(r, batches[r][i])
    cluster.finish_epoch()
    return cluster, reg


def _counters(reg):
    return {
        (name, labels): inst.value
        for name, labels, inst in reg.series()
        if inst.kind == "counter" and inst.value != 0
    }


def _extents(cluster):
    return {
        n: cluster.device._require(n).getvalue() for n in cluster.device.list_files()
    }


def _assert_equivalent(a, rega, b, regb, fmt):
    ea, eb = _extents(a), _extents(b)
    assert ea.keys() == eb.keys()
    for name in ea:
        assert ea[name] == eb[name], f"{fmt}: extent {name} differs"
    assert a.stats == b.stats
    ca, cb = _counters(rega), _counters(regb)
    diff = {k: (ca.get(k), cb.get(k)) for k in set(ca) | set(cb) if ca.get(k) != cb.get(k)}
    assert not diff, f"{fmt}: merged registry differs: {diff}"
    assert a.device.counters.reads == b.device.counters.reads
    assert a.device.counters.writes == b.device.counters.writes
    assert a.device.counters.bytes_read == b.device.counters.bytes_read
    assert a.device.counters.bytes_written == b.device.counters.bytes_written
    assert a.aux_backends() == b.aux_backends()


@pytest.mark.parametrize("fmt", ["base", "dataptr", "filterkv"])
def test_parallel_ingest_byte_identical(fmt, pool):
    a, rega = _build(fmt, "off", None)
    b, regb = _build(fmt, "process", pool)
    _assert_equivalent(a, rega, b, regb, fmt)


def test_parallel_ingest_filterkv_spill_path(pool):
    kw = {"spill_budget_bytes": 20000}
    a, rega = _build("filterkv", "off", None, **kw)
    b, regb = _build("filterkv", "process", pool, **kw)
    _assert_equivalent(a, rega, b, regb, "filterkv+spill")


def test_parallel_ingest_survives_worker_crash():
    """A worker dying mid-epoch must not change a single byte: the lost
    task re-runs in-process and the failure is visible in telemetry."""
    a, rega = _build("base", "off", None)
    pool_reg = MetricsRegistry("crash-pool")
    with WorkerPool(
        workers=2, metrics=pool_reg, fault_plan=PoolFaultPlan(kill_task=0)
    ) as crash_pool:
        b, regb = _build("base", "process", crash_pool)
        assert crash_pool.stats()["worker_failures"] >= 1
    _assert_equivalent(a, rega, b, regb, "base+crash")


def test_parallel_query_parity(pool):
    """The parallel-ingested dataset answers queries identically."""
    a, _ = _build("filterkv", "off", None)
    b, _ = _build("filterkv", "process", pool)
    qa, qb = a.query_engine(), b.query_engine()
    keys = np.random.default_rng(11).integers(0, 2**63, 200, dtype=np.uint64)
    va, sa = qa.get_many(keys)
    vb, sb = qb.get_many(keys)
    assert va == vb
    assert [s.found for s in sa] == [s.found for s in sb]
    assert [s.partitions_searched for s in sa] == [s.partitions_searched for s in sb]
