"""`QueryService(pool=...)` answers identically to the in-process
service, while big dispatch windows actually route through the workers."""

import asyncio

import numpy as np
import pytest

from repro.core.formats import FORMATS
from repro.core.kv import random_kv_batch
from repro.core.multiepoch import MultiEpochStore
from repro.obs import MetricsRegistry
from repro.serve.service import QueryService
from repro.storage.blockio import StorageDevice

NRANKS = 4


def _build_store(fmt):
    store = MultiEpochStore(
        nranks=NRANKS,
        fmt=FORMATS[fmt],
        value_bytes=24,
        device=StorageDevice(metrics=MetricsRegistry("dev")),
        seed=7,
    )
    rng = np.random.default_rng(42)
    written = []
    for _ in range(2):
        batches = [random_kv_batch(200, 24, rng) for _ in range(NRANKS)]
        written.append(np.concatenate([b.keys for b in batches]))
        store.write_epoch(batches)
    return store, written


def _probe_keys(written):
    rng = np.random.default_rng(1)
    return np.concatenate(
        [rng.integers(0, 2**63, 200, dtype=np.uint64), written[-1][:40]]
    )


async def _serve_all(store, keys, epoch, pool):
    kwargs = {"max_batch": 256, "max_inflight": 4096}
    if pool is not None:
        kwargs.update(pool=pool, pool_min_keys=8)
    async with QueryService(store, **kwargs) as svc:
        res = await asyncio.gather(*(svc.get(int(k), epoch=epoch) for k in keys))
        if pool is not None:
            assert svc.metrics.total("serve.pooled_windows") > 0, "pooled path never ran"
            workers = svc.live_stats()["workers"]
            assert workers["configured_workers"] >= 1
            assert workers["tasks"] > 0
    return [(r.status, r.value, r.epoch) for r in res]


@pytest.mark.parametrize("fmt", ["base", "dataptr", "filterkv"])
def test_pooled_serving_answers_identically(fmt, pool):
    A, written = _build_store(fmt)
    B, _ = _build_store(fmt)
    keys = _probe_keys(written)
    epoch = A.epochs[-1]
    ra = asyncio.run(_serve_all(A, keys, epoch, None))
    rb = asyncio.run(_serve_all(B, keys, epoch, pool))
    assert ra == rb
    assert sum(1 for s, _, _ in ra if s == "ok") >= 40
    A.close()
    B.close()


def test_top_frame_shows_workers_panel(pool):
    """`repro top` renders the pool gauges when the service has workers."""
    from repro.cli import _render_top_frame

    store, written = _build_store("base")

    async def run():
        async with QueryService(store, pool=pool, pool_min_keys=8) as svc:
            await asyncio.gather(*(svc.get(int(k), epoch=1) for k in written[-1][:64]))
            live = svc.live_stats()
            live["workers"]["batches_per_s"] = 1.5  # what two top frames derive
            return _render_top_frame(live, svc.stats(), [], "inproc")

    frame = asyncio.run(run())
    assert "workers" in frame
    assert "busy" in frame and "batches" in frame and "shm" in frame
    assert "(1.5/s)" in frame
    store.close()


def test_small_windows_stay_in_process(pool):
    """Below ``pool_min_keys`` the shipping cost beats the parallelism:
    the window must run on the event-loop thread."""
    store, written = _build_store("base")

    async def run():
        async with QueryService(store, pool=pool, pool_min_keys=512) as svc:
            res = await asyncio.gather(
                *(svc.get(int(k), epoch=1) for k in written[-1][:16])
            )
            assert svc.metrics.total("serve.pooled_windows") == 0
            return res

    res = asyncio.run(run())
    assert all(r.status == "ok" for r in res)
    store.close()
